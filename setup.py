"""Legacy setup shim.

The metadata lives in pyproject.toml; this file lets ``pip install -e .``
work on toolchains without PEP-660 editable-wheel support.
"""

from setuptools import setup

setup()
