#!/usr/bin/env python
"""Use the framework as a deadlock-freedom checker for YOUR algorithm.

The paper's Section-2 conditions are fully mechanical: define a
routing function over queues (static hops + optional dynamic hops) and
``verify_algorithm`` will exhaustively check hop adjacency, static-QDG
acyclicity, dead-end freedom, the dynamic-link escape condition, and
level monotonicity on a concrete instance.

This script defines three custom algorithms for the 2-D torus:

* a naive single-queue minimal router — rejected (cyclic QDG: the
  classic store-and-forward deadlock);
* a tempting "fix" with dateline queue classes — still rejected!  The
  dateline breaks the wrap-around cycle but not the swap cycle between
  messages traveling opposite directions through shared queues;
* the genuinely safe version — one ring direction only (clockwise),
  dimension order, dateline classes — accepted (at the price of
  non-minimal routes, which is exactly the trade-off the paper's
  two-phase schemes avoid).

Run:  python examples/verify_custom_algorithm.py
"""

from repro.core import QueueId, deliver, verify_algorithm
from repro.core.routing_function import RoutingAlgorithm
from repro.topology import Torus


class NaiveTorusRouting(RoutingAlgorithm):
    """One central queue, any minimal hop: deadlock-prone."""

    name = "naive-torus"

    def central_queue_kinds(self, node):
        return ("Q",)

    def injection_targets(self, src, dst, state=None):
        return frozenset({QueueId(src, "Q")})

    def static_hops(self, q, dst, state=None):
        u = q.node
        if u == dst:
            return frozenset({deliver(dst)})
        topo = self.topology
        du = topo.distance(u, dst)
        return frozenset(
            QueueId(v, "Q")
            for v in topo.neighbors(u)
            if topo.distance(v, dst) == du - 1
        )


class DatelineMinimalRouting(RoutingAlgorithm):
    """Dimension-order *minimal* routing with dateline queue classes.

    Looks safe, is not: the dateline classes break each ring's wrap
    cycle, but two messages traveling opposite directions through the
    same dimension still wait on each other's queues — a swap cycle
    the checker exposes.
    """

    name = "dateline-minimal"

    def central_queue_kinds(self, node):
        return ("D0", "D1", "D2")

    def _next_move(self, u, dst):
        topo: Torus = self.topology
        for i in range(topo.k):
            if u[i] != dst[i]:
                d = topo.minimal_directions(u[i], dst[i], i)[0]
                return i, d
        return None

    def injection_targets(self, src, dst, state=None):
        return frozenset({QueueId(src, "D0")})

    def static_hops(self, q, dst, state=None):
        u = q.node
        if u == dst:
            return frozenset({deliver(dst)})
        topo: Torus = self.topology
        i, d = self._next_move(u, dst)
        v = topo.step(u, i, d)
        c = int(q.kind[1:])
        if topo.crosses_dateline(u, i, d):
            c = min(c + 1, 2)
        return frozenset({QueueId(v, f"D{c}")})


class ClockwiseDatelineRouting(DatelineMinimalRouting):
    """Dimension-order routing, one ring direction only.

    All messages travel in the +1 direction of every ring, so within a
    dateline class positions strictly increase: the QDG is a DAG.
    Deadlock free and oblivious, but no longer minimal — the price the
    paper's two-phase constructions avoid paying.
    """

    name = "clockwise-dateline"
    is_minimal = False

    def _next_move(self, u, dst):
        for i in range(self.topology.k):
            if u[i] != dst[i]:
                return i, +1
        return None


def main() -> None:
    torus = Torus((4, 4))

    naive = NaiveTorusRouting(torus)
    report = verify_algorithm(naive, check_minimal=True)
    print("naive single-queue torus router:")
    print(" ", report.summary())
    for err in report.errors[:3]:
        print("   !", err)
    assert not report.deadlock_free

    tempting = DatelineMinimalRouting(torus)
    report = verify_algorithm(tempting, check_minimal=True)
    print("\ndateline classes alone (still minimal, still broken):")
    print(" ", report.summary())
    for err in report.errors[:2]:
        print("   !", err)
    assert not report.deadlock_free

    fixed = ClockwiseDatelineRouting(torus)
    report = verify_algorithm(fixed, check_minimal=False)
    print("\nclockwise-only + dateline classes:")
    print(" ", report.summary())
    assert report.deadlock_free

    print("\nGetting minimal + adaptive + deadlock-free simultaneously is"
          "\nexactly what the paper's two-phase dynamic-link schemes do —"
          "\nsee repro.routing.TorusRouting and tests/test_core_verification.py.")


if __name__ == "__main__":
    main()
