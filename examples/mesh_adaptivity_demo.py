#!/usr/bin/env python
"""Section 4's motivating example, made concrete.

A message heading "north-west" — one coordinate must grow, the other
shrink — has exactly ONE route under the restricted two-phase mesh
scheme, but all C(dx+dy, dx) minimal routes under the fully-adaptive
extension, at the same cost of two central queues per node.  This
script counts the routes, draws one, and then shows the performance
consequence under transpose traffic.

Run:  python examples/mesh_adaptivity_demo.py
"""

from repro.core import minimal_node_paths, node_path, realizable_node_paths
from repro.routing import Mesh2DAdaptiveRouting, Mesh2DRestrictedRouting
from repro.sim import (
    MeshTransposeTraffic,
    PacketSimulator,
    StaticInjection,
    make_rng,
)
from repro.topology import Mesh2D


def main() -> None:
    mesh = Mesh2D(5)
    src, dst = (4, 0), (0, 4)  # pure north-west traversal

    restricted = Mesh2DRestrictedRouting(mesh)
    adaptive = Mesh2DAdaptiveRouting(mesh)

    all_min = minimal_node_paths(mesh, src, dst)
    r_paths = realizable_node_paths(restricted, src, dst)
    a_paths = realizable_node_paths(adaptive, src, dst)

    print(f"{src} -> {dst} on {mesh.name}:")
    print(f"  minimal paths available:   {len(all_min)}")
    print(f"  restricted scheme reaches: {len(r_paths)}")
    print(f"  adaptive scheme reaches:   {len(a_paths)}")
    assert a_paths == all_min

    print("\nthe restricted scheme's only route:")
    (only,) = r_paths
    print("  " + " -> ".join(map(str, only)))

    print("\none adaptive alternative:")
    alt = sorted(a_paths - r_paths)[0]
    print("  " + " -> ".join(map(str, alt)))

    # Performance under transpose traffic (every (x,y) -> (y,x)).
    print("\ntranspose traffic, 4 packets per node:")
    for alg in (adaptive, restricted):
        inj = StaticInjection(4, MeshTransposeTraffic(mesh), make_rng(0))
        res = PacketSimulator(alg, inj).run(max_cycles=100_000)
        print(f"  {alg.name:18s}: L_avg = {res.l_avg:6.2f},"
              f" L_max = {res.l_max}")


if __name__ == "__main__":
    main()
