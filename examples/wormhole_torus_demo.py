#!/usr/bin/env python
"""Worm-hole routing on the 2-D torus (the [GPS91] extension).

The paper notes (Sections 1 and 4) that the dynamic-link methodology
generalises to worm-hole routing on tori with very moderate resources.
This demo:

1. machine-verifies the extended escape-CDG condition for the adaptive
   scheme (3 VCs/link: dateline escape pair + one adaptive channel),
2. shows the verifier REJECTING the tempting-but-wrong transcription of
   the packet scheme's hung escape on the hypercube,
3. races adaptive against dimension-order worm-hole under shifted
   traffic, and
4. demonstrates worm-hole's distance-insensitive pipeline latency.

Run:  python examples/wormhole_torus_demo.py
"""

from repro.topology import Hypercube, Torus
from repro.wormhole import (
    HungEscapeHypercubeWormhole,
    HypercubeAdaptiveWormhole,
    TorusAdaptiveWormhole,
    TorusDimensionOrderWormhole,
    Worm,
    WormholeSimulator,
    verify_wormhole_scheme,
)


def main() -> None:
    torus = Torus((6, 6))

    print("1) verification of the adaptive torus scheme:")
    report = verify_wormhole_scheme(TorusAdaptiveWormhole(Torus((4, 4))))
    print("  ", report.summary())
    assert report.deadlock_free

    print("\n2) the naive transcription of the packet scheme is UNSAFE"
          " for worm-hole:")
    bad = verify_wormhole_scheme(HungEscapeHypercubeWormhole(Hypercube(3)))
    print("  ", bad.summary())
    print("   counterexample:", bad.errors[0])
    good = verify_wormhole_scheme(HypercubeAdaptiveWormhole(Hypercube(3)))
    print("   fixed (e-cube escape):", good.summary())

    print("\n3) adaptive vs dimension-order under a (3,2)-shift:")
    for cls in (TorusAdaptiveWormhole, TorusDimensionOrderWormhole):
        sim = WormholeSimulator(cls(torus))
        sim.offer_all(
            Worm(src=u, dst=((u[0] + 3) % 6, (u[1] + 2) % 6), length=6)
            for u in torus.nodes()
        )
        sim.run()
        print(f"   {sim.scheme.name:26s}: L_avg={sim.latency.mean:6.1f}"
              f"  L_max={sim.latency.maximum}")

    print("\n4) pipeline latency (single worm, distance vs length):")
    for dst, label in (((0, 1), "1 hop "), ((3, 3), "6 hops")):
        for length in (4, 32):
            sim = WormholeSimulator(TorusAdaptiveWormhole(torus))
            sim.offer(Worm(src=(0, 0), dst=dst, length=length))
            sim.run()
            w = sim.delivered[0]
            print(f"   {label}, {length:2d} flits: head={w.head_latency:2d}"
                  f" tail={w.latency:2d} cycles")
    print("   -> tail latency ~ h + L: distance barely matters for long"
          " worms.")


if __name__ == "__main__":
    main()
