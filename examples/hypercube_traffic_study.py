#!/usr/bin/env python
"""Traffic study: the paper's four patterns on one hypercube.

Reproduces a slice of Section 7: runs random, complement, transpose,
and leveled-permutation traffic under both injection models on an
n-cube and prints paper-style result rows.  The orderings the paper
reports — complement is the hardest pattern, injection rates fall as
congestion rises — are visible at this scale already.

Run:  python examples/hypercube_traffic_study.py [n]
"""

import sys

from repro.analysis import format_rows
from repro.experiments import HypercubeExperiment


def main(n: int = 6) -> None:
    patterns = ("random", "complement", "transpose", "leveled")

    print(f"=== static injection, 1 packet per node (n = {n}) ===")
    rows = []
    for pattern in patterns:
        exp = HypercubeExperiment(pattern=pattern, injection="static",
                                  packets_per_node=1, seed=7)
        res = exp.run(n)
        rows.append(res.row())
    print(format_rows(rows, ["pattern", "L_avg", "L_max", "delivered"]))

    print(f"\n=== dynamic injection, lambda = 1 (n = {n}) ===")
    rows = []
    for pattern in patterns:
        exp = HypercubeExperiment(pattern=pattern, injection="dynamic",
                                  rate=1.0, seed=7)
        res = exp.run(n)
        row = res.row()
        rows.append(row)
    print(format_rows(rows, ["pattern", "L_avg", "L_max", "I_r(%)"]))

    print("\nPaper shape: complement saturates the bisection, so it shows"
          "\nthe largest latencies and the lowest effective injection rate;"
          "\nrandom and leveled stay close to the uncontended 2h+1 law.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
