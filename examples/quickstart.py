#!/usr/bin/env python
"""Quickstart: route packets on a hypercube with the paper's algorithm.

Builds the fully-adaptive minimal routing algorithm of Section 3 on a
6-dimensional hypercube, machine-verifies its deadlock-freedom
conditions on a small instance, traces one packet's queue-level route,
and runs the cycle-accurate simulator under random traffic.

Run:  python examples/quickstart.py
"""

from repro.core import node_path, verify_algorithm
from repro.routing import HypercubeAdaptiveRouting
from repro.sim import PacketSimulator, RandomTraffic, StaticInjection, make_rng
from repro.topology import Hypercube


def main() -> None:
    # 1. Machine-verify the Section-2 deadlock-freedom conditions
    #    (exhaustively, on a 4-cube — Theorem 1 in miniature).
    small = HypercubeAdaptiveRouting(Hypercube(4))
    report = verify_algorithm(small)
    print("verification:", report.summary())
    assert report.ok

    # 2. Trace one packet's route at the queue level.
    cube = Hypercube(6)
    alg = HypercubeAdaptiveRouting(cube)
    src, dst = 0b000111, 0b111000
    path = alg.walk(src, dst)
    print(f"\nroute {cube.format_node(src)} -> {cube.format_node(dst)}:")
    print("  queues:", " -> ".join(map(repr, path)))
    print("  nodes: ", " -> ".join(cube.format_node(u) for u in node_path(path)))
    print(f"  hops:   {len(node_path(path)) - 1}"
          f" (Hamming distance {cube.distance(src, dst)})")

    # 3. Simulate: every node sends 3 random packets.
    inj = StaticInjection(3, RandomTraffic(cube), make_rng(seed=42))
    sim = PacketSimulator(alg, inj)
    res = sim.run(max_cycles=50_000)
    print(f"\nsimulated {res.injected} packets on {cube.name}:")
    print(f"  delivered: {res.delivered} in {res.cycles} cycles")
    print(f"  L_avg = {res.l_avg:.2f}, L_max = {res.l_max}"
          f" (uncontended law: 2*hops + 1)")


if __name__ == "__main__":
    main()
