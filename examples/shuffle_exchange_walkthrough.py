#!/usr/bin/env python
"""Walk through the shuffle-exchange algorithm step by step.

Shows the Section-5 machinery in action on a 32-node shuffle-exchange:
shuffle cycles and their levels, the two-phase correction schedule, a
full queue-level trace of one message (including an early 1 -> 0
correction over a dynamic link), and a load simulation.

Run:  python examples/shuffle_exchange_walkthrough.py
"""

from repro.core import node_path
from repro.routing import ShuffleExchangeRouting
from repro.sim import PacketSimulator, RandomTraffic, StaticInjection, make_rng
from repro.topology import ShuffleExchange


def main() -> None:
    n = 5
    se = ShuffleExchange(n)
    alg = ShuffleExchangeRouting(se)

    print(f"{se.name}: {se.num_nodes} nodes")
    print("shuffle cycles (level = Hamming weight, * = break node):")
    for cyc in se.all_cycles():
        lvl = se.cycle_level(cyc[0])
        body = " -> ".join(
            ("*" if u == cyc[0] else "") + se.format_node(u) for u in cyc
        )
        print(f"  level {lvl}: {body}")

    src, dst = 0b10110, 0b01001
    print(f"\nrouting {se.format_node(src)} -> {se.format_node(dst)}"
          f" (paper bound: <= {3 * n} hops)")

    # Greedy walk preferring dynamic hops when present, to show an
    # early 1 -> 0 correction.
    def eager(cands):
        return sorted(cands)[0]

    path = alg.walk(src, dst, choose=eager)
    nodes = node_path(path)
    print("  queue trace:")
    for q in path:
        print(f"    {q.kind:5s} @ {se.format_node(q.node) if isinstance(q.node, int) else q.node}")
    print(f"  physical hops: {len(nodes) - 1}")

    print("\nload test: 3 random packets per node, queues of size 5")
    inj = StaticInjection(3, RandomTraffic(se), make_rng(5))
    res = PacketSimulator(alg, inj).run(max_cycles=100_000)
    print(f"  delivered {res.delivered}/{res.injected} in {res.cycles} cycles;"
          f" L_avg = {res.l_avg:.2f}, L_max = {res.l_max}")
    print(f"  (4 central queues per node would need "
          f"{2 * alg.classes} here; classes/phase = {alg.classes})")


if __name__ == "__main__":
    main()
