#!/usr/bin/env python
"""Multi-seed replication: putting error bars on the paper's tables.

The paper reports single runs.  This study replicates Table 1 (random
routing, 1 packet) and Table 9 (random, dynamic lambda=1) cells over
several seeds and prints means with 95% confidence intervals, plus a
statistically-backed comparison of adaptive vs oblivious routing.

Run:  python examples/replication_study.py
"""

from repro.analysis import format_rows
from repro.experiments import (
    HypercubeExperiment,
    mean_difference_ci95,
    replicate,
)
from repro.routing import HypercubeObliviousRouting

SEEDS = (11, 22, 33, 44, 55)
N = 6


def main() -> None:
    print(f"=== Table-1 cell (random, 1 packet) at n={N}, "
          f"{len(SEEDS)} seeds ===")
    static = replicate(
        lambda seed: HypercubeExperiment(
            pattern="random", injection="static", packets_per_node=1,
            seed=seed,
        ),
        n=N,
        seeds=SEEDS,
    )
    print(format_rows([static.row()]))

    print(f"\n=== Table-9 cell (random, lambda=1) at n={N} ===")
    dynamic = replicate(
        lambda seed: HypercubeExperiment(
            pattern="random", injection="dynamic", seed=seed,
        ),
        n=N,
        seeds=SEEDS,
    )
    print(format_rows([dynamic.row()]))

    print("\n=== adaptive vs oblivious on transpose, n packets ===")
    adaptive = replicate(
        lambda seed: HypercubeExperiment(
            pattern="transpose", injection="static", packets_per_node=N,
            seed=seed,
        ),
        n=N,
        seeds=SEEDS,
    )

    oblivious = replicate(
        lambda seed: HypercubeExperiment(
            pattern="transpose", injection="static", packets_per_node=N,
            seed=seed, algorithm=HypercubeObliviousRouting,
        ),
        n=N,
        seeds=SEEDS,
    )
    print(format_rows([
        {"scheme": "adaptive", **adaptive.row()},
        {"scheme": "oblivious", **oblivious.row()},
    ]))
    lo, hi = mean_difference_ci95(oblivious.l_avg, adaptive.l_avg)
    print(f"\noblivious - adaptive L_avg difference: "
          f"95% CI [{lo:.2f}, {hi:.2f}] cycles")
    if lo > 0:
        print("=> full adaptivity is significantly faster (p < 0.05).")


if __name__ == "__main__":
    main()
