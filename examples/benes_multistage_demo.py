#!/usr/bin/env python
"""Full adaptivity on a path-rich multistage network (Beneš).

The paper's introduction points at Upfal's multibutterfly — networks
"extremely rich in the number of minimal paths" — as the setting where
full adaptivity shines.  The Beneš network is the constructive classic
of that family: 2**n distinct minimal paths between every input/output
pair, and because all links point forward through the levels, the
queue dependency graph is acyclic with a SINGLE central queue per
node: the levels are a ready-made hanging order.

This demo verifies the scheme, counts the realizable paths, and
compares adaptive vs bit-controlled oblivious routing under a heavy
random load.

Run:  python examples/benes_multistage_demo.py
"""

from repro.core import (
    minimal_node_paths,
    realizable_node_paths,
    verify_algorithm,
)
from repro.routing import (
    BenesAdaptiveRouting,
    BenesObliviousRouting,
    BenesTraffic,
)
from repro.sim import DynamicInjection, PacketSimulator, make_rng
from repro.topology import BenesNetwork


def main() -> None:
    b = BenesNetwork(2)
    alg = BenesAdaptiveRouting(b)
    report = verify_algorithm(
        alg, sources=b.inputs(), destinations=b.outputs()
    )
    print("verification:", report.summary())
    assert report.ok

    src, dst = (0, 1), (4, 2)
    paths = realizable_node_paths(alg, src, dst)
    print(f"\n{src} -> {dst}: {len(paths)} realizable minimal paths "
          f"(= all {len(minimal_node_paths(b, src, dst))} of them)")
    for p in sorted(paths):
        print("  " + " -> ".join(f"L{l}r{r}" for l, r in p))

    print("\nrandom input->output traffic at lambda = 0.9, Benes(4):")
    big = BenesNetwork(4)
    results = {}
    for cls in (BenesAdaptiveRouting, BenesObliviousRouting):
        inj = DynamicInjection(
            0.9, BenesTraffic(big), make_rng(5), duration=400, warmup=100
        )
        res = PacketSimulator(cls(big), inj).run()
        results[cls.__name__] = res
        print(f"  {cls.__name__:24s}: L_avg={res.l_avg:6.2f} "
              f"L_max={res.l_max:3d}  I_r={100 * res.injection_rate:.0f}%")

    print("\nNote the tie — and why it is interesting: the straight"
          "\noblivious choice keeps the free half conflict-free (rows stay"
          "\ndistinct), so greedy adaptivity has nothing to fix; Benes"
          "\ncongestion lives entirely in the forced half, which both"
          "\nschemes share.  Contrast with the cube/mesh ablations, where"
          "\nthe oblivious restriction costs 2-4x.  Beating the greedy"
          "\nschemes here needs global path configuration (the classic"
          "\nBenes looping algorithm) — beyond any local routing function.")


if __name__ == "__main__":
    main()
