"""On-demand state snapshots of a running simulator.

These are pull-style companions to the push-style event log: given a
live engine (reference or compiled — both expose the same ``central``
/ ``inj`` / link-buffer state), they answer "what does the network
look like *right now*?".

* :func:`queue_occupancy_snapshot` — occupancy of every central queue;
* :func:`wait_for_graph` — the directed wait-for graph over central
  queues (``q -> q'`` when a packet in ``q`` wants ``q'`` and ``q'``
  is full), the store-and-forward deadlock witness of the paper's
  Section 2 buffer-graph argument;
* :func:`find_wait_cycle` — a directed cycle in that graph, if any.

The deadlock watchdog (:mod:`repro.faults.watchdog`) delegates its
wait-for-cycle extraction here, so the same snapshot is available to
interactive diagnosis without constructing a watchdog.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from ..core.queues import QueueId


def queue_occupancy_snapshot(sim) -> dict[tuple[Hashable, str], int]:
    """Current occupancy of every central queue, keyed ``(node, kind)``."""
    out: dict[tuple[Hashable, str], int] = {}
    for u in sim.nodes:
        for kind, q in sim.central[u].items():
            out[(u, kind)] = len(q)
    return out


def wait_for_graph(
    sim, dead_nodes: frozenset = frozenset()
) -> "nx.DiGraph":
    """Wait-for graph over central queues.

    Edge ``q -> q'`` when some packet at the current head state of
    ``q`` has ``q'`` among its allowed continuations and ``q'`` is
    full.  A directed cycle here is the classic store-and-forward
    deadlock witness.  ``dead_nodes`` (from a live fault set) are
    excluded: their packets are frozen, not waiting.
    """
    alg = sim.algorithm
    cap = sim.central_capacity
    g = nx.DiGraph()
    for u in sim.nodes:
        if u in dead_nodes:
            continue
        for kind, q in sim.central[u].items():
            q_id = QueueId(u, kind)
            for msg in q:
                for q2 in alg.hops(q_id, msg.dst, msg.state):
                    if not q2.is_central or q2 == q_id:
                        continue
                    target = sim.central.get(q2.node, {}).get(q2.kind)
                    if target is not None and len(target) >= cap:
                        g.add_edge(q_id, q2)
    return g


def find_wait_cycle(
    sim, dead_nodes: frozenset = frozenset()
) -> tuple[QueueId, ...] | None:
    """A directed cycle in :func:`wait_for_graph`, or None."""
    g = wait_for_graph(sim, dead_nodes)
    try:
        cyc = nx.find_cycle(g)
    except (nx.NetworkXNoCycle, nx.NetworkXError):
        return None
    return tuple(e[0] for e in cyc)
