"""Serialization of a finished run's telemetry.

Three formats plus a one-call bundle:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# TYPE`` headers, cumulative ``_bucket{le=...}`` histogram
  series), scrape-ready;
* :func:`occupancy_csv` — the per-queue occupancy time series as CSV
  (``cycle,node,kind,occupancy``; node ids are quoted as needed);
* :func:`summary_json` — the probe's summary dict as strict JSON
  (NaN/inf sanitized to null);
* :func:`write_artifacts` — writes everything a probe collected into
  a directory (``events.jsonl`` / ``metrics.prom`` / ``occupancy.csv``
  / ``summary.json``) and returns the paths.
"""

from __future__ import annotations

import csv
import io
import json
import math
from pathlib import Path

_PROM_TYPES = {"counter": "counter", "gauge": "gauge", "histogram": "histogram"}


def _fmt(value) -> str:
    """Prometheus sample value: integers bare, floats via repr."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        return repr(value)
    return str(value)


def _label_str(pairs) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def prometheus_text(registry) -> str:
    """Render a :class:`MetricRegistry` in the text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()
    for metric in registry:
        if metric.name not in typed:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {_PROM_TYPES[metric.kind]}")
            typed.add(metric.name)
        labels = tuple(metric.labels)
        if metric.kind == "histogram":
            for bound, cum in metric.cumulative():
                le = "+Inf" if math.isinf(bound) else _fmt(bound)
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_label_str(labels + (('le', le),))} {cum}"
                )
            lines.append(
                f"{metric.name}_sum{_label_str(labels)} {_fmt(metric.sum)}"
            )
            lines.append(
                f"{metric.name}_count{_label_str(labels)} {metric.count}"
            )
        else:
            lines.append(
                f"{metric.name}{_label_str(labels)} {_fmt(metric.value)}"
            )
    return "\n".join(lines) + "\n"


def occupancy_csv(series) -> str:
    """``(cycle, node, kind, occupancy)`` rows as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["cycle", "node", "kind", "occupancy"])
    for cycle, node, kind, occ in series:
        writer.writerow([cycle, str(node), kind, occ])
    return buf.getvalue()


def _strict(value):
    """Deep-copy with NaN/inf floats replaced by None (strict JSON)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _strict(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_strict(v) for v in value]
    return value


def summary_json(summary: dict) -> str:
    """A probe summary as pretty, strict JSON."""
    return (
        json.dumps(_strict(summary), indent=2, sort_keys=True, allow_nan=False)
        + "\n"
    )


def write_artifacts(probe, outdir, prefix: str = "") -> dict[str, Path]:
    """Write everything ``probe`` collected into ``outdir``.

    Returns ``{"events": ..., "metrics": ..., "occupancy": ...,
    "summary": ...}`` with the paths actually written (keys for
    artifacts the probe did not collect are absent).
    """
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    paths: dict[str, Path] = {}
    if probe.log is not None:
        p = outdir / f"{prefix}events.jsonl"
        p.write_text(probe.log.to_jsonl())
        paths["events"] = p
    p = outdir / f"{prefix}metrics.prom"
    p.write_text(prometheus_text(probe.registry))
    paths["metrics"] = p
    if probe.series_enabled:
        p = outdir / f"{prefix}occupancy.csv"
        p.write_text(occupancy_csv(probe.occupancy_series))
        paths["occupancy"] = p
    if probe.summary is not None:
        p = outdir / f"{prefix}summary.json"
        p.write_text(summary_json(probe.summary))
        paths["summary"] = p
    return paths
