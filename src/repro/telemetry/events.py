"""The structured event log (schema v1).

Engines with an attached sink (see ``PacketSimulator._events``) append
one small tuple per packet movement; this module owns the schema, the
canonical ordering, and the JSONL serialization.

Raw tuples all start ``(kind, cycle, uid, ...)``:

====================  ====================================================
``("inject",  c, uid, node, dst)``        packet entered its injection queue
``("enqueue", c, uid, node, queue)``      packet entered central queue
                                          ``queue`` at ``node`` (arrival,
                                          entry fold, internal phase move,
                                          degenerate self-hop, or a fault
                                          retraction)
``("hop",     c, uid, u, v, cls, dyn, queue)``  packet dispatched into the
                                          output buffer of link ``u -> v``
                                          (buffer class ``cls``; ``dyn``
                                          True iff the hop rode a dynamic
                                          link), heading for ``queue`` at
                                          ``v``
``("deliver", c, uid, node, latency)``    packet entered the delivery queue
``("drop",    c, uid, node, reason)``     packet lost (e.g. inside a node
                                          that just died)
``("epoch",   c, -1,  desc)``             the live fault set changed
====================  ====================================================

**Canonical order.**  The reference engine assigns buffers buffer-major
and the compiled engine message-major, so their *emission* orders can
interleave packets differently within a cycle even though every
packet's own movement sequence is identical.  :meth:`EventLog.canonical`
stable-sorts by ``(cycle, uid)``, which collapses both emissions onto
one order — this is what makes the serialized log byte-identical
across engines at equal seeds (``tests/test_telemetry_identity.py``).

**Serialization.**  One JSON object per line, keys sorted, no
whitespace, nodes converted tuples→lists; ``read_jsonl`` reverses the
node conversion.  Every record carries ``"v": 1``; consumers must
reject newer majors.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Iterator

#: Version of the serialized record schema.
SCHEMA_VERSION = 1

#: Every event kind, in no particular order.
EVENT_KINDS = ("inject", "enqueue", "hop", "deliver", "drop", "epoch")


def _jsonable(node: Any) -> Any:
    """Topology node ids as JSON values (tuples become lists)."""
    if isinstance(node, tuple):
        return [_jsonable(x) for x in node]
    return node


def _nodeify(value: Any) -> Any:
    """Reverse of :func:`_jsonable` (lists become tuples)."""
    if isinstance(value, list):
        return tuple(_nodeify(x) for x in value)
    return value


def _to_record(ev: tuple) -> dict:
    kind, cycle, uid = ev[0], ev[1], ev[2]
    rec: dict = {"v": SCHEMA_VERSION, "kind": kind, "cycle": cycle}
    if kind == "inject":
        rec.update(uid=uid, node=_jsonable(ev[3]), dst=_jsonable(ev[4]))
    elif kind == "enqueue":
        rec.update(uid=uid, node=_jsonable(ev[3]), queue=ev[4])
    elif kind == "hop":
        rec.update(
            uid=uid,
            src=_jsonable(ev[3]),
            node=_jsonable(ev[4]),
            cls=ev[5],
            dyn=bool(ev[6]),
            queue=ev[7],
        )
    elif kind == "deliver":
        rec.update(uid=uid, node=_jsonable(ev[3]), latency=ev[4])
    elif kind == "drop":
        rec.update(uid=uid, node=_jsonable(ev[3]), reason=ev[4])
    elif kind == "epoch":
        rec.update(desc=ev[3])
    else:  # pragma: no cover - emission sites are closed-world
        raise ValueError(f"unknown event kind {kind!r}")
    return rec


class EventLog:
    """Accumulates raw engine events and serializes them.

    ``raw`` is a plain list so engines can append tuples with zero
    indirection (``sim._events = log.raw``).
    """

    def __init__(self) -> None:
        self.raw: list[tuple] = []

    def __len__(self) -> int:
        return len(self.raw)

    def canonical(self) -> list[tuple]:
        """Events stable-sorted by ``(cycle, uid)`` (engine-invariant)."""
        return sorted(self.raw, key=lambda ev: (ev[1], ev[2]))

    def records(self) -> list[dict]:
        """Canonical events as schema-v1 dicts."""
        return [_to_record(ev) for ev in self.canonical()]

    def to_jsonl(self) -> str:
        """The whole log as canonical JSONL text."""
        return events_jsonl(self.records())

    def counts(self) -> dict[str, int]:
        """Events per kind (diagnostics, tests)."""
        out: dict[str, int] = {}
        for ev in self.raw:
            out[ev[0]] = out.get(ev[0], 0) + 1
        return out

    def timelines(self) -> dict[int, list[dict]]:
        """Per-packet record sequences, keyed by uid (epochs excluded)."""
        out: dict[int, list[dict]] = {}
        for rec in self.records():
            uid = rec.get("uid")
            if uid is not None and uid >= 0:
                out.setdefault(uid, []).append(rec)
        return out


def events_jsonl(records: Iterable[dict]) -> str:
    """Serialize records deterministically: sorted keys, no whitespace."""
    lines = [
        json.dumps(rec, sort_keys=True, separators=(",", ":"))
        for rec in records
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def read_jsonl(text: str) -> Iterator[dict]:
    """Parse JSONL back into records (node lists become tuples again).

    Raises ``ValueError`` on a schema major this reader does not know.
    """
    for line in text.splitlines():
        if not line.strip():
            continue
        rec = json.loads(line)
        if rec.get("v") != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported event schema v{rec.get('v')!r} "
                f"(reader speaks v{SCHEMA_VERSION})"
            )
        for key in ("node", "dst", "src"):
            if key in rec:
                rec[key] = _nodeify(rec[key])
        yield rec
