"""Unified observability for the packet engines.

The paper's central objects — the central queues ``qA``/``qB``, the
per-link static/dynamic buffers, and the queue dependency graph
(Sections 2–6) — are exactly the things worth *watching* while a
simulation runs.  This package turns them into first-class signals
shared by the reference engine, the compiled engine, and fault-injected
runs:

* :mod:`~repro.telemetry.registry` — counters, gauges, and streaming
  histograms behind a :class:`MetricRegistry`; a disabled registry
  hands out no-op metrics, so instrumented code needs no guards;
* :mod:`~repro.telemetry.events` — the versioned structured event log
  (inject / enqueue / hop / deliver / drop / fault-epoch) engines feed
  through their ``_events`` sink, with canonical ordering and JSONL
  serialization that is byte-identical across engines at equal seeds;
* :mod:`~repro.telemetry.probe` — :class:`TelemetryProbe`, the engine
  observer that samples per-queue occupancy each cycle, watches fault
  epochs, and folds everything into ``SimulationResult.telemetry``;
* :mod:`~repro.telemetry.snapshots` — on-demand state snapshots (queue
  occupancy, the wait-for graph the deadlock watchdog reuses);
* :mod:`~repro.telemetry.exporters` — Prometheus text format, CSV
  occupancy time series, JSON summaries, and the one-call
  :func:`write_artifacts`.

See ``docs/OBSERVABILITY.md`` for the metric catalogue and the event
schema.
"""

from .events import SCHEMA_VERSION, EventLog, events_jsonl, read_jsonl
from .exporters import (
    occupancy_csv,
    prometheus_text,
    summary_json,
    write_artifacts,
)
from .probe import TelemetryProbe
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NULL_METRIC,
)
from .snapshots import (
    find_wait_cycle,
    queue_occupancy_snapshot,
    wait_for_graph,
)

__all__ = [
    "SCHEMA_VERSION",
    "EventLog",
    "events_jsonl",
    "read_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_METRIC",
    "TelemetryProbe",
    "prometheus_text",
    "occupancy_csv",
    "summary_json",
    "write_artifacts",
    "wait_for_graph",
    "find_wait_cycle",
    "queue_occupancy_snapshot",
]
