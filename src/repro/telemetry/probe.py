"""The engine observer that ties the telemetry layer together.

:class:`TelemetryProbe` plugs into any engine exposing the
``add_observer`` interface (the reference and compiled simulators; the
specialized fast engine deliberately has no observer loop) and

* installs an event sink (``sim._events``) the engine feeds raw event
  tuples through — a full :class:`~repro.telemetry.events.EventLog`
  when ``events=True``, or a streaming metrics-only sink (O(1) memory)
  when ``events=False``;
* samples per-queue occupancy every ``occupancy_every`` cycles into a
  histogram and, optionally, a ``(cycle, node, kind, occupancy)`` time
  series for the CSV exporter;
* watches the live fault state (``sim.dead_nodes`` /
  ``sim.blocked_links``, owned by the fault injector) and emits
  ``epoch`` events on every change plus ``drop`` events for packets
  frozen inside newly-dead nodes;
* on run end folds everything into a plain-dict summary attached to
  ``SimulationResult.telemetry``.

A probe constructed with ``enabled=False`` attaches a no-op observer
and installs no sink: the engine's per-move cost is one ``is not
None`` check, which is what ``benchmarks/bench_telemetry.py`` bounds
at < 5% of compiled-engine throughput.

Metric names are catalogued in ``docs/OBSERVABILITY.md``.  Of note,
``repro_hops_total{link_type="dynamic"}`` directly measures how often
traffic rides the *dynamic* links of the paper's Section 2 extension
(the fully-adaptive escape-channel construction) rather than the
static ones.
"""

from __future__ import annotations

from typing import Hashable

from .events import SCHEMA_VERSION, EventLog
from .registry import LATENCY_BUCKETS, OCCUPANCY_BUCKETS, MetricRegistry
from .snapshots import find_wait_cycle, wait_for_graph


def _describe_faults(dead: frozenset, blocked: frozenset) -> str:
    """Deterministic one-line description of a fault epoch."""
    if not dead and not blocked:
        return "healthy"
    bits = []
    if dead:
        bits.append("dead_nodes=" + ",".join(sorted(map(str, dead))))
    if blocked:
        bits.append(
            "blocked_links="
            + ",".join(sorted(f"{u}->{v}" for u, v in blocked))
        )
    return ";".join(bits)


class _MetricsSink:
    """Streams raw event tuples straight into registry metrics.

    Used as the engine sink in metrics-only mode (``events=False``) and
    as the replay target when a full event log is folded into metrics
    at run end — one aggregation code path either way.
    """

    __slots__ = (
        "injected",
        "delivered",
        "dropped",
        "hops_static",
        "hops_dynamic",
        "transitions",
        "latency",
        "epochs",
        "_last_kind",
        "_registry",
        "_qos_of",
        "_qos_hists",
    )

    def __init__(self, registry: MetricRegistry, qos_of=None):
        self.injected = registry.counter(
            "repro_packets_injected_total",
            help="Packets that entered an injection queue",
        )
        self.delivered = registry.counter(
            "repro_packets_delivered_total",
            help="Packets that reached their delivery queue",
        )
        self.dropped = registry.counter(
            "repro_packets_dropped_total",
            help="Packets frozen inside nodes that went down",
        )
        self.hops_static = registry.counter(
            "repro_hops_total",
            labels={"link_type": "static"},
            help="Link traversals, split by static vs dynamic links",
        )
        self.hops_dynamic = registry.counter(
            "repro_hops_total", labels={"link_type": "dynamic"}
        )
        self.transitions = registry.counter(
            "repro_phase_transitions_total",
            help="Central-queue class changes (e.g. the A->B phase flip)",
        )
        self.latency = registry.histogram(
            "repro_latency_cycles",
            LATENCY_BUCKETS,
            help="Injection-to-delivery latency in routing cycles",
        )
        self.epochs = registry.counter(
            "repro_fault_epochs_total",
            help="Observed changes of the live fault set",
        )
        self._last_kind: dict[int, str] = {}
        # Service-class latency: ``qos_of(uid)`` resolves (and may
        # forget) a delivered packet's class; one labeled histogram
        # per class, created on first delivery.
        self._registry = registry
        self._qos_of = qos_of
        self._qos_hists: dict[str, object] = {}

    def append(self, ev: tuple) -> None:
        kind = ev[0]
        if kind == "hop":
            (self.hops_dynamic if ev[6] else self.hops_static).inc()
            self._track(ev[2], ev[7])
        elif kind == "enqueue":
            self._track(ev[2], ev[4])
        elif kind == "inject":
            self.injected.inc()
        elif kind == "deliver":
            self.delivered.inc()
            self.latency.observe(ev[4])
            if self._qos_of is not None:
                qos = self._qos_of(ev[2])
                if qos is not None:
                    hist = self._qos_hists.get(qos)
                    if hist is None:
                        hist = self._qos_hists[qos] = (
                            self._registry.histogram(
                                "repro_qos_latency_cycles",
                                LATENCY_BUCKETS,
                                labels={"qos": qos},
                                help=(
                                    "Injection-to-delivery latency per "
                                    "service class (repro.serve)"
                                ),
                            )
                        )
                    hist.observe(ev[4])
            self._last_kind.pop(ev[2], None)
        elif kind == "drop":
            self.dropped.inc()
        elif kind == "epoch":
            self.epochs.inc()

    def _track(self, uid: int, kind: str) -> None:
        last = self._last_kind.get(uid)
        if last is not None and last != kind:
            self.transitions.inc()
        self._last_kind[uid] = kind


class TelemetryProbe:
    """One run's worth of instrumentation, attached via ``attach(sim)``.

    Parameters
    ----------
    registry:
        Metric registry to populate; a fresh one is created by default.
    events:
        Record the full structured event log (memory proportional to
        traffic).  ``False`` keeps only streaming metrics — the right
        mode for sweeps.
    series:
        Collect the per-queue occupancy time series (for the CSV
        exporter).  Defaults to ``events``.
    occupancy_every:
        Occupancy sampling stride in cycles.
    enabled:
        ``False`` turns the whole probe into a no-op observer (the
        disabled-overhead configuration the perf benchmark measures).
    qos_of:
        Optional ``uid -> service class`` resolver (may pop its entry:
        it is called exactly once per delivered packet).  When set,
        delivery latency is additionally observed into
        ``repro_qos_latency_cycles{qos=...}`` — the per-class latency
        the serving layer (`repro.serve`) exposes on ``/metrics``.
    """

    def __init__(
        self,
        registry: MetricRegistry | None = None,
        events: bool = True,
        series: bool | None = None,
        occupancy_every: int = 1,
        enabled: bool = True,
        qos_of=None,
    ):
        self.enabled = enabled
        self.events = events and enabled
        self.series_enabled = (
            self.events if series is None else (series and enabled)
        )
        self.occupancy_every = occupancy_every
        self.registry = (
            registry if registry is not None else MetricRegistry(enabled)
        )
        self.qos_of = qos_of if enabled else None
        self.log: EventLog | None = EventLog() if self.events else None
        self.occupancy_series: list[tuple[int, Hashable, str, int]] = []
        self.summary: dict | None = None
        self.sim = None
        self._sink: _MetricsSink | None = None
        self._dead: frozenset = frozenset()
        self._blocked: frozenset = frozenset()
        self._n_links = 0
        self._occ_hist = None
        self._inflight = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, sim) -> "TelemetryProbe":
        """Register with ``sim`` and install the event sink."""
        sim.add_observer(self)
        self.sim = sim
        if not self.enabled:
            return self
        self._n_links = len(sim.link_classes)
        self._dead = sim.dead_nodes
        self._blocked = sim.blocked_links
        if self.events:
            sim._events = self.log.raw
        else:
            self._sink = _MetricsSink(self.registry, qos_of=self.qos_of)
            sim._events = self._sink
        self._occ_hist = self.registry.histogram(
            "repro_queue_occupancy",
            OCCUPANCY_BUCKETS,
            help="Central-queue occupancy samples (capacity default 5)",
        )
        self._inflight = self.registry.gauge(
            "repro_packets_in_flight",
            help="Injected-but-undelivered packets at last sample",
        )
        return self

    # ------------------------------------------------------------------
    # Observer hooks
    # ------------------------------------------------------------------
    def on_cycle(self, sim, cycle: int) -> None:
        if not self.enabled:
            return
        dead = sim.dead_nodes
        blocked = sim.blocked_links
        # The fault injector installs fresh frozensets per epoch, so an
        # identity check is enough to notice a transition cheaply.
        if dead is not self._dead or blocked is not self._blocked:
            self._epoch_change(sim, cycle, dead, blocked)
        if cycle % self.occupancy_every == 0:
            self._sample(sim, cycle)

    def on_run_end(self, sim, result) -> None:
        if not self.enabled:
            return
        if self.events:
            # Fold the recorded log into metrics through the same sink
            # the streaming mode uses.
            sink = _MetricsSink(self.registry, qos_of=self.qos_of)
            for ev in self.log.raw:
                sink.append(ev)
        reg = self.registry
        static = reg.counter(
            "repro_hops_total", labels={"link_type": "static"}
        ).value
        dynamic = reg.counter(
            "repro_hops_total", labels={"link_type": "dynamic"}
        ).value
        total_hops = static + dynamic
        cycles = result.cycles
        # Each directed (link, class) buffer can carry one packet per
        # cycle; utilization is delivered hops over that ceiling.
        util = (
            total_hops / (self._n_links * cycles)
            if cycles and self._n_links
            else 0.0
        )
        dyn_frac = dynamic / total_hops if total_hops else 0.0
        reg.gauge(
            "repro_link_utilization",
            help="Hops per directed link per cycle",
        ).set(util)
        reg.gauge(
            "repro_dynamic_hop_fraction",
            help="Fraction of hops on dynamic links (Section 2 extension)",
        ).set(dyn_frac)
        reg.gauge("repro_cycles_total", help="Routing cycles run").set(
            cycles
        )
        # Routing-structure compilation cost + memory footprint: the
        # vector engine carries integer tables, the compiled engine a
        # plan cache; either may be absent on other engines.
        compile_stats = {}
        tables = getattr(sim, "tables", None)
        if tables is not None and hasattr(tables, "memory_bytes"):
            reg.gauge(
                "repro_tables_compile_seconds",
                help="Integer routing-table construction time",
            ).set(tables.compile_seconds)
            reg.gauge(
                "repro_tables_rows",
                help="Packed integer hop rows materialized",
            ).set(tables.rows_packed)
            reg.gauge(
                "repro_tables_bytes",
                help="Integer routing-table memory footprint",
            ).set(tables.memory_bytes())
            compile_stats = {
                "kind": "tables",
                "kernel": tables.kernel is not None,
                "compile_seconds": tables.compile_seconds,
                "rows": tables.rows_packed,
                "bytes": tables.memory_bytes(),
            }
        plans = getattr(sim, "plan_cache", None)
        if plans is not None and hasattr(plans, "memory_bytes"):
            reg.gauge(
                "repro_plan_cache_entries",
                help="Memoized symbolic routing plans",
            ).set(plans.size)
            reg.gauge(
                "repro_plan_cache_bytes",
                help="Plan-cache memory footprint (shallow estimate)",
            ).set(plans.memory_bytes())
            compile_stats = {
                "kind": "plan_cache",
                "entries": plans.size,
                "bytes": plans.memory_bytes(),
            }
        occ = self._occ_hist
        lat = reg.histogram("repro_latency_cycles", LATENCY_BUCKETS)
        self.summary = {
            "schema": SCHEMA_VERSION,
            "engine": type(sim).__name__,
            "algorithm": result.algorithm,
            "topology": result.topology,
            "cycles": cycles,
            "injected": result.injected,
            "delivered": result.delivered,
            "hops": {
                "static": static,
                "dynamic": dynamic,
                "total": total_hops,
                "dynamic_fraction": dyn_frac,
            },
            "link_utilization": util,
            "phase_transitions": reg.counter(
                "repro_phase_transitions_total"
            ).value,
            "latency": {
                "count": lat.count,
                "mean": lat.mean if lat.count else None,
                "min": lat.min,
                "max": lat.max,
            },
            "occupancy": {
                "samples": occ.count,
                "mean": occ.mean if occ.count else None,
                "peak": occ.max if occ.count else 0,
            },
            "drops": reg.counter("repro_packets_dropped_total").value,
            "fault_epochs": reg.counter("repro_fault_epochs_total").value,
            "routing_compile": compile_stats or None,
            "events": self.log.counts() if self.events else None,
            "metrics": reg.snapshot(),
        }
        result.telemetry = self.summary

    # ------------------------------------------------------------------
    # Snapshots (delegate to repro.telemetry.snapshots)
    # ------------------------------------------------------------------
    def wait_graph(self):
        """Wait-for graph of the attached simulator, right now."""
        return wait_for_graph(self.sim, self.sim.dead_nodes)

    def wait_cycle(self):
        """Wait-for cycle of the attached simulator, if any."""
        return find_wait_cycle(self.sim, self.sim.dead_nodes)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _epoch_change(self, sim, cycle, dead, blocked) -> None:
        if dead != self._dead or blocked != self._blocked:
            sink = sim._events
            if sink is not None:
                sink.append(
                    ("epoch", cycle, -1, _describe_faults(dead, blocked))
                )
                new_dead = dead - self._dead
                if new_dead:
                    self._emit_drops(sim, cycle, new_dead, sink)
        self._dead = dead
        self._blocked = blocked

    def _emit_drops(self, sim, cycle, new_dead, sink) -> None:
        """Packets frozen inside nodes that just died.

        A transient fault may later release them, so a ``drop`` marks
        "lost as of this epoch", which is how the watchdog's
        ``frozen`` classification reads too.  Scan order is the
        engine's own structure order, so both engines emit identically.
        """
        for u in sim.nodes:
            if u not in new_dead:
                continue
            for q in sim.central[u].values():
                for msg in q:
                    sink.append(("drop", cycle, msg.uid, u, "node-down"))
            msg = sim.inj[u]
            if msg is not None:
                sink.append(("drop", cycle, msg.uid, u, "node-down"))
            for key in sim.in_keys[u]:
                msg = sim.in_buf[key]
                if msg is not None:
                    sink.append(("drop", cycle, msg.uid, u, "node-down"))

    def _sample(self, sim, cycle: int) -> None:
        occ_hist = self._occ_hist
        series = self.occupancy_series if self.series_enabled else None
        for u in sim.nodes:
            for kind, q in sim.central[u].items():
                occ = len(q)
                occ_hist.observe(occ)
                if series is not None:
                    series.append((cycle, u, kind, occ))
        self._inflight.set(sim.active)
