"""Metric primitives and the registry that owns them.

Three metric types cover everything the engines report:

* :class:`Counter` — monotonically increasing totals (hops, drops,
  fault epochs);
* :class:`Gauge` — last-written instantaneous values (packets in
  flight, current cycle);
* :class:`Histogram` — streaming fixed-bucket histograms in the
  Prometheus style (cumulative ``le`` buckets plus ``sum``/``count``),
  with running min/max so peaks survive aggregation.

A :class:`MetricRegistry` constructed with ``enabled=False`` hands out
the shared :data:`NULL_METRIC`, whose mutators are no-ops — call sites
never need an ``if telemetry:`` guard, and the disabled path costs one
attribute load.

Metrics are keyed by ``(name, labels)`` so one name can carry several
label sets (``repro_hops_total{link_type="static"}`` vs ``"dynamic"``),
matching how the Prometheus exporter groups them.
"""

from __future__ import annotations

from typing import Iterable, Iterator

#: Default latency buckets (routing cycles).
LATENCY_BUCKETS = (2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000)

#: Default central-queue occupancy buckets (paper capacity is 5).
OCCUPANCY_BUCKETS = (0, 1, 2, 3, 4, 5, 8, 16)


class Counter:
    """Monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: tuple = (), help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """Instantaneous value (last write wins)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: tuple = (), help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Streaming fixed-bucket histogram (Prometheus-style).

    ``buckets`` are upper bounds; every observation lands in the first
    bucket whose bound is >= the value, or in the implicit ``+Inf``
    overflow.  Stores only per-bucket counts plus running sum / count /
    min / max, so memory is O(buckets) regardless of traffic.
    """

    kind = "histogram"
    __slots__ = (
        "name",
        "labels",
        "help",
        "buckets",
        "counts",
        "sum",
        "count",
        "min",
        "max",
    )

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = LATENCY_BUCKETS,
        labels: tuple = (),
        help: str = "",
    ):
        self.name = name
        self.labels = labels
        self.help = help
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)  # + the +Inf bucket
        self.sum = 0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: int | float) -> None:
        i = 0
        for bound in self.buckets:
            if value <= bound:
                break
            i += 1
        self.counts[i] += 1
        self.sum += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_many(self, value: int | float, count: int) -> None:
        """Record ``count`` identical observations in one update.

        Exactly equivalent to calling :meth:`observe` ``count`` times;
        used by the vector engine's bulk occupancy sampling.
        """
        if count <= 0:
            return
        i = 0
        for bound in self.buckets:
            if value <= bound:
                break
            i += 1
        self.counts[i] += count
        self.sum += value * count
        self.count += count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus ``le`` series: (bound, cumulative count) pairs,
        ending with ``(inf, total)``."""
        out, running = [], 0
        for bound, c in zip(self.buckets, self.counts):
            running += c
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }


class _NullMetric:
    """No-op stand-in handed out by a disabled registry."""

    kind = "null"
    name = ""
    labels: tuple = ()
    help = ""
    value = 0
    sum = 0
    count = 0
    min = None
    max = None
    mean = float("nan")

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: int | float) -> None:
        pass

    def observe(self, value: int | float) -> None:
        pass

    def observe_many(self, value: int | float, count: int) -> None:
        pass

    def snapshot(self) -> dict:
        return {"type": "null"}


#: The shared no-op metric (all mutators do nothing).
NULL_METRIC = _NullMetric()


def _label_key(labels: dict | None) -> tuple:
    return tuple(sorted(labels.items())) if labels else ()


class MetricRegistry:
    """Owns every metric of one instrumented run.

    ``counter`` / ``gauge`` / ``histogram`` create on first use and
    return the existing instance afterwards (re-registration with a
    different type raises).  With ``enabled=False`` every accessor
    returns :data:`NULL_METRIC` and nothing is ever stored.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: dict[tuple[str, tuple], object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator:
        """Metrics sorted by (name, labels) — the exporter order."""
        return iter(
            m for _k, m in sorted(self._metrics.items(), key=lambda kv: kv[0])
        )

    def _get(self, cls, name: str, labels: dict | None, **kwargs):
        if not self.enabled:
            return NULL_METRIC
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls(
                name, labels=key[1], **kwargs
            )
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(
        self, name: str, labels: dict | None = None, help: str = ""
    ) -> Counter:
        return self._get(Counter, name, labels, help=help)

    def gauge(
        self, name: str, labels: dict | None = None, help: str = ""
    ) -> Gauge:
        return self._get(Gauge, name, labels, help=help)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = LATENCY_BUCKETS,
        labels: dict | None = None,
        help: str = "",
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets, help=help)

    def snapshot(self) -> dict:
        """Plain-dict dump (picklable; used by summaries and tests)."""
        out: dict[str, dict] = {}
        for metric in self:
            label_txt = ",".join(f"{k}={v}" for k, v in metric.labels)
            key = f"{metric.name}{{{label_txt}}}" if label_txt else metric.name
            out[key] = metric.snapshot()
        return out
