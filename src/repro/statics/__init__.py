"""Static deadlock-freedom analysis (no simulation cycles).

Lowers any :class:`~repro.core.routing_function.RoutingAlgorithm` (or
worm-hole scheme, or fault-epoch adapter) onto its complete queue /
channel dependency graph, checks the paper's Section-2 conditions plus
the Mendlovic–Matias existence condition for arbitrary digraphs, and on
failure emits minimal, machine-readable cycle witnesses.  The ``repro
lint`` CLI sweeps every registered instance as a CI gate.
"""

from .analyzer import StaticAnalysis, analyze_algorithm, analyze_wormhole
from .existence import ExistenceReport, deadlock_free_routing_exists
from .lint import LintFinding, run_determinism_lint
from .registry import LintTarget, lint_targets
from .report import to_json_report, to_sarif
from .synthesis import SynthesizedRouting, synthesize_routing
from .witness import CycleWitness, WitnessRow, cycle_witness

__all__ = [
    "CycleWitness",
    "ExistenceReport",
    "LintFinding",
    "LintTarget",
    "StaticAnalysis",
    "SynthesizedRouting",
    "WitnessRow",
    "analyze_algorithm",
    "analyze_wormhole",
    "cycle_witness",
    "deadlock_free_routing_exists",
    "lint_targets",
    "run_determinism_lint",
    "synthesize_routing",
    "to_json_report",
    "to_sarif",
]
