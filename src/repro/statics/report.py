"""Machine-readable reports for the static analyzer.

Two formats:

* :func:`to_json_report` — the native schema
  (``repro-static-analysis/1``): one record per analyzed instance with
  flags, stats, and full witness rows.
* :func:`to_sarif` — a SARIF 2.1.0 document (the static-analysis
  interchange format CI systems ingest): one ``result`` per refuted
  instance and per determinism-lint finding, witnesses rendered into
  the message and kept verbatim under ``properties``.
"""

from __future__ import annotations

from typing import Any, Iterable

from .analyzer import StaticAnalysis
from .lint import LintFinding

SCHEMA = "repro-static-analysis/1"
SARIF_VERSION = "2.1.0"
TOOL_NAME = "repro-lint"


def to_json_report(
    analyses: Iterable[StaticAnalysis],
    findings: Iterable[LintFinding] = (),
    expectations: dict[str, str] | None = None,
) -> dict[str, Any]:
    """The native JSON report.

    ``expectations`` maps registry keys to ``"pass"``/``"fail"`` so the
    report distinguishes a broken gate from a registered negative
    example that failed exactly as intended.
    """
    from .registry import gate_ok as _gate_ok

    expectations = expectations or {}
    records = []
    all_ok = True
    for a in analyses:
        rec = a.to_dict()
        expect = expectations.get(rec["name"], "pass")
        ok = _gate_ok(a, expect)
        rec["expect"] = expect
        rec["gate_ok"] = ok
        all_ok = all_ok and ok
        records.append(rec)
    lint = [f.to_dict() for f in findings]
    all_ok = all_ok and not lint
    return {
        "schema": SCHEMA,
        "gate_ok": all_ok,
        "instances": records,
        "determinism_findings": lint,
    }


def _sarif_rule(rule_id: str, description: str) -> dict[str, Any]:
    return {
        "id": rule_id,
        "shortDescription": {"text": description},
    }


def to_sarif(
    analyses: Iterable[StaticAnalysis],
    findings: Iterable[LintFinding] = (),
    expectations: dict[str, str] | None = None,
) -> dict[str, Any]:
    """A SARIF 2.1.0 document over the same evidence.

    Registered negative examples that fail as expected are reported at
    ``"note"`` level (the gate is green); unexpected refutations are
    ``"error"``.
    """
    expectations = expectations or {}
    results: list[dict[str, Any]] = []
    for a in analyses:
        if a.certified:
            continue
        expect = expectations.get(a.name, "pass")
        level = "error" if expect == "pass" else "note"
        message = f"{a.name} is not statically deadlock-free"
        if a.witnesses:
            message += ": " + "; ".join(w.describe() for w in a.witnesses)
        results.append(
            {
                "ruleId": "deadlock-freedom",
                "level": level,
                "message": {"text": message},
                "properties": {
                    "model": a.model,
                    "topology": a.topology,
                    "expect": expect,
                    "witnesses": [w.to_dict() for w in a.witnesses],
                },
            }
        )
    for f in findings:
        results.append(
            {
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path},
                            "region": {
                                "startLine": f.line,
                                "startColumn": f.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "rules": [
                            _sarif_rule(
                                "deadlock-freedom",
                                "Section-2 static deadlock-freedom "
                                "certification",
                            ),
                            _sarif_rule(
                                "unseeded-rng",
                                "RNG use outside the seeded make_rng "
                                "discipline",
                            ),
                            _sarif_rule(
                                "set-iteration-order",
                                "order-observable iteration over a set "
                                "in a routing hot path",
                            ),
                            _sarif_rule(
                                "observer-api",
                                "engine observer signature drift",
                            ),
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
