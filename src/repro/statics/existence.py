"""Existence of deadlock-free routing on arbitrary digraphs.

Mendlovic & Matias 2025 (PAPERS.md) ask, for an *arbitrary* directed
network: does a deadlock-free routing function serving every reachable
ordered pair exist, and with how many buffers per node?  Within this
repo's proof framework (the paper's Section-2 conditions: a total
static routing function with acyclic QDG, plus escape-disciplined
dynamic links) the question has a clean necessary-and-sufficient
answer, and both directions are constructive:

* **1 central queue class per node suffices iff the graph is acyclic.**

  - *If acyclic*: route fully adaptively over the DAG
    (:func:`~repro.statics.synthesis.synthesize_routing` builds the
    scheme); the QDG inherits the graph's acyclicity.
  - *If cyclic*: no single-class scheme can be certified.  Take ``u``,
    ``v`` distinct nodes of a nontrivial strongly connected component.
    Any total routing function must realize paths ``u -> v`` and
    ``v -> u``; their union is a closed walk, so the used-edge set —
    which *is* the single-class QDG — contains a cycle, violating the
    acyclic-order obligation.  :func:`deadlock_free_routing_exists`
    returns a shortest graph cycle as the witness for this lower bound.

* **2 classes always suffice.**  Per strongly connected component pick
  a hub; class-A queues form an in-tree toward the hub, an internal
  switch at the hub moves messages to class B, class-B queues form an
  out-tree from the hub, and inter-component crossings drop from B
  back to A following the condensation's topological order.  Ranking
  queues by ``(component, class, tree depth)`` strictly increases
  along every hop, so the QDG is acyclic; the synthesizer emits this
  scheme and ``verify_algorithm`` machine-checks it.

Hence ``min_classes(G) = 1`` if ``G`` is acyclic, else ``2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

import networkx as nx

from ..core.qdg import shortest_cycle
from ..topology.base import Topology
from ..topology.graph import DirectedGraph


def as_directed_graph(
    graph: DirectedGraph | Topology | nx.DiGraph | Iterable, name: str = "digraph"
) -> DirectedGraph:
    """Normalize any graph-ish input to a :class:`DirectedGraph`."""
    if isinstance(graph, DirectedGraph):
        return graph
    if isinstance(graph, Topology):
        return DirectedGraph(graph.to_networkx(), name=graph.name)
    if isinstance(graph, nx.DiGraph):
        return DirectedGraph(graph, name=graph.name or name)
    return DirectedGraph(graph, name=name)


@dataclass
class ExistenceReport:
    """Verdict of the existence condition on one digraph."""

    graph: str
    nodes: int
    edges: int
    acyclic: bool
    nontrivial_sccs: int
    #: Minimum central queue classes per node for a certifiable scheme.
    min_classes: int
    #: Number of classes the caller asked about.
    classes: int
    #: Whether a certifiable scheme with ``classes`` classes exists.
    exists: bool
    #: Shortest graph cycle — the witness that one class cannot work.
    cycle: list[tuple[Any, Any]] | None = None
    dropped_self_loops: int = 0

    def summary(self) -> str:
        shape = "acyclic" if self.acyclic else (
            f"cyclic ({self.nontrivial_sccs} nontrivial SCCs)"
        )
        verdict = "exists" if self.exists else "does not exist"
        out = (
            f"{self.graph}: {shape}; deadlock-free routing with "
            f"{self.classes} queue class(es) {verdict} "
            f"(minimum: {self.min_classes})"
        )
        if self.cycle:
            out += "; 1-class obstruction cycle: " + " -> ".join(
                str(u) for u, _v in self.cycle
            ) + f" -> {self.cycle[0][0]}"
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "graph": self.graph,
            "nodes": self.nodes,
            "edges": self.edges,
            "acyclic": self.acyclic,
            "nontrivial_sccs": self.nontrivial_sccs,
            "min_classes": self.min_classes,
            "classes": self.classes,
            "exists": self.exists,
            "cycle": [
                [repr(u), repr(v)] for u, v in self.cycle
            ] if self.cycle else None,
            "dropped_self_loops": self.dropped_self_loops,
        }


def deadlock_free_routing_exists(
    graph: DirectedGraph | Topology | nx.DiGraph | Iterable,
    classes: int = 2,
    name: str = "digraph",
) -> ExistenceReport:
    """Decide the existence condition for ``graph`` with ``classes``
    central queue classes per node.

    Self-loops are dropped (a node reaches itself through its delivery
    queue; they carry no routing demand) and counted in the report.
    """
    if classes < 1:
        raise ValueError("classes must be >= 1")
    topo = as_directed_graph(graph, name=name)
    g = nx.DiGraph()
    g.add_nodes_from(topo.nodes())
    g.add_edges_from(topo.links())
    acyclic = nx.is_directed_acyclic_graph(g)
    nontrivial = sum(
        1 for c in nx.strongly_connected_components(g) if len(c) > 1
    )
    min_classes = 1 if acyclic else 2
    cycle = None if acyclic else shortest_cycle(g)
    return ExistenceReport(
        graph=topo.name,
        nodes=topo.num_nodes,
        edges=sum(len(topo.neighbors(u)) for u in topo.nodes()),
        acyclic=acyclic,
        nontrivial_sccs=nontrivial,
        min_classes=min_classes,
        classes=classes,
        exists=classes >= min_classes,
        cycle=cycle,
        dropped_self_loops=getattr(topo, "_dropped_self_loops", 0),
    )
