"""Whole-network static deadlock-freedom analysis.

One entry point per routing model:

* :func:`analyze_algorithm` — packet (store-and-forward) schemes: one
  shared exploration feeds the Section-2 verifier
  (:func:`repro.core.verification.verify_algorithm`), the dense-id
  lowering of :class:`repro.sim.tables.RoutingTables`, the QDG
  statistics, and — on failure — the minimal cycle witness search.
* :func:`analyze_wormhole` — worm-hole schemes via the extended escape
  channel-dependency graph.

Both return a :class:`StaticAnalysis`, the unit the ``repro lint`` CLI
sweeps and serializes (:mod:`repro.statics.report`).  Not a single
simulation cycle runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from ..core.qdg import build_qdg, explore, qdg_stats
from ..core.routing_function import RoutingAlgorithm
from ..core.verification import VerificationReport, verify_algorithm
from ..wormhole.routing import WormholeScheme
from ..wormhole.verification import (
    WormholeReport,
    extended_escape_cdg,
)
from .witness import CycleWitness, DenseQueueIndex, cycle_witness, wormhole_cycle_witness


@dataclass
class StaticAnalysis:
    """Everything the analyzer proved (or refuted) about one instance."""

    name: str
    model: str  #: "packet" | "wormhole"
    topology: str
    certified: bool
    report: VerificationReport | WormholeReport
    witnesses: list[CycleWitness] = field(default_factory=list)
    stats: dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        tag = "CERTIFIED" if self.certified else "NOT DEADLOCK-FREE"
        out = f"[{tag}] {self.report.summary()}"
        for w in self.witnesses:
            out += f"\n    witness: {w.describe()}"
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "model": self.model,
            "topology": self.topology,
            "certified": self.certified,
            "summary": self.report.summary(),
            "errors": list(self.report.errors),
            "error_total": getattr(
                self.report, "error_total", len(self.report.errors)
            ),
            "witnesses": [w.to_dict() for w in self.witnesses],
            "stats": dict(self.stats),
        }


def analyze_algorithm(
    algorithm: RoutingAlgorithm,
    check_minimal: bool = False,
    check_fully_adaptive: bool = False,
) -> StaticAnalysis:
    """Statically analyze one packet-routing instance.

    Certification means every Section-2 condition holds on the complete
    queue dependency graph; refutation attaches the strongest minimal
    cycle witness available (forced-wait if one exists, else a shortest
    static-order cycle).
    """
    exp = explore(algorithm)
    index = DenseQueueIndex(algorithm)
    report = verify_algorithm(
        algorithm,
        check_minimal=check_minimal,
        check_fully_adaptive=check_fully_adaptive,
        exploration=exp,
    )
    witnesses = list(report.witnesses)
    if not report.deadlock_free and not witnesses:
        # Failure without a static-order cycle (dead ends, escape or
        # level violations): a forced-wait cycle may still exist.
        wit = cycle_witness(algorithm, exp, index)
        if wit is not None:
            witnesses.append(wit)

    qdg = build_qdg(algorithm, include_dynamic=True, exploration=exp)
    stats = qdg_stats(qdg)
    stats["configurations"] = sum(
        len(c) for c in exp.configurations.values()
    )
    if index.tables is not None:
        stats["central_queues"] = index.tables.n_queues
        stats["link_buffer_slots"] = len(index.tables.slot_src)

    return StaticAnalysis(
        name=algorithm.name,
        model="packet",
        topology=algorithm.topology.name,
        certified=report.deadlock_free,
        report=report,
        witnesses=witnesses,
        stats=stats,
    )


def analyze_wormhole(scheme: WormholeScheme) -> StaticAnalysis:
    """Statically analyze one worm-hole scheme via its channel graph.

    Mirrors :func:`repro.wormhole.verification.verify_wormhole_scheme`
    but keeps the extended escape CDG, so a cyclic one yields a minimal
    channel-cycle witness instead of an opaque error string.
    """
    report = WormholeReport(scheme=scheme.name)
    cdg = extended_escape_cdg(scheme, report=report)
    witnesses: list[CycleWitness] = []
    if not nx.is_directed_acyclic_graph(cdg):
        wit = wormhole_cycle_witness(cdg)
        assert wit is not None
        witnesses.append(wit)
        report.fail(
            "escape_cdg_acyclic",
            "extended escape CDG cycle: " + wit.describe(),
        )
    stats = {
        "escape_channels": cdg.number_of_nodes(),
        "escape_dependencies": cdg.number_of_edges(),
    }
    return StaticAnalysis(
        name=scheme.name,
        model="wormhole",
        topology=scheme.topology.name,
        certified=report.deadlock_free,
        report=report,
        witnesses=witnesses,
        stats=stats,
    )
