"""Deliberately broken algorithms the analyzer must catch.

The canonical negative example is *unrestricted minimal adaptive
routing*: one central queue per node, every minimal next hop allowed,
no dynamic links, no dateline/class discipline.  On any topology with
a cycle of minimal routes (a torus ring is the textbook case) its
static QDG is cyclic and — whenever two adjacent nodes are each
other's unique minimal next hop for some pair — the forced-wait graph
is cyclic too, so the analyzer emits a replayable witness
(:mod:`repro.statics.replay` turns it into a real ``DeadlockError``).
"""

from __future__ import annotations

from typing import Any, Hashable

from ..core.queues import QueueId, deliver
from ..core.routing_function import RoutingAlgorithm
from ..topology.base import Topology

#: The single central queue kind of the broken scheme.
KIND = "Q"


class UnrestrictedMinimalRouting(RoutingAlgorithm):
    """Minimal adaptive routing with no deadlock-avoidance structure.

    This is what the paper's schemes would be *without* their queue
    classes and dynamic links: fully adaptive over minimal paths, one
    bounded queue per node, and therefore deadlock-prone on any
    topology whose minimal-route graph has cycles.
    """

    is_minimal = True
    is_fully_adaptive = True

    def __init__(self, topology: Topology):
        super().__init__(topology)
        self.name = f"unrestricted-minimal({topology.name})"

    def central_queue_kinds(self, node: Hashable) -> tuple[str, ...]:
        return (KIND,)

    def _minimal_next(self, u: Hashable, dst: Hashable) -> frozenset[QueueId]:
        topo = self.topology
        d = topo.distance(u, dst)
        return frozenset(
            QueueId(v, KIND)
            for v in topo.neighbors(u)
            if topo.distance(v, dst) == d - 1
        )

    def injection_targets(
        self, src: Hashable, dst: Hashable, state: Any = None
    ) -> frozenset[QueueId]:
        return frozenset({QueueId(src, KIND)})

    def static_hops(
        self, q: QueueId, dst: Hashable, state: Any = None
    ) -> frozenset[QueueId]:
        if q.node == dst:
            return frozenset({deliver(dst)})
        return self._minimal_next(q.node, dst)


def broken_torus(side: int = 5):
    """The acceptance-criteria instance: unrestricted minimal adaptive
    routing on a ``side x side`` torus, no dynamic links."""
    from ..topology.torus import Torus

    return UnrestrictedMinimalRouting(Torus((side, side)))
