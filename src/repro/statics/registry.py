"""Registry of everything ``repro lint`` statically analyzes.

Each :class:`LintTarget` names one concrete instance — a packet
algorithm, a worm-hole scheme, or a fault-epoch adapter — and what the
analyzer is *expected* to conclude.  Known-broken instances (the hung
escape scheme, unrestricted minimal routing) are registered with
``expect="fail"``: the gate is green only when the analyzer refutes
them *and* produces a witness, so the witness machinery itself is under
test on every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

#: The analyzer must certify the instance.
PASS = "pass"
#: The analyzer must refute the instance and attach a cycle witness.
FAIL = "fail"
#: Fault-epoch instances: faults may legitimately break Section-2
#: conditions (the adapter withholds dead escapes — see
#: ``verify_under_faults``), but the analyzer must report *evidence*
#: (errors and, for cyclic QDGs, witnesses), never a silent pass.
DEGRADED = "degraded"


@dataclass(frozen=True)
class LintTarget:
    """One registered instance for the static sweep."""

    key: str  #: Stable CLI name, e.g. ``"torus"``.
    model: str  #: "packet" | "wormhole"
    build: Callable[[], Any]  #: Constructs the algorithm/scheme.
    expect: str = PASS
    note: str = ""

    def analyze(self):
        from .analyzer import analyze_algorithm, analyze_wormhole

        if self.model == "wormhole":
            return analyze_wormhole(self.build())
        return analyze_algorithm(self.build())

    @property
    def gate_ok_when(self) -> str:
        return {
            PASS: "certified",
            FAIL: "refuted with witness",
            DEGRADED: "certified, or refuted with evidence",
        }[self.expect]


def gate_ok(analysis, expect: str) -> bool:
    """Whether one analysis outcome keeps the lint gate green."""
    if expect == PASS:
        return analysis.certified
    if expect == FAIL:
        return not analysis.certified and bool(analysis.witnesses)
    if expect == DEGRADED:
        return analysis.certified or bool(
            analysis.report.errors or analysis.witnesses
        )
    raise ValueError(f"unknown expectation {expect!r}")


def _packet_targets() -> list[LintTarget]:
    from ..routing import (
        CCCAdaptiveRouting,
        HypercubeAdaptiveRouting,
        HypercubeHungRouting,
        HypercubeObliviousRouting,
        Mesh2DAdaptiveRouting,
        ShuffleExchangeRouting,
        StructuredBufferPoolRouting,
        TorusRouting,
    )
    from ..topology import (
        CubeConnectedCycles,
        Hypercube,
        Mesh2D,
        ShuffleExchange,
        Torus,
    )
    from .examples import broken_torus

    return [
        # The five shipped topology/algorithm pairs (Theorems 1-3 and
        # the torus/shuffle-exchange/CCC reconstructions).
        LintTarget(
            "hypercube-adaptive",
            "packet",
            lambda: HypercubeAdaptiveRouting(Hypercube(3)),
        ),
        LintTarget(
            "mesh-adaptive",
            "packet",
            lambda: Mesh2DAdaptiveRouting(Mesh2D(3)),
        ),
        LintTarget("torus", "packet", lambda: TorusRouting(Torus((3, 3)))),
        LintTarget(
            "shuffle-exchange",
            "packet",
            lambda: ShuffleExchangeRouting(ShuffleExchange(3)),
        ),
        LintTarget(
            "ccc", "packet", lambda: CCCAdaptiveRouting(CubeConnectedCycles(3))
        ),
        # Baselines that must also certify.
        LintTarget(
            "hypercube-hung",
            "packet",
            lambda: HypercubeHungRouting(Hypercube(3)),
        ),
        LintTarget(
            "hypercube-oblivious",
            "packet",
            lambda: HypercubeObliviousRouting(Hypercube(3)),
        ),
        LintTarget(
            "buffer-pool",
            "packet",
            lambda: StructuredBufferPoolRouting(Hypercube(3)),
        ),
        # The canonical negative example (acceptance criteria): a
        # forced-wait witness that replays into a real deadlock.
        LintTarget(
            "unrestricted-torus",
            "packet",
            lambda: broken_torus(5),
            expect=FAIL,
            note="minimal adaptive, one queue, no dynamic links",
        ),
    ]


def _wormhole_targets() -> list[LintTarget]:
    from ..topology import Hypercube, Torus
    from ..wormhole.routing import (
        HungEscapeHypercubeWormhole,
        HypercubeAdaptiveWormhole,
        HypercubeEcubeWormhole,
        TorusAdaptiveWormhole,
        TorusDimensionOrderWormhole,
    )

    return [
        LintTarget(
            "wh-hypercube-ecube",
            "wormhole",
            lambda: HypercubeEcubeWormhole(Hypercube(3)),
        ),
        LintTarget(
            "wh-hypercube-adaptive",
            "wormhole",
            lambda: HypercubeAdaptiveWormhole(Hypercube(3)),
        ),
        LintTarget(
            "wh-torus-dimension-order",
            "wormhole",
            lambda: TorusDimensionOrderWormhole(Torus((4, 4))),
        ),
        LintTarget(
            "wh-torus-adaptive",
            "wormhole",
            lambda: TorusAdaptiveWormhole(Torus((4, 4))),
        ),
        LintTarget(
            "wh-hypercube-hung-escape",
            "wormhole",
            lambda: HungEscapeHypercubeWormhole(Hypercube(3)),
            expect=FAIL,
            note="known-broken escape discipline",
        ),
    ]


def _fault_epoch_targets() -> list[LintTarget]:
    """Fault-epoch topologies: the hypercube scheme behind the
    fault-aware adapter, one target per distinct epoch of a scripted
    schedule (``repro.faults.models``)."""
    from ..faults.adapters import FaultAwareRouting
    from ..faults.models import FaultSchedule, link_down
    from ..routing import HypercubeAdaptiveRouting
    from ..topology import Hypercube

    def build_epoch(epoch_index: int):
        def build():
            topo = Hypercube(3)
            schedule = FaultSchedule.fixed(
                topo, [link_down(0, 1, at=0), link_down(2, 6, at=50)]
            )
            epochs = schedule.epochs
            return FaultAwareRouting(
                HypercubeAdaptiveRouting(topo), epochs[epoch_index]
            )

        return build

    topo = Hypercube(3)
    schedule = FaultSchedule.fixed(
        topo, [link_down(0, 1, at=0), link_down(2, 6, at=50)]
    )
    return [
        LintTarget(
            f"faults-hypercube-epoch{i}",
            "packet",
            build_epoch(i),
            expect=DEGRADED,
            note=f"epoch {i}: {fs.describe()}",
        )
        for i, fs in enumerate(schedule.epochs)
    ]


def lint_targets() -> list[LintTarget]:
    """Every registered instance, packet + wormhole + fault epochs."""
    return _packet_targets() + _wormhole_targets() + _fault_epoch_targets()


def target_by_key(key: str) -> LintTarget:
    for t in lint_targets():
        if t.key == key:
            return t
    raise KeyError(key)
