"""Minimal cycle witnesses for deadlock-freedom violations.

A cyclic queue dependency graph proves the *proof obligation* of the
paper's Section-2 theorem is violated, but a QDG cycle alone is not yet
a deadlock you can watch happen: edges whose waiting move is merely one
of several candidates can always be side-stepped by an adaptive
alternative, and packets sitting in their destination's queue drain
into the (unbounded) delivery queue no matter what.

This module therefore distinguishes two strengths of evidence, both
reported as concrete ``(queue, dst, state)`` rows:

``forced-wait``
    A cycle in the *forced-wait graph*: edges ``q -> q'`` such that some
    reachable configuration ``(q, dst, state)`` with ``node(q) != dst``
    has ``q'`` as its **only** candidate next queue, and ``q'`` is a
    bounded central queue.  Fill each queue on the cycle with the
    packet from its row and every packet waits on the next queue's
    occupant — a genuine circular wait, constructively replayable on
    the reference engine (:mod:`repro.statics.replay`).

``static-order``
    A shortest cycle of the static QDG when the forced-wait graph is
    acyclic: it breaks the acyclic-order proof the paper's theorem
    needs (so the algorithm is *not certified*), but adaptivity may
    still dodge the wait at runtime, so the witness is flagged
    non-replayable.

Cycle search runs over dense integer queue ids (reusing
``sim.tables.RoutingTables``' interning for central queues) with the
deterministic :func:`repro.core.qdg.shortest_cycle`, so the same
algorithm instance always yields the same minimal witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

import networkx as nx

from ..core.qdg import Exploration, shortest_cycle
from ..core.queues import QueueId
from ..core.routing_function import RoutingAlgorithm

FORCED_WAIT = "forced-wait"
STATIC_ORDER = "static-order"
ESCAPE_CDG = "escape-cdg"


def fmt_queue(q: Any) -> str:
    """Compact human form of a queue/channel id."""
    if isinstance(q, QueueId):
        return f"{q.kind}@{q.node}"
    return str(q)


@dataclass(frozen=True)
class WitnessRow:
    """One blocked packet of the wait cycle.

    The packet sits in ``queue`` heading for ``dst`` with routing state
    ``state``; its (only, when ``forced``) candidate move is into
    ``next_queue`` — which the next row's packet occupies.
    """

    queue: QueueId
    next_queue: QueueId
    dst: Hashable
    state: Any
    dynamic: bool
    forced: bool

    def to_dict(self) -> dict[str, Any]:
        def qdict(q: Any) -> dict[str, str]:
            if isinstance(q, QueueId):
                return {"node": repr(q.node), "kind": q.kind}
            return {"channel": repr(q)}  # worm-hole ChannelId rows

        return {
            "queue": qdict(self.queue),
            "next_queue": qdict(self.next_queue),
            "dst": repr(self.dst),
            "state": repr(self.state),
            "dynamic": self.dynamic,
            "forced": self.forced,
        }


@dataclass(frozen=True)
class CycleWitness:
    """A minimal wait cycle, row per blocked packet."""

    kind: str
    rows: tuple[WitnessRow, ...]

    @property
    def replayable(self) -> bool:
        """Whether filling the cycle's queues provably deadlocks the
        reference engine (every wait is forced)."""
        return self.kind == FORCED_WAIT and all(r.forced for r in self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def describe(self) -> str:
        hops = " -> ".join(
            f"{fmt_queue(r.queue)}[dst={r.dst}]" for r in self.rows
        )
        first = fmt_queue(self.rows[0].queue) if self.rows else "?"
        return f"{len(self.rows)}-cycle ({self.kind}): {hops} -> {first}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "length": len(self.rows),
            "replayable": self.replayable,
            "rows": [r.to_dict() for r in self.rows],
        }


class DenseQueueIndex:
    """Dense integer ids for every queue of one algorithm instance.

    Central queues reuse the interning of
    :class:`repro.sim.tables.RoutingTables` (node-major, kind order as
    declared) so witness ids line up with the vector/compiled engines'
    global queue ids; injection and delivery queues extend the id space
    above ``n_queues``.
    """

    def __init__(self, algorithm: RoutingAlgorithm, tables: Any = None):
        if tables is None:
            from ..sim.tables import RoutingTables

            try:
                tables = RoutingTables(algorithm)
            except Exception:
                # Algorithms outside the table engines' capability
                # envelope still get deterministic ids, just not
                # engine-aligned ones.
                tables = None
        self.tables = tables
        if tables is not None:
            central = list(tables.queue_objs)
        else:
            central = sorted(
                (q for q in algorithm.all_queues() if q.is_central),
                key=repr,
            )
        self._fwd: dict[QueueId, int] = {q: i for i, q in enumerate(central)}
        self._rev: list[QueueId] = central

    def id_of(self, q: QueueId) -> int:
        i = self._fwd.get(q)
        if i is None:
            i = len(self._rev)
            self._fwd[q] = i
            self._rev.append(q)
        return i

    def queue(self, i: int) -> QueueId:
        return self._rev[i]


def _sorted_configs(exp: Exploration):
    """Deterministic iteration over reachable configurations.

    ``Exploration`` stores configurations in sets of ``(QueueId,
    state)``; ``QueueId`` contains strings, whose hashes are randomized
    per process, so raw set order must never leak into a witness.
    """
    for dst in sorted(exp.configurations, key=repr):
        for q, st in sorted(exp.configurations[dst], key=repr):
            yield dst, q, st


def _candidates(
    algorithm: RoutingAlgorithm, q: QueueId, dst: Hashable, st: Any
) -> tuple[frozenset[QueueId], frozenset[QueueId]]:
    """(static, dynamic-only) candidate next queues, self-hops dropped."""
    static = frozenset(
        q2 for q2 in algorithm.static_hops(q, dst, st) if q2 != q
    )
    dyn = (
        frozenset(
            q2 for q2 in algorithm.dynamic_hops(q, dst, st) if q2 != q
        )
        - static
    )
    return static, dyn


def forced_wait_graph(
    algorithm: RoutingAlgorithm,
    exploration: Exploration,
    index: DenseQueueIndex,
) -> tuple[nx.DiGraph, dict[tuple[int, int], WitnessRow]]:
    """The forced-wait graph over dense queue ids, plus one realizing
    row per edge (first in deterministic order)."""
    g = nx.DiGraph()
    labels: dict[tuple[int, int], WitnessRow] = {}
    for dst, q, st in _sorted_configs(exploration):
        if not q.is_central or q.node == dst:
            continue
        static, dyn = _candidates(algorithm, q, dst, st)
        hops = static | dyn
        if len(hops) != 1:
            continue
        (q2,) = hops
        if not q2.is_central:
            continue
        e = (index.id_of(q), index.id_of(q2))
        g.add_edge(*e)
        if e not in labels:
            labels[e] = WitnessRow(
                queue=q,
                next_queue=q2,
                dst=dst,
                state=st,
                dynamic=q2 in dyn,
                forced=True,
            )
    return g, labels


def _static_order_rows(
    algorithm: RoutingAlgorithm,
    exploration: Exploration,
    index: DenseQueueIndex,
    cycle: list[tuple[int, int]],
) -> tuple[WitnessRow, ...]:
    """Label a static-QDG cycle with realizing ``(dst, state)`` rows."""
    rows = []
    for a, b in cycle:
        q1, q2 = index.queue(a), index.queue(b)
        row = None
        for dst, q, st in _sorted_configs(exploration):
            if q != q1:
                continue
            static, dyn = _candidates(algorithm, q, dst, st)
            if q2 not in static:
                continue
            forced = (
                q.is_central
                and q2.is_central
                and q.node != dst
                and len(static | dyn) == 1
            )
            row = WitnessRow(
                queue=q1,
                next_queue=q2,
                dst=dst,
                state=st,
                dynamic=False,
                forced=forced,
            )
            break
        if row is None:  # pragma: no cover - every QDG edge is explored
            row = WitnessRow(q1, q2, None, None, False, False)
        rows.append(row)
    return tuple(rows)


def cycle_witness(
    algorithm: RoutingAlgorithm,
    exploration: Exploration,
    index: DenseQueueIndex | None = None,
) -> CycleWitness | None:
    """The strongest minimal cycle witness available, or ``None``.

    Prefers a shortest forced-wait cycle (replayable); falls back to a
    shortest static-QDG cycle (order violation only); returns ``None``
    when both graphs are acyclic.
    """
    if index is None:
        index = DenseQueueIndex(algorithm)

    fw, labels = forced_wait_graph(algorithm, exploration, index)
    cyc = shortest_cycle(fw)
    if cyc is not None:
        return CycleWitness(
            kind=FORCED_WAIT, rows=tuple(labels[e] for e in cyc)
        )

    static = nx.DiGraph()
    for u, v in exploration.edges(dynamic=False):
        static.add_edge(index.id_of(u), index.id_of(v))
    cyc = shortest_cycle(static)
    if cyc is not None:
        return CycleWitness(
            kind=STATIC_ORDER,
            rows=_static_order_rows(algorithm, exploration, index, cyc),
        )
    return None


def wormhole_cycle_witness(cdg: nx.DiGraph) -> CycleWitness | None:
    """A minimal cycle of a worm-hole extended escape CDG.

    Rows carry :class:`~repro.wormhole.channels.ChannelId` endpoints in
    the ``queue``/``next_queue`` slots; worm-hole witnesses describe
    held-channel chains, not packet replays, so they are never marked
    replayable.
    """
    cyc = shortest_cycle(cdg)
    if cyc is None:
        return None
    rows = tuple(
        WitnessRow(
            queue=a,
            next_queue=b,
            dst=None,
            state=None,
            dynamic=False,
            forced=False,
        )
        for a, b in cyc
    )
    return CycleWitness(kind=ESCAPE_CDG, rows=rows)
