"""Replay a forced-wait witness into a real deadlock.

A ``forced-wait`` :class:`~repro.statics.witness.CycleWitness` claims:
fill every queue on the cycle with its row's packet and each packet's
only move is into the next queue, whose occupant is equally stuck.
This module *executes* that claim on the reference engine: inject a
small opposing flow per row (enough packets to saturate the central
queue plus the link-buffer pipeline between consecutive rows) at
``central_capacity=1`` and the engine's no-progress watchdog raises
``DeadlockError`` within a few dozen cycles.

This is the analyzer's ground truth: a static witness that replays is
not a modeling artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..core.message import Message
from ..core.routing_function import RoutingAlgorithm
from ..sim.engine import DeadlockError, PacketSimulator
from ..sim.injection import InjectionModel
from .witness import FORCED_WAIT, CycleWitness

#: Packets injected per witness row.  Two packets drain through the
#: out/in link-buffer pipeline before the circular wait binds; three
#: saturate it (queue + out_buf + in_buf at capacity 1), and a small
#: margin keeps the cycle closed under unlucky arbitration.
DEFAULT_PACKETS_PER_ROW = 4


class WitnessReplayInjection(InjectionModel):
    """Static backlog realizing one witness: per row, packets sourced
    at the row's node heading for the row's destination."""

    def __init__(self, witness: CycleWitness, packets_per_row: int):
        self.witness = witness
        self.packets_per_row = packets_per_row
        self.name = f"witness-replay(x{packets_per_row})"
        self.backlog: dict[Hashable, list[Message]] = {}
        self.total = 0

    def setup(self, sim: PacketSimulator) -> None:
        alg = sim.algorithm
        self.backlog = {}
        self.total = 0
        for row in self.witness.rows:
            src = row.queue.node
            msgs = self.backlog.setdefault(src, [])
            for _ in range(self.packets_per_row):
                msgs.append(
                    Message(
                        src=src,
                        dst=row.dst,
                        state=alg.initial_state(src, row.dst),
                    )
                )
                self.total += 1

    def attempt(self, sim: PacketSimulator, cycle: int) -> None:
        for u in sim.nodes:
            backlog = self.backlog.get(u)
            if backlog and sim.injection_queue_free(u):
                sim.place_in_injection_queue(u, backlog.pop(), cycle)

    def finished(self, sim: PacketSimulator, cycle: int) -> bool:
        return sim.delivered_count >= self.total


@dataclass
class ReplayResult:
    """Outcome of one witness replay."""

    deadlocked: bool
    cycles: int
    delivered: int
    total: int
    detail: str

    def __bool__(self) -> bool:
        return self.deadlocked


def replay_witness(
    algorithm: RoutingAlgorithm,
    witness: CycleWitness,
    packets_per_row: int = DEFAULT_PACKETS_PER_ROW,
    central_capacity: int = 1,
    stall_limit: int = 100,
    max_cycles: int = 10_000,
) -> ReplayResult:
    """Run the witness against the reference engine.

    Returns a :class:`ReplayResult` with ``deadlocked=True`` when the
    engine's no-progress detector fires — the static witness manifested
    as a live circular wait.  Only ``forced-wait`` witnesses are
    eligible (``static-order`` ones may be dodged adaptively).
    """
    if witness.kind != FORCED_WAIT:
        raise ValueError(
            f"only {FORCED_WAIT!r} witnesses are replayable, "
            f"got {witness.kind!r}"
        )
    injection = WitnessReplayInjection(witness, packets_per_row)
    sim = PacketSimulator(
        algorithm,
        injection,
        central_capacity=central_capacity,
        stall_limit=stall_limit,
    )
    try:
        result = sim.run(max_cycles=max_cycles)
    except DeadlockError as exc:
        return ReplayResult(
            deadlocked=True,
            cycles=sim.cycle,
            delivered=sim.delivered_count,
            total=injection.total,
            detail=str(exc),
        )
    return ReplayResult(
        deadlocked=False,
        cycles=getattr(result, "cycles", sim.cycle),
        delivered=sim.delivered_count,
        total=injection.total,
        detail="all packets delivered; witness did not bind",
    )
