"""Generic route synthesis for arbitrary digraphs.

The constructive half of :mod:`repro.statics.existence`: given any
directed graph, emit a :class:`~repro.core.routing_function.
RoutingAlgorithm` serving every reachable ordered pair whose static QDG
is provably acyclic, using the minimum number of central queue classes
(one on acyclic graphs, two otherwise).

**Acyclic graphs** get the fully-adaptive DAG scheme: a single class
``A`` per node, and from ``(v, A)`` every successor that still reaches
the destination is allowed.  The QDG is a subgraph of the (acyclic)
input, so it is acyclic.

**Cyclic graphs** get the two-class hub scheme.  Per strongly connected
component ``S`` pick a hub ``r(S)`` (smallest node by ``repr``):

* class-``A`` queues form a BFS in-tree toward ``r(S)`` over
  intra-component edges;
* an internal switch at the hub moves messages from ``(r, A)`` to
  ``(r, B)``;
* class-``B`` queues form a BFS out-tree from ``r(S)``; a message
  bound for a local target follows it to the target, one bound for
  another component follows it to the chosen crossing edge
  ``(x, y)`` and drops back to class ``A`` at ``y``;
* crossings follow a shortest path in the condensation, whose edges
  strictly advance the condensation's topological order.

Ranking queues by ``(component topological index, class, tree depth)``
strictly increases along every hop, so the QDG is acyclic by
construction — and ``verify_algorithm`` re-checks the instance rather
than trusting the argument.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable

import networkx as nx

from ..core.queues import QueueId, deliver
from ..core.routing_function import RoutingAlgorithm
from ..topology.base import Topology
from ..topology.graph import DirectedGraph

KIND_A = "A"
KIND_B = "B"


def _bfs_depth(
    start: Hashable, succ: dict[Hashable, list[Hashable]]
) -> dict[Hashable, int]:
    depth = {start: 0}
    frontier = [start]
    d = 0
    while frontier:
        d += 1
        nxt = []
        for u in frontier:
            for v in succ[u]:
                if v not in depth:
                    depth[v] = d
                    nxt.append(v)
        frontier = nxt
    return depth


class SynthesizedRouting(RoutingAlgorithm):
    """Deadlock-free routing synthesized for an arbitrary digraph."""

    is_minimal = False
    is_fully_adaptive = False

    def __init__(self, topology: DirectedGraph):
        super().__init__(topology)
        self.name = f"synthesized({topology.name})"
        nodes = list(topology.nodes())
        succ = {u: list(topology.neighbors(u)) for u in nodes}
        g = nx.DiGraph()
        g.add_nodes_from(nodes)
        for u in nodes:
            for v in succ[u]:
                g.add_edge(u, v)
        self.acyclic = nx.is_directed_acyclic_graph(g)
        self._kinds = (KIND_A,) if self.acyclic else (KIND_A, KIND_B)
        if self.acyclic:
            return

        # -- strongly connected components, deterministic ids ----------
        comps = sorted(
            (sorted(c, key=repr) for c in nx.strongly_connected_components(g)),
            key=lambda c: repr(c[0]),
        )
        self._scc_of: dict[Hashable, int] = {}
        for i, comp in enumerate(comps):
            for v in comp:
                self._scc_of[v] = i
        self._hub = {i: comp[0] for i, comp in enumerate(comps)}

        # -- per-component in-tree (toward hub) and out-tree (from hub)
        self._up_next: dict[Hashable, Hashable] = {}
        self._down_parent: dict[Hashable, Hashable] = {}
        for i, comp in enumerate(comps):
            members = set(comp)
            hub = self._hub[i]
            fwd = {u: [v for v in succ[u] if v in members] for u in comp}
            rev = {u: [] for u in comp}
            for u in comp:
                for v in fwd[u]:
                    rev[v].append(u)
            to_hub = _bfs_depth(hub, rev)
            from_hub = _bfs_depth(hub, fwd)
            for v in comp:
                if v == hub:
                    continue
                self._up_next[v] = min(
                    (
                        w
                        for w in fwd[v]
                        if to_hub.get(w, -2) == to_hub[v] - 1
                    ),
                    key=repr,
                )
                self._down_parent[v] = min(
                    (
                        w
                        for w in rev[v]
                        if from_hub.get(w, -2) == from_hub[v] - 1
                    ),
                    key=repr,
                )

        # -- condensation: next component + crossing edge per target ---
        cedges: dict[tuple[int, int], tuple[Hashable, Hashable]] = {}
        for u in nodes:
            for v in succ[u]:
                a, b = self._scc_of[u], self._scc_of[v]
                if a == b:
                    continue
                key = (a, b)
                if key not in cedges or repr((u, v)) < repr(cedges[key]):
                    cedges[key] = (u, v)
        csucc: dict[int, list[int]] = {i: [] for i in range(len(comps))}
        crev: dict[int, list[int]] = {i: [] for i in range(len(comps))}
        for a, b in sorted(cedges):
            csucc[a].append(b)
            crev[b].append(a)
        #: Per target component: next component on a shortest
        #: condensation path from each component that reaches it.
        self._next_scc: dict[int, dict[int, int]] = {}
        for tgt in range(len(comps)):
            dist = _bfs_depth(tgt, crev)
            nxt = {}
            for a in dist:
                if a == tgt:
                    continue
                nxt[a] = min(
                    b for b in csucc[a] if dist.get(b, -2) == dist[a] - 1
                )
            self._next_scc[tgt] = nxt
        self._cross = cedges
        #: Per-target memo of the out-tree step: target -> {node: next}.
        self._down_next: dict[Hashable, dict[Hashable, Hashable]] = {}

    # -- queue structure ----------------------------------------------
    def central_queue_kinds(self, node: Hashable) -> tuple[str, ...]:
        return self._kinds

    # -- helpers -------------------------------------------------------
    def _down_step(self, x: Hashable) -> dict[Hashable, Hashable]:
        """``node -> next node`` along the out-tree path hub -> x."""
        steps = self._down_next.get(x)
        if steps is None:
            path = [x]
            while path[-1] in self._down_parent:
                path.append(self._down_parent[path[-1]])
            path.reverse()  # hub, ..., x
            steps = {
                path[i]: path[i + 1] for i in range(len(path) - 1)
            }
            self._down_next[x] = steps
        return steps

    def _local_target(self, sv: int, dst: Hashable) -> Hashable:
        """Where class-B traffic in component ``sv`` is headed: the
        destination itself, or the crossing-edge source toward it."""
        st = self._scc_of[dst]
        if sv == st:
            return dst
        nxt = self._next_scc[st][sv]
        return self._cross[(sv, nxt)][0]

    # -- the routing function -----------------------------------------
    def injection_targets(
        self, src: Hashable, dst: Hashable, state: Any = None
    ) -> frozenset[QueueId]:
        topo: DirectedGraph = self.topology
        if not topo.reachable(src, dst):
            return frozenset()
        return frozenset({QueueId(src, KIND_A)})

    def static_hops(
        self, q: QueueId, dst: Hashable, state: Any = None
    ) -> frozenset[QueueId]:
        v = q.node
        if v == dst:
            return frozenset({deliver(dst)})
        topo: DirectedGraph = self.topology
        if self.acyclic:
            return frozenset(
                QueueId(w, KIND_A)
                for w in topo.neighbors(v)
                if topo.reachable(w, dst)
            )
        sv = self._scc_of[v]
        if q.kind == KIND_A:
            if v == self._hub[sv]:
                return frozenset({QueueId(v, KIND_B)})
            return frozenset({QueueId(self._up_next[v], KIND_A)})
        # class B: ride the out-tree to the local target, then cross.
        x = self._local_target(sv, dst)
        if v == x:
            nxt = self._next_scc[self._scc_of[dst]][sv]
            _, y = self._cross[(sv, nxt)]
            return frozenset({QueueId(y, KIND_A)})
        step = self._down_step(x).get(v)
        if step is None:
            # Off the hub -> x out-tree path: unreachable by
            # construction (class B is only entered at the hub).
            return frozenset()
        return frozenset({QueueId(step, KIND_B)})


def synthesize_routing(
    graph: DirectedGraph | Topology | nx.DiGraph | Iterable,
    name: str = "digraph",
) -> SynthesizedRouting:
    """Build a certifiably deadlock-free routing scheme for ``graph``."""
    from .existence import as_directed_graph

    return SynthesizedRouting(as_directed_graph(graph, name=name))
