"""AST-based determinism lint over ``src/repro/``.

Three rule families, each targeting a reproducibility hazard this repo
has an explicit discipline for:

``unseeded-rng``
    Every random draw must flow from the seed-derivation scheme
    (``make_rng``).  Flags ``default_rng()`` with no seed, the global
    ``numpy.random.*`` functions, legacy ``RandomState``, and the
    stdlib ``random`` module's draw functions.

``set-iteration-order``
    ``QueueId`` contains strings, and string hashes are randomized per
    process — iterating a set in an *order-observable* way inside a
    routing hot path (the hop relations engines memoize) silently
    changes results across runs.  Flags ``list(...)``/``tuple(...)``
    over a set expression, ``next(iter(...))`` of a set expression,
    and ``for`` loops over set expressions whose body can exit early
    (``break``/``return``), inside the hot routing functions.

``observer-api``
    The engines dispatch observers by duck-typed hooks ``on_cycle(sim,
    cycle)``, ``on_stall(sim)`` and ``on_run_end(sim, result)``.
    Flags hook definitions whose arity has drifted, and unknown
    ``on_*`` methods on observer-looking classes (the engine would
    silently never call them).

A finding can be waived by putting ``lint: ok`` in a comment on the
offending line.  :func:`run_determinism_lint` returns findings sorted
by location, so output is deterministic too.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

#: Routing/scheme methods whose iteration order engines observe.
HOT_FUNCTIONS = frozenset(
    {
        "static_hops",
        "dynamic_hops",
        "hops",
        "injection_targets",
        "update_state",
        "buffer_classes",
        "central_queue_kinds",
        "candidates",
        "escape_channels",
        "adaptive_channels",
    }
)

#: Known engine observer hooks and their positional arity (incl. self).
OBSERVER_HOOKS = {"on_cycle": 3, "on_stall": 2, "on_run_end": 3}

#: Class-name fragments that mark a class as an engine observer.
OBSERVER_CLASS_HINTS = ("Observer", "Watchdog", "Probe", "Injector")

#: numpy.random attributes that are part of the seeded discipline.
_NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence"})

#: stdlib ``random`` draw functions (seeding helpers excluded).
_STDLIB_DRAWS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
    }
)

WAIVER = "lint: ok"


@dataclass(frozen=True)
class LintFinding:
    """One determinism-lint hit."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _positional_arity(fn: ast.FunctionDef) -> int:
    return len(fn.args.posonlyargs) + len(fn.args.args)


class _Visitor(ast.NodeVisitor):
    def __init__(self, rel_path: str, lines: list[str]):
        self.rel_path = rel_path
        self.lines = lines
        self.findings: list[LintFinding] = []
        self._hot_depth = 0
        self._imported_random = False

    # -- plumbing ------------------------------------------------------
    def _waived(self, node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return WAIVER in self.lines[line - 1]
        return False

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        if self._waived(node):
            return
        self.findings.append(
            LintFinding(
                path=self.rel_path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" and (alias.asname or "random") == "random":
                self._imported_random = True
        self.generic_visit(node)

    # -- unseeded RNG --------------------------------------------------
    def _check_rng_call(self, node: ast.Call) -> None:
        fn = node.func
        if not isinstance(fn, ast.Attribute):
            return
        if fn.attr == "default_rng" and not node.args and not node.keywords:
            self._flag(
                node,
                "unseeded-rng",
                "default_rng() with no seed: draws are irreproducible; "
                "derive the generator via make_rng",
            )
            return
        base = fn.value
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in ("np", "numpy")
        ):
            if fn.attr == "RandomState":
                self._flag(
                    node,
                    "unseeded-rng",
                    "legacy numpy RandomState: use make_rng "
                    "(PCG64 via default_rng)",
                )
            elif fn.attr not in _NP_RANDOM_OK:
                self._flag(
                    node,
                    "unseeded-rng",
                    f"numpy.random.{fn.attr} uses the hidden global "
                    "RNG; derive a generator via make_rng",
                )
        elif (
            self._imported_random
            and isinstance(base, ast.Name)
            and base.id == "random"
        ):
            if fn.attr in _STDLIB_DRAWS:
                self._flag(
                    node,
                    "unseeded-rng",
                    f"stdlib random.{fn.attr} draws from the global "
                    "RNG; derive a generator via make_rng",
                )
            elif fn.attr == "Random" and not node.args and not node.keywords:
                self._flag(
                    node,
                    "unseeded-rng",
                    "random.Random() with no seed is irreproducible",
                )

    # -- set iteration order in hot paths ------------------------------
    def _check_set_order(self, node: ast.Call) -> None:
        if self._hot_depth == 0:
            return
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id in ("list", "tuple", "sorted"):
            if fn.id == "sorted":
                return  # sorted() is the sanctioned fix
            if node.args and _is_set_expr(node.args[0]):
                self._flag(
                    node,
                    "set-iteration-order",
                    f"{fn.id}(...) over a set expression in a routing "
                    "hot path leaks hash order; sort first",
                )
        if (
            isinstance(fn, ast.Name)
            and fn.id == "next"
            and node.args
            and isinstance(node.args[0], ast.Call)
            and isinstance(node.args[0].func, ast.Name)
            and node.args[0].func.id == "iter"
            and node.args[0].args
            and _is_set_expr(node.args[0].args[0])
        ):
            self._flag(
                node,
                "set-iteration-order",
                "next(iter(<set>)) picks a hash-order-dependent "
                "element in a routing hot path; use min/sorted",
            )

    def visit_Call(self, node: ast.Call) -> None:
        self._check_rng_call(node)
        self._check_set_order(node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self._hot_depth > 0 and _is_set_expr(node.iter):
            exits_early = any(
                isinstance(n, (ast.Break, ast.Return))
                for stmt in node.body
                for n in ast.walk(stmt)
            )
            if exits_early:
                self._flag(
                    node,
                    "set-iteration-order",
                    "for-loop over a set expression with an early exit "
                    "in a routing hot path; iterate in sorted order",
                )
        self.generic_visit(node)

    # -- functions / observer classes ----------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        hot = node.name in HOT_FUNCTIONS
        if hot:
            self._hot_depth += 1
        self.generic_visit(node)
        if hot:
            self._hot_depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        observerish = any(h in node.name for h in OBSERVER_CLASS_HINTS)
        for item in node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            expected = OBSERVER_HOOKS.get(item.name)
            if expected is not None:
                if (
                    _positional_arity(item) != expected
                    and item.args.vararg is None
                ):
                    self._flag(
                        item,
                        "observer-api",
                        f"{node.name}.{item.name} takes "
                        f"{_positional_arity(item)} positional args; the "
                        f"engine calls it with {expected} "
                        "(observer API drift)",
                    )
            elif observerish and item.name.startswith("on_"):
                self._flag(
                    item,
                    "observer-api",
                    f"{node.name}.{item.name} is not an engine hook "
                    f"({', '.join(sorted(OBSERVER_HOOKS))}); the engine "
                    "will never call it",
                )
        self.generic_visit(node)


def _iter_sources(root: Path) -> Iterator[Path]:
    yield from sorted(root.rglob("*.py"))


def run_determinism_lint(root: Path | None = None) -> list[LintFinding]:
    """Lint every Python source under ``root`` (default: this package's
    parent, i.e. ``src/repro/``).  Returns findings sorted by location.
    """
    if root is None:
        root = Path(__file__).resolve().parents[1]
    root = Path(root)
    findings: list[LintFinding] = []
    base = root.parent
    for path in _iter_sources(root):
        text = path.read_text()
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:  # pragma: no cover - repo must parse
            findings.append(
                LintFinding(
                    path=str(path.relative_to(base)),
                    line=exc.lineno or 0,
                    col=exc.offset or 0,
                    rule="syntax",
                    message=str(exc),
                )
            )
            continue
        visitor = _Visitor(
            str(path.relative_to(base)), text.splitlines()
        )
        visitor.visit(tree)
        findings.extend(visitor.findings)
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
