"""The paper's evaluation grid: Tables 1-12 with reference values.

Each :class:`TableSpec` names one of the paper's tables, carries the
published numbers, and knows how to re-run the experiment at any
scale.  ``run_table(k)`` regenerates Table ``k``; the benchmarks in
``benchmarks/`` are thin wrappers around these definitions.

Reference values are transcribed verbatim from the paper; note the
paper's Table 12 includes an extra ``n = 9`` row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..analysis.tables import PaperTable, TableRow
from ..sim.metrics import SimulationResult
from .parallel import parallel_map
from .runner import HypercubeExperiment, experiment_seed, scale_dimensions


@dataclass(frozen=True)
class TableSpec:
    """Definition + reference data of one paper table."""

    number: int
    title: str
    pattern: str
    injection: str  #: "static" or "dynamic"
    packets: str = "1"  #: "1" or "n" (static only)
    #: ``n -> (L_avg, L_max)`` or ``n -> (L_avg, L_max, I_r%)``.
    reference: dict[int, tuple] = field(default_factory=dict)

    @property
    def dynamic(self) -> bool:
        return self.injection == "dynamic"

    def reference_rows(self) -> list[TableRow]:
        rows = []
        for n, vals in sorted(self.reference.items()):
            i_r = vals[2] if len(vals) > 2 else None
            rows.append(
                TableRow(n=n, N=1 << n, l_avg=vals[0], l_max=vals[1], i_r=i_r)
            )
        return rows

    def experiment(self, n: int, seed: int) -> HypercubeExperiment:
        if self.injection == "static":
            return HypercubeExperiment(
                pattern=self.pattern,
                injection="static",
                packets_per_node=(n if self.packets == "n" else int(self.packets)),
                seed=seed,
            )
        return HypercubeExperiment(
            pattern=self.pattern, injection="dynamic", rate=1.0, seed=seed
        )


PAPER_TABLES: dict[int, TableSpec] = {
    1: TableSpec(
        1, "Table 1: Random Routing, 1 packet", "random", "static", "1",
        {10: (10.96, 19), 11: (12.09, 21), 12: (13.08, 25),
         13: (14.03, 27), 14: (15.04, 29)},
    ),
    2: TableSpec(
        2, "Table 2: Complement, 1 packet", "complement", "static", "1",
        {10: (21.0, 21), 11: (23.0, 23), 12: (25.0, 25),
         13: (27.0, 27), 14: (29.0, 29)},
    ),
    3: TableSpec(
        3, "Table 3: Transpose, 1 packet", "transpose", "static", "1",
        {10: (11.09, 21), 11: (11.09, 21), 12: (13.13, 25),
         13: (13.13, 25), 14: (15.23, 29)},
    ),
    4: TableSpec(
        4, "Table 4: Leveled Permutation, 1 packet", "leveled", "static", "1",
        {10: (10.10, 21), 11: (10.98, 21), 12: (12.06, 25),
         13: (13.07, 25), 14: (14.03, 29)},
    ),
    5: TableSpec(
        5, "Table 5: Random Routing, n packets", "random", "static", "n",
        {10: (11.33, 22), 11: (12.52, 25), 12: (13.76, 27),
         13: (15.02, 30), 14: (16.54, 32)},
    ),
    6: TableSpec(
        6, "Table 6: Complement, n packets", "complement", "static", "n",
        {10: (21.0, 21), 11: (24.99, 30), 12: (28.61, 35),
         13: (32.74, 39), 14: (36.23, 44)},
    ),
    7: TableSpec(
        7, "Table 7: Transpose, n packets", "transpose", "static", "n",
        {10: (12.27, 26), 11: (12.40, 32), 12: (16.01, 37),
         13: (16.22, 36), 14: (20.49, 43)},
    ),
    8: TableSpec(
        8, "Table 8: Leveled Permutation, n packets", "leveled", "static", "n",
        {10: (10.78, 23), 11: (11.77, 25), 12: (13.17, 28),
         13: (14.60, 32), 14: (16.03, 37)},
    ),
    9: TableSpec(
        9, "Table 9: Random Routing, lambda=1", "random", "dynamic",
        reference={10: (12.10, 30, 93), 11: (13.47, 35, 89),
                   12: (15.01, 37, 85), 13: (16.58, 44, 81),
                   14: (18.30, 49, 76)},
    ),
    10: TableSpec(
        10, "Table 10: Complement, lambda=1", "complement", "dynamic",
        reference={10: (33.32, 52, 55), 11: (39.29, 58, 49),
                   12: (45.60, 68, 45), 13: (52.87, 79, 41),
                   14: (60.70, 90, 38)},
    ),
    11: TableSpec(
        11, "Table 11: Transpose, lambda=1", "transpose", "dynamic",
        reference={10: (14.67, 36, 83), 11: (14.67, 36, 83),
                   12: (15.78, 49, 73), 13: (20.31, 54, 71),
                   14: (27.33, 66, 61)},
    ),
    12: TableSpec(
        12, "Table 12: Leveled Permutation, lambda=1", "leveled", "dynamic",
        reference={9: (11.28, 37, 94), 10: (12.47, 43, 91),
                   11: (13.50, 48, 89), 12: (15.17, 56, 84),
                   13: (16.91, 53, 80), 14: (18.46, 57, 75)},
    ),
}


def _table_cell(
    cell: tuple[int, int, int, Callable | None],
) -> SimulationResult:
    """Module-level table worker (must be picklable for process pools)."""
    number, n, seed, algorithm_factory = cell
    spec = PAPER_TABLES[number]
    return spec.experiment(n, seed).run(n, algorithm_factory)


def run_table(
    number: int,
    ns: Sequence[int] | None = None,
    seed: int | None = None,
    algorithm_factory: Callable | None = None,
    workers: int | None = None,
) -> PaperTable:
    """Regenerate one of the paper's tables at the configured scale.

    ``workers`` > 1 fans the per-``n`` cells out to a process pool;
    each cell seeds its RNG streams independently, so the assembled
    table is identical to the serial one.
    """
    spec = PAPER_TABLES[number]
    ns = tuple(ns) if ns is not None else scale_dimensions()
    seed = seed if seed is not None else experiment_seed()
    table = PaperTable(
        title=spec.title,
        dynamic=spec.dynamic,
        reference=spec.reference_rows(),
    )
    cells = [(number, n, seed, algorithm_factory) for n in ns]
    results = parallel_map(_table_cell, cells, workers=workers or 1)
    for n, result in zip(ns, results):
        table.add_result(n, result)
    return table


def table_result(
    number: int, n: int, seed: int | None = None
) -> SimulationResult:
    """Run a single cell of a paper table (one n)."""
    spec = PAPER_TABLES[number]
    seed = seed if seed is not None else experiment_seed()
    return spec.experiment(n, seed).run(n)


# ----------------------------------------------------------------------
# Shape checks: the qualitative claims the reproduction must preserve.
# ----------------------------------------------------------------------
def check_table_shape(number: int, table: PaperTable) -> list[str]:
    """Validate the paper-shape properties of a regenerated table.

    Returns a list of violations (empty == the shape holds):

    * Table 2 (complement, 1 packet) is deterministic: L_avg = L_max
      = 2n + 1 exactly;
    * every static 1-packet table is bounded by the complement one;
    * latencies grow with n within every table;
    * dynamic injection rates decrease with n, and complement is the
      most demanding dynamic pattern.
    """
    problems: list[str] = []
    spec = PAPER_TABLES[number]
    rows = table.rows
    if not rows:
        return ["table has no rows"]
    if number == 2:
        for r in rows:
            if not (abs(r.l_avg - (2 * r.n + 1)) < 1e-9 and r.l_max == 2 * r.n + 1):
                problems.append(
                    f"n={r.n}: complement/1pkt must be exactly 2n+1, got "
                    f"{r.l_avg}/{r.l_max}"
                )
    if spec.injection == "static" and spec.packets == "1" and number != 2:
        for r in rows:
            if r.l_max > 2 * r.n + 1:
                problems.append(
                    f"n={r.n}: 1-packet L_max {r.l_max} exceeds diameter "
                    f"bound {2 * r.n + 1}"
                )
    for a, b in zip(rows, rows[1:]):
        if b.l_avg + 1e-9 < a.l_avg - 0.75:
            problems.append(
                f"L_avg not (weakly) growing: n={a.n}:{a.l_avg} -> "
                f"n={b.n}:{b.l_avg}"
            )
    if spec.dynamic:
        for a, b in zip(rows, rows[1:]):
            if b.i_r is not None and a.i_r is not None and b.i_r > a.i_r + 8.0:
                problems.append(
                    f"I_r should not grow with n: n={a.n}:{a.i_r:.0f}% -> "
                    f"n={b.n}:{b.i_r:.0f}%"
                )
    return problems
