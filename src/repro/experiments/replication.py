"""Multi-seed replication and statistics.

The paper reports single simulation runs.  For the stochastic
configurations (random traffic, leveled permutations, dynamic
injection) this module replicates an experiment over independent seeds
and reports means with confidence intervals, so shape claims can be
asserted with statistical backing rather than single draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..sim.metrics import SimulationResult
from .runner import HypercubeExperiment


@dataclass
class ReplicateStats:
    """Mean / spread of one scalar across replications."""

    values: list[float] = field(default_factory=list)

    def add(self, x: float) -> None:
        self.values.append(float(x))

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else float("nan")

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    def ci95(self) -> tuple[float, float]:
        """95% confidence interval for the mean (normal approx for
        small replication counts; exact t via scipy when available)."""
        if self.n < 2:
            return (self.mean, self.mean)
        half = 1.96 * self.std / math.sqrt(self.n)
        try:
            from scipy import stats as sps

            half = float(
                sps.t.ppf(0.975, self.n - 1) * self.std / math.sqrt(self.n)
            )
        except ImportError:  # pragma: no cover - scipy is a test dep
            pass
        return (self.mean - half, self.mean + half)


@dataclass
class ReplicatedResult:
    """Aggregated outcome of one experiment cell across seeds."""

    n: int
    seeds: tuple[int, ...]
    l_avg: ReplicateStats = field(default_factory=ReplicateStats)
    l_max: ReplicateStats = field(default_factory=ReplicateStats)
    i_r: ReplicateStats = field(default_factory=ReplicateStats)
    results: list[SimulationResult] = field(default_factory=list)

    def row(self) -> dict:
        lo, hi = self.l_avg.ci95()
        out = {
            "n": self.n,
            "runs": len(self.results),
            "L_avg": round(self.l_avg.mean, 2),
            "L_avg 95% CI": f"[{lo:.2f}, {hi:.2f}]",
            "L_max(mean)": round(self.l_max.mean, 1),
        }
        if self.i_r.n:
            out["I_r(%)"] = round(self.i_r.mean, 1)
        return out


def replicate(
    experiment_factory: Callable[[int], HypercubeExperiment],
    n: int,
    seeds: Sequence[int],
) -> ReplicatedResult:
    """Run one experiment cell once per seed and aggregate.

    ``experiment_factory(seed)`` must build the experiment for that
    seed (traffic, injection, and permutation draws all re-seed).
    """
    agg = ReplicatedResult(n=n, seeds=tuple(seeds))
    for seed in seeds:
        res = experiment_factory(seed).run(n)
        agg.results.append(res)
        agg.l_avg.add(res.l_avg)
        agg.l_max.add(res.l_max)
        if res.attempts:
            agg.i_r.add(100.0 * res.injection_rate)
    return agg


def mean_difference_ci95(
    a: ReplicateStats, b: ReplicateStats
) -> tuple[float, float]:
    """95% CI of mean(a) - mean(b) (Welch approximation).

    If the interval excludes 0, the difference is significant at the
    5% level — used by tests asserting e.g. "adaptive beats oblivious".
    """
    if a.n < 2 or b.n < 2:
        raise ValueError("need at least two replications per side")
    diff = a.mean - b.mean
    se = math.sqrt(a.std**2 / a.n + b.std**2 / b.n)
    if se == 0.0:
        return (diff, diff)
    num = (a.std**2 / a.n + b.std**2 / b.n) ** 2
    den = (a.std**2 / a.n) ** 2 / (a.n - 1) + (b.std**2 / b.n) ** 2 / (
        b.n - 1
    )
    dof = num / den if den > 0 else a.n + b.n - 2
    try:
        from scipy import stats as sps

        t = float(sps.t.ppf(0.975, dof))
    except ImportError:  # pragma: no cover
        t = 1.96
    return (diff - t * se, diff + t * se)
