"""Experiment driver: configuration, scale control, sweeps.

The paper simulates hypercubes of up to 16K nodes (n = 10..14).  A
pure-Python cycle simulator cannot sweep that range in CI time, so
every harness resolves its ``n`` range through :func:`scale_dimensions`:

* ``REPRO_SCALE=ci``      -> n = 4..6   (seconds; the test default)
* ``REPRO_SCALE=default`` -> n = 5..8   (tens of seconds)
* ``REPRO_SCALE=large``   -> n = 7..10  (minutes)
* ``REPRO_SCALE=paper``   -> n = 10..14 (the paper's range; hours)
* ``REPRO_NS=6,8,10``     -> explicit override

The reproduced quantity is the *shape* of each table (see
EXPERIMENTS.md), which is already visible at small n because the
latency model is exact (L = 2h + 1 uncontended).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.routing_function import RoutingAlgorithm
from ..routing.hypercube import (
    HypercubeAdaptiveRouting,
    HypercubeHungRouting,
)
from ..sim.compiled import CompiledPacketSimulator
from ..sim.engine import PacketSimulator
from ..sim.fastcube import FastHypercubeSimulator
from ..sim.sharded import ShardedSimulator
from ..sim.tables import EngineCapabilityError
from ..sim.vector import VectorSimulator
from ..sim.injection import DynamicInjection, InjectionModel, StaticInjection
from ..sim.metrics import SimulationResult
from ..sim.rng import make_rng
from ..sim.traffic import hypercube_pattern
from ..telemetry import TelemetryProbe
from ..topology.hypercube import Hypercube

SCALES: dict[str, tuple[int, ...]] = {
    "ci": (4, 5, 6),
    "default": (5, 6, 7, 8),
    "large": (7, 8, 9, 10),
    "paper": (10, 11, 12, 13, 14),
}

#: Engine names accepted by :func:`build_simulator` / ``REPRO_ENGINE``.
ENGINES: tuple[str, ...] = (
    "auto",
    "reference",
    "compiled",
    "fast",
    "vector",
    "sharded",
)

#: One-screen engine capability matrix, embedded in selection errors.
#: The canonical (maintained) version lives in docs/ARCHITECTURE.md.
ENGINE_MATRIX = """\
engine     topologies        faults  observers  trace  speed (relative)
reference  any               yes     yes        yes    1x
compiled   any               yes     yes        yes    ~2-5x
fast       hypercube only    no      no         no     ~3-10x
vector     any               no      telemetry  no     ~10-40x
sharded    any               no      telemetry  no     ~vector/shards
(auto = fast when eligible, else compiled; see docs/ARCHITECTURE.md)"""


def engine_choice(default: str = "auto") -> str:
    """Engine to use, honoring the ``REPRO_ENGINE`` environment override."""
    name = os.environ.get("REPRO_ENGINE", default).lower()
    if name not in ENGINES:
        raise ValueError(
            f"REPRO_ENGINE={name!r}; expected one of {ENGINES}"
        )
    return name


def _fast_eligible(algorithm: RoutingAlgorithm) -> bool:
    return type(algorithm) in (HypercubeAdaptiveRouting, HypercubeHungRouting)


#: Keyword arguments the specialized fast engine understands; anything
#: else (occupancy sampling, tracing, LIFO service, rotating policy)
#: needs a generic engine.
_FAST_KWARGS = frozenset({"central_capacity", "stall_limit"})


def resolve_probe(telemetry) -> TelemetryProbe | None:
    """Normalize a ``telemetry`` argument into a probe (or None).

    ``True`` means a metrics-only probe (no event log — O(1) memory,
    the right default for sweeps); pass a
    :class:`~repro.telemetry.TelemetryProbe` instance for full control.
    """
    if telemetry is None or telemetry is False:
        return None
    if telemetry is True:
        return TelemetryProbe(events=False)
    return telemetry


def build_simulator(
    algorithm: RoutingAlgorithm,
    model: InjectionModel,
    engine: str | None = None,
    telemetry=None,
    **kwargs,
) -> PacketSimulator:
    """Construct the requested engine around ``(algorithm, model)``.

    ``engine`` (or, when it is None, the ``REPRO_ENGINE`` environment
    variable) selects between:

    * ``reference`` — the generic :class:`PacketSimulator`;
    * ``compiled``  — :class:`CompiledPacketSimulator`, the plan-cache
      engine (any algorithm, packet-for-packet identical);
    * ``fast``      — :class:`FastHypercubeSimulator`; hypercube-only —
      any other algorithm raises
      :class:`~repro.sim.tables.EngineCapabilityError` with the engine
      matrix in the message;
    * ``vector``    — :class:`~repro.sim.vector.VectorSimulator`, the
      table-driven engine (any topology, packet-identical; hashable
      states, telemetry probes yes, fault observers / tracing no);
    * ``sharded``   — :class:`~repro.sim.sharded.ShardedSimulator`, the
      multi-process engine: the vector engine partitioned across
      ``REPRO_SHARDS`` worker processes (or a ``shards=`` kwarg) with
      byte-identical merged results; same capability limits as
      ``vector`` (see ``docs/SHARDING.md``);
    * ``auto``      — ``fast`` when the algorithm qualifies, otherwise
      ``compiled``.  ``auto`` never picks ``vector`` or ``sharded``:
      both reject fault observers and tracing outright rather than
      degrading, so they stay opt-in (``REPRO_ENGINE=vector`` /
      ``REPRO_ENGINE=sharded``).

    Every engine implements the reference engine's exact Section-7.1
    semantics, so the choice never changes results, only throughput —
    see the engine matrix in ``docs/ARCHITECTURE.md`` for what each
    supports.

    ``telemetry`` (True or a :class:`~repro.telemetry.TelemetryProbe`)
    attaches instrumentation; probes need an observer hook, which the
    fast engine lacks — so they disqualify it under ``auto`` and are an
    error with an explicit ``engine="fast"``.  The vector engine
    drives probes itself (buffered columnar events).
    """
    name = engine_choice() if engine is None else engine
    if name not in ENGINES:
        raise ValueError(f"engine={name!r}; expected one of {ENGINES}")
    probe = resolve_probe(telemetry)
    if name == "fast":
        if not _fast_eligible(algorithm):
            raise EngineCapabilityError(
                f"engine='fast' supports the hypercube two-phase "
                f"algorithms only, not {type(algorithm).__name__} on "
                f"{algorithm.topology.name}; use 'compiled' or 'vector' "
                f"for generic topologies.\n{ENGINE_MATRIX}"
            )
        if probe is not None:
            raise ValueError(
                "telemetry probes need an observer hook; the fast "
                "engine has none — use engine='compiled' or "
                f"engine='vector'.\n{ENGINE_MATRIX}"
            )
        return FastHypercubeSimulator(algorithm, model, **kwargs)
    if name == "reference":
        sim = PacketSimulator(algorithm, model, **kwargs)
    elif name == "compiled":
        sim = CompiledPacketSimulator(algorithm, model, **kwargs)
    elif name == "vector":
        sim = VectorSimulator(algorithm, model, **kwargs)
    elif name == "sharded":
        sim = ShardedSimulator(algorithm, model, **kwargs)
    # auto: prefer the specialized engine, fall back to the compiled
    # generic engine (both are packet-for-packet identical).  Callers
    # should omit generic-only kwargs they don't need, since their mere
    # presence (occupancy, tracing, service/policy variants) forces the
    # generic engine.
    elif (
        probe is None
        and _fast_eligible(algorithm)
        and set(kwargs) <= _FAST_KWARGS
    ):
        return FastHypercubeSimulator(algorithm, model, **kwargs)
    else:
        sim = CompiledPacketSimulator(algorithm, model, **kwargs)
    if probe is not None:
        probe.attach(sim)
    return sim


def scale_dimensions(default: str = "ci") -> tuple[int, ...]:
    """Hypercube dimensions to sweep, honoring the environment."""
    explicit = os.environ.get("REPRO_NS")
    if explicit:
        return tuple(int(x) for x in explicit.replace(",", " ").split())
    scale = os.environ.get("REPRO_SCALE", default)
    if scale not in SCALES:
        raise ValueError(
            f"REPRO_SCALE={scale!r}; expected one of {sorted(SCALES)}"
        )
    return SCALES[scale]


def experiment_seed(default: int = 12345) -> int:
    return int(os.environ.get("REPRO_SEED", default))


@dataclass
class HypercubeExperiment:
    """One cell of the paper's evaluation grid."""

    pattern: str  #: random | complement | transpose | leveled | ...
    injection: str  #: "static" or "dynamic"
    packets_per_node: int = 1  #: static model only
    rate: float = 1.0  #: dynamic model only
    duration: int | None = None  #: dynamic cycles (None -> auto)
    warmup: int | None = None  #: dynamic warm-up (None -> auto)
    seed: int = 12345
    central_capacity: int = 5
    collect_occupancy: bool = False
    #: Attach a metrics-only telemetry probe per cell; results carry
    #: ``SimulationResult.telemetry`` (and extra ``row()`` columns).
    #: Forces a generic engine under ``auto``.
    telemetry: bool = False
    #: Routing-algorithm constructor (default: the paper's adaptive
    #: scheme); per-call ``algorithm_factory`` arguments override it.
    algorithm: Callable[[Hypercube], RoutingAlgorithm] | None = None

    def auto_duration(self, n: int) -> int:
        # Long enough for steady state at every n: latencies are
        # O(n)-to-O(n^2) under saturation, so a few hundred cycles
        # plus an n-dependent term keeps the measured window stable.
        return self.duration if self.duration is not None else 200 + 25 * n

    def auto_warmup(self, n: int) -> int:
        if self.warmup is not None:
            return self.warmup
        return self.auto_duration(n) // 3

    def build(
        self,
        n: int,
        algorithm_factory: Callable[[Hypercube], RoutingAlgorithm] | None = None,
        engine: str | None = None,
    ) -> PacketSimulator:
        cube = Hypercube(n)
        factory = algorithm_factory or self.algorithm or HypercubeAdaptiveRouting
        alg = factory(cube)
        rng_traffic = make_rng(self.seed, f"traffic-{n}")
        pattern = hypercube_pattern(self.pattern, cube, rng_traffic)
        if self.injection == "static":
            model = StaticInjection(
                self.packets_per_node, pattern, make_rng(self.seed, f"inj-{n}")
            )
        elif self.injection == "dynamic":
            model = DynamicInjection(
                self.rate,
                pattern,
                make_rng(self.seed, f"inj-{n}"),
                duration=self.auto_duration(n),
                warmup=self.auto_warmup(n),
            )
        else:
            raise ValueError(f"unknown injection model {self.injection!r}")
        # Engine selection (tests/test_sim_fastcube.py and
        # tests/test_sim_compiled.py prove all engines packet-for-packet
        # identical): REPRO_ENGINE / the engine argument pick one
        # explicitly; "auto" prefers fast, then compiled.
        kwargs: dict = {"central_capacity": self.central_capacity}
        if self.collect_occupancy:
            kwargs["collect_occupancy"] = True
        return build_simulator(
            alg,
            model,
            engine=engine,
            telemetry=self.telemetry or None,
            **kwargs,
        )

    def run(
        self,
        n: int,
        algorithm_factory: Callable[[Hypercube], RoutingAlgorithm] | None = None,
        max_cycles: int | None = None,
        engine: str | None = None,
    ) -> SimulationResult:
        sim = self.build(n, algorithm_factory, engine=engine)
        return sim.run(max_cycles=max_cycles)

    def sweep(
        self,
        ns: Sequence[int],
        algorithm_factory: Callable[[Hypercube], RoutingAlgorithm] | None = None,
        workers: int | None = None,
        engine: str | None = None,
    ) -> dict[int, SimulationResult]:
        """Run one cell per dimension, optionally fanned out to workers.

        Every cell derives its RNG streams from ``make_rng(seed, tag)``
        with per-``n`` tags, so the cells are independent and the
        parallel result is identical to the serial one (asserted by
        ``tests/test_parallel_sweep.py``).
        """
        if workers is not None and workers > 1:
            from .parallel import parallel_map

            results = parallel_map(
                _sweep_cell,
                [(self, n, algorithm_factory, engine) for n in ns],
                workers=workers,
            )
            return dict(zip(ns, results))
        return {n: self.run(n, algorithm_factory, engine=engine) for n in ns}


def _sweep_cell(
    cell: tuple[
        "HypercubeExperiment",
        int,
        Callable[[Hypercube], RoutingAlgorithm] | None,
        str | None,
    ],
) -> SimulationResult:
    """Module-level sweep worker (must be picklable for process pools)."""
    exp, n, algorithm_factory, engine = cell
    return exp.run(n, algorithm_factory, engine=engine)
