"""Experiment driver: configuration, scale control, sweeps.

The paper simulates hypercubes of up to 16K nodes (n = 10..14).  A
pure-Python cycle simulator cannot sweep that range in CI time, so
every harness resolves its ``n`` range through :func:`scale_dimensions`:

* ``REPRO_SCALE=ci``      -> n = 4..6   (seconds; the test default)
* ``REPRO_SCALE=default`` -> n = 5..8   (tens of seconds)
* ``REPRO_SCALE=large``   -> n = 7..10  (minutes)
* ``REPRO_SCALE=paper``   -> n = 10..14 (the paper's range; hours)
* ``REPRO_NS=6,8,10``     -> explicit override

The reproduced quantity is the *shape* of each table (see
EXPERIMENTS.md), which is already visible at small n because the
latency model is exact (L = 2h + 1 uncontended).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.routing_function import RoutingAlgorithm
from ..routing.hypercube import (
    HypercubeAdaptiveRouting,
    HypercubeHungRouting,
)
from ..sim.engine import PacketSimulator
from ..sim.fastcube import FastHypercubeSimulator
from ..sim.injection import DynamicInjection, StaticInjection
from ..sim.metrics import SimulationResult
from ..sim.rng import make_rng
from ..sim.traffic import hypercube_pattern
from ..topology.hypercube import Hypercube

SCALES: dict[str, tuple[int, ...]] = {
    "ci": (4, 5, 6),
    "default": (5, 6, 7, 8),
    "large": (7, 8, 9, 10),
    "paper": (10, 11, 12, 13, 14),
}


def scale_dimensions(default: str = "ci") -> tuple[int, ...]:
    """Hypercube dimensions to sweep, honoring the environment."""
    explicit = os.environ.get("REPRO_NS")
    if explicit:
        return tuple(int(x) for x in explicit.replace(",", " ").split())
    scale = os.environ.get("REPRO_SCALE", default)
    if scale not in SCALES:
        raise ValueError(
            f"REPRO_SCALE={scale!r}; expected one of {sorted(SCALES)}"
        )
    return SCALES[scale]


def experiment_seed(default: int = 12345) -> int:
    return int(os.environ.get("REPRO_SEED", default))


@dataclass
class HypercubeExperiment:
    """One cell of the paper's evaluation grid."""

    pattern: str  #: random | complement | transpose | leveled | ...
    injection: str  #: "static" or "dynamic"
    packets_per_node: int = 1  #: static model only
    rate: float = 1.0  #: dynamic model only
    duration: int | None = None  #: dynamic cycles (None -> auto)
    warmup: int | None = None  #: dynamic warm-up (None -> auto)
    seed: int = 12345
    central_capacity: int = 5
    collect_occupancy: bool = False
    #: Routing-algorithm constructor (default: the paper's adaptive
    #: scheme); per-call ``algorithm_factory`` arguments override it.
    algorithm: Callable[[Hypercube], RoutingAlgorithm] | None = None

    def auto_duration(self, n: int) -> int:
        # Long enough for steady state at every n: latencies are
        # O(n)-to-O(n^2) under saturation, so a few hundred cycles
        # plus an n-dependent term keeps the measured window stable.
        return self.duration if self.duration is not None else 200 + 25 * n

    def auto_warmup(self, n: int) -> int:
        if self.warmup is not None:
            return self.warmup
        return self.auto_duration(n) // 3

    def build(
        self,
        n: int,
        algorithm_factory: Callable[[Hypercube], RoutingAlgorithm] | None = None,
    ) -> PacketSimulator:
        cube = Hypercube(n)
        factory = algorithm_factory or self.algorithm or HypercubeAdaptiveRouting
        alg = factory(cube)
        rng_traffic = make_rng(self.seed, f"traffic-{n}")
        pattern = hypercube_pattern(self.pattern, cube, rng_traffic)
        if self.injection == "static":
            model = StaticInjection(
                self.packets_per_node, pattern, make_rng(self.seed, f"inj-{n}")
            )
        elif self.injection == "dynamic":
            model = DynamicInjection(
                self.rate,
                pattern,
                make_rng(self.seed, f"inj-{n}"),
                duration=self.auto_duration(n),
                warmup=self.auto_warmup(n),
            )
        else:
            raise ValueError(f"unknown injection model {self.injection!r}")
        # The specialized fast engine is packet-for-packet identical to
        # the reference engine (tests/test_sim_fastcube.py); use it
        # whenever the algorithm qualifies and no occupancy sampling is
        # requested.
        if not self.collect_occupancy and type(alg) in (
            HypercubeAdaptiveRouting,
            HypercubeHungRouting,
        ):
            return FastHypercubeSimulator(
                alg, model, central_capacity=self.central_capacity
            )
        return PacketSimulator(
            alg,
            model,
            central_capacity=self.central_capacity,
            collect_occupancy=self.collect_occupancy,
        )

    def run(
        self,
        n: int,
        algorithm_factory: Callable[[Hypercube], RoutingAlgorithm] | None = None,
        max_cycles: int | None = None,
    ) -> SimulationResult:
        sim = self.build(n, algorithm_factory)
        return sim.run(max_cycles=max_cycles)

    def sweep(
        self,
        ns: Sequence[int],
        algorithm_factory: Callable[[Hypercube], RoutingAlgorithm] | None = None,
    ) -> dict[int, SimulationResult]:
        return {n: self.run(n, algorithm_factory) for n in ns}
