"""The promised "other topologies" evaluation.

Section 7 closes with "Simulations on higher-dimensional hypercubes
and other topologies will be reported soon" — results that never
appeared.  This module delivers them in the paper's own table format
for the mesh, torus, shuffle-exchange, and cube-connected cycles
algorithms, under the analogous traffic patterns:

* static injection (1 and k packets per node),
* dynamic Bernoulli injection at ``lambda`` (default 1),
* uniform random traffic plus one adversarial permutation per
  topology (transpose for mesh/torus, bit reversal for the
  shuffle-exchange, cube-complement for the CCC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.routing_function import RoutingAlgorithm
from ..routing.ccc import CCCAdaptiveRouting
from ..routing.mesh import Mesh2DAdaptiveRouting
from ..routing.shuffle_exchange import ShuffleExchangeRouting
from ..routing.torus import TorusRouting
from ..sim.injection import DynamicInjection, StaticInjection
from ..sim.metrics import SimulationResult
from ..sim.rng import make_rng
from ..sim.traffic import (
    BitReversalTraffic,
    MeshTransposeTraffic,
    PermutationTraffic,
    RandomTraffic,
    TornadoTraffic,
    TrafficPattern,
)
from ..topology.base import Topology
from ..topology.ccc import CubeConnectedCycles
from ..topology.hypercube import Hypercube
from ..topology.mesh import Mesh2D
from ..topology.shuffle_exchange import ShuffleExchange
from ..topology.torus import Torus
from .parallel import parallel_map
from .runner import build_simulator


class CCCComplementTraffic(PermutationTraffic):
    """CCC analogue of the complement: flip the cube address, keep the
    cycle position."""

    def __init__(self, topology: CubeConnectedCycles):
        mask = (1 << topology.n) - 1
        super().__init__(
            {u: (u[0] ^ mask, u[1]) for u in topology.nodes()},
            name="ccc-complement",
        )


class SEBitReversalTraffic(PermutationTraffic):
    """Bit-reversal permutation on shuffle-exchange addresses."""

    def __init__(self, topology: ShuffleExchange):
        n = topology.n

        def rev(u: int) -> int:
            return int(format(u, f"0{n}b")[::-1], 2)

        super().__init__(
            {u: rev(u) for u in topology.nodes()}, name="bit-reversal"
        )


@dataclass(frozen=True)
class TopologyFamily:
    """One topology family in the extended evaluation."""

    key: str
    build: Callable[[int], Topology]  #: size parameter -> topology
    algorithm: Callable[[Topology], RoutingAlgorithm]
    adversary: Callable[[Topology], TrafficPattern]
    sizes: tuple[int, ...]  #: default size sweep (CI scale)

    def size_label(self, size: int) -> str:
        return f"{self.build(size).num_nodes}"


FAMILIES: dict[str, TopologyFamily] = {
    "mesh": TopologyFamily(
        key="mesh",
        build=lambda s: Mesh2D(s),
        algorithm=Mesh2DAdaptiveRouting,
        adversary=MeshTransposeTraffic,
        sizes=(4, 6, 8),
    ),
    "torus": TopologyFamily(
        key="torus",
        build=lambda s: Torus((s, s)),
        algorithm=TorusRouting,
        adversary=TornadoTraffic,
        sizes=(4, 6, 8),
    ),
    "shuffle-exchange": TopologyFamily(
        key="shuffle-exchange",
        build=lambda s: ShuffleExchange(s),
        algorithm=ShuffleExchangeRouting,
        adversary=SEBitReversalTraffic,
        sizes=(4, 5, 6),
    ),
    "ccc": TopologyFamily(
        key="ccc",
        build=lambda s: CubeConnectedCycles(s),
        algorithm=CCCAdaptiveRouting,
        adversary=CCCComplementTraffic,
        sizes=(3, 4),
    ),
}


def run_cell(
    family: TopologyFamily,
    size: int,
    pattern: str,
    injection: str,
    packets: int = 1,
    rate: float = 1.0,
    duration: int | None = None,
    seed: int = 12345,
    engine: str | None = None,
) -> SimulationResult:
    """One simulation cell of the extended evaluation."""
    topo = family.build(size)
    alg = family.algorithm(topo)
    rng_t = make_rng(seed, f"{family.key}-traffic-{size}")
    if pattern == "random":
        traffic: TrafficPattern = RandomTraffic(topo)
    elif pattern == "adversary":
        traffic = family.adversary(topo)
    else:
        raise ValueError(f"unknown pattern {pattern!r}")
    if injection == "static":
        model = StaticInjection(packets, traffic, make_rng(seed, "inj"))
    elif injection == "dynamic":
        dur = duration if duration is not None else 200 + 10 * topo.diameter
        model = DynamicInjection(
            rate, traffic, make_rng(seed, "inj"), duration=dur, warmup=dur // 3
        )
    else:
        raise ValueError(f"unknown injection {injection!r}")
    sim = build_simulator(alg, model, engine=engine)
    return sim.run(max_cycles=2_000_000)


def _family_cell(
    cell: tuple[str, int, str, str, int, int, str | None],
) -> SimulationResult:
    """Module-level family worker (must be picklable for process pools)."""
    key, size, pattern, injection, packets, seed, engine = cell
    return run_cell(
        FAMILIES[key],
        size,
        pattern,
        injection,
        packets=packets,
        seed=seed,
        engine=engine,
    )


def family_table(
    key: str,
    pattern: str,
    injection: str,
    sizes: Sequence[int] | None = None,
    packets: int = 1,
    seed: int = 12345,
    workers: int | None = None,
    engine: str | None = None,
) -> list[dict]:
    """Paper-style rows for one family/pattern/injection combination.

    ``workers`` > 1 fans the per-size cells out to a process pool;
    per-cell RNG derivation keeps the rows identical to a serial run.
    """
    family = FAMILIES[key]
    use_sizes = tuple(sizes if sizes is not None else family.sizes)
    cells = [
        (key, size, pattern, injection, packets, seed, engine)
        for size in use_sizes
    ]
    results = parallel_map(_family_cell, cells, workers=workers or 1)
    rows = []
    for size, res in zip(use_sizes, results):
        row = {
            "size": size,
            "N": family.build(size).num_nodes,
            "L_avg": round(res.l_avg, 2),
            "L_max": res.l_max,
        }
        if res.attempts:
            row["I_r(%)"] = round(100 * res.injection_rate, 1)
        rows.append(row)
    return rows
