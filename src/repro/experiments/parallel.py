"""Process-pool fan-out for experiment sweeps.

Every experiment cell derives its RNG streams from
:func:`repro.sim.rng.make_rng` with a per-cell tag, so cells never
share mutable random state and can run in any order — including in
separate processes — without changing a single sampled value.  The
helpers here exploit that: :func:`parallel_map` preserves the input
order of the results, which makes a parallel sweep *byte-identical* to
the serial one (``tests/test_parallel_sweep.py`` asserts this).

Workers default to ``REPRO_WORKERS`` when set, else the CPU count.
Work functions and their arguments must be picklable: pass named
functions / classes, not lambdas or closures, when fanning out.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` when set, else the CPU count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally via a process pool.

    Results come back in input order.  ``workers=None`` resolves
    through :func:`default_workers`; ``workers<=1`` (or a single item)
    runs serially in-process, so callers can thread one knob through
    unconditionally.
    """
    work = list(items)
    n = default_workers() if workers is None else workers
    n = min(n, len(work))
    if n <= 1:
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=n) as pool:
        return list(pool.map(fn, work))
