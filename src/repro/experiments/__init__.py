"""Experiment harness: scale control, sweeps, and the paper's tables."""

from .paper import PAPER_TABLES, TableSpec, check_table_shape, run_table, table_result
from .parallel import default_workers, parallel_map
from .replication import (
    ReplicatedResult,
    ReplicateStats,
    mean_difference_ci95,
    replicate,
)
from .runner import (
    ENGINES,
    SCALES,
    HypercubeExperiment,
    build_simulator,
    engine_choice,
    experiment_seed,
    scale_dimensions,
)

__all__ = [
    "HypercubeExperiment",
    "scale_dimensions",
    "experiment_seed",
    "build_simulator",
    "engine_choice",
    "ENGINES",
    "SCALES",
    "parallel_map",
    "default_workers",
    "PAPER_TABLES",
    "TableSpec",
    "run_table",
    "table_result",
    "check_table_shape",
    "replicate",
    "ReplicateStats",
    "ReplicatedResult",
    "mean_difference_ci95",
]
