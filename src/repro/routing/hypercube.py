"""Hypercube routing algorithms (paper, Section 3).

The paper's algorithm hangs the hypercube from node ``0...0``:

* **Phase A** (queues ``qA``): the message corrects the *incorrect
  zeros* of its address into ones, moving "downwards" toward
  ``1...1``.
* **Phase B** (queues ``qB``): the message corrects the incorrect ones
  into zeros, moving back "upwards" toward ``0...0``.

With only these (static) moves the scheme — due to [BGSS89]/[Kon90] —
is deadlock free but crowds the region around ``1...1``.  The paper
adds **dynamic links** that also let a phase-A message correct a 1
into a 0 whenever it finds space, which makes the algorithm *fully
adaptive* and *minimal* while still using just two central queues per
node (Theorem 1).

This module ships three variants sharing the same queue structure:

* :class:`HypercubeAdaptiveRouting` — the paper's fully-adaptive
  algorithm (static + dynamic links),
* :class:`HypercubeHungRouting` — the underlying static two-phase
  algorithm (partially adaptive),
* :class:`HypercubeObliviousRouting` — a deterministic restriction
  (always the lowest eligible dimension) used as an oblivious baseline.

A fourth algorithm, :class:`repro.routing.buffer_pool.StructuredBufferPoolRouting`,
provides the classic hop-level structured-buffer-pool comparison point
the paper criticises as hardware-hungry.
"""

from __future__ import annotations

from typing import Any, Hashable

from ..core.hops import TableHopKernel
from ..core.queues import QueueId, deliver
from ..core.routing_function import DYNAMIC_CLASS, RoutingAlgorithm
from ..topology.hypercube import Hypercube

#: Phase-A central queue kind.
QA = "A"
#: Phase-B central queue kind.
QB = "B"


class HypercubeHungRouting(RoutingAlgorithm):
    """The underlying static two-phase ("hung") algorithm.

    Phase A corrects incorrect 0s (in any order — the scheme is
    partially adaptive); phase B corrects incorrect 1s (any order).
    Its QDG is acyclic, so it is deadlock free on its own.
    """

    name = "hypercube-hung"
    is_minimal = True
    is_fully_adaptive = False

    def __init__(self, topology: Hypercube):
        if not isinstance(topology, Hypercube):
            raise TypeError("requires a Hypercube topology")
        super().__init__(topology)
        self.n = topology.n

    # -- queue structure ------------------------------------------------
    def central_queue_kinds(self, node: int) -> tuple[str, ...]:
        return (QA, QB)

    # -- helpers ---------------------------------------------------------
    def _zeros_to_fix(self, u: int, dst: int) -> int:
        """Bit mask of dimensions where ``u`` has 0 and ``dst`` has 1."""
        return ~u & dst & self.topology._mask

    def _ones_to_fix(self, u: int, dst: int) -> int:
        """Bit mask of dimensions where ``u`` has 1 and ``dst`` has 0."""
        return u & ~dst & self.topology._mask

    @staticmethod
    def _dims(mask: int):
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    # -- routing function -------------------------------------------------
    def injection_targets(
        self, src: int, dst: int, state: Any = None
    ) -> frozenset[QueueId]:
        if self._zeros_to_fix(src, dst):
            return frozenset({QueueId(src, QA)})
        return frozenset({QueueId(src, QB)})

    def static_hops(
        self, q: QueueId, dst: int, state: Any = None
    ) -> frozenset[QueueId]:
        u = q.node
        if q.kind == QA:
            if u == dst:
                return frozenset({deliver(dst)})
            zeros = self._zeros_to_fix(u, dst)
            if zeros:
                return frozenset(
                    QueueId(u ^ (1 << i), QA) for i in self._dims(zeros)
                )
            # Only incorrect ones remain: change phase in place.
            return frozenset({QueueId(u, QB)})
        if q.kind == QB:
            if u == dst:
                return frozenset({deliver(dst)})
            diffs = u ^ dst
            return frozenset(
                QueueId(u ^ (1 << i), QB) for i in self._dims(diffs)
            )
        raise ValueError(f"no hops from {q}")

    def buffer_classes(self, u: int, v: int) -> tuple[str, ...]:
        """Down-links carry phase-A traffic, up-links phase-B traffic."""
        dim = self.topology.link_index(u, v)
        if (u >> dim) & 1 == 0:
            return (QA,)
        return (QB,)

    def compile_hops(self, layout):
        variant = _KERNEL_VARIANTS.get(type(self))
        if variant is None or type(self.topology) is not Hypercube:
            return None
        kernel = _HypercubeKernel(layout, self, *variant)
        return kernel if kernel.ok else None


class HypercubeAdaptiveRouting(HypercubeHungRouting):
    """The paper's fully-adaptive minimal algorithm (Theorem 1).

    Extends :class:`HypercubeHungRouting` with dynamic links: while a
    phase-A message still has a 0 to correct, it may also correct any
    incorrect 1, staying in the ``qA`` queues.
    """

    name = "hypercube-adaptive"
    is_minimal = True
    is_fully_adaptive = True

    def dynamic_hops(
        self, q: QueueId, dst: int, state: Any = None
    ) -> frozenset[QueueId]:
        if q.kind != QA:
            return frozenset()
        u = q.node
        if not self._zeros_to_fix(u, dst):
            return frozenset()
        ones = self._ones_to_fix(u, dst)
        return frozenset(QueueId(u ^ (1 << i), QA) for i in self._dims(ones))

    def buffer_classes(self, u: int, v: int) -> tuple[str, ...]:
        """Per Figure 4: down-links carry static-A traffic only;
        up-links carry static-B and dynamic-A traffic."""
        dim = self.topology.link_index(u, v)
        if (u >> dim) & 1 == 0:
            return (QA,)
        return (QB, DYNAMIC_CLASS)


class HypercubeObliviousRouting(HypercubeHungRouting):
    """Deterministic restriction of the hung scheme (oblivious baseline).

    Phase A corrects the lowest incorrect-0 dimension first; phase B
    the lowest incorrect-1 dimension.  Each source/destination pair has
    exactly one route, so the algorithm is oblivious, minimal, and
    (being a sub-function of the hung DAG) deadlock free.
    """

    name = "hypercube-oblivious"
    is_minimal = True
    is_fully_adaptive = False

    def static_hops(
        self, q: QueueId, dst: int, state: Any = None
    ) -> frozenset[QueueId]:
        hops = super().static_hops(q, dst, state)
        movers = [h for h in hops if h.is_central and h.node != q.node]
        if len(movers) <= 1:
            return hops
        # Keep only the lowest-dimension move.
        u = q.node
        best = min(movers, key=lambda h: (u ^ h.node).bit_length())
        return frozenset({best})


class _HypercubeKernel(TableHopKernel):
    """Integer hop kernel for the two-phase hypercube schemes.

    Global queue id factors as ``node * 2 + phase`` (phase 0 = ``qA``,
    1 = ``qB``); node labels equal node indices, so the hop relation is
    pure bit arithmetic.  Down-phase-B hops (clearing a 1 via a
    down-link) survive here and are slot-dropped by the generic
    assembly, exactly as the symbolic path drops them.
    """

    def __init__(self, layout, alg: HypercubeHungRouting, adaptive, oblivious):
        super().__init__(layout)
        self.mask = alg.topology._mask
        self.adaptive = adaptive
        self.oblivious = oblivious
        if self.kinds != (QA, QB) or layout.nodes != list(
            range(len(layout.nodes))
        ):
            self.ok = False

    def candidates(self, qid: int, dst: int, sid: int):
        u = qid >> 1
        if u == dst:
            return ((-1, sid),), ()
        if qid & 1 == 0:  # phase A
            zeros = ~u & dst & self.mask
            if not zeros:
                # Only incorrect ones remain: change phase in place.
                return (((u << 1) | 1, sid),), ()
            if self.oblivious and zeros & (zeros - 1):
                zeros &= -zeros  # lowest eligible dimension only
            st = []
            while zeros:
                low = zeros & -zeros
                st.append(((u ^ low) << 1, sid))
                zeros ^= low
            dy = []
            if self.adaptive:
                ones = u & ~dst & self.mask
                while ones:
                    low = ones & -ones
                    dy.append(((u ^ low) << 1, sid))
                    ones ^= low
            return tuple(st), tuple(dy)
        diffs = u ^ dst  # phase B
        if self.oblivious and diffs & (diffs - 1):
            diffs &= -diffs
        st = []
        while diffs:
            low = diffs & -diffs
            st.append((((u ^ low) << 1) | 1, sid))
            diffs ^= low
        return tuple(st), ()

    def inject_candidates(self, ui: int, dst: int, sid: int):
        if ~ui & dst & self.mask:
            return ((ui << 1, sid),)
        return (((ui << 1) | 1, sid),)


#: Exact classes the kernel vouches for -> (adaptive, oblivious).
_KERNEL_VARIANTS = {
    HypercubeHungRouting: (False, False),
    HypercubeAdaptiveRouting: (True, False),
    HypercubeObliviousRouting: (False, True),
}


def all_hypercube_algorithms(n: int) -> dict[str, RoutingAlgorithm]:
    """Instantiate every hypercube algorithm on an ``n``-cube."""
    cube = Hypercube(n)
    algos: dict[str, RoutingAlgorithm] = {}
    for cls in (
        HypercubeAdaptiveRouting,
        HypercubeHungRouting,
        HypercubeObliviousRouting,
    ):
        alg = cls(cube)
        algos[alg.name] = alg
    return algos
