"""Torus routing (paper, Section 4, last paragraph).

The paper states that a fully-adaptive minimal packet routing for tori
can be obtained with four central queues per node "following an idea
similar to [GPS91]", but gives no construction (the cited report was
unpublished).  This module is our *reconstruction* in the paper's own
dynamic-link framework; it is machine-verified by the test-suite with
:func:`repro.core.verification.verify_algorithm`.

Construction
------------
Each message fixes, at injection, the minimal ring direction per
dimension (ties broken toward ``+1``).  Central queues are indexed by
``(phase, class)`` where

* ``class`` counts the *datelines* crossed so far (the wrap edge of
  each ring); a minimal route crosses each dimension's dateline at
  most once, so ``class <= k`` for a k-dimensional torus;
* within a class the mesh discipline of Section 4 applies to the
  physical coordinates: phase A while an increasing non-wrap move
  remains (with dynamic links for decreasing moves), phase B
  afterwards.  Dateline crossings are static hops into class ``c+1``.

The static QDG is acyclic by the lexicographic order (class, phase,
+/- coordinate sum); the dynamic links satisfy the Section-2 escape
condition because a decreasing phase-A move never consumes the pending
increasing correction.

For a 2-D torus this yields ``2 * (2 + 1) = 6`` central queues — two
more than the paper's (unsubstantiated) count of 4.  Passing
``classes=2`` builds the literal 4-queue variant; our verifier shows
its static QDG is cyclic whenever some minimal route must cross two
datelines, which is why we ship the 6-queue scheme as the default.
"""

from __future__ import annotations

from typing import Any

from ..core.hops import TableHopKernel
from ..core.queues import QueueId, deliver
from ..core.routing_function import RoutingAlgorithm
from ..topology.mesh import Coord
from ..topology.torus import Torus


def _kind(phase: str, cls: int) -> str:
    return f"{phase}{cls}"


def _parse_kind(kind: str) -> tuple[str, int]:
    return kind[0], int(kind[1:])


class TorusRouting(RoutingAlgorithm):
    """Minimal adaptive deadlock-free packet routing on a k-dim torus."""

    name = "torus-adaptive"
    is_minimal = True
    # Fully adaptive whenever no ring has diametrically-opposite pairs
    # (odd ring sizes); with even rings the tie-break to +1 drops the
    # duplicate-direction minimal paths.
    is_fully_adaptive = True

    def __init__(self, topology: Torus, classes: int | None = None):
        if not isinstance(topology, Torus):
            raise TypeError("requires a Torus topology")
        super().__init__(topology)
        self.k = topology.k
        self.classes = classes if classes is not None else self.k + 1
        if self.classes < 1:
            raise ValueError("need at least one dateline class")
        self.name = f"torus-adaptive({2 * self.classes}q)"
        self.is_fully_adaptive = all(s % 2 == 1 for s in topology.shape)

    def central_queue_kinds(self, node: Coord) -> tuple[str, ...]:
        kinds = []
        for c in range(self.classes):
            kinds.append(_kind("A", c))
            kinds.append(_kind("B", c))
        return tuple(kinds)

    # -- per-message state: the fixed ring directions ---------------------
    def initial_state(self, src: Coord, dst: Coord) -> tuple[int, ...]:
        topo: Torus = self.topology
        dirs = []
        for i in range(self.k):
            opts = topo.minimal_directions(src[i], dst[i], i)
            dirs.append(opts[0] if opts else 0)
        return tuple(dirs)

    # -- move classification ----------------------------------------------
    def _moves(self, u: Coord, dst: Coord, dirs: tuple[int, ...]):
        """Yield ``(dim, v, kind)`` for every pending minimal move, where
        ``kind`` is ``'up'``, ``'down'``, or ``'cross'``."""
        topo: Torus = self.topology
        for i in range(self.k):
            if u[i] == dst[i] or dirs[i] == 0:
                continue
            delta = dirs[i]
            v = topo.step(u, i, delta)
            if topo.crosses_dateline(u, i, delta):
                yield i, v, "cross"
            elif delta > 0:
                yield i, v, "up"
            else:
                yield i, v, "down"

    def _next_class(self, c: int) -> int:
        return min(c + 1, self.classes - 1)

    # -- routing function ---------------------------------------------------
    def injection_targets(
        self, src: Coord, dst: Coord, state: Any = None
    ) -> frozenset[QueueId]:
        dirs = state if state is not None else self.initial_state(src, dst)
        moves = list(self._moves(src, dst, dirs))
        phase = "A" if any(k == "up" for *_x, k in moves) else "B"
        return frozenset({QueueId(src, _kind(phase, 0))})

    def static_hops(
        self, q: QueueId, dst: Coord, state: Any = None
    ) -> frozenset[QueueId]:
        u = q.node
        if u == dst:
            return frozenset({deliver(dst)})
        dirs = state if state is not None else self.initial_state(u, dst)
        phase, c = _parse_kind(q.kind)
        moves = list(self._moves(u, dst, dirs))
        ups = [v for _i, v, k in moves if k == "up"]
        downs = [v for _i, v, k in moves if k == "down"]
        crossings = [v for _i, v, k in moves if k == "cross"]
        if phase == "A":
            if not ups:
                # Nothing ascending left: change phase in place.
                return frozenset({QueueId(u, _kind("B", c))})
            hops = {QueueId(v, _kind("A", c)) for v in ups}
            hops |= {
                QueueId(v, _kind("A", self._next_class(c))) for v in crossings
            }
            return frozenset(hops)
        # Phase B: descending and crossing moves only.
        hops = {QueueId(v, _kind("B", c)) for v in downs}
        hops |= {
            QueueId(v, _kind("A", self._next_class(c))) for v in crossings
        }
        return frozenset(hops)

    def dynamic_hops(
        self, q: QueueId, dst: Coord, state: Any = None
    ) -> frozenset[QueueId]:
        u = q.node
        if u == dst:
            return frozenset()
        phase, c = _parse_kind(q.kind)
        if phase != "A":
            return frozenset()
        dirs = state if state is not None else self.initial_state(u, dst)
        moves = list(self._moves(u, dst, dirs))
        if not any(k == "up" for *_x, k in moves):
            return frozenset()
        return frozenset(
            QueueId(v, _kind("A", c)) for _i, v, k in moves if k == "down"
        )

    def compile_hops(self, layout):
        if type(self) is not TorusRouting or type(self.topology) is not Torus:
            return None
        kernel = _TorusKernel(layout, self)
        return kernel if kernel.ok else None


class _TorusKernel(TableHopKernel):
    """Integer hop kernel for the dateline-class torus scheme.

    Kind index factors as ``2 * class + phase`` (phase 0 = A, 1 = B);
    node indices are lexicographic coordinate ranks, so a wrap-aware
    step in dimension ``i`` is stride arithmetic.  The per-message
    direction vector is the (never-updated) routing state, recovered
    from the layout's state intern table.
    """

    def __init__(self, layout, alg: TorusRouting):
        super().__init__(layout)
        self.alg = alg
        topo = alg.topology
        self.k = alg.k
        self.classes = alg.classes
        self.shape = tuple(topo.shape)
        strides = [1] * self.k
        for i in range(self.k - 2, -1, -1):
            strides[i] = strides[i + 1] * self.shape[i + 1]
        self.strides = tuple(strides)
        expected = tuple(
            _kind(p, c) for c in range(self.classes) for p in ("A", "B")
        )
        if self.kinds != expected:
            self.ok = False

    def _moves_i(self, ui: int, u: Coord, d: Coord, dirs):
        """``(v_index, kind)`` per pending minimal move, dims ascending."""
        strides = self.strides
        shape = self.shape
        out = []
        for i in range(self.k):
            ci = u[i]
            delta = dirs[i]
            if ci == d[i] or delta == 0:
                continue
            s = shape[i]
            vi = ui + strides[i] * ((ci + delta) % s - ci)
            if (ci == s - 1) if delta > 0 else (ci == 0):
                out.append((vi, 2))  # crosses the dateline
            elif delta > 0:
                out.append((vi, 0))  # up
            else:
                out.append((vi, 1))  # down
        return out

    def _dirs(self, ui: int, dst_i: int, sid: int):
        dirs = self.t.states[sid]
        if dirs is None:
            dirs = self.alg.initial_state(
                self.t.nodes[ui], self.t.nodes[dst_i]
            )
        return dirs

    def candidates(self, qid: int, dst_i: int, sid: int):
        nk = self.nk
        ui, ki = divmod(qid, nk)
        if ui == dst_i:
            return ((-1, sid),), ()
        c, phase = divmod(ki, 2)
        nodes = self.t.nodes
        moves = self._moves_i(ui, nodes[ui], nodes[dst_i], self._dirs(ui, dst_i, sid))
        nc2 = 2 * min(c + 1, self.classes - 1)  # A kind of the next class
        if phase == 0:  # A
            ups = [(vi * nk + 2 * c, sid) for vi, kind in moves if kind == 0]
            if not ups:
                return ((qid + 1, sid),), ()  # B_c in place
            st = ups + [(vi * nk + nc2, sid) for vi, kind in moves if kind == 2]
            dy = tuple(
                (vi * nk + 2 * c, sid) for vi, kind in moves if kind == 1
            )
            return tuple(st), dy
        st = [  # phase B
            (vi * nk + 2 * c + 1, sid) for vi, kind in moves if kind == 1
        ] + [(vi * nk + nc2, sid) for vi, kind in moves if kind == 2]
        return tuple(st), ()

    def inject_candidates(self, ui: int, dst_i: int, sid: int):
        nodes = self.t.nodes
        moves = self._moves_i(ui, nodes[ui], nodes[dst_i], self._dirs(ui, dst_i, sid))
        phase = 0 if any(kind == 0 for _vi, kind in moves) else 1
        return ((ui * self.nk + phase, sid),)
