"""Mesh routing algorithms (paper, Section 4).

The mesh is hung from node ``(0, 0)`` in phase A and from
``(n-1, n-1)`` in phase B:

* **Phase A** (queues ``qA``): static hops increase a coordinate that
  is below its destination value; the *dynamic links* additionally
  allow any minimal decreasing hop while an increasing correction
  remains.
* **Phase B** (queues ``qB``): hops decrease coordinates toward the
  destination.  A message switches A -> B (an internal move) once every
  destination coordinate is <= its current coordinate.

The paper presents the restricted (static-only) scheme first and then
the fully-adaptive extension; both are implemented, plus an oblivious
deterministic restriction as a baseline.  Everything is written for
k-dimensional meshes (the paper notes the generalisation is easy); the
2-D classes below merely fix ``k = 2``.
"""

from __future__ import annotations

from typing import Any

from ..core.hops import TableHopKernel
from ..core.queues import QueueId, deliver
from ..core.routing_function import RoutingAlgorithm
from ..topology.mesh import Coord, Mesh, Mesh2D

QA = "A"
QB = "B"


class MeshRestrictedRouting(RoutingAlgorithm):
    """The paper's first (static, partially adaptive) mesh scheme.

    Phase A moves only toward higher coordinates; phase B only toward
    lower ones.  Its QDG is acyclic.  A message heading "north-west"
    (one coordinate up, one down) has exactly one route — no adaptivity
    at all, which is the motivation for the dynamic-link extension.
    """

    name = "mesh-restricted"
    is_minimal = True
    is_fully_adaptive = False

    def __init__(self, topology: Mesh):
        if not isinstance(topology, Mesh):
            raise TypeError("requires a Mesh topology")
        super().__init__(topology)
        self.k = topology.k

    def central_queue_kinds(self, node: Coord) -> tuple[str, ...]:
        return (QA, QB)

    # -- helpers ---------------------------------------------------------
    def _ups(self, u: Coord, dst: Coord) -> tuple[int, ...]:
        """Dimensions still needing an increasing correction."""
        return tuple(i for i in range(self.k) if dst[i] > u[i])

    def _downs(self, u: Coord, dst: Coord) -> tuple[int, ...]:
        """Dimensions still needing a decreasing correction."""
        return tuple(i for i in range(self.k) if dst[i] < u[i])

    # -- routing function -------------------------------------------------
    def injection_targets(
        self, src: Coord, dst: Coord, state: Any = None
    ) -> frozenset[QueueId]:
        if self._ups(src, dst):
            return frozenset({QueueId(src, QA)})
        return frozenset({QueueId(src, QB)})

    def static_hops(
        self, q: QueueId, dst: Coord, state: Any = None
    ) -> frozenset[QueueId]:
        u = q.node
        topo: Mesh = self.topology
        if q.kind == QA:
            if u == dst:
                return frozenset({deliver(dst)})
            ups = self._ups(u, dst)
            if ups:
                return frozenset(
                    QueueId(topo.step(u, i, +1), QA) for i in ups
                )
            return frozenset({QueueId(u, QB)})
        if q.kind == QB:
            if u == dst:
                return frozenset({deliver(dst)})
            return frozenset(
                QueueId(topo.step(u, i, -1), QB)
                for i in self._downs(u, dst)
            )
        raise ValueError(f"no hops from {q}")

    def compile_hops(self, layout):
        variant = _KERNEL_VARIANTS.get(type(self))
        if variant is None or type(self.topology) not in (Mesh, Mesh2D):
            return None
        kernel = _MeshKernel(layout, self, *variant)
        return kernel if kernel.ok else None


class MeshAdaptiveRouting(MeshRestrictedRouting):
    """The paper's fully-adaptive minimal mesh algorithm (Theorem 2).

    Dynamic links let a phase-A message also take any minimal
    *decreasing* hop, provided an increasing correction remains (so a
    static escape path survives).
    """

    name = "mesh-adaptive"
    is_minimal = True
    is_fully_adaptive = True

    def dynamic_hops(
        self, q: QueueId, dst: Coord, state: Any = None
    ) -> frozenset[QueueId]:
        if q.kind != QA:
            return frozenset()
        u = q.node
        if not self._ups(u, dst):
            return frozenset()
        topo: Mesh = self.topology
        return frozenset(
            QueueId(topo.step(u, i, -1), QA) for i in self._downs(u, dst)
        )


class MeshObliviousRouting(MeshRestrictedRouting):
    """Deterministic restriction (lowest dimension first): oblivious
    minimal baseline with the same two-queue structure."""

    name = "mesh-oblivious"
    is_minimal = True
    is_fully_adaptive = False

    def static_hops(
        self, q: QueueId, dst: Coord, state: Any = None
    ) -> frozenset[QueueId]:
        hops = super().static_hops(q, dst, state)
        movers = sorted(
            (h for h in hops if h.is_central and h.node != q.node),
            key=lambda h: h.node,
        )
        if len(movers) <= 1:
            return hops
        return frozenset({movers[0]})


class _MeshKernel(TableHopKernel):
    """Integer hop kernel for the two-phase mesh schemes.

    Node indices are lexicographic coordinate ranks, so a ``+1`` step
    in dimension ``i`` is ``+stride[i]`` on the index; global queue id
    factors as ``node * 2 + phase``.  The node-index order equals the
    coordinate-tuple order, so the oblivious tie-break (lowest node)
    is ``min`` over candidate indices.
    """

    def __init__(self, layout, alg: MeshRestrictedRouting, adaptive, oblivious):
        super().__init__(layout)
        shape = alg.topology.shape
        self.k = alg.k
        strides = [1] * self.k
        for i in range(self.k - 2, -1, -1):
            strides[i] = strides[i + 1] * shape[i + 1]
        self.strides = tuple(strides)
        self.adaptive = adaptive
        self.oblivious = oblivious
        if self.kinds != (QA, QB):
            self.ok = False

    def candidates(self, qid: int, dst_i: int, sid: int):
        ui = qid >> 1
        if ui == dst_i:
            return ((-1, sid),), ()
        nodes = self.t.nodes
        u = nodes[ui]
        d = nodes[dst_i]
        strides = self.strides
        rng = range(self.k)
        if qid & 1 == 0:  # phase A
            st = [((ui + strides[i]) << 1, sid) for i in rng if d[i] > u[i]]
            if not st:
                # Only decreasing corrections remain: phase flip in place.
                return ((qid | 1, sid),), ()
            if self.oblivious and len(st) > 1:
                st = [min(st)]
            dy = ()
            if self.adaptive:
                dy = tuple(
                    ((ui - strides[i]) << 1, sid) for i in rng if d[i] < u[i]
                )
            return tuple(st), dy
        st = [  # phase B
            (((ui - strides[i]) << 1) | 1, sid) for i in rng if d[i] < u[i]
        ]
        if self.oblivious and len(st) > 1:
            st = [min(st)]
        return tuple(st), ()

    def inject_candidates(self, ui: int, dst_i: int, sid: int):
        nodes = self.t.nodes
        u = nodes[ui]
        d = nodes[dst_i]
        if any(d[i] > u[i] for i in range(self.k)):
            return ((ui << 1, sid),)
        return (((ui << 1) | 1, sid),)


class Mesh2DRestrictedRouting(MeshRestrictedRouting):
    """Section 4's first routing function, on a 2-D mesh."""

    name = "mesh2d-restricted"

    def __init__(self, topology: Mesh2D):
        if not isinstance(topology, Mesh2D):
            raise TypeError("requires a Mesh2D topology")
        super().__init__(topology)


class Mesh2DAdaptiveRouting(MeshAdaptiveRouting):
    """Section 4's fully-adaptive routing function, on a 2-D mesh."""

    name = "mesh2d-adaptive"

    def __init__(self, topology: Mesh2D):
        if not isinstance(topology, Mesh2D):
            raise TypeError("requires a Mesh2D topology")
        super().__init__(topology)


#: Exact classes the kernel vouches for -> (adaptive, oblivious).
_KERNEL_VARIANTS = {
    MeshRestrictedRouting: (False, False),
    MeshAdaptiveRouting: (True, False),
    MeshObliviousRouting: (False, True),
    Mesh2DRestrictedRouting: (False, False),
    Mesh2DAdaptiveRouting: (True, False),
}
