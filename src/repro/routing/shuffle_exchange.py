"""Shuffle-exchange routing (paper, Section 5).

A message from ``s`` to ``d`` traverses (at most) ``2n`` shuffle links
— two sweeps over the ``n`` bit positions — and corrects the current
least-significant bit with an exchange link when needed:

* **Phase 1** (shuffle counts ``0 .. n-1``): a bit that must change
  from 0 to 1 is corrected *now* (mandatory — phase 2 cannot raise
  levels); a 1 -> 0 correction may be taken early over a **dynamic
  link** if space is available, otherwise it is deferred.
* **Phase 2** (shuffle counts ``n .. 2n-1``): the remaining 1 -> 0
  corrections are mandatory.

Every exchange in phase 1 moves the message to a shuffle cycle of
*higher* level (Hamming weight) — except the dynamic early 1 -> 0
corrections — and every exchange in phase 2 to a *lower* level, which
orders the cycles.  Each shuffle cycle itself is broken Dally-Seitz
style with a small number of per-cycle queue classes: a message enters
a cycle in class 0 and bumps its class each time a shuffle hop lands
on the cycle's designated *break node* (the smallest address).

The paper's claim of two classes per phase (4 central queues total)
holds whenever no message dwells in one cycle for more than one full
revolution.  For some composite ``n`` a message can wrap a short cycle
several times (e.g. ``n = 4``, cycle ``{0101, 1010}``), which needs
extra classes; :func:`required_classes_per_phase` computes the exact
requirement and the constructor sizes the queue set accordingly (the
divergence is recorded in EXPERIMENTS.md).  Tests machine-verify
acyclicity either way.

Bit bookkeeping: after ``k`` of the planned ``2n`` left-rotations, the
current LSB is the bit that will finally rest at position
``(-k) mod n``; hence the exchange at count ``k`` targets destination
bit ``d[(n - k % n) % n]``.  Messages carry ``k`` as routing state.

Messages are consumed eagerly: the first time a message is physically
at its destination node it moves to the delivery queue (the paper
allows either this or completing all ``2n`` shuffles).
"""

from __future__ import annotations

from math import gcd
from typing import Any

from ..core.hops import TableHopKernel
from ..core.queues import QueueId, deliver
from ..core.routing_function import RoutingAlgorithm
from ..topology.shuffle_exchange import ShuffleExchange, shuffle_cycle


def required_classes_per_phase(n: int) -> int:
    """Queue classes per phase needed so no message outlives them.

    A message performs at most ``n`` consecutive shuffles inside one
    phase; dwelling in a cycle of length ``c`` it can enter the break
    node at most ``ceil(n / c)`` times, and each entry bumps the class.
    The bound is attained only for cycles shorter than ``n``; cycles of
    length 1 are traversed as internal no-ops and need no breaking.
    """
    lengths = set()
    seen: set[int] = set()
    for u in range(1 << n):
        if u in seen:
            continue
        cyc = shuffle_cycle(u, n)
        seen.update(cyc)
        if len(cyc) > 1:
            lengths.add(len(cyc))
    if not lengths:
        return 1
    worst = max((n + c - 1) // c for c in lengths)
    return max(2, worst + 1)


def _kind(phase: int, cls: int) -> str:
    return f"P{phase}C{cls}"


def _parse_kind(kind: str) -> tuple[int, int]:
    p, c = kind[1:].split("C")
    return int(p), int(c)


class ShuffleExchangeRouting(RoutingAlgorithm):
    """The paper's adaptive deadlock-free shuffle-exchange algorithm."""

    name = "shuffle-exchange-adaptive"
    is_minimal = False
    is_fully_adaptive = False

    def __init__(
        self,
        topology: ShuffleExchange,
        classes_per_phase: int | None = None,
        adaptive: bool = True,
    ):
        if not isinstance(topology, ShuffleExchange):
            raise TypeError("requires a ShuffleExchange topology")
        super().__init__(topology)
        self.n = topology.n
        self.classes = (
            classes_per_phase
            if classes_per_phase is not None
            else required_classes_per_phase(self.n)
        )
        self.adaptive = adaptive
        tag = "adaptive" if adaptive else "static"
        self.name = f"shuffle-exchange-{tag}({2 * self.classes}q)"
        self.max_hops = 3 * self.n

    def central_queue_kinds(self, node: int) -> tuple[str, ...]:
        return tuple(
            _kind(p, c) for p in (1, 2) for c in range(self.classes)
        )

    # -- bit bookkeeping ---------------------------------------------------
    def target_bit(self, dst: int, k: int) -> int:
        """Destination bit correctable by an exchange at shuffle count ``k``."""
        pos = (self.n - (k % self.n)) % self.n
        return (dst >> pos) & 1

    # -- per-message state: the shuffle count -------------------------------
    def initial_state(self, src: int, dst: int) -> int:
        return 0

    def update_state(self, state: int, q_from: QueueId, q_to: QueueId) -> int:
        if q_to.is_delivery or q_from.is_injection:
            return state
        u, v = q_from.node, q_to.node
        topo: ShuffleExchange = self.topology
        if u == v:
            # Internal move: either a degenerate self-shuffle (count
            # advances) or a phase switch carried by a self-shuffle.
            return state + 1
        if topo.is_shuffle_link(u, v):
            return state + 1
        return state  # exchange: count unchanged

    # -- routing function ----------------------------------------------------
    def injection_targets(
        self, src: int, dst: int, state: Any = None
    ) -> frozenset[QueueId]:
        return frozenset({QueueId(src, _kind(1, 0))})

    def _shuffle_hop(self, q: QueueId, k: int) -> QueueId:
        """Queue reached by taking the shuffle link at count ``k``."""
        topo: ShuffleExchange = self.topology
        u = q.node
        v = topo.shuffle(u)
        phase, cls = _parse_kind(q.kind)
        new_phase = 1 if k + 1 < self.n else 2
        if new_phase != phase:
            return QueueId(v, _kind(new_phase, 0))
        if v != u and v == topo.break_node(u):
            cls = min(cls + 1, self.classes - 1)
        return QueueId(v, _kind(phase, cls))

    def static_hops(
        self, q: QueueId, dst: int, state: Any = None
    ) -> frozenset[QueueId]:
        k = state if state is not None else 0
        u = q.node
        if u == dst:
            return frozenset({deliver(dst)})
        phase, _cls = _parse_kind(q.kind)
        if k >= 2 * self.n:
            raise RuntimeError(
                f"message at {q} exhausted its {2 * self.n} shuffles "
                f"without reaching {dst}"
            )
        lsb = u & 1
        want = self.target_bit(dst, k)
        if lsb != want:
            if phase == 1 and want == 1:
                # Mandatory 0 -> 1 correction (raises the cycle level).
                return frozenset({QueueId(u ^ 1, _kind(1, 0))})
            if phase == 2:
                # Mandatory 1 -> 0 correction (lowers the cycle level).
                return frozenset({QueueId(u ^ 1, _kind(2, 0))})
            # Phase 1, deferrable 1 -> 0 correction: shuffle onwards.
        return frozenset({self._shuffle_hop(q, k)})

    def dynamic_hops(
        self, q: QueueId, dst: int, state: Any = None
    ) -> frozenset[QueueId]:
        if not self.adaptive:
            return frozenset()
        k = state if state is not None else 0
        u = q.node
        if u == dst:
            return frozenset()
        phase, _cls = _parse_kind(q.kind)
        if phase != 1 or k >= 2 * self.n:
            return frozenset()
        lsb = u & 1
        want = self.target_bit(dst, k)
        if lsb == 1 and want == 0:
            # Early 1 -> 0 correction over a dynamic link.
            return frozenset({QueueId(u ^ 1, _kind(1, 0))})
        return frozenset()

    def compile_hops(self, layout):
        if (
            type(self) is not ShuffleExchangeRouting
            or type(self.topology) is not ShuffleExchange
        ):
            return None
        kernel = _ShuffleExchangeKernel(layout, self)
        return kernel if kernel.ok else None


class _ShuffleExchangeKernel(TableHopKernel):
    """Integer hop kernel for the shuffle-exchange scheme.

    Node labels equal node indices; kind index factors as
    ``(phase - 1) * classes + cls``.  The shuffle successor and the
    break-node bump are precomputed per node; the shuffle count (the
    routing state) comes from the layout's state intern table, and
    count advances intern ``k + 1`` through the same
    :meth:`~repro.sim.tables.RoutingTables.state_id` the symbolic path
    uses.  Keys with an exhausted count (``k >= 2n``) are declined so
    the symbolic path raises its usual error.
    """

    def __init__(self, layout, alg: ShuffleExchangeRouting):
        super().__init__(layout)
        self.alg = alg
        topo = alg.topology
        n = alg.n
        self.n = n
        self.n2 = 2 * n
        self.classes = alg.classes
        self.adaptive = alg.adaptive
        size = 1 << n
        expected = tuple(
            _kind(p, c) for p in (1, 2) for c in range(self.classes)
        )
        if self.kinds != expected or layout.nodes != list(range(size)):
            self.ok = False
            return
        self.rol = [topo.shuffle(u) for u in range(size)]
        self.bump = [
            v != u and v == topo.break_node(u)
            for u, v in enumerate(self.rol)
        ]

    def candidates(self, qid: int, dst: int, sid: int):
        nk = self.nk
        u, ki = divmod(qid, nk)
        if u == dst:
            return ((-1, sid),), ()
        k = self.t.states[sid]
        if k is None or k >= self.n2:
            # Decline: the symbolic path raises its usual error (state
            # advance on None, or "exhausted its shuffles").
            return None
        n = self.n
        classes = self.classes
        phase2 = ki >= classes  # True in phase 2
        want = (dst >> ((n - k % n) % n)) & 1
        lsb = u & 1
        dy = ()
        if self.adaptive and not phase2 and lsb == 1 and want == 0:
            dy = (((u ^ 1) * nk, sid),)  # early 1 -> 0 over a dynamic link
        if lsb != want:
            if not phase2 and want == 1:
                return (((u ^ 1) * nk, sid),), dy  # mandatory 0 -> 1
            if phase2:
                return (((u ^ 1) * nk + classes, sid),), dy  # mandatory 1 -> 0
        v = self.rol[u]  # shuffle onwards
        if (k + 1 < n) == phase2:  # the shuffle flips the phase
            kind_idx = 0 if k + 1 < n else classes
        else:
            cls = ki - classes if phase2 else ki
            if self.bump[u]:
                cls = min(cls + 1, classes - 1)
            kind_idx = (classes if phase2 else 0) + cls
        return ((v * nk + kind_idx, self.t.state_id(k + 1)),), dy

    def inject_candidates(self, ui: int, dst: int, sid: int):
        return ((ui * self.nk, sid),)  # always P1C0
