"""Routing algorithms: the paper's schemes and baselines."""

from .buffer_pool import StructuredBufferPoolRouting
from .benes import BenesAdaptiveRouting, BenesObliviousRouting, BenesTraffic
from .ccc import CCCAdaptiveRouting
from .hypercube import (
    HypercubeAdaptiveRouting,
    HypercubeHungRouting,
    HypercubeObliviousRouting,
    all_hypercube_algorithms,
)
from .mesh import (
    Mesh2DAdaptiveRouting,
    Mesh2DRestrictedRouting,
    MeshAdaptiveRouting,
    MeshObliviousRouting,
    MeshRestrictedRouting,
)
from .shuffle_exchange import (
    ShuffleExchangeRouting,
    required_classes_per_phase,
)
from .torus import TorusRouting

__all__ = [
    "BenesAdaptiveRouting",
    "BenesObliviousRouting",
    "BenesTraffic",
    "CCCAdaptiveRouting",
    "HypercubeAdaptiveRouting",
    "HypercubeHungRouting",
    "HypercubeObliviousRouting",
    "all_hypercube_algorithms",
    "MeshRestrictedRouting",
    "MeshAdaptiveRouting",
    "MeshObliviousRouting",
    "Mesh2DRestrictedRouting",
    "Mesh2DAdaptiveRouting",
    "TorusRouting",
    "ShuffleExchangeRouting",
    "required_classes_per_phase",
    "StructuredBufferPoolRouting",
]
