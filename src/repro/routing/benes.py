"""Leveled routing on the Beneš network.

Messages travel from a level-0 input to a level-``2n`` output.  In the
first ``n`` stages both out-links are usable (``2**n`` path choices —
the full-adaptivity playground the paper attributes to
multibutterfly-style networks); in the mirrored second half stage
``n + j`` fixes row bit ``j``, so the out-link is forced.

Because every hop strictly advances the level, the QDG is acyclic with
a **single central queue per node** — the levels are a ready-made
hanging order, no phases or dynamic links needed.  This gives the
framework a third structural regime next to the two-phase cube/mesh
schemes and the cycle-breaking SE/CCC schemes.

:class:`BenesObliviousRouting` restricts the first half to the
bit-controlled canonical path (a single route per pair), the classic
congestion-prone baseline.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from ..core.hops import TableHopKernel
from ..core.queues import QueueId, deliver
from ..core.routing_function import RoutingAlgorithm
from ..sim.traffic import TrafficPattern
from ..topology.benes import BenesNetwork, Node

Q = "Q"


class BenesAdaptiveRouting(RoutingAlgorithm):
    """Fully-adaptive minimal leveled routing (1 central queue/node)."""

    name = "benes-adaptive"
    is_minimal = True
    is_fully_adaptive = True

    def __init__(self, topology: BenesNetwork):
        if not isinstance(topology, BenesNetwork):
            raise TypeError("requires a BenesNetwork topology")
        super().__init__(topology)
        self.n = topology.n

    def central_queue_kinds(self, node: Node) -> tuple[str, ...]:
        return (Q,)

    def injection_targets(
        self, src: Node, dst: Node, state: Any = None
    ) -> frozenset[QueueId]:
        if src[0] != 0 or dst[0] != 2 * self.n:
            raise ValueError(
                "Benes routing goes from level-0 inputs to level-2n outputs"
            )
        return frozenset({QueueId(src, Q)})

    def static_hops(
        self, q: QueueId, dst: Node, state: Any = None
    ) -> frozenset[QueueId]:
        u = q.node
        if u == dst:
            return frozenset({deliver(dst)})
        topo: BenesNetwork = self.topology
        l, r = u
        if l < self.n:
            # Free half: either out-link, provided the output row stays
            # reachable (always true in the free half).
            return frozenset(QueueId(v, Q) for v in topo.neighbors(u))
        # Forced half: stage n+j fixes row bit j.
        j = topo.stage_bit(l)
        want = (dst[1] >> j) & 1
        bit = 1 << j
        v = (l + 1, (r & ~bit) | (want << j))
        return frozenset({QueueId(v, Q)})

    def compile_hops(self, layout):
        oblivious = _KERNEL_VARIANTS.get(type(self))
        if oblivious is None or type(self.topology) is not BenesNetwork:
            return None
        kernel = _BenesKernel(layout, self, oblivious)
        return kernel if kernel.ok else None


class BenesObliviousRouting(BenesAdaptiveRouting):
    """Bit-controlled single-path baseline (straight in the free half)."""

    name = "benes-oblivious"
    is_fully_adaptive = False

    def static_hops(
        self, q: QueueId, dst: Node, state: Any = None
    ) -> frozenset[QueueId]:
        hops = super().static_hops(q, dst, state)
        u = q.node
        if u[0] < self.n and len(hops) > 1:
            straight = QueueId((u[0] + 1, u[1]), Q)
            return frozenset({straight})
        return hops


class _BenesKernel(TableHopKernel):
    """Integer hop kernel for leveled Beneš routing.

    Nodes are level-major (``index = level * rows + row``) and there is
    one queue kind, so queue ids equal node indices.  Off-network keys
    (messages past the output level, injections not input-to-output)
    are declined so the symbolic path raises its usual errors.
    """

    def __init__(self, layout, alg: BenesAdaptiveRouting, oblivious):
        super().__init__(layout)
        n = alg.n
        self.n = n
        self.rows = 1 << n
        self.oblivious = oblivious
        if self.kinds != (Q,) or layout.nodes != [
            (l, r) for l in range(2 * n + 1) for r in range(self.rows)
        ]:
            self.ok = False

    def candidates(self, qid: int, dst_i: int, sid: int):
        if qid == dst_i:
            return ((-1, sid),), ()
        rows = self.rows
        l, r = divmod(qid, rows)
        if l < self.n:
            # Free half: straight and cross out-links.
            straight = qid + rows
            if self.oblivious:
                return ((straight, sid),), ()
            bit = 1 << (self.n - 1 - l)
            return ((straight, sid), (straight ^ bit, sid)), ()
        if l >= 2 * self.n:
            return None  # symbolic path raises "no stage at level ..."
        j = l - self.n  # forced half: stage n+j fixes row bit j
        want = (dst_i % rows >> j) & 1
        bit = 1 << j
        return (((l + 1) * rows + ((r & ~bit) | (want << j)), sid),), ()

    def inject_candidates(self, ui: int, dst_i: int, sid: int):
        if ui >= self.rows or dst_i < 2 * self.n * self.rows:
            return None  # symbolic path raises the level-check ValueError
        return ((ui, sid),)


#: Exact classes the kernel vouches for -> oblivious flag.
_KERNEL_VARIANTS = {
    BenesAdaptiveRouting: False,
    BenesObliviousRouting: True,
}


class BenesTraffic(TrafficPattern):
    """Input-to-output traffic for the Beneš network.

    Level-0 nodes draw a destination output; every other node is
    silent (draws itself).  With ``permutation`` set, a fixed random
    output permutation is used instead of uniform draws.
    """

    def __init__(
        self,
        topology: BenesNetwork,
        rng: np.random.Generator | None = None,
        permutation: bool = False,
    ):
        self.topology = topology
        self.out_level = 2 * topology.n
        self.rows = topology.rows
        self.is_permutation = permutation
        self.name = "benes-permutation" if permutation else "benes-random"
        self.mapping: dict[Hashable, Hashable] = {}
        if permutation:
            if rng is None:
                raise ValueError("permutation traffic needs an RNG")
            perm = rng.permutation(self.rows)
            self.mapping = {
                (0, r): (self.out_level, int(perm[r])) for r in range(self.rows)
            }

    def draw(self, src: Hashable, rng: np.random.Generator) -> Hashable:
        if src[0] != 0:
            return src  # non-inputs stay silent
        if self.mapping:
            return self.mapping[src]
        return (self.out_level, int(rng.integers(self.rows)))
