"""Adaptive deadlock-free routing on cube-connected cycles.

Our application of the paper's hanging methodology to the CCC
(the paper's introduction credits [PFGS91] with such constructions;
that report was never published, so this is a reconstruction in the
same style as the shuffle-exchange algorithm of Section 5):

* Hang the cube part from ``0...0``.  **Phase 1** corrects the cube
  bits that must rise (0 -> 1), visiting cycles of increasing level;
  **phase 2** corrects the falling bits (1 -> 0) and then walks to the
  destination's cycle position.
* Within a phase, messages travel around a cycle only in the
  ascending (+1) direction, taking the dimension-``p`` cube link
  whenever the current position ``p`` is a bit the phase must correct.
  Each cycle (a ring) is broken Dally-Seitz style with two queue
  classes: a message enters a cycle in class ``a`` and bumps to ``b``
  when its cycle walk enters position 0.
* **Dynamic links**: a phase-1 message may take a falling (1 -> 0)
  cube link early whenever it finds space, exactly like the dynamic
  exchanges of the shuffle-exchange scheme.

A message needs at most one correction per cycle visit and at most
``n - 1`` cycle steps between corrections, so it crosses a cycle's
break point at most once per visit and two classes per phase suffice:
**4 central queues per node**, independent of ``n`` — machine-verified
by the test-suite.  Routes are not minimal (cycle walks are one-way),
bounded by ``O(n)`` hops, matching the CCC's ``Theta(n)`` diameter.
"""

from __future__ import annotations

from typing import Any

from ..core.hops import TableHopKernel
from ..core.queues import QueueId, deliver
from ..core.routing_function import RoutingAlgorithm
from ..topology.ccc import CubeConnectedCycles, Node


def _kind(phase: int, cls: int) -> str:
    return f"P{phase}{'ab'[cls]}"


def _parse_kind(kind: str) -> tuple[int, int]:
    return int(kind[1]), "ab".index(kind[2])


class CCCAdaptiveRouting(RoutingAlgorithm):
    """Two-phase adaptive deadlock-free CCC routing (4 queues/node)."""

    name = "ccc-adaptive"
    is_minimal = False
    is_fully_adaptive = False

    def __init__(self, topology: CubeConnectedCycles, adaptive: bool = True):
        if not isinstance(topology, CubeConnectedCycles):
            raise TypeError("requires a CubeConnectedCycles topology")
        super().__init__(topology)
        self.n = topology.n
        self.adaptive = adaptive
        if not adaptive:
            self.name = "ccc-static"

    def central_queue_kinds(self, node: Node) -> tuple[str, ...]:
        return ("P1a", "P1b", "P2a", "P2b")

    # -- bit bookkeeping ---------------------------------------------------
    def _rising(self, w: int, dst_w: int) -> int:
        return ~w & dst_w & self.topology._mask

    def _falling(self, w: int, dst_w: int) -> int:
        return w & ~dst_w & self.topology._mask

    # -- routing function ----------------------------------------------------
    def injection_targets(
        self, src: Node, dst: Node, state: Any = None
    ) -> frozenset[QueueId]:
        phase = 1 if self._rising(src[0], dst[0]) else 2
        return frozenset({QueueId(src, _kind(phase, 0))})

    def _cycle_hop(self, q: QueueId, phase: int, cls: int) -> QueueId:
        """Ascending cycle step; entering position 0 bumps the class."""
        topo: CubeConnectedCycles = self.topology
        v = topo.cycle_next(q.node)
        if v[1] == 0:
            cls = min(cls + 1, 1)
        return QueueId(v, _kind(phase, cls))

    def static_hops(
        self, q: QueueId, dst: Node, state: Any = None
    ) -> frozenset[QueueId]:
        u = q.node
        if u == dst:
            return frozenset({deliver(dst)})
        topo: CubeConnectedCycles = self.topology
        w, p = u
        dst_w, dst_p = dst
        phase, cls = _parse_kind(q.kind)
        if phase == 1:
            rising = self._rising(w, dst_w)
            if not rising:
                # Phase done: switch to phase 2 in place.
                return frozenset({QueueId(u, _kind(2, 0))})
            if (rising >> p) & 1:
                # Mandatory 0 -> 1 correction at this position.
                return frozenset({QueueId(topo.cube_partner(u), "P1a")})
            return frozenset({self._cycle_hop(q, 1, cls)})
        # Phase 2: falling corrections, then walk to the target position.
        falling = self._falling(w, dst_w)
        if (falling >> p) & 1:
            return frozenset({QueueId(topo.cube_partner(u), "P2a")})
        return frozenset({self._cycle_hop(q, 2, cls)})

    def dynamic_hops(
        self, q: QueueId, dst: Node, state: Any = None
    ) -> frozenset[QueueId]:
        if not self.adaptive:
            return frozenset()
        u = q.node
        if u == dst:
            return frozenset()
        w, p = u
        phase, _cls = _parse_kind(q.kind)
        if phase != 1:
            return frozenset()
        if not self._rising(w, dst[0]):
            return frozenset()
        if (self._falling(w, dst[0]) >> p) & 1:
            # Early 1 -> 0 correction over a dynamic link.
            topo: CubeConnectedCycles = self.topology
            return frozenset({QueueId(topo.cube_partner(u), "P1a")})
        return frozenset()

    def compile_hops(self, layout):
        if (
            type(self) is not CCCAdaptiveRouting
            or type(self.topology) is not CubeConnectedCycles
        ):
            return None
        kernel = _CCCKernel(layout, self)
        return kernel if kernel.ok else None


class _CCCKernel(TableHopKernel):
    """Integer hop kernel for the two-phase CCC scheme.

    Node ``(w, p)`` has index ``w * n + p`` (cycle-position-major
    within a cycle), so the cube partner is ``(w ^ (1 << p)) * n + p``
    and the ascending cycle step is position arithmetic; kind index
    factors as ``2 * (phase - 1) + cls``.  Stateless.
    """

    def __init__(self, layout, alg: CCCAdaptiveRouting):
        super().__init__(layout)
        n = alg.n
        self.n = n
        self.mask = alg.topology._mask
        self.adaptive = alg.adaptive
        if self.kinds != ("P1a", "P1b", "P2a", "P2b") or layout.nodes != [
            (w, p) for w in range(1 << n) for p in range(n)
        ]:
            self.ok = False

    def _cycle_hop_i(self, w: int, p: int, phase2: int, cls: int) -> int:
        np_ = p + 1
        if np_ == self.n:
            np_ = 0
        if np_ == 0:
            cls = 1  # entering position 0 bumps the class (min(cls+1, 1))
        return (w * self.n + np_) * 4 + 2 * phase2 + cls

    def candidates(self, qid: int, dst_i: int, sid: int):
        ui, ki = divmod(qid, 4)
        if ui == dst_i:
            return ((-1, sid),), ()
        n = self.n
        w, p = divmod(ui, n)
        dst_w = dst_i // n
        phase2, cls = divmod(ki, 2)
        partner = ((w ^ (1 << p)) * n + p) * 4
        if not phase2:
            rising = ~w & dst_w & self.mask
            if not rising:
                return ((ui * 4 + 2, sid),), ()  # switch to P2a in place
            dy = ()
            if self.adaptive and ((w & ~dst_w) >> p) & 1:
                dy = ((partner, sid),)  # early 1 -> 0 over a dynamic link
            if (rising >> p) & 1:
                return ((partner, sid),), dy  # mandatory 0 -> 1
            return ((self._cycle_hop_i(w, p, 0, cls), sid),), dy
        falling = w & ~dst_w & self.mask
        if (falling >> p) & 1:
            return ((partner + 2, sid),), ()  # mandatory 1 -> 0 (P2a)
        return ((self._cycle_hop_i(w, p, 1, cls), sid),), ()

    def inject_candidates(self, ui: int, dst_i: int, sid: int):
        n = self.n
        w = ui // n
        dst_w = dst_i // n
        phase2 = 0 if ~w & dst_w & self.mask else 2
        return ((ui * 4 + phase2, sid),)
