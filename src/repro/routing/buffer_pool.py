"""Structured buffer pool routing ([Gun81], [MS80]) — baseline.

The classic hop-level scheme the paper cites as the "add all necessary
resources" end of the design space: node queues are partitioned into
*levels* ``L0 .. L_D`` (``D`` = network diameter); a message that has
taken ``h`` hops occupies a level-``h`` queue, and every hop moves it
from level ``h`` to level ``h+1``.  Because levels strictly increase,
the QDG is trivially acyclic — at the cost of ``diameter + 1`` central
queues per node, which is exactly the hardware blow-up the paper's
two-queue algorithms avoid.

We pair it with minimal fully-adaptive hop selection so it doubles as
an upper-bound comparator for the ablation benchmarks.
"""

from __future__ import annotations

from typing import Any, Hashable

from ..core.hops import TableHopKernel
from ..core.queues import QueueId, deliver
from ..core.routing_function import RoutingAlgorithm
from ..topology.base import Topology


def _level_kind(h: int) -> str:
    return f"L{h}"


class StructuredBufferPoolRouting(RoutingAlgorithm):
    """Hop-level structured buffer pool over any topology.

    Works on every topology with symmetric links; the queue kind
    encodes the number of hops taken, so no per-message state is
    needed.
    """

    name = "structured-buffer-pool"
    is_minimal = True
    is_fully_adaptive = True

    def __init__(self, topology: Topology, levels: int | None = None):
        super().__init__(topology)
        self.levels = (levels if levels is not None else topology.diameter) + 1
        self.name = f"structured-buffer-pool({self.levels})"

    def central_queue_kinds(self, node: Hashable) -> tuple[str, ...]:
        return tuple(_level_kind(h) for h in range(self.levels))

    def injection_targets(
        self, src: Hashable, dst: Hashable, state: Any = None
    ) -> frozenset[QueueId]:
        return frozenset({QueueId(src, _level_kind(0))})

    def static_hops(
        self, q: QueueId, dst: Hashable, state: Any = None
    ) -> frozenset[QueueId]:
        u = q.node
        if u == dst:
            return frozenset({deliver(dst)})
        h = int(q.kind[1:])
        if h + 1 >= self.levels:
            raise RuntimeError(
                f"message exceeded buffer-pool levels at {q} (dst={dst})"
            )
        topo = self.topology
        du = topo.distance(u, dst)
        return frozenset(
            QueueId(v, _level_kind(h + 1))
            for v in topo.neighbors(u)
            if topo.distance(v, dst) == du - 1
        )

    def compile_hops(self, layout):
        if type(self) is not StructuredBufferPoolRouting:
            return None
        kernel = _BufferPoolKernel(layout, self)
        return kernel if kernel.ok else None


class _BufferPoolKernel(TableHopKernel):
    """Integer hop kernel for the hop-level buffer pool.

    Topology-agnostic: kind index equals the hop level, and minimal
    next hops come from the topology's own ``neighbors``/``distance``
    (the same calls the symbolic path makes).  Level-exhausted keys
    are declined so the symbolic path raises its usual error.
    """

    def __init__(self, layout, alg: StructuredBufferPoolRouting):
        super().__init__(layout)
        self.alg = alg
        self.levels = alg.levels
        if self.kinds != tuple(_level_kind(h) for h in range(self.levels)):
            self.ok = False

    def candidates(self, qid: int, dst_i: int, sid: int):
        ui, h = divmod(qid, self.nk)
        if ui == dst_i:
            return ((-1, sid),), ()
        if h + 1 >= self.levels:
            return None  # symbolic path raises "exceeded buffer-pool levels"
        t = self.t
        topo = self.alg.topology
        u = t.nodes[ui]
        dst = t.nodes[dst_i]
        du = topo.distance(u, dst)
        st = tuple(
            (t.nid[v] * self.nk + h + 1, sid)
            for v in topo.neighbors(u)
            if topo.distance(v, dst) == du - 1
        )
        return st, ()

    def inject_candidates(self, ui: int, dst_i: int, sid: int):
        return ((ui * self.nk, sid),)
