"""Command-line interface.

Examples
--------
Regenerate a paper table (optionally choosing sizes and seed)::

    python -m repro table 9 --ns 6,8 --seed 7

Regenerate a figure as text or DOT::

    python -m repro figure 1
    python -m repro figure 4 --dot

Machine-verify an algorithm instance::

    python -m repro verify hypercube-adaptive 4
    python -m repro verify torus 3x3
    python -m repro verify shuffle-exchange 4

Trace an offered-load sweep (``--telemetry`` adds occupancy and
link-utilization columns)::

    python -m repro sweep --n 6 --pattern complement
    python -m repro sweep --n 6 --telemetry

Run a fault-degradation sweep (beyond the paper; docs/RESILIENCE.md)::

    python -m repro faults --family hypercube --size 5 --counts 0,2,4,8
    python -m repro faults --family mesh --size 6 --verify

Dump full telemetry artifacts for one run on both engines and check
the event logs are byte-identical (docs/OBSERVABILITY.md)::

    python -m repro telemetry --n 4 --out telemetry-out
    python -m repro telemetry --n 4 --faults 3 --engine both

Run a streaming traffic service from a YAML scenario, with a live
``/metrics`` + ``/healthz`` endpoint; SIGINT/SIGTERM drain gracefully
(docs/SERVING.md)::

    python -m repro serve examples/scenarios/smoke.yaml --port 9100
    python -m repro serve examples/scenarios/smoke.yaml --validate
    python -m repro serve scenario.yaml --duration 5000 --record out/
"""

from __future__ import annotations

import argparse
import sys

from .analysis import ALL_FIGURES, format_rows
from .analysis.sweeps import load_sweep
from .core import verify_algorithm
from .experiments import run_table
from .routing import (
    HypercubeAdaptiveRouting,
    HypercubeHungRouting,
    HypercubeObliviousRouting,
    Mesh2DAdaptiveRouting,
    Mesh2DRestrictedRouting,
    ShuffleExchangeRouting,
    StructuredBufferPoolRouting,
    TorusRouting,
)
from .sim import hypercube_pattern, make_rng
from .topology import Hypercube, Mesh2D, ShuffleExchange, Torus


def _parse_ns(text: str | None) -> tuple[int, ...] | None:
    if not text:
        return None
    return tuple(int(x) for x in text.replace(",", " ").split())


def _positive_int(text: str) -> int:
    """argparse type for counts that must be >= 1 (workers, shards)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _build_algorithm(name: str, size: str):
    """Instantiate an algorithm by CLI name and size spec."""
    if name.startswith("hypercube") or name == "buffer-pool":
        topo = Hypercube(int(size))
        return {
            "hypercube-adaptive": HypercubeAdaptiveRouting,
            "hypercube-hung": HypercubeHungRouting,
            "hypercube-oblivious": HypercubeObliviousRouting,
            "buffer-pool": StructuredBufferPoolRouting,
        }[name](topo)
    if name.startswith("mesh"):
        rows = int(size.split("x")[0])
        topo = Mesh2D(rows)
        return {
            "mesh-adaptive": Mesh2DAdaptiveRouting,
            "mesh-restricted": Mesh2DRestrictedRouting,
        }[name](topo)
    if name == "torus":
        shape = tuple(int(x) for x in size.split("x"))
        return TorusRouting(Torus(shape))
    if name == "shuffle-exchange":
        return ShuffleExchangeRouting(ShuffleExchange(int(size)))
    raise SystemExit(f"unknown algorithm {name!r}")


VERIFY_CHOICES = (
    "hypercube-adaptive",
    "hypercube-hung",
    "hypercube-oblivious",
    "buffer-pool",
    "mesh-adaptive",
    "mesh-restricted",
    "torus",
    "shuffle-exchange",
)


def cmd_table(args) -> int:
    """``repro table``: regenerate one of the paper's Tables 1-12."""
    table = run_table(
        args.number,
        ns=_parse_ns(args.ns),
        seed=args.seed,
        workers=args.workers,
    )
    print(table.render(with_reference=not args.no_reference))
    return 0


def cmd_figure(args) -> int:
    """``repro figure``: regenerate a Figure 1-6 as text or DOT."""
    fig = ALL_FIGURES[f"figure{args.number}"]()
    print(fig.dot if args.dot else fig.text)
    return 0


def cmd_verify(args) -> int:
    """``repro verify``: machine-check deadlock-freedom conditions."""
    alg = _build_algorithm(args.algorithm, args.size)
    report = verify_algorithm(
        alg,
        check_minimal=None if not args.fast else False,
        check_fully_adaptive=None if not args.fast else False,
    )
    print(report.summary())
    for err in report.errors[:10]:
        print("  !", err)
    return 0 if report.deadlock_free else 1


def cmd_sweep(args) -> int:
    """``repro sweep``: trace an offered-load curve."""
    cube = Hypercube(args.n)
    points = load_sweep(
        lambda: HypercubeAdaptiveRouting(cube),
        lambda: hypercube_pattern(args.pattern, cube, make_rng(args.seed)),
        rates=tuple(float(x) for x in args.rates.split(",")),
        seed=args.seed,
        telemetry=args.telemetry,
    )
    print(format_rows([p.row() for p in points]))
    return 0


def cmd_faults(args) -> int:
    """``repro faults``: resilience/degradation sweep under link faults."""
    from .faults import (
        RESILIENCE_FAMILIES,
        FaultSchedule,
        degradation_sweep,
        verify_under_faults,
    )

    counts = [int(x) for x in args.counts.replace(",", " ").split()]
    rows = degradation_sweep(
        args.family,
        args.size,
        counts,
        seed=args.seed,
        packets_per_node=args.packets,
        detour=not args.no_detour,
        workers=args.workers,
        telemetry=args.telemetry,
    )
    keep = (
        "failed_links",
        "delivered",
        "generated",
        "delivered_frac",
        "delivered_of_deliverable",
        "undeliverable",
        "L_avg",
        "latency_x",
        "reroute_overhead",
        "cycles",
        "link_util",
        "dyn_hops(%)",
        "occ_mean",
        "occ_peak",
    )
    print(format_rows([{k: r[k] for k in keep if k in r} for r in rows]))
    if args.verify:
        build, make_alg = RESILIENCE_FAMILIES[args.family]
        topo = build(args.size)
        worst = max(c for c in counts + [0])
        if worst:
            schedule = FaultSchedule.random_links(topo, worst, args.seed)
        else:
            schedule = FaultSchedule.healthy(topo)
        fv = verify_under_faults(make_alg(topo), schedule.final)
        print()
        print("verify under faults:", fv.summary())
        for err in fv.report.errors[:10]:
            print("  !", err)
    return 0


def cmd_telemetry(args) -> int:
    """``repro telemetry``: instrumented run + artifact dump + identity check.

    Runs one hypercube workload on the requested engine(s) with a full
    :class:`~repro.telemetry.TelemetryProbe` attached, writes the JSONL
    event log, Prometheus metrics dump, CSV occupancy time series, and
    JSON summary per engine, and — when both engines ran — verifies the
    event logs are byte-identical (exit code 1 if not).
    """
    from pathlib import Path

    from .core.message import reset_message_ids
    from .experiments.runner import build_simulator
    from .sim import StaticInjection
    from .telemetry import TelemetryProbe, write_artifacts

    if args.engine == "both":
        engines = ("reference", "compiled")
    elif args.engine == "all":
        # The vector engine takes no fault observers and the sharded
        # engine refuses fault schedules outright; under --faults the
        # harness would remap/raise, so compare them healthy only.
        engines = ("reference", "compiled") + (
            () if args.faults else ("vector", "sharded")
        )
    else:
        engines = (args.engine,)
    outdir = Path(args.out)
    logs: dict[str, str] = {}
    for engine in engines:
        # Fresh topology/uids/RNG per engine so runs are comparable
        # packet-for-packet.
        reset_message_ids()
        topo = Hypercube(args.n)
        alg = HypercubeAdaptiveRouting(topo)
        pattern = hypercube_pattern(args.pattern, topo, make_rng(args.seed))
        model = StaticInjection(
            args.packets, pattern, make_rng(args.seed, "inj")
        )
        probe = TelemetryProbe(occupancy_every=args.sample_every)
        if args.faults:
            from .faults import FaultSchedule
            from .faults.experiments import make_fault_simulator

            schedule = FaultSchedule.random_links(
                topo, args.faults, args.seed
            )
            sim = make_fault_simulator(
                alg, model, schedule, engine=engine, telemetry=probe
            )
        else:
            extra = {"shards": args.shards} if engine == "sharded" else {}
            sim = build_simulator(
                alg, model, engine=engine, telemetry=probe, **extra
            )
        result = sim.run(max_cycles=2_000_000)
        paths = write_artifacts(probe, outdir, prefix=f"{engine}-")
        print(
            f"[{engine}] cycles={result.cycles} "
            f"delivered={result.delivered}/{result.injected} "
            f"events={len(probe.log)} "
            f"dyn_hops={probe.summary['hops']['dynamic_fraction']:.3f}"
        )
        compiled_stats = probe.summary.get("routing_compile")
        if compiled_stats:
            if compiled_stats["kind"] == "tables":
                print(
                    f"  tables: kernel={compiled_stats['kernel']} "
                    f"rows={compiled_stats['rows']} "
                    f"bytes={compiled_stats['bytes']} "
                    f"compile_s={compiled_stats['compile_seconds']:.3f}"
                )
            else:
                print(
                    f"  plan cache: entries={compiled_stats['entries']} "
                    f"bytes={compiled_stats['bytes']}"
                )
        for name in sorted(paths):
            print(f"  {name}: {paths[name]}")
        logs[engine] = probe.log.to_jsonl()
    if len(logs) >= 2:
        baseline = logs["reference"]
        identical = all(log == baseline for log in logs.values())
        print(
            "event logs byte-identical across engines:",
            "yes" if identical else "NO",
        )
        return 0 if identical else 1
    return 0


def cmd_lint(args) -> int:
    """``repro lint``: the static deadlock-freedom + determinism gate.

    With ``--all`` (or no targets) sweeps every registered
    topology/algorithm pair — packet schemes, worm-hole schemes, and
    fault-epoch adapters — through the static analyzer, then runs the
    AST determinism lint over ``src/repro/``.  Exit code 0 iff every
    instance matches its registered expectation and the determinism
    lint is clean.  ``--graph FILE`` instead decides the
    Mendlovic–Matias existence condition for a user-supplied digraph
    (one ``u v`` edge per line) and verifies a synthesized scheme.
    """
    import json

    from .statics import (
        deadlock_free_routing_exists,
        lint_targets,
        run_determinism_lint,
        synthesize_routing,
        to_json_report,
        to_sarif,
    )
    from .statics.registry import gate_ok, target_by_key

    if args.graph:
        edges = []
        with open(args.graph) as fh:
            for line in fh:
                parts = line.split()
                if len(parts) >= 2:
                    edges.append((parts[0], parts[1]))
        rep = deadlock_free_routing_exists(
            edges, classes=args.classes, name=args.graph
        )
        print(rep.summary())
        if args.json:
            print(json.dumps(rep.to_dict(), indent=2))
        if rep.exists and args.synthesize:
            alg = synthesize_routing(edges, name=args.graph)
            vr = verify_algorithm(
                alg, check_minimal=False, check_fully_adaptive=False
            )
            print(f"synthesized scheme: {vr.summary()}")
            return 0 if vr.deadlock_free else 1
        return 0 if rep.exists else 1

    if args.all or not args.targets:
        targets = lint_targets()
    else:
        try:
            targets = [target_by_key(k) for k in args.targets]
        except KeyError as exc:
            known = ", ".join(t.key for t in lint_targets())
            raise SystemExit(
                f"unknown lint target {exc.args[0]!r}; known: {known}"
            )

    analyses = []
    expectations: dict[str, str] = {}
    ok = True
    for t in targets:
        a = t.analyze()
        analyses.append(a)
        expectations[a.name] = t.expect
        t_ok = gate_ok(a, t.expect)
        ok = ok and t_ok
        mark = "ok " if t_ok else "GATE"
        print(f"[{mark}] ({t.expect:8}) {t.key}: {a.report.summary()}")
        for w in a.witnesses:
            print(f"         witness: {w.describe()}")

    findings = [] if args.no_determinism else run_determinism_lint()
    for f in findings:
        print(f"[GATE] determinism: {f}")
    ok = ok and not findings

    if args.json:
        print(
            json.dumps(
                to_json_report(analyses, findings, expectations), indent=2
            )
        )
    if args.sarif:
        with open(args.sarif, "w") as fh:
            json.dump(to_sarif(analyses, findings, expectations), fh, indent=2)
        print(f"SARIF report written to {args.sarif}")

    n_cert = sum(1 for a in analyses if a.certified)
    print(
        f"{n_cert}/{len(analyses)} instances certified deadlock-free; "
        f"{len(findings)} determinism finding(s); gate "
        + ("PASS" if ok else "FAIL")
    )
    return 0 if ok else 1


def cmd_serve(args) -> int:
    """``repro serve``: run a streaming traffic service from a scenario.

    Validates the YAML up front (``--validate`` stops there), builds
    the requested engine through the ordinary factory, and serves the
    open-loop workload with admission control and a live ``/metrics``
    + ``/healthz`` endpoint until the duration budget runs out or a
    SIGINT/SIGTERM triggers the graceful drain (docs/SERVING.md).
    """
    from .serve import ScenarioError, TrafficService, load_scenario

    try:
        scenario = load_scenario(args.scenario)
    except ScenarioError as exc:
        print(f"scenario invalid: {exc}", file=sys.stderr)
        return 2
    if args.validate:
        print(f"scenario ok: {scenario.describe()}")
        return 0
    try:
        service = TrafficService(
            scenario,
            engine=args.engine,
            record=True if args.record else None,
            emit=print,
        )
    except Exception as exc:
        print(f"cannot serve: {exc}", file=sys.stderr)
        return 2
    if args.duration is not None:
        service.model.duration = args.duration
    service.install_signal_handlers()
    return service.serve(
        port=args.port, host=args.host, outdir=args.record
    )


def cmd_report(args) -> int:
    """``repro report``: emit the full Markdown reproduction report."""
    from .analysis.report import full_report

    text = full_report(seed=args.seed, include_figures=not args.no_figures)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="SPAA'91 fully-adaptive deadlock-free routing reproduction",
    )
    sub = p.add_subparsers(dest="command", required=True)

    t = sub.add_parser("table", help="regenerate a paper table (1-12)")
    t.add_argument("number", type=int, choices=range(1, 13))
    t.add_argument("--ns", help="hypercube dimensions, e.g. '6,8'")
    t.add_argument("--seed", type=int, default=None)
    t.add_argument("--no-reference", action="store_true")
    t.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="fan per-n cells out to this many worker processes "
        "(results are identical to a serial run)",
    )
    t.set_defaults(fn=cmd_table)

    f = sub.add_parser("figure", help="regenerate a paper figure (1-6)")
    f.add_argument("number", type=int, choices=range(1, 7))
    f.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    f.set_defaults(fn=cmd_figure)

    v = sub.add_parser("verify", help="machine-verify an algorithm")
    v.add_argument("algorithm", choices=VERIFY_CHOICES)
    v.add_argument("size", help="e.g. 4 (hypercube/SE), 3x3 (mesh/torus)")
    v.add_argument("--fast", action="store_true",
                   help="skip minimality/adaptivity path enumeration")
    v.set_defaults(fn=cmd_verify)

    s = sub.add_parser("sweep", help="offered-load sweep on a hypercube")
    s.add_argument("--n", type=int, default=6)
    s.add_argument("--pattern", default="random")
    s.add_argument("--rates", default="0.1,0.25,0.5,0.75,1.0")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument(
        "--telemetry",
        action="store_true",
        help="attach a metrics probe per point (adds occupancy and "
        "link-utilization columns)",
    )
    s.set_defaults(fn=cmd_sweep)

    ft = sub.add_parser(
        "faults",
        help="fault-degradation sweep: delivery/latency vs failed links",
    )
    ft.add_argument(
        "--family", choices=("hypercube", "mesh"), default="hypercube"
    )
    ft.add_argument(
        "--size", type=int, default=4,
        help="hypercube dimension or mesh side length",
    )
    ft.add_argument("--counts", default="0,1,2,4",
                    help="failed-link counts, e.g. '0,2,4,8'")
    ft.add_argument("--packets", type=int, default=1,
                    help="static packets per node")
    ft.add_argument("--seed", type=int, default=12345)
    ft.add_argument("--no-detour", action="store_true",
                    help="filter faulty hops but never detour")
    ft.add_argument("--workers", type=_positive_int, default=None)
    ft.add_argument("--verify", action="store_true",
                    help="also re-verify Section-2 conditions at the "
                    "largest fault set (expect honest failures)")
    ft.add_argument(
        "--telemetry",
        action="store_true",
        help="attach a metrics probe per cell (adds occupancy and "
        "link-utilization columns)",
    )
    ft.set_defaults(fn=cmd_faults)

    tm = sub.add_parser(
        "telemetry",
        help="instrumented run: event log + Prometheus + CSV artifacts, "
        "with a cross-engine identity check",
    )
    tm.add_argument("--n", type=int, default=4, help="hypercube dimension")
    tm.add_argument("--pattern", default="random")
    tm.add_argument("--packets", type=int, default=2,
                    help="static packets per node")
    tm.add_argument("--seed", type=int, default=0)
    tm.add_argument(
        "--engine",
        choices=("reference", "compiled", "vector", "sharded", "both", "all"),
        default="both",
        help="engine(s) to run; 'both' (reference+compiled) and 'all' "
        "(+vector+sharded, healthy runs only) also check the event logs "
        "are byte-identical",
    )
    tm.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        help="worker shards for --engine sharded/all "
        "(default: REPRO_SHARDS or a host-sized guess)",
    )
    tm.add_argument("--out", default="telemetry-out",
                    help="artifact output directory")
    tm.add_argument("--sample-every", type=int, default=1,
                    help="occupancy sampling stride in cycles")
    tm.add_argument("--faults", type=int, default=0,
                    help="inject this many random link faults")
    tm.set_defaults(fn=cmd_telemetry)

    sv = sub.add_parser(
        "serve",
        help="run a streaming traffic service from a YAML scenario",
    )
    sv.add_argument("scenario", help="scenario YAML file (docs/SERVING.md)")
    sv.add_argument(
        "--validate",
        action="store_true",
        help="validate the scenario and exit without serving",
    )
    sv.add_argument(
        "--engine",
        default=None,
        choices=("auto", "reference", "compiled", "fast", "vector",
                 "sharded"),
        help="override the scenario's engine (fast/sharded are refused "
        "with an explanation; see docs/SERVING.md)",
    )
    sv.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve /metrics + /healthz on this port (0 = ephemeral; "
        "omit for no endpoint)",
    )
    sv.add_argument(
        "--host", default="127.0.0.1", help="endpoint bind address"
    )
    sv.add_argument(
        "--duration",
        type=_positive_int,
        default=None,
        help="override the scenario's duration_cycles budget",
    )
    sv.add_argument(
        "--record",
        metavar="OUTDIR",
        default=None,
        help="record the full event log and write artifacts to OUTDIR "
        "(byte-identical for identical scenario + seed + budget)",
    )
    sv.set_defaults(fn=cmd_serve)

    r = sub.add_parser(
        "report", help="regenerate every table/figure as one Markdown report"
    )
    r.add_argument("--seed", type=int, default=None)
    r.add_argument("--no-figures", action="store_true")
    r.add_argument("--output", "-o", help="write to a file instead of stdout")
    r.set_defaults(fn=cmd_report)

    ln = sub.add_parser(
        "lint",
        help="statically certify deadlock-freedom + determinism lint",
    )
    ln.add_argument(
        "targets",
        nargs="*",
        help="registry keys to analyze (default: all)",
    )
    ln.add_argument(
        "--all", action="store_true", help="sweep every registered target"
    )
    ln.add_argument(
        "--json", action="store_true", help="print the JSON report"
    )
    ln.add_argument(
        "--sarif", metavar="FILE", help="write a SARIF 2.1.0 report to FILE"
    )
    ln.add_argument(
        "--no-determinism",
        action="store_true",
        help="skip the AST determinism lint",
    )
    ln.add_argument(
        "--graph",
        metavar="FILE",
        help="decide deadlock-free-routing existence for an edge-list file",
    )
    ln.add_argument(
        "--classes",
        type=int,
        default=2,
        help="central-queue classes available for --graph (default 2)",
    )
    ln.add_argument(
        "--synthesize",
        action="store_true",
        help="with --graph: synthesize and verify a concrete scheme",
    )
    ln.set_defaults(fn=cmd_lint)
    return p


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
