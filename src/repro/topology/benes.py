"""Beneš network (back-to-back butterflies).

The paper motivates full adaptivity with Upfal's multibutterfly — a
network "extremely rich in the number of minimal paths".  The Beneš
network is the classic constructive member of that family: two
mirrored butterflies, ``2n + 1`` levels of ``2**n`` rows, with
``2**n`` distinct minimal paths between every input/output pair.

Nodes are ``(level, row)`` with ``0 <= level <= 2n``.  Stage ``l``
(the links from level ``l`` to ``l + 1``) flips bit ``n-1-l`` in the
first half and bit ``l-n`` in the mirrored second half; each node has
a *straight* and a *cross* out-link.  All links are directed forward,
so any leveled routing function is trivially deadlock free — the
levels are the hanging order.
"""

from __future__ import annotations

from typing import Iterator

from .base import Topology

Node = tuple[int, int]  #: (level, row)


class BenesNetwork(Topology):
    """The ``2**n``-row Beneš network with ``2n + 1`` levels."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("Benes network needs n >= 1")
        self.n = n
        self.levels = 2 * n + 1
        self.rows = 1 << n
        self.name = f"benes({n})"

    @property
    def num_nodes(self) -> int:
        return self.levels * self.rows

    def nodes(self) -> Iterator[Node]:
        for l in range(self.levels):
            for r in range(self.rows):
                yield (l, r)

    def stage_bit(self, level: int) -> int:
        """The row bit stage ``level`` can flip."""
        if not 0 <= level < 2 * self.n:
            raise ValueError(f"no stage at level {level}")
        return self.n - 1 - level if level < self.n else level - self.n

    def neighbors(self, u: Node) -> tuple[Node, ...]:
        l, r = u
        if l >= 2 * self.n:
            return ()  # outputs have no forward links
        bit = 1 << self.stage_bit(l)
        return ((l + 1, r), (l + 1, r ^ bit))

    def in_neighbors(self, u: Node) -> tuple[Node, ...]:
        l, r = u
        if l == 0:
            return ()
        bit = 1 << self.stage_bit(l - 1)
        return ((l - 1, r), (l - 1, r ^ bit))

    def link_index(self, u: Node, v: Node) -> int:
        nbrs = self.neighbors(u)
        try:
            return nbrs.index(v)
        except ValueError:
            raise ValueError(f"no Benes link {u} -> {v}") from None

    def distance(self, u: Node, v: Node) -> int:
        """Forward distance; raises for unreachable (backward) pairs."""
        lu, _ = u
        lv, _ = v
        if u == v:
            return 0
        if lv <= lu:
            raise ValueError(f"{v} not reachable from {u}")
        # Forward routes always advance one level per hop, and any row
        # is reachable once enough free stages remain; reachability of
        # the specific row is guaranteed in the Benes structure for
        # input->output pairs, and checked here for general ones.
        if not self._reachable(u, v):
            raise ValueError(f"{v} not reachable from {u}")
        return lv - lu

    def _reachable(self, u: Node, v: Node) -> bool:
        lu, ru = u
        lv, rv = v
        # Bits that differ must be flippable by some stage in lu..lv-1.
        flippable = 0
        for l in range(lu, lv):
            flippable |= 1 << self.stage_bit(l)
        return (ru ^ rv) & ~flippable == 0

    @property
    def diameter(self) -> int:
        return 2 * self.n

    def inputs(self) -> list[Node]:
        return [(0, r) for r in range(self.rows)]

    def outputs(self) -> list[Node]:
        return [(2 * self.n, r) for r in range(self.rows)]

    def validate(self) -> None:  # overrides: outputs legitimately have
        seen = set(self.nodes())  # no out-links, and links are one-way.
        assert len(seen) == self.num_nodes
        for u in self.nodes():
            for v in self.neighbors(u):
                assert v in seen
                assert self.distance(u, v) == 1
                assert u in self.in_neighbors(v)
