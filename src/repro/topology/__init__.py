"""Interconnection-network topologies (hypercube, mesh, torus, shuffle-exchange)."""

from .base import Topology, bfs_distance
from .benes import BenesNetwork
from .ccc import CubeConnectedCycles
from .hypercube import (
    Hypercube,
    differing_dimensions,
    flip_bit,
    hamming_distance,
    hamming_weight,
)
from .mesh import Mesh, Mesh2D
from .shuffle_exchange import (
    ShuffleExchange,
    cycle_break_node,
    rol,
    ror,
    shuffle_cycle,
)
from .torus import Torus

__all__ = [
    "Topology",
    "bfs_distance",
    "BenesNetwork",
    "CubeConnectedCycles",
    "Hypercube",
    "flip_bit",
    "hamming_weight",
    "hamming_distance",
    "differing_dimensions",
    "Mesh",
    "Mesh2D",
    "Torus",
    "ShuffleExchange",
    "rol",
    "ror",
    "shuffle_cycle",
    "cycle_break_node",
]
