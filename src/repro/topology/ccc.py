"""Cube-connected cycles (CCC).

The paper's introduction lists cube-connected cycles among the
networks its hanging methodology covers (via [PFGS91]).  A CCC of
dimension ``n`` replaces every node of the ``n``-cube with a cycle of
``n`` nodes; node ``(w, p)`` (cube address ``w``, cycle position
``p``) connects to

* its cycle neighbors ``(w, p±1 mod n)``, and
* its cube partner ``(w ^ 2**p, p)`` — the dimension-``p`` link.

Every node has degree 3, which is the CCC's raison d'être: hypercube
routing power at bounded degree.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator

from .base import Topology

Node = tuple[int, int]  #: (cube address w, cycle position p)


class CubeConnectedCycles(Topology):
    """The ``n``-dimensional CCC with ``n * 2**n`` nodes."""

    def __init__(self, n: int):
        if n < 3:
            raise ValueError("CCC needs n >= 3 (cycles of length >= 3)")
        self.n = n
        self.name = f"ccc({n})"
        self._mask = (1 << n) - 1

    @property
    def num_nodes(self) -> int:
        return self.n << self.n

    def nodes(self) -> Iterator[Node]:
        for w in range(1 << self.n):
            for p in range(self.n):
                yield (w, p)

    def contains(self, u: Node) -> bool:
        return (
            len(u) == 2
            and 0 <= u[0] <= self._mask
            and 0 <= u[1] < self.n
        )

    def cycle_next(self, u: Node) -> Node:
        """Cycle neighbor in the ascending (+1) direction."""
        return (u[0], (u[1] + 1) % self.n)

    def cycle_prev(self, u: Node) -> Node:
        return (u[0], (u[1] - 1) % self.n)

    def cube_partner(self, u: Node) -> Node:
        """The dimension-``p`` hypercube neighbor."""
        return (u[0] ^ (1 << u[1]), u[1])

    def neighbors(self, u: Node) -> tuple[Node, ...]:
        return (self.cube_partner(u), self.cycle_next(u), self.cycle_prev(u))

    def is_adjacent(self, u: Node, v: Node) -> bool:
        return v in self.neighbors(u)

    def link_index(self, u: Node, v: Node) -> int:
        nbrs = self.neighbors(u)
        try:
            return nbrs.index(v)
        except ValueError:
            raise ValueError(f"no CCC link {u} -> {v}") from None

    def is_cycle_link(self, u: Node, v: Node) -> bool:
        return u[0] == v[0] and v in (self.cycle_next(u), self.cycle_prev(u))

    def is_cube_link(self, u: Node, v: Node) -> bool:
        return v == self.cube_partner(u)

    @lru_cache(maxsize=None)
    def _dist_from(self, u: Node) -> dict[Node, int]:
        dist = {u: 0}
        frontier = [u]
        while frontier:
            nxt = []
            for w in frontier:
                for x in self.neighbors(w):
                    if x not in dist:
                        dist[x] = dist[w] + 1
                        nxt.append(x)
            frontier = nxt
        return dist

    def distance(self, u: Node, v: Node) -> int:
        return self._dist_from(u)[v]

    def level(self, u: Node) -> int:
        """Hamming weight of the cube address (the hanging level)."""
        return bin(u[0]).count("1")

    def format_node(self, u: Node) -> str:
        return f"({format(u[0], f'0{self.n}b')},{u[1]})"
