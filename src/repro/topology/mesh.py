"""k-dimensional mesh topologies.

Nodes are coordinate tuples ``(x_0, ..., x_{k-1})`` with
``0 <= x_i < shape[i]``.  Two nodes are adjacent iff they differ by one
in exactly one coordinate.  :class:`Mesh2D` specialises the paper's
Section-4 setting and keeps the paper's ``(x, y)`` vocabulary.

The paper's *level* of a mesh node is the coordinate sum ``x + y``
(the depth when the mesh is hung from ``(0, 0)``).
"""

from __future__ import annotations

from typing import Iterator

from .base import Topology

Coord = tuple[int, ...]


class Mesh(Topology):
    """A ``shape[0] x ... x shape[k-1]`` mesh."""

    def __init__(self, shape: tuple[int, ...]):
        if not shape or any(s < 2 for s in shape):
            raise ValueError("every mesh dimension must be >= 2")
        self.shape = tuple(int(s) for s in shape)
        self.k = len(self.shape)
        self.name = f"mesh({'x'.join(map(str, self.shape))})"

    @property
    def num_nodes(self) -> int:
        out = 1
        for s in self.shape:
            out *= s
        return out

    def nodes(self) -> Iterator[Coord]:
        def rec(prefix: tuple[int, ...], dims: tuple[int, ...]):
            if not dims:
                yield prefix
                return
            for x in range(dims[0]):
                yield from rec(prefix + (x,), dims[1:])

        return rec((), self.shape)

    def contains(self, u: Coord) -> bool:
        return len(u) == self.k and all(
            0 <= u[i] < self.shape[i] for i in range(self.k)
        )

    def neighbors(self, u: Coord) -> tuple[Coord, ...]:
        out = []
        for i in range(self.k):
            if u[i] + 1 < self.shape[i]:
                out.append(u[:i] + (u[i] + 1,) + u[i + 1 :])
            if u[i] - 1 >= 0:
                out.append(u[:i] + (u[i] - 1,) + u[i + 1 :])
        return tuple(out)

    def is_adjacent(self, u: Coord, v: Coord) -> bool:
        diff = [abs(a - b) for a, b in zip(u, v)]
        return sum(diff) == 1

    def link_index(self, u: Coord, v: Coord) -> int:
        nbrs = self.neighbors(u)
        try:
            return nbrs.index(v)
        except ValueError:
            raise ValueError(f"{u} and {v} are not mesh neighbors") from None

    def distance(self, u: Coord, v: Coord) -> int:
        return sum(abs(a - b) for a, b in zip(u, v))

    @property
    def diameter(self) -> int:
        return sum(s - 1 for s in self.shape)

    def level(self, u: Coord) -> int:
        """Depth of ``u`` when the mesh hangs from the all-zero corner."""
        return sum(u)

    def step(self, u: Coord, dim: int, delta: int) -> Coord:
        """Neighbor of ``u`` one step along ``dim`` (delta in {-1, +1})."""
        v = u[:dim] + (u[dim] + delta,) + u[dim + 1 :]
        if not self.contains(v):
            raise ValueError(f"step off the mesh: {u} dim={dim} delta={delta}")
        return v


class Mesh2D(Mesh):
    """The paper's 2-dimensional ``n x n`` mesh (Section 4)."""

    def __init__(self, rows: int, cols: int | None = None):
        cols = rows if cols is None else cols
        super().__init__((rows, cols))
        self.rows = rows
        self.cols = cols
        self.name = f"mesh2d({rows}x{cols})"
