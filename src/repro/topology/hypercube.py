"""Binary hypercube topology.

Nodes are integers ``0 .. 2**n - 1``; two nodes are adjacent iff their
binary addresses differ in exactly one bit.  The link along dimension
``i`` connects ``u`` and ``u ^ (1 << i)``; the paper writes the latter
as ``E^i(u)``.
"""

from __future__ import annotations

from typing import Iterator

from .base import Topology


def flip_bit(u: int, i: int) -> int:
    """The paper's ``E^i(u)``: ``u`` with bit ``i`` complemented."""
    return u ^ (1 << i)


def hamming_weight(u: int) -> int:
    """Number of 1 bits (the paper's node *level*)."""
    return bin(u).count("1")


def hamming_distance(u: int, v: int) -> int:
    """Number of differing bits between two addresses."""
    return bin(u ^ v).count("1")


def differing_dimensions(u: int, v: int, n: int) -> tuple[int, ...]:
    """Dimensions in which ``u`` and ``v`` disagree, ascending."""
    x = u ^ v
    return tuple(i for i in range(n) if (x >> i) & 1)


class Hypercube(Topology):
    """The ``n``-dimensional binary hypercube with ``2**n`` nodes."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("hypercube dimension must be >= 1")
        self.n = n
        self.name = f"hypercube({n})"
        self._mask = (1 << n) - 1

    @property
    def num_nodes(self) -> int:
        return 1 << self.n

    def nodes(self) -> Iterator[int]:
        return iter(range(self.num_nodes))

    def neighbors(self, u: int) -> tuple[int, ...]:
        return tuple(u ^ (1 << i) for i in range(self.n))

    def is_adjacent(self, u: int, v: int) -> bool:
        x = u ^ v
        return x != 0 and (x & (x - 1)) == 0

    def link_index(self, u: int, v: int) -> int:
        """The dimension of link ``u -> v`` (low dims served first)."""
        x = u ^ v
        if x == 0 or (x & (x - 1)) != 0:
            raise ValueError(f"{u} and {v} are not hypercube neighbors")
        return x.bit_length() - 1

    def dimension_of(self, u: int, v: int) -> int:
        """Alias of :meth:`link_index` with hypercube vocabulary."""
        return self.link_index(u, v)

    def distance(self, u: int, v: int) -> int:
        return hamming_distance(u, v)

    @property
    def diameter(self) -> int:
        return self.n

    def level(self, u: int) -> int:
        """The node's level: its Hamming weight (paper, Section 7)."""
        return hamming_weight(u)

    def bits(self, u: int) -> tuple[int, ...]:
        """Address bits ``(u_0, ..., u_{n-1})``, LSB first."""
        return tuple((u >> i) & 1 for i in range(self.n))

    def format_node(self, u: int) -> str:
        """Binary string, MSB first, e.g. ``0101`` (paper notation)."""
        return format(u, f"0{self.n}b")
