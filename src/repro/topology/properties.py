"""Graph-theoretic properties of the topologies.

Used by the analysis layer to put simulation numbers in context: the
saturation throughput of a pattern is bounded by the channel
bisection it must cross, and the uncontended latency by the average
distance.  (E.g. the paper's Table 10 — complement at λ=1 sustaining
I_r ≈ 0.5 — is the hypercube's per-dimension cut operating at
capacity.)
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

import numpy as np

from .base import Topology


def average_distance(topology: Topology, sample: int | None = None,
                     seed: int = 0) -> float:
    """Mean shortest-path distance over ordered node pairs.

    With ``sample`` set, estimates from that many random pairs
    (exact enumeration is quadratic in N).
    """
    nodes = list(topology.nodes())
    if sample is None:
        total = count = 0
        for u in nodes:
            for v in nodes:
                if u != v:
                    total += topology.distance(u, v)
                    count += 1
        return total / count
    rng = np.random.default_rng(seed)
    total = 0
    n = len(nodes)
    for _ in range(sample):
        i, j = rng.integers(n), rng.integers(n)
        while j == i:
            j = rng.integers(n)
        total += topology.distance(nodes[int(i)], nodes[int(j)])
    return total / sample


def directed_cut(
    topology: Topology, side_a: Iterable[Hashable]
) -> tuple[int, int]:
    """Directed link counts crossing a node bipartition (A -> B, B -> A)."""
    a = set(side_a)
    ab = ba = 0
    for u in topology.nodes():
        for v in topology.neighbors(u):
            if u in a and v not in a:
                ab += 1
            elif u not in a and v in a:
                ba += 1
    return ab, ba


def cut_load(
    topology: Topology,
    side_a: Iterable[Hashable],
    destination_of: Callable[[Hashable], Hashable],
) -> float:
    """Lower bound on cycles/message for a permutation across a cut.

    Counts messages that must cross from A to B (each crossing at
    least once on any path) divided by the A->B directed link count:
    the minimum average link load the permutation imposes on the cut.
    A value of ``x`` bounds the sustainable injection rate by ``1/x``.
    """
    a = set(side_a)
    crossing = sum(
        1 for u in a if destination_of(u) is not None and destination_of(u) not in a
    )
    ab, _ = directed_cut(topology, a)
    if ab == 0:
        raise ValueError("side_a has no outgoing links")
    return crossing / ab


def dimension_cut_load_hypercube(n: int, destination_of) -> float:
    """Worst per-dimension cut load of a hypercube permutation.

    For each dimension ``i`` the bipartition is by bit ``i``; the cut
    has ``2**(n-1)`` links per direction.  The complement permutation
    crosses every cut with every message, loading each direction at
    exactly 1.0 — zero slack, so any arbitration or pipelining loss
    drives the sustainable injection rate strictly below 1 (the
    paper's Table 10 sits near 0.5).  Uniform random traffic loads the
    cuts at 0.5 and keeps half the capacity in reserve, matching the
    benign Table 9 behaviour.
    """
    from .hypercube import Hypercube

    cube = Hypercube(n)
    worst = 0.0
    for i in range(n):
        side_a = [u for u in cube.nodes() if not (u >> i) & 1]
        worst = max(worst, cut_load(cube, side_a, destination_of))
    return worst


def degree_histogram(topology: Topology) -> dict[int, int]:
    """Node count per out-degree."""
    hist: dict[int, int] = {}
    for u in topology.nodes():
        d = len(topology.neighbors(u))
        hist[d] = hist.get(d, 0) + 1
    return hist


def is_node_symmetric_sample(
    topology: Topology, probes: int = 8, seed: int = 0
) -> bool:
    """Cheap necessary condition for vertex-transitivity: sampled nodes
    share the same degree and sorted distance profile."""
    nodes = list(topology.nodes())
    rng = np.random.default_rng(seed)
    idx = rng.choice(len(nodes), size=min(probes, len(nodes)), replace=False)
    profiles = []
    for i in idx:
        u = nodes[int(i)]
        profile = sorted(topology.distance(u, v) for v in nodes)
        profiles.append((len(topology.neighbors(u)), profile))
    return all(p == profiles[0] for p in profiles)
