"""Topology abstraction.

A topology knows its nodes, its physical links, adjacency, and a
shortest-path distance metric.  Routing algorithms and the simulator
are written against this interface, so the same cycle-level engine
drives hypercubes, meshes, tori, and shuffle-exchange networks.

Links are modeled as *directed* channel pairs: an undirected physical
link between ``u`` and ``v`` contributes the directed links ``(u, v)``
and ``(v, u)``.  Some topologies (the shuffle part of the
shuffle-exchange) contain genuinely one-directional links.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import cached_property
from typing import Hashable, Iterable, Iterator

import networkx as nx


class Topology(ABC):
    """Abstract interconnection network."""

    #: Human-readable topology name, e.g. ``"hypercube(4)"``.
    name: str

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def num_nodes(self) -> int:
        """Number of nodes ``N``."""

    @abstractmethod
    def nodes(self) -> Iterator[Hashable]:
        """Iterate over all nodes."""

    @abstractmethod
    def neighbors(self, u: Hashable) -> tuple[Hashable, ...]:
        """Nodes reachable from ``u`` by one outgoing physical link."""

    def in_neighbors(self, u: Hashable) -> tuple[Hashable, ...]:
        """Nodes with a physical link *into* ``u``.

        Equal to :meth:`neighbors` for the (symmetric) default.
        """
        return self.neighbors(u)

    def is_adjacent(self, u: Hashable, v: Hashable) -> bool:
        """Whether a directed link ``u -> v`` exists."""
        return v in self.neighbors(u)

    def links(self) -> Iterator[tuple[Hashable, Hashable]]:
        """All directed links ``(u, v)``."""
        for u in self.nodes():
            for v in self.neighbors(u):
                yield (u, v)

    @abstractmethod
    def link_index(self, u: Hashable, v: Hashable) -> int:
        """Service ordering of link ``u -> v`` among ``u``'s outgoing links.

        The simulator fills output buffers "from low to high dimensions"
        (Section 7.1); this index defines that order.
        """

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @abstractmethod
    def distance(self, u: Hashable, v: Hashable) -> int:
        """Shortest-path length from ``u`` to ``v`` in physical hops."""

    @cached_property
    def diameter(self) -> int:
        """Maximum shortest-path distance over all ordered node pairs."""
        nodes = list(self.nodes())
        return max(
            self.distance(u, v) for u in nodes for v in nodes if u != v
        )

    # ------------------------------------------------------------------
    # Interop / validation
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        """Directed-graph view of the physical network."""
        g = nx.DiGraph(name=self.name)
        g.add_nodes_from(self.nodes())
        g.add_edges_from(self.links())
        return g

    def validate(self) -> None:
        """Cheap internal consistency checks (used by tests).

        Raises ``AssertionError`` on inconsistency between ``neighbors``,
        ``links``, ``link_index`` and ``distance``.
        """
        seen_nodes = set(self.nodes())
        assert len(seen_nodes) == self.num_nodes, "node count mismatch"
        for u in self.nodes():
            nbrs = self.neighbors(u)
            assert len(set(nbrs)) == len(nbrs), f"duplicate neighbor at {u}"
            indices = sorted(self.link_index(u, v) for v in nbrs)
            assert indices == list(range(len(nbrs))), (
                f"link indices at {u} not a contiguous 0..k-1 range: {indices}"
            )
            for v in nbrs:
                assert u != v, f"self-link at {u}"
                assert v in seen_nodes, f"neighbor {v} of {u} not a node"
                assert self.distance(u, v) == 1, f"adjacent {u}->{v} dist != 1"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


def bfs_distance(topology: Topology, u: Hashable, v: Hashable) -> int:
    """Generic BFS distance; fallback for topologies without a formula."""
    if u == v:
        return 0
    frontier: Iterable[Hashable] = (u,)
    seen = {u}
    dist = 0
    while frontier:
        dist += 1
        nxt = []
        for w in frontier:
            for x in topology.neighbors(w):
                if x == v:
                    return dist
                if x not in seen:
                    seen.add(x)
                    nxt.append(x)
        frontier = nxt
    raise ValueError(f"{v} unreachable from {u}")
