"""k-dimensional torus (wrap-around mesh).

Nodes are coordinate tuples; dimension ``i`` forms a ring of length
``shape[i]``.  The paper sketches (end of Section 4) that the mesh
technique extends to tori with four central queues per node; the
reconstruction of that algorithm lives in
:mod:`repro.routing.torus`.
"""

from __future__ import annotations

from typing import Iterator

from .mesh import Coord, Mesh


class Torus(Mesh):
    """A ``shape[0] x ... x shape[k-1]`` torus."""

    def __init__(self, shape: tuple[int, ...]):
        if not shape or any(s < 3 for s in shape):
            # With s == 2 the two ring directions coincide and the
            # double links would collapse; the paper's tori have s >= 3.
            raise ValueError("every torus dimension must be >= 3")
        super().__init__(shape)
        self.name = f"torus({'x'.join(map(str, self.shape))})"

    def neighbors(self, u: Coord) -> tuple[Coord, ...]:
        out = []
        for i in range(self.k):
            s = self.shape[i]
            out.append(u[:i] + ((u[i] + 1) % s,) + u[i + 1 :])
            out.append(u[:i] + ((u[i] - 1) % s,) + u[i + 1 :])
        return tuple(out)

    def is_adjacent(self, u: Coord, v: Coord) -> bool:
        return v in self.neighbors(u)

    def ring_distance(self, a: int, b: int, dim: int) -> int:
        """Shortest distance between positions ``a`` and ``b`` on ring ``dim``."""
        s = self.shape[dim]
        d = abs(a - b)
        return min(d, s - d)

    def distance(self, u: Coord, v: Coord) -> int:
        return sum(self.ring_distance(u[i], v[i], i) for i in range(self.k))

    @property
    def diameter(self) -> int:
        return sum(s // 2 for s in self.shape)

    def minimal_directions(self, a: int, b: int, dim: int) -> tuple[int, ...]:
        """Ring directions (+1/-1) achieving the minimal distance.

        Both directions are returned when ``a`` and ``b`` are
        diametrically opposite on an even ring; an empty tuple when the
        coordinates already agree.
        """
        s = self.shape[dim]
        if a == b:
            return ()
        fwd = (b - a) % s
        bwd = (a - b) % s
        if fwd < bwd:
            return (+1,)
        if bwd < fwd:
            return (-1,)
        return (+1, -1)

    def step(self, u: Coord, dim: int, delta: int) -> Coord:
        s = self.shape[dim]
        return u[:dim] + ((u[dim] + delta) % s,) + u[dim + 1 :]

    def crosses_dateline(self, u: Coord, dim: int, delta: int) -> bool:
        """Whether stepping from ``u`` along ``dim`` uses the wrap link.

        The *dateline* of ring ``dim`` is the edge between positions
        ``shape[dim]-1`` and ``0``.
        """
        s = self.shape[dim]
        if delta == +1:
            return u[dim] == s - 1
        if delta == -1:
            return u[dim] == 0
        raise ValueError("delta must be +1 or -1")
