"""Arbitrary directed graphs as topologies.

The fixed families (hypercube, mesh, torus, ...) have closed-form
structure; :class:`DirectedGraph` accepts *any* digraph — an edge list,
a ``networkx.DiGraph``, or another topology's view — so the existence
check and route synthesizer of :mod:`repro.statics` (Mendlovic–Matias,
PAPERS.md) and the simulation engines can run on irregular or faulted
networks.

Unlike the symmetric families, reachability may be partial: ``distance``
raises for unreachable pairs and ``diameter`` ranges over reachable
ordered pairs only.  Self-loops are dropped on construction (a node
trivially "routes" to itself via its delivery queue; the framework's
``validate()`` forbids self-links).
"""

from __future__ import annotations

from functools import cached_property
from typing import Hashable, Iterable, Iterator

import networkx as nx

from .base import Topology


class DirectedGraph(Topology):
    """A topology wrapping an explicit directed edge set.

    Nodes and neighbor tuples are held in ``repr``-sorted order, so
    iteration (and therefore every downstream engine and analysis) is
    deterministic regardless of node hashing.
    """

    def __init__(
        self,
        edges: Iterable[tuple[Hashable, Hashable]] | nx.DiGraph,
        nodes: Iterable[Hashable] | None = None,
        name: str = "digraph",
    ):
        if isinstance(edges, nx.DiGraph):
            graph_nodes = list(edges.nodes)
            edge_list = list(edges.edges)
        else:
            edge_list = list(edges)
            graph_nodes = []
        node_set = set(graph_nodes)
        node_set.update(nodes or ())
        for u, v in edge_list:
            node_set.add(u)
            node_set.add(v)
        self._nodes: tuple[Hashable, ...] = tuple(
            sorted(node_set, key=repr)
        )
        adj: dict[Hashable, set[Hashable]] = {u: set() for u in self._nodes}
        radj: dict[Hashable, set[Hashable]] = {u: set() for u in self._nodes}
        self._dropped_self_loops = 0
        for u, v in edge_list:
            if u == v:
                self._dropped_self_loops += 1
                continue
            adj[u].add(v)
            radj[v].add(u)
        self._adj = {
            u: tuple(sorted(vs, key=repr)) for u, vs in adj.items()
        }
        self._radj = {
            u: tuple(sorted(vs, key=repr)) for u, vs in radj.items()
        }
        self._index = {
            (u, v): i for u, vs in self._adj.items() for i, v in enumerate(vs)
        }
        self._dist: dict[Hashable, dict[Hashable, int]] = {}
        self.name = (
            f"{name}({len(self._nodes)}n,"
            f"{sum(len(v) for v in self._adj.values())}e)"
        )

    # -- structure -----------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[Hashable]:
        return iter(self._nodes)

    def neighbors(self, u: Hashable) -> tuple[Hashable, ...]:
        return self._adj[u]

    def in_neighbors(self, u: Hashable) -> tuple[Hashable, ...]:
        return self._radj[u]

    def link_index(self, u: Hashable, v: Hashable) -> int:
        return self._index[(u, v)]

    # -- metrics -------------------------------------------------------
    def _distances_from(self, u: Hashable) -> dict[Hashable, int]:
        dist = self._dist.get(u)
        if dist is None:
            dist = {u: 0}
            frontier = [u]
            d = 0
            while frontier:
                d += 1
                nxt = []
                for w in frontier:
                    for x in self._adj[w]:
                        if x not in dist:
                            dist[x] = d
                            nxt.append(x)
                frontier = nxt
            self._dist[u] = dist
        return dist

    def distance(self, u: Hashable, v: Hashable) -> int:
        dist = self._distances_from(u)
        if v not in dist:
            raise ValueError(f"{v} unreachable from {u} in {self.name}")
        return dist[v]

    def reachable(self, u: Hashable, v: Hashable) -> bool:
        """Whether a directed path ``u -> v`` exists (``u == v`` counts)."""
        return v in self._distances_from(u)

    @cached_property
    def diameter(self) -> int:
        """Longest shortest path over *reachable* ordered pairs."""
        best = 0
        for u in self._nodes:
            dist = self._distances_from(u)
            if dist:
                best = max(best, max(dist.values()))
        return best
