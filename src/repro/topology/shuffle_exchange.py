"""Shuffle-exchange network.

Nodes are integers ``0 .. 2**n - 1``.  Two kinds of links:

* *shuffle* links: directed ``u -> rol(u)`` where ``rol`` is the left
  rotation of the ``n``-bit address (the perfect shuffle).  The nodes
  ``0...0`` and ``1...1`` shuffle onto themselves; those degenerate
  self-loops are not physical links (the routing algorithm treats a
  self-shuffle as an internal no-op).
* *exchange* links: undirected ``u <-> u ^ 1`` (complement the least
  significant bit).

Removing the exchange links decomposes the network into *shuffle
cycles* (necklaces); every node of a cycle has the same Hamming weight,
which the paper calls the cycle's *level* (Section 5).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator

from .base import Topology


def rol(u: int, n: int) -> int:
    """Left-rotate the ``n``-bit address ``u`` by one position."""
    mask = (1 << n) - 1
    return ((u << 1) | (u >> (n - 1))) & mask


def ror(u: int, n: int) -> int:
    """Right-rotate the ``n``-bit address ``u`` by one position."""
    mask = (1 << n) - 1
    return ((u >> 1) | ((u & 1) << (n - 1))) & mask


def shuffle_cycle(u: int, n: int) -> tuple[int, ...]:
    """The shuffle cycle (necklace) containing ``u``, in rotation order.

    Starts at ``u`` and follows shuffle links until it returns.
    """
    out = [u]
    v = rol(u, n)
    while v != u:
        out.append(v)
        v = rol(v, n)
    return tuple(out)


def cycle_break_node(u: int, n: int) -> int:
    """The node chosen to break ``u``'s shuffle cycle (its minimum).

    The paper notes any node of a cycle may be chosen; we fix the
    smallest address so the choice is deterministic.
    """
    return min(shuffle_cycle(u, n))


class ShuffleExchange(Topology):
    """The ``2**n``-node shuffle-exchange network."""

    def __init__(self, n: int):
        if n < 2:
            raise ValueError("shuffle-exchange needs n >= 2")
        self.n = n
        self.name = f"shuffle-exchange({n})"
        self._mask = (1 << n) - 1

    @property
    def num_nodes(self) -> int:
        return 1 << self.n

    def nodes(self) -> Iterator[int]:
        return iter(range(self.num_nodes))

    def shuffle(self, u: int) -> int:
        return rol(u, self.n)

    def unshuffle(self, u: int) -> int:
        return ror(u, self.n)

    def exchange(self, u: int) -> int:
        return u ^ 1

    def neighbors(self, u: int) -> tuple[int, ...]:
        out = [u ^ 1]
        s = rol(u, self.n)
        if s != u:
            out.append(s)
        return tuple(out)

    def in_neighbors(self, u: int) -> tuple[int, ...]:
        out = [u ^ 1]
        p = ror(u, self.n)
        if p != u:
            out.append(p)
        return tuple(out)

    def link_index(self, u: int, v: int) -> int:
        """Exchange link is index 0, shuffle link index 1."""
        if v == (u ^ 1):
            return 0
        if v == rol(u, self.n) and v != u:
            return 1
        raise ValueError(f"no link {u} -> {v}")

    def is_shuffle_link(self, u: int, v: int) -> bool:
        return v == rol(u, self.n) and v != u

    def is_exchange_link(self, u: int, v: int) -> bool:
        return v == (u ^ 1)

    @lru_cache(maxsize=None)
    def _dist_from(self, u: int) -> dict[int, int]:
        dist = {u: 0}
        frontier = [u]
        while frontier:
            nxt = []
            for w in frontier:
                for x in self.neighbors(w):
                    if x not in dist:
                        dist[x] = dist[w] + 1
                        nxt.append(x)
            frontier = nxt
        return dist

    def distance(self, u: int, v: int) -> int:
        return self._dist_from(u)[v]

    def cycle(self, u: int) -> tuple[int, ...]:
        """The shuffle cycle containing ``u``."""
        return shuffle_cycle(u, self.n)

    def cycle_level(self, u: int) -> int:
        """Level of ``u``'s shuffle cycle: the Hamming weight."""
        return bin(u).count("1")

    def break_node(self, u: int) -> int:
        """Break node of ``u``'s shuffle cycle."""
        return cycle_break_node(u, self.n)

    def all_cycles(self) -> list[tuple[int, ...]]:
        """Every shuffle cycle, each reported starting at its break node."""
        seen: set[int] = set()
        out = []
        for u in self.nodes():
            if u in seen:
                continue
            cyc = shuffle_cycle(min(shuffle_cycle(u, self.n)), self.n)
            seen.update(cyc)
            out.append(cyc)
        return out

    def format_node(self, u: int) -> str:
        return format(u, f"0{self.n}b")
