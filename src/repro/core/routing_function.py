"""Routing functions over queues (paper, Section 2).

A routing algorithm in this framework is a *total routing function*
``R~ : Queues x DelivQ -> P(Queues)`` split into

* **static hops** — the underlying acyclic routing function ``R``
  whose queue dependency graph is a DAG, and
* **dynamic hops** — the extra transitions ``R~ \\ R`` added through
  *dynamic links* (``A_d``), which make the algorithm adaptive.

The correctness obligations of Section 2 are machine-checked in
:mod:`repro.core.verification`:

1. every hop lands at most one physical hop away;
2. ``R(q, d) != {}`` along every reachable static state, so every
   message always keeps a static escape path to its destination;
3. if ``q' in R~(q, d) \\ R(q, d)`` then ``R(q', d) != {}``.

Some algorithms (shuffle-exchange, torus) route on per-message *state*
in addition to the occupied queue (e.g. the count of shuffle links
traversed).  The framework threads an opaque ``state`` value through
every hop; state-free algorithms ignore it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable, Iterable, Iterator

from ..topology.base import Topology
from .queues import DELIVER, INJECT, QueueId, QueueSpec, default_queue_specs, deliver

#: Buffer class used for traffic traveling over dynamic links.
DYNAMIC_CLASS = "dyn"


class RoutingAlgorithm(ABC):
    """A deadlock-free adaptive routing algorithm in the paper's framework.

    Concrete subclasses define the central queue kinds, the static and
    dynamic hop relations, and (optionally) per-message routing state.
    """

    #: Human-readable algorithm name.
    name: str = "routing"

    #: Whether the algorithm only ever uses shortest paths.
    is_minimal: bool = False

    #: Whether *every* minimal path is realizable at injection time.
    is_fully_adaptive: bool = False

    def __init__(self, topology: Topology):
        self.topology = topology

    # ------------------------------------------------------------------
    # Queue structure
    # ------------------------------------------------------------------
    @abstractmethod
    def central_queue_kinds(self, node: Hashable) -> tuple[str, ...]:
        """Kinds of the central queues owned by ``node``."""

    def queue_specs(
        self, node: Hashable, central_capacity: int = 5
    ) -> dict[str, QueueSpec]:
        """Queue capacities at ``node`` (Section-7.1 defaults)."""
        return default_queue_specs(
            self.central_queue_kinds(node), central_capacity=central_capacity
        )

    def queues_at(self, node: Hashable) -> tuple[QueueId, ...]:
        """All queues at ``node``: injection, centrals, delivery."""
        kinds = (INJECT,) + self.central_queue_kinds(node) + (DELIVER,)
        return tuple(QueueId(node, k) for k in kinds)

    def all_queues(self) -> Iterator[QueueId]:
        for node in self.topology.nodes():
            yield from self.queues_at(node)

    # ------------------------------------------------------------------
    # Per-message routing state
    # ------------------------------------------------------------------
    def initial_state(self, src: Hashable, dst: Hashable) -> Any:
        """Routing state attached to a fresh message (default: none)."""
        return None

    def update_state(self, state: Any, q_from: QueueId, q_to: QueueId) -> Any:
        """New state after moving from ``q_from`` to ``q_to``."""
        return state

    # ------------------------------------------------------------------
    # The routing function
    # ------------------------------------------------------------------
    @abstractmethod
    def injection_targets(
        self, src: Hashable, dst: Hashable, state: Any = None
    ) -> frozenset[QueueId]:
        """``R~(i_src, d_dst)``: central queues a fresh message may enter."""

    @abstractmethod
    def static_hops(
        self, q: QueueId, dst: Hashable, state: Any = None
    ) -> frozenset[QueueId]:
        """``R(q, d_dst)``: hops of the underlying acyclic function."""

    def dynamic_hops(
        self, q: QueueId, dst: Hashable, state: Any = None
    ) -> frozenset[QueueId]:
        """``R~(q, d_dst) \\ R(q, d_dst)``: adaptivity-only hops."""
        return frozenset()

    def hops(
        self, q: QueueId, dst: Hashable, state: Any = None
    ) -> frozenset[QueueId]:
        """``R~(q, d_dst)``: all allowed next queues."""
        return self.static_hops(q, dst, state) | self.dynamic_hops(q, dst, state)

    # ------------------------------------------------------------------
    # Buffer (traffic-class) structure for the node model (Section 6)
    # ------------------------------------------------------------------
    def buffer_class(self, q_from: QueueId, q_to: QueueId, dynamic: bool) -> str:
        """Link-buffer class used by the transition ``q_from -> q_to``.

        Static traffic uses a per-target-queue class; dynamic traffic
        shares the single :data:`DYNAMIC_CLASS` buffer (Figures 4-6).
        """
        return DYNAMIC_CLASS if dynamic else q_to.kind

    def buffer_classes(self, u: Hashable, v: Hashable) -> tuple[str, ...]:
        """Buffer classes present on directed physical link ``u -> v``.

        The default provisions one static class per central queue kind
        at ``v`` plus the dynamic class; subclasses override this to
        match the exact node designs of Figures 4-6.
        """
        return self.central_queue_kinds(v) + (DYNAMIC_CLASS,)

    # ------------------------------------------------------------------
    # Table compilation (optional fast path)
    # ------------------------------------------------------------------
    def compile_hops(self, layout) -> Any:
        """Compile this hop relation onto ``layout``'s integer ids.

        ``layout`` is a :class:`~repro.sim.tables.RoutingTables`
        instance.  Return a :class:`~repro.core.hops.HopKernel` whose
        rows are *identical* to the plan-cache translation (same
        candidate order, entry fold and injection order — see the
        contract in :mod:`repro.core.hops`), or ``None`` to keep the
        symbolic fallback.  Implementations must return ``None`` for
        unrecognized subclasses or topologies: correctness first, the
        kernel is purely a performance lever.
        """
        return None

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def is_internal(self, q_from: QueueId, q_to: QueueId) -> bool:
        """Whether the transition stays inside one node (no link used)."""
        return q_from.node == q_to.node

    def walk(
        self,
        src: Hashable,
        dst: Hashable,
        choose=None,
        max_steps: int | None = None,
    ) -> list[QueueId]:
        """Greedily route one message with no contention; returns the
        queue path from injection to delivery.

        ``choose(candidates)`` picks the next hop among the allowed
        ones (default: lexicographically smallest, for determinism).
        Used by tests and examples; the cycle simulator is the real
        execution engine.
        """
        if choose is None:
            choose = lambda cands: min(cands, key=repr)
        state = self.initial_state(src, dst)
        q = QueueId(src, INJECT)
        path = [q]
        targets = self.injection_targets(src, dst, state)
        if not targets:
            raise RuntimeError(f"no injection target for {src}->{dst}")
        q2 = choose(sorted(targets))
        state = self.update_state(state, q, q2)
        q = q2
        path.append(q)
        limit = max_steps if max_steps is not None else 20 * (
            self.topology.diameter + 4
        )
        for _ in range(limit):
            if q == deliver(dst):
                return path
            cands = self.hops(q, dst, state)
            if not cands:
                raise RuntimeError(f"dead end at {q} routing {src}->{dst}")
            q2 = choose(sorted(cands))
            state = self.update_state(state, q, q2)
            q = q2
            path.append(q)
        raise RuntimeError(
            f"routing {src}->{dst} did not terminate in {limit} steps"
        )


def node_path(queue_path: Iterable[QueueId]) -> list[Hashable]:
    """Project a queue path onto the sequence of distinct nodes visited."""
    out: list[Hashable] = []
    for q in queue_path:
        if not out or out[-1] != q.node:
            out.append(q.node)
    return out
