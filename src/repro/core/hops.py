"""Integer hop kernels: the ``compile_hops()`` compilation target.

The routing functions of this repo are *pure*: every candidate set is a
deterministic function of ``(queue, destination, state)``.  The generic
engines evaluate them symbolically (frozensets of
:class:`~repro.core.queues.QueueId`), and
:class:`~repro.sim.plans.RoutingPlanCache` memoizes the resolved
answer — but the memo-miss path still allocates Python objects, which
is what bounds the vector engine under saturated traffic
(docs/PERFORMANCE.md).  A *hop kernel* is the same hop relation
re-expressed directly over the dense integer identifiers of
:class:`~repro.sim.tables.RoutingTables`, so a row miss costs integer
arithmetic instead of frozenset/QueueId churn.

Contract (see docs/ARCHITECTURE.md, "Table compilation"):

* :meth:`HopKernel.central_row`, :meth:`HopKernel.entry_row` and
  :meth:`HopKernel.injection_row` must return *exactly* the rows the
  plan-cache translation in :class:`~repro.sim.tables.RoutingTables`
  would build — same candidate order (statics before dynamics,
  first-wins per physical buffer, external candidates slot-ascending),
  same entry fold, same injection order — because engines and the
  static analyzer consume both paths interchangeably;
* any method may return ``None`` for any key: the caller falls back to
  the plan-cache translation for that row.  Kernels use this to decline
  keys whose symbolic evaluation raises intentionally (exhausted
  shuffle counters, off-network Benes injections), so error messages
  stay byte-identical with the generic engines;
* a ``compile_hops()`` implementation must return ``None`` (no kernel)
  whenever it cannot vouch for identity — unknown subclass, unexpected
  topology, inhomogeneous queue structure.  Fallback is always safe.

:class:`TableHopKernel` implements the generic row assembly (first-wins
slot filtering, the entry fold, injection resolution) on top of two
per-algorithm primitives — :meth:`TableHopKernel.candidates` and
:meth:`TableHopKernel.inject_candidates` — so an algorithm's kernel
only re-states its hop relation, not the engine semantics.

This module also owns the internal-step action codes shared by the
plan cache and the kernels (``sim.plans`` re-exports them for
backwards compatibility).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .routing_function import DYNAMIC_CLASS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim imports core)
    from ..sim.tables import RoutingTables

__all__ = [
    "DELIVER_STEP",
    "SELF_STEP",
    "MOVE_STEP",
    "HopKernel",
    "TableHopKernel",
]

#: Internal-step action codes (shared by plan cache, tables and kernels).
DELIVER_STEP = 0  #: move to the delivery queue
SELF_STEP = 1  #: degenerate self-hop: state advances in place
MOVE_STEP = 2  #: move into a sibling central queue (capacity permitting)


class HopKernel:
    """Base class for compiled hop relations.

    Subclasses override the three row methods; each may return ``None``
    per key to decline (the caller falls back to the plan-cache
    translation, which must then produce the identical row or raise the
    identical error the symbolic evaluation would).
    """

    def central_row(self, qid: int, dst_i: int, sid: int):
        return None

    def entry_row(self, qid: int, dst_i: int, sid: int):
        return None

    def injection_row(self, ui: int, dst_i: int, sid: int):
        return None


class TableHopKernel(HopKernel):
    """Generic row assembly over per-algorithm integer primitives.

    A subclass states the raw hop relation via

    * :meth:`candidates` — ``(static, dynamic)`` sequences of
      ``(next_queue_gid, new_state_id)`` pairs (``-1`` for the delivery
      queue), *before* slot filtering, in the same candidate order the
      symbolic ``static_hops`` / ``dynamic_hops`` would surface them;
    * :meth:`inject_candidates` — injection targets in the reference
      engine's ``sorted(targets)`` order, with the injection
      ``update_state`` already applied;

    and this base class replays the engine semantics: first-wins per
    ``(neighbor, class)``, drop candidates without a physical buffer
    *after* first-wins, external candidates slot-ascending, the
    forced-phase-switch entry fold, injection entry resolution.

    Requires a *homogeneous* queue structure (same
    ``central_queue_kinds`` tuple at every node) so global queue ids
    factor as ``node_index * n_kinds + kind_index``; construction sets
    :attr:`ok` False otherwise and ``compile_hops()`` should then
    return ``None``.
    """

    def __init__(self, layout: "RoutingTables"):
        self.t = layout
        n = len(layout.nodes)
        nk = len(layout.node_qids[0]) if n else 0
        kinds = tuple(layout.queue_kind[:nk])
        self.nk = nk
        self.kinds = kinds
        self.ok = (
            nk > 0
            and len(layout.queue_kind) == nk * n
            and layout.queue_kind == list(kinds) * n
        )

    # -- per-algorithm primitives --------------------------------------
    def candidates(self, qid: int, dst_i: int, sid: int):
        """``(static, dynamic)`` candidate pairs, or ``None`` to decline."""
        raise NotImplementedError

    def inject_candidates(self, ui: int, dst_i: int, sid: int):
        """Injection ``(queue_gid, state_id)`` pairs, or ``None``."""
        raise NotImplementedError

    # -- generic row assembly ------------------------------------------
    def central_row(self, qid: int, dst_i: int, sid: int):
        cands = self.candidates(qid, dst_i, sid)
        if cands is None:
            return None
        t = self.t
        statics, dynamics = cands
        queue_node = t.queue_node
        queue_kind = t.queue_kind
        slot_of = t.slot_of
        ui = queue_node[qid]
        ext: list[tuple[int, int, int, int]] = []
        internal: list[tuple[int, int, int]] = []
        seen: set[tuple[int, str]] | None = None
        for dyn, cl in ((0, statics), (1, dynamics)):
            for q2, nsid in cl:
                if q2 < 0:
                    internal.append((DELIVER_STEP, -1, sid))
                    continue
                vi = queue_node[q2]
                if vi == ui:
                    if q2 == qid:
                        internal.append((SELF_STEP, q2, nsid))
                    else:
                        internal.append((MOVE_STEP, q2, nsid))
                    continue
                cls = DYNAMIC_CLASS if dyn else queue_kind[q2]
                key = (vi, cls)
                if seen is None:
                    seen = {key}
                elif key in seen:
                    continue  # first-wins per (neighbor, class)
                else:
                    seen.add(key)
                s = slot_of.get((ui, vi, cls))
                if s is not None:
                    ext.append((s, q2, nsid, dyn))
        ext.sort()
        return (
            tuple(c[0] for c in ext),
            tuple(c[1] for c in ext),
            tuple(c[2] for c in ext),
            tuple(c[3] for c in ext),
            tuple(internal),
        )

    def entry_row(self, qid: int, dst_i: int, sid: int):
        # The forced-phase-switch fold of RoutingPlanCache._resolve_entry.
        queue_node = self.t.queue_node
        node = queue_node[qid]
        for _ in range(8):  # bounded by the internal-chain length
            cands = self.candidates(qid, dst_i, sid)
            if cands is None:
                return None
            statics, dynamics = cands
            if dynamics or len(statics) != 1:
                break
            q2, nsid = statics[0]
            if q2 < 0 or q2 == qid or queue_node[q2] != node:
                break
            qid, sid = q2, nsid
        return (qid, sid)

    def injection_row(self, ui: int, dst_i: int, sid: int):
        cl = self.inject_candidates(ui, dst_i, sid)
        if cl is None:
            return None
        out = []
        for q2, nsid in cl:
            resolved = self.entry_row(q2, dst_i, nsid)
            if resolved is None:
                return None
            out.append(resolved)
        return tuple(out)
