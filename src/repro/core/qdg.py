"""Queue dependency graphs (paper, Section 2).

The *queue dependency graph* (QDG) of a routing function has one vertex
per queue and an edge ``q -> q'`` whenever some message, on some route
actually built by the function, may move from ``q`` to ``q'``.  If the
QDG of the *static* (underlying) routing function is acyclic, greedy
routing over it is deadlock free; the extended function adds *dynamic*
edges that may close cycles but are harmless because every message
always retains a static escape path.

This module builds QDGs by exhaustive exploration of reachable
``(queue, routing-state)`` configurations for every source/destination
pair, so state-dependent algorithms (shuffle-exchange, torus) are
handled exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable

import networkx as nx

from .queues import QueueId, deliver, inject
from .routing_function import RoutingAlgorithm


@dataclass(frozen=True)
class Transition:
    """One explored queue-to-queue move for a concrete destination."""

    q_from: QueueId
    q_to: QueueId
    dst: Hashable
    dynamic: bool


@dataclass
class Exploration:
    """Everything reachable under a routing function.

    Attributes
    ----------
    transitions:
        Every distinct ``(q_from, q_to, dst, dynamic)`` move.
    configurations:
        Reachable ``(queue, state)`` pairs per destination.
    """

    transitions: set[Transition] = field(default_factory=set)
    configurations: dict[Hashable, set[tuple[QueueId, Any]]] = field(
        default_factory=dict
    )

    def edges(self, dynamic: bool | None = None) -> set[tuple[QueueId, QueueId]]:
        """Distinct QDG edges, optionally filtered by link type.

        An edge is *static* if any transition over it is static; the
        dynamic-only edge set is what ``A_d`` denotes in the paper.
        """
        static = {
            (t.q_from, t.q_to) for t in self.transitions if not t.dynamic
        }
        dyn = {
            (t.q_from, t.q_to) for t in self.transitions if t.dynamic
        } - static
        if dynamic is None:
            return static | dyn
        return dyn if dynamic else static


def _freeze_state(state: Any) -> Any:
    """Hashable view of a routing state (states must be hashable or dict)."""
    if isinstance(state, dict):
        return tuple(sorted(state.items()))
    return state


def explore(
    algorithm: RoutingAlgorithm,
    sources: Iterable[Hashable] | None = None,
    destinations: Iterable[Hashable] | None = None,
) -> Exploration:
    """Enumerate all reachable configurations and transitions.

    For every ``(src, dst)`` pair, performs a BFS over
    ``(queue, state)`` configurations starting from the injection
    queue, following both static and dynamic hops.
    """
    topo = algorithm.topology
    srcs = list(sources) if sources is not None else list(topo.nodes())
    dsts = list(destinations) if destinations is not None else list(topo.nodes())

    out = Exploration()
    for dst in dsts:
        seen: set[tuple[QueueId, Any]] = set()
        frontier: list[tuple[QueueId, Any]] = []
        d_q = deliver(dst)
        for src in srcs:
            if src == dst:
                continue
            state0 = algorithm.initial_state(src, dst)
            i_q = inject(src)
            for q in algorithm.injection_targets(src, dst, state0):
                out.transitions.add(Transition(i_q, q, dst, False))
                st = algorithm.update_state(state0, i_q, q)
                key = (q, _freeze_state(st))
                if key not in seen:
                    seen.add(key)
                    frontier.append((q, st))
        while frontier:
            q, st = frontier.pop()
            if q == d_q:
                continue
            for dyn, hops in (
                (False, algorithm.static_hops(q, dst, st)),
                (True, algorithm.dynamic_hops(q, dst, st)),
            ):
                for q2 in hops:
                    if q2 != q:
                        # Self-hops (degenerate self-shuffles) only
                        # advance routing state; they hold no new
                        # resource, so they are not QDG dependencies.
                        out.transitions.add(Transition(q, q2, dst, dyn))
                    st2 = algorithm.update_state(st, q, q2)
                    key = (q2, _freeze_state(st2))
                    if key not in seen:
                        seen.add(key)
                        frontier.append((q2, st2))
        out.configurations[dst] = seen
    return out


def build_qdg(
    algorithm: RoutingAlgorithm,
    include_dynamic: bool = True,
    sources: Iterable[Hashable] | None = None,
    destinations: Iterable[Hashable] | None = None,
    exploration: Exploration | None = None,
) -> nx.DiGraph:
    """Build the QDG as a ``networkx.DiGraph``.

    Edges carry a boolean ``dynamic`` attribute.  With
    ``include_dynamic=False`` the result is the underlying graph ``D``
    (a DAG for a correct algorithm); with ``True`` it is the extended
    graph ``D~``.
    """
    exp = exploration or explore(algorithm, sources, destinations)
    g = nx.DiGraph(name=f"QDG({algorithm.name})")
    g.add_nodes_from(algorithm.all_queues())
    for u, v in exp.edges(dynamic=False):
        g.add_edge(u, v, dynamic=False)
    if include_dynamic:
        for u, v in exp.edges(dynamic=True):
            g.add_edge(u, v, dynamic=True)
    return g


def is_acyclic(qdg: nx.DiGraph) -> bool:
    """Whether a QDG is a DAG."""
    return nx.is_directed_acyclic_graph(qdg)


def find_cycle(qdg: nx.DiGraph) -> list[tuple[QueueId, QueueId]] | None:
    """One directed cycle of the QDG, or ``None`` if acyclic."""
    try:
        return nx.find_cycle(qdg)
    except nx.NetworkXNoCycle:
        return None


def shortest_cycle(g: nx.DiGraph) -> list[tuple[Any, Any]] | None:
    """A minimum-length directed cycle of ``g``, or ``None`` if acyclic.

    Deterministic regardless of node hashing: nodes are scanned (and
    BFS frontiers expanded) in ``repr``-sorted order, so the same graph
    always yields the same cycle — the property the static analyzer's
    *minimal cycle witnesses* rely on (``repro.statics``).  Handles the
    adversarial shapes exactly: a self-loop is a length-1 cycle (and
    always minimal), parallel edges collapse in a ``DiGraph`` (an
    anti-parallel pair ``u -> v -> u`` is a length-2 cycle), single-node
    and disconnected graphs are searched component-free — a cycle is
    found wherever it lives.

    Returns the cycle as an edge list ``[(v0, v1), ..., (vk, v0)]``
    (``[(v, v)]`` for a self-loop), matching :func:`find_cycle`.
    """
    order = sorted(g.nodes, key=repr)
    for v in order:
        if g.has_edge(v, v):
            return [(v, v)]
    succ = {v: sorted(g.successors(v), key=repr) for v in order}
    best: list | None = None
    for start in order:
        # BFS for the shortest path back to ``start``.
        parent: dict = {}
        frontier = [start]
        depth = 0
        found = None
        while frontier and found is None:
            depth += 1
            if best is not None and depth >= len(best):
                break  # cannot improve on the incumbent
            nxt = []
            for u in frontier:
                for w in succ[u]:
                    if w == start:
                        found = u
                        break
                    if w not in parent:
                        parent[w] = u
                        nxt.append(w)
                if found is not None:
                    break
            frontier = nxt
        if found is None:
            continue
        path = [found]
        while path[-1] != start:
            path.append(parent.get(path[-1], start))
        path.reverse()  # start, ..., found
        cycle = [
            (path[i], path[i + 1]) for i in range(len(path) - 1)
        ] + [(found, start)]
        if best is None or len(cycle) < len(best):
            best = cycle
    return best


def queue_levels(static_qdg: nx.DiGraph) -> dict[QueueId, int]:
    """The paper's ``Level``: longest static path from any injection queue.

    Queues unreachable from every injection queue get level 0.
    Requires an acyclic graph.
    """
    if not nx.is_directed_acyclic_graph(static_qdg):
        raise ValueError("Level is only defined on an acyclic QDG")
    level: dict[QueueId, int] = {}
    for q in nx.topological_sort(static_qdg):
        preds = [
            level[p] + 1
            for p in static_qdg.predecessors(q)
            if p in level
        ]
        if q.is_injection:
            level[q] = max(preds, default=0)
        elif preds:
            level[q] = max(preds)
        else:
            level[q] = 0
    return level


def qdg_stats(qdg: nx.DiGraph) -> dict[str, int]:
    """Summary counters used by the figure benchmarks."""
    n_static = sum(1 for *_e, d in qdg.edges(data="dynamic") if not d)
    n_dynamic = qdg.number_of_edges() - n_static
    return {
        "queues": qdg.number_of_nodes(),
        "static_edges": n_static,
        "dynamic_edges": n_dynamic,
    }
