"""Core framework: queues, routing functions, QDGs, and verification."""

from .message import Message, reset_message_ids
from .paths import (
    adaptivity_ratio,
    is_fully_adaptive_for_pair,
    is_minimal_for_pair,
    minimal_node_paths,
    realizable_node_paths,
)
from .qdg import (
    Exploration,
    Transition,
    build_qdg,
    explore,
    find_cycle,
    is_acyclic,
    qdg_stats,
    queue_levels,
    shortest_cycle,
)
from .queues import (
    DELIVER,
    INJECT,
    QueueId,
    QueueSpec,
    default_queue_specs,
    deliver,
    inject,
)
from .routing_function import DYNAMIC_CLASS, RoutingAlgorithm, node_path
from .verification import VerificationReport, verify_algorithm

__all__ = [
    "Message",
    "reset_message_ids",
    "QueueId",
    "QueueSpec",
    "INJECT",
    "DELIVER",
    "inject",
    "deliver",
    "default_queue_specs",
    "RoutingAlgorithm",
    "DYNAMIC_CLASS",
    "node_path",
    "Exploration",
    "Transition",
    "explore",
    "build_qdg",
    "is_acyclic",
    "find_cycle",
    "shortest_cycle",
    "queue_levels",
    "qdg_stats",
    "minimal_node_paths",
    "realizable_node_paths",
    "is_minimal_for_pair",
    "is_fully_adaptive_for_pair",
    "adaptivity_ratio",
    "VerificationReport",
    "verify_algorithm",
]
