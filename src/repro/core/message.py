"""Message (packet) model.

Packets in the paper are single-flit units: a packet occupies exactly
one queue slot or one buffer.  Besides source/destination, a message
carries the bookkeeping the simulator needs for latency accounting
(Section 7: ``L_avg``, ``L_max``) and whatever per-message routing
state an algorithm requires (the shuffle-exchange algorithm records the
number of shuffle links already traversed; the torus algorithm records
the minimal direction chosen per dimension and dateline crossings).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable

_msg_counter = itertools.count()


@dataclass(eq=False)
class Message:
    """One packet traveling through the network.

    Attributes
    ----------
    src, dst:
        Source and destination *nodes*.
    injected_cycle:
        Routing cycle at which the packet entered its injection queue.
        ``-1`` until injected.
    delivered_cycle:
        Routing cycle at which the packet entered the delivery queue.
        ``-1`` until delivered.
    state:
        Algorithm-specific routing state (opaque to the engine); updated
        through :meth:`repro.core.routing_function.RoutingAlgorithm.update_state`.
    hops:
        Sequence of queue ids visited (only recorded when tracing is on).
    """

    src: Hashable
    dst: Hashable
    uid: int = field(default_factory=lambda: next(_msg_counter))
    injected_cycle: int = -1
    delivered_cycle: int = -1
    state: Any = None
    hops: list | None = None
    #: While in flight between nodes: the queue this packet is heading
    #: to (decided when it was placed in the output buffer).
    target: Any = None
    #: Engine-private memo (CompiledPacketSimulator): the fill plan
    #: last resolved for this message, keyed by ``(queue, state)``.
    #: Pure functions of the key, so they never need invalidation.
    plan_sig: Any = None
    plan: Any = None
    #: Service-class tag for open-loop serving workloads
    #: (`repro.serve`): engines never read it, the telemetry layer
    #: buckets latency by it.  ``None`` for batch-experiment traffic.
    qos: str | None = None

    @property
    def delivered(self) -> bool:
        return self.delivered_cycle >= 0

    @property
    def latency(self) -> int:
        """Delivery latency in routing cycles (paper's ``L``)."""
        if not self.delivered or self.injected_cycle < 0:
            raise ValueError("message not delivered yet")
        return self.delivered_cycle - self.injected_cycle

    def record_hop(self, q) -> None:
        if self.hops is not None:
            self.hops.append(q)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Message(#{self.uid} {self.src}->{self.dst})"


def reset_message_ids() -> None:
    """Restart the global message id counter (test isolation helper)."""
    global _msg_counter
    _msg_counter = itertools.count()


def message_id_watermark() -> int:
    """The uid the next :class:`Message` would receive.

    Peeking consumes nothing: the counter is re-seeded at the observed
    value.  The sharded engine uses the watermark to keep per-worker
    uid streams aligned with a serial run (`docs/SHARDING.md`).
    """
    global _msg_counter
    mark = next(_msg_counter)
    _msg_counter = itertools.count(mark)
    return mark


def set_message_id_watermark(mark: int) -> None:
    """Continue the global uid stream from ``mark``."""
    global _msg_counter
    _msg_counter = itertools.count(mark)
