"""Machine verification of the Section-2 deadlock-freedom conditions.

The paper's central theorem is that greedy routing over an extended
routing function ``R~`` is deadlock free provided

1. every hop of ``R~`` lands at most one physical hop away,
2. the underlying static function ``R`` is a total routing function
   whose QDG is acyclic (so every message always holds a static path
   to its destination with no dead ends), and
3. every dynamic hop lands on a queue where ``R`` is non-empty
   (the message regains a static escape path immediately).

Additionally the paper requires ``Level(q) >= Level(q')`` for every
dynamic link ``(q, q')`` where ``Level`` is the longest static path
from the injection queues (noting this costs no generality).

:func:`verify_algorithm` checks all of these *exhaustively* on a given
instance, plus (optionally) minimality and full adaptivity, and
returns a structured report.  This is the tool the test-suite uses to
certify Theorems 1-3 and our torus/shuffle-exchange reconstructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable

import networkx as nx

from .paths import is_fully_adaptive_for_pair, is_minimal_for_pair
from .qdg import Exploration, build_qdg, explore, queue_levels
from .queues import QueueId, deliver
from .routing_function import RoutingAlgorithm


@dataclass
class VerificationReport:
    """Outcome of verifying one routing algorithm instance."""

    algorithm: str
    adjacency_ok: bool = True
    static_acyclic: bool = True
    no_dead_ends: bool = True
    dynamic_escape_ok: bool = True
    level_monotone: bool = True
    static_terminates: bool = True
    minimal: bool | None = None
    fully_adaptive: bool | None = None
    errors: list[str] = field(default_factory=list)
    #: True number of failures observed, including ones dropped from
    #: ``errors`` once the per-report cap was hit.
    error_total: int = 0
    #: Minimal cycle witnesses (``repro.statics.witness.CycleWitness``)
    #: attached when the static QDG is cyclic.
    witnesses: list[Any] = field(default_factory=list)

    @property
    def deadlock_free(self) -> bool:
        """All Section-2 conditions hold on this instance."""
        return (
            self.adjacency_ok
            and self.static_acyclic
            and self.no_dead_ends
            and self.dynamic_escape_ok
            and self.level_monotone
            and self.static_terminates
        )

    @property
    def ok(self) -> bool:
        extras = [
            v for v in (self.minimal, self.fully_adaptive) if v is not None
        ]
        return self.deadlock_free and all(extras)

    def fail(self, attr: str, msg: str, cap: int = 20) -> None:
        setattr(self, attr, False)
        self.error_total += 1
        if len(self.errors) < cap:
            self.errors.append(msg)

    def summary(self) -> str:
        flags = {
            "adjacency": self.adjacency_ok,
            "static-DAG": self.static_acyclic,
            "no-dead-ends": self.no_dead_ends,
            "dynamic-escape": self.dynamic_escape_ok,
            "level-monotone": self.level_monotone,
            "static-terminates": self.static_terminates,
        }
        if self.minimal is not None:
            flags["minimal"] = self.minimal
        if self.fully_adaptive is not None:
            flags["fully-adaptive"] = self.fully_adaptive
        body = ", ".join(
            f"{k}={'ok' if v else 'FAIL'}" for k, v in flags.items()
        )
        out = f"{self.algorithm}: {body}"
        if self.error_total > len(self.errors):
            # The cap in :meth:`fail` dropped counterexamples; say so
            # instead of letting the report look exhaustive.
            out += (
                f" [truncated: showing {len(self.errors)} of "
                f"{self.error_total} counterexamples]"
            )
        return out


def _check_adjacency(
    algorithm: RoutingAlgorithm, exp: Exploration, report: VerificationReport
) -> None:
    topo = algorithm.topology
    for t in exp.transitions:
        u, v = t.q_from.node, t.q_to.node
        if u == v:
            continue
        if not topo.is_adjacent(u, v):
            report.fail(
                "adjacency_ok",
                f"hop {t.q_from} -> {t.q_to} spans non-adjacent nodes",
            )
        if t.q_from.is_delivery:
            report.fail("adjacency_ok", f"hop out of delivery queue {t.q_from}")
        if t.q_to.is_injection:
            report.fail("adjacency_ok", f"hop into injection queue {t.q_to}")


def _check_static_structure(
    algorithm: RoutingAlgorithm, exp: Exploration, report: VerificationReport
) -> dict[QueueId, int] | None:
    static = build_qdg(algorithm, include_dynamic=False, exploration=exp)
    if not nx.is_directed_acyclic_graph(static):
        # The witness builder is the single source of cycle evidence:
        # verify_algorithm, the static analyzer, and verify_under_faults
        # all surface the same minimal ``(queue, dst, state)`` rows.
        from ..statics.witness import cycle_witness

        wit = cycle_witness(algorithm, exp)
        if wit is not None:
            report.witnesses.append(wit)
            report.fail(
                "static_acyclic", "static QDG has a cycle: " + wit.describe()
            )
        else:  # pragma: no cover - cyclic QDG always yields a witness
            cyc = nx.find_cycle(static)
            report.fail(
                "static_acyclic",
                "static QDG has a cycle: "
                + " -> ".join(str(e[0]) for e in cyc),
            )
        return None
    return queue_levels(static)


def _check_dead_ends_and_escape(
    algorithm: RoutingAlgorithm, exp: Exploration, report: VerificationReport
) -> None:
    # Every reachable central-queue configuration must offer at least
    # one *static* hop (dead-end freedom / escape-path existence).
    for dst, configs in exp.configurations.items():
        d_q = deliver(dst)
        for q, st in configs:
            if q == d_q:
                continue
            if not algorithm.static_hops(q, dst, st):
                report.fail(
                    "no_dead_ends",
                    f"reachable {q} (dst={dst}, state={st}) has no static hop",
                )


def _check_static_termination(
    algorithm: RoutingAlgorithm, exp: Exploration, report: VerificationReport
) -> None:
    # Following only static hops from any reachable configuration must
    # reach the delivery queue without revisiting a configuration
    # (condition 2 of a total routing function).  We check acyclicity
    # of the per-destination static configuration graph and that every
    # sink is the delivery queue.
    for dst, configs in exp.configurations.items():
        d_q = deliver(dst)
        g = nx.DiGraph()
        keyed = {}
        for q, st in configs:
            key = (q, repr(st))
            keyed[key] = (q, st)
            g.add_node(key)
        for q, st in configs:
            if q == d_q:
                continue
            for q2 in algorithm.static_hops(q, dst, st):
                st2 = algorithm.update_state(st, q, q2)
                g.add_edge((q, repr(st)), (q2, repr(st2)))
        if not nx.is_directed_acyclic_graph(g):
            report.fail(
                "static_terminates",
                f"static routing for dst={dst} can revisit a configuration",
            )
            continue
        for key in g.nodes:
            if g.out_degree(key) == 0 and key[0] != d_q:
                report.fail(
                    "static_terminates",
                    f"static route for dst={dst} stalls at {key[0]}",
                )


def _check_dynamic_conditions(
    algorithm: RoutingAlgorithm,
    exp: Exploration,
    levels: dict[QueueId, int] | None,
    report: VerificationReport,
) -> None:
    for dst, configs in exp.configurations.items():
        for q, st in configs:
            if q.is_delivery:
                continue
            for q2 in algorithm.dynamic_hops(q, dst, st):
                st2 = algorithm.update_state(st, q, q2)
                # Condition 3: the landing queue must offer a static hop.
                if not q2.is_delivery and not algorithm.static_hops(
                    q2, dst, st2
                ):
                    report.fail(
                        "dynamic_escape_ok",
                        f"dynamic hop {q} -> {q2} (dst={dst}) lands with "
                        "no static continuation",
                    )
                if q2.is_injection or q.is_delivery:
                    report.fail(
                        "dynamic_escape_ok",
                        f"dynamic hop {q} -> {q2} touches inject/deliver",
                    )
                # Level monotonicity of dynamic links.
                if levels is not None:
                    if levels.get(q, 0) < levels.get(q2, 0):
                        report.fail(
                            "level_monotone",
                            f"dynamic link {q} (L={levels.get(q, 0)}) -> "
                            f"{q2} (L={levels.get(q2, 0)}) ascends levels",
                        )


def verify_algorithm(
    algorithm: RoutingAlgorithm,
    sources: Iterable[Hashable] | None = None,
    destinations: Iterable[Hashable] | None = None,
    check_minimal: bool | None = None,
    check_fully_adaptive: bool | None = None,
    pair_limit: int | None = None,
    strict_levels: bool | None = None,
    exploration: Exploration | None = None,
) -> VerificationReport:
    """Exhaustively verify one algorithm instance.

    ``check_minimal`` / ``check_fully_adaptive`` default to the
    algorithm's declared claims; pass ``False`` to skip the (more
    expensive) path enumeration.  ``pair_limit`` caps the number of
    (src, dst) pairs used for path-level checks.

    ``strict_levels`` controls the dynamic-link Level-monotonicity
    check.  ``Level`` is the longest static path from *any* injection
    queue, so it is only meaningful over the full source set; when
    ``sources`` is restricted the check defaults to off (a partial
    exploration systematically underestimates levels).

    ``exploration`` lets callers that already hold the reachable-
    configuration enumeration (the static analyzer) share it instead of
    re-exploring; it must match ``sources``/``destinations``.
    """
    report = VerificationReport(algorithm=algorithm.name)
    exp = exploration or explore(algorithm, sources, destinations)
    if strict_levels is None:
        strict_levels = sources is None

    _check_adjacency(algorithm, exp, report)
    levels = _check_static_structure(algorithm, exp, report)
    _check_dead_ends_and_escape(algorithm, exp, report)
    _check_static_termination(algorithm, exp, report)
    _check_dynamic_conditions(
        algorithm, exp, levels if strict_levels else None, report
    )

    do_min = algorithm.is_minimal if check_minimal is None else check_minimal
    do_fa = (
        algorithm.is_fully_adaptive
        if check_fully_adaptive is None
        else check_fully_adaptive
    )
    if do_min or do_fa:
        topo = algorithm.topology
        srcs = list(sources) if sources is not None else list(topo.nodes())
        dsts = (
            list(destinations)
            if destinations is not None
            else list(topo.nodes())
        )
        pairs = [(s, d) for s in srcs for d in dsts if s != d]
        if pair_limit is not None:
            pairs = pairs[:pair_limit]
        if do_min:
            report.minimal = True
            for s, d in pairs:
                if not is_minimal_for_pair(algorithm, s, d):
                    report.fail("minimal", f"non-minimal route {s} -> {d}")
        if do_fa:
            report.fully_adaptive = True
            for s, d in pairs:
                if not is_fully_adaptive_for_pair(algorithm, s, d):
                    report.fail(
                        "fully_adaptive",
                        f"not all minimal paths realizable for {s} -> {d}",
                    )
    return report
