"""Queue identities and specifications.

The paper (Section 2) expresses routing functions over *queues* rather
than links: every node owns an injection queue, a delivery queue, and a
small set of *central* queues (``qA``/``qB`` for the hypercube and mesh,
four phase/class queues for the shuffle-exchange).  A queue is therefore
identified by the node that owns it plus a *kind* label.

This module defines :class:`QueueId` (hashable, totally ordered, cheap)
and :class:`QueueSpec` (capacity bookkeeping for the simulator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, NamedTuple

#: Kind label of the injection queue of a node (``i_n`` in the paper).
INJECT = "inj"

#: Kind label of the delivery queue of a node (``d_n`` in the paper).
DELIVER = "del"


class QueueId(NamedTuple):
    """Identity of one queue in the network.

    Parameters
    ----------
    node:
        The node owning the queue.  Any hashable value accepted by the
        topology (``int`` for hypercubes and shuffle-exchanges, an
        ``(x, y)`` tuple for meshes and tori).
    kind:
        The queue's role: :data:`INJECT`, :data:`DELIVER`, or one of
        the routing algorithm's central-queue kinds (e.g. ``"A"``).
    """

    node: Hashable
    kind: str

    @property
    def is_injection(self) -> bool:
        """True for an injection queue (``i_n``)."""
        return self.kind == INJECT

    @property
    def is_delivery(self) -> bool:
        """True for a delivery queue (``d_n``)."""
        return self.kind == DELIVER

    @property
    def is_central(self) -> bool:
        """True for a central (routing) queue owned by the node."""
        return self.kind not in (INJECT, DELIVER)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"q[{self.kind}@{self.node}]"


def inject(node: Hashable) -> QueueId:
    """The injection queue ``i_node``."""
    return QueueId(node, INJECT)


def deliver(node: Hashable) -> QueueId:
    """The delivery queue ``d_node``."""
    return QueueId(node, DELIVER)


@dataclass(frozen=True)
class QueueSpec:
    """Capacity description of one queue class for the simulator.

    The paper's simulations (Section 7.1) use an injection queue of
    size 1, central queues of size 5, and delivery queues of unbounded
    size (messages are eventually consumed).
    """

    kind: str
    capacity: int | None  #: ``None`` means unbounded (delivery queues).

    @property
    def unbounded(self) -> bool:
        return self.capacity is None

    def fits(self, occupancy: int) -> bool:
        """Whether a queue at ``occupancy`` can accept one more message."""
        return self.capacity is None or occupancy < self.capacity


def default_queue_specs(
    central_kinds: tuple[str, ...],
    central_capacity: int = 5,
    injection_capacity: int = 1,
) -> dict[str, QueueSpec]:
    """The Section-7.1 queue sizing for a given set of central kinds.

    Returns a mapping ``kind -> QueueSpec`` covering the injection
    queue, the delivery queue, and every central queue kind.
    """
    specs: dict[str, QueueSpec] = {
        INJECT: QueueSpec(INJECT, injection_capacity),
        DELIVER: QueueSpec(DELIVER, None),
    }
    for kind in central_kinds:
        if kind in specs:
            raise ValueError(f"central queue kind {kind!r} is reserved")
        specs[kind] = QueueSpec(kind, central_capacity)
    return specs


def validate_queue_id(q: Any) -> QueueId:
    """Coerce/validate an arbitrary value into a :class:`QueueId`."""
    if isinstance(q, QueueId):
        return q
    if isinstance(q, tuple) and len(q) == 2 and isinstance(q[1], str):
        return QueueId(q[0], q[1])
    raise TypeError(f"not a queue id: {q!r}")
