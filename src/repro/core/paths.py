"""Path enumeration and adaptivity analysis.

A routing algorithm is *minimal* when every realizable route is a
shortest path, and *fully adaptive* when, additionally, **every**
shortest node path between a source and a destination is realizable
(paper, Section 1).  This module enumerates both path sets exactly on
small instances so tests can certify the claims of Theorems 1 and 2.
"""

from __future__ import annotations

from typing import Any, Hashable

from ..topology.base import Topology
from .queues import QueueId, deliver, inject
from .routing_function import RoutingAlgorithm


def minimal_node_paths(
    topology: Topology, src: Hashable, dst: Hashable
) -> set[tuple[Hashable, ...]]:
    """All shortest node paths from ``src`` to ``dst``.

    Enumerated over the layered BFS DAG: a hop ``u -> v`` is on a
    shortest path iff ``dist(v, dst) == dist(u, dst) - 1``.
    """
    if src == dst:
        return {(src,)}

    out: set[tuple[Hashable, ...]] = set()

    def rec(prefix: tuple[Hashable, ...], u: Hashable) -> None:
        if u == dst:
            out.add(prefix)
            return
        du = topology.distance(u, dst)
        for v in topology.neighbors(u):
            try:
                dv = topology.distance(v, dst)
            except ValueError:
                continue  # dst unreachable from v (directed topologies)
            if dv == du - 1:
                rec(prefix + (v,), v)

    rec((src,), src)
    return out


def realizable_node_paths(
    algorithm: RoutingAlgorithm,
    src: Hashable,
    dst: Hashable,
    include_dynamic: bool = True,
    max_paths: int = 1_000_000,
) -> set[tuple[Hashable, ...]]:
    """All node paths a message from ``src`` to ``dst`` may follow.

    Walks every queue-level route allowed by the routing function
    (optionally restricted to the static sub-function) and projects
    queue paths to node paths.  Exhaustive, so only suitable for small
    instances; ``max_paths`` guards against runaway growth.
    """
    if src == dst:
        return {(src,)}
    out: set[tuple[Hashable, ...]] = set()
    d_q = deliver(dst)

    def hops(q: QueueId, state: Any) -> frozenset[QueueId]:
        h = algorithm.static_hops(q, dst, state)
        if include_dynamic:
            h = h | algorithm.dynamic_hops(q, dst, state)
        return h

    # DFS over (queue, state); node path grows only on inter-node moves.
    # Queue-level routes are acyclic per destination for correct
    # algorithms, but we cap the hop count defensively.
    hop_cap = 6 * (algorithm.topology.diameter + 4)

    def rec(q: QueueId, state: Any, nodes: tuple[Hashable, ...], depth: int):
        if len(out) >= max_paths:
            raise RuntimeError(f"more than {max_paths} realizable paths")
        if q == d_q:
            out.add(nodes)
            return
        if depth > hop_cap:
            raise RuntimeError(f"route {src}->{dst} exceeded {hop_cap} hops")
        for q2 in hops(q, state):
            state2 = algorithm.update_state(state, q, q2)
            nodes2 = nodes if q2.node == nodes[-1] else nodes + (q2.node,)
            rec(q2, state2, nodes2, depth + 1)

    state0 = algorithm.initial_state(src, dst)
    i_q = inject(src)
    for q in algorithm.injection_targets(src, dst, state0):
        rec(q, algorithm.update_state(state0, i_q, q), (src,), 0)
    return out


def is_minimal_for_pair(
    algorithm: RoutingAlgorithm, src: Hashable, dst: Hashable
) -> bool:
    """Every realizable path from ``src`` to ``dst`` is shortest."""
    d = algorithm.topology.distance(src, dst)
    return all(
        len(p) - 1 == d
        for p in realizable_node_paths(algorithm, src, dst)
    )


def is_fully_adaptive_for_pair(
    algorithm: RoutingAlgorithm, src: Hashable, dst: Hashable
) -> bool:
    """The realizable path set equals the full shortest-path set."""
    return realizable_node_paths(algorithm, src, dst) == minimal_node_paths(
        algorithm.topology, src, dst
    )


def adaptivity_ratio(
    algorithm: RoutingAlgorithm, src: Hashable, dst: Hashable
) -> float:
    """|realizable minimal paths| / |all minimal paths| for one pair.

    1.0 means fully adaptive on this pair; oblivious algorithms score
    ``1 / |minimal paths|``.
    """
    minimal = minimal_node_paths(algorithm.topology, src, dst)
    realizable = realizable_node_paths(algorithm, src, dst)
    return len(realizable & minimal) / len(minimal)
