"""Queue-occupancy analysis.

The paper motivates the dynamic links by the congestion that builds
around node ``1...1`` when phase-A messages must finish all their
0 -> 1 corrections before any 1 -> 0 correction.  These helpers
aggregate the simulator's occupancy samples by node level so that the
effect (and its disappearance under the fully-adaptive scheme) can be
measured directly.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable

from ..sim.metrics import SimulationResult
from ..topology.hypercube import Hypercube, hamming_weight


def occupancy_by_level(
    result: SimulationResult, topology: Hypercube, kind: str | None = None
) -> dict[int, float]:
    """Mean central-queue occupancy per node level (Hamming weight).

    ``kind`` restricts to one queue kind (e.g. ``"A"``); ``None``
    aggregates all central queues of a node.
    """
    mean = result.occupancy.get("mean", {})
    if not mean:
        raise ValueError(
            "run the simulator with collect_occupancy=True to use this"
        )
    total: dict[int, float] = defaultdict(float)
    count: dict[int, int] = defaultdict(int)
    for (node, k), value in mean.items():
        if kind is not None and k != kind:
            continue
        lvl = hamming_weight(node)
        total[lvl] += value
        count[lvl] += 1
    return {lvl: total[lvl] / count[lvl] for lvl in sorted(total)}


def peak_occupancy_by_level(
    result: SimulationResult, topology: Hypercube, kind: str | None = None
) -> dict[int, int]:
    """Maximum observed occupancy per node level."""
    peak = result.occupancy.get("peak", {})
    if not peak:
        raise ValueError(
            "run the simulator with collect_occupancy=True to use this"
        )
    out: dict[int, int] = defaultdict(int)
    for (node, k), value in peak.items():
        if kind is not None and k != kind:
            continue
        lvl = hamming_weight(node)
        out[lvl] = max(out[lvl], value)
    return dict(sorted(out.items()))


def top_congested_nodes(
    result: SimulationResult, top: int = 5
) -> list[tuple[Hashable, str, float]]:
    """The ``top`` (node, kind, mean occupancy) hot spots."""
    mean = result.occupancy.get("mean", {})
    ranked = sorted(mean.items(), key=lambda kv: -kv[1])[:top]
    return [(node, kind, value) for (node, kind), value in ranked]
