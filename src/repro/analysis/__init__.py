"""Analysis and reporting: paper tables, figures, occupancy studies."""

from .figures import (
    ALL_FIGURES,
    FigureBundle,
    figure1_hypercube_qdg,
    figure2_mesh_qdg,
    figure3_shuffle_qdg,
    figure4_hypercube_node,
    figure5_mesh_node,
    figure6_shuffle_node,
    node_design_figure,
    qdg_figure,
    qdg_to_dot,
)
from .occupancy import (
    occupancy_by_level,
    peak_occupancy_by_level,
    top_congested_nodes,
)
from .sweeps import LoadPoint, knee_load, load_sweep, saturation_throughput
from .tables import PaperTable, TableRow, format_rows

__all__ = [
    "PaperTable",
    "TableRow",
    "format_rows",
    "FigureBundle",
    "qdg_to_dot",
    "qdg_figure",
    "node_design_figure",
    "figure1_hypercube_qdg",
    "figure2_mesh_qdg",
    "figure3_shuffle_qdg",
    "figure4_hypercube_node",
    "figure5_mesh_node",
    "figure6_shuffle_node",
    "ALL_FIGURES",
    "occupancy_by_level",
    "peak_occupancy_by_level",
    "top_congested_nodes",
    "LoadPoint",
    "load_sweep",
    "saturation_throughput",
    "knee_load",
]
