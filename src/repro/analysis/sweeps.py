"""Load sweeps: latency/throughput curves.

The paper evaluates only the saturating ``lambda = 1`` point; these
helpers trace the full offered-load curve (the standard way adaptive
routers are characterised today), which makes the adaptive-vs-oblivious
gap and the saturation knee visible.  Used by the load-curve ablation
benchmark and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.routing_function import RoutingAlgorithm
from ..sim.engine import PacketSimulator
from ..sim.injection import DynamicInjection
from ..sim.metrics import SimulationResult
from ..sim.rng import make_rng
from ..sim.traffic import TrafficPattern


@dataclass
class LoadPoint:
    """One point of a load sweep."""

    offered: float  #: injection probability lambda
    accepted: float  #: lambda x effective injection rate
    l_avg: float
    l_max: int
    delivered: int
    #: Telemetry summary when the sweep was instrumented; None otherwise.
    telemetry: dict | None = None

    def row(self) -> dict:
        out = {
            "lambda": round(self.offered, 3),
            "accepted": round(self.accepted, 3),
            "L_avg": round(self.l_avg, 2),
            "L_max": self.l_max,
        }
        if self.telemetry:
            t = self.telemetry
            out["link_util"] = round(t["link_utilization"], 4)
            out["dyn_hops(%)"] = round(
                100.0 * t["hops"]["dynamic_fraction"], 1
            )
            if t["occupancy"]["mean"] is not None:
                out["occ_mean"] = round(t["occupancy"]["mean"], 3)
        return out


def load_sweep(
    algorithm_factory: Callable[[], RoutingAlgorithm],
    pattern_factory: Callable[[], TrafficPattern],
    rates: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 1.0),
    duration: int = 300,
    warmup: int = 100,
    seed: int = 0,
    central_capacity: int = 5,
    engine: str | None = None,
    telemetry: bool = False,
) -> list[LoadPoint]:
    """Measure latency and accepted throughput across offered loads.

    A fresh algorithm/pattern instance per point keeps runs independent
    and reproducible.  ``engine`` picks a specific engine (default: the
    reference engine, the historical behavior); ``telemetry`` attaches
    a metrics-only probe per point, populating ``LoadPoint.telemetry``
    and the occupancy/utilization row columns.
    """
    # Lazy import: analysis stays importable without the experiments
    # machinery, and only instrumented sweeps need the factory.
    from ..experiments.runner import build_simulator

    points = []
    for rate in rates:
        alg = algorithm_factory()
        inj = DynamicInjection(
            rate,
            pattern_factory(),
            make_rng(seed, f"load-{rate}"),
            duration=duration,
            warmup=warmup,
        )
        if engine is None and not telemetry:
            sim = PacketSimulator(alg, inj, central_capacity=central_capacity)
        else:
            sim = build_simulator(
                alg,
                inj,
                engine=engine or "reference",
                telemetry=telemetry or None,
                central_capacity=central_capacity,
            )
        res: SimulationResult = sim.run()
        points.append(
            LoadPoint(
                offered=rate,
                accepted=rate * res.injection_rate,
                l_avg=res.l_avg,
                l_max=res.l_max,
                delivered=res.delivered,
                telemetry=res.telemetry,
            )
        )
    return points


def saturation_throughput(points: Sequence[LoadPoint]) -> float:
    """Peak accepted load over a sweep (messages/node/cycle)."""
    return max(p.accepted for p in points)


def knee_load(points: Sequence[LoadPoint], factor: float = 2.0) -> float:
    """First offered load whose latency exceeds ``factor`` x the
    zero-load latency (a simple saturation-knee estimate)."""
    if not points:
        raise ValueError("empty sweep")
    base = points[0].l_avg
    for p in points:
        if p.l_avg > factor * base:
            return p.offered
    return points[-1].offered
