"""Paper-style table rendering.

Formats simulation sweeps the way the paper prints Tables 1-12:
one row per hypercube dimension with ``n``, ``N``, ``L_avg``,
``L_max`` and (for dynamic injection) ``I_r (%)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..sim.metrics import SimulationResult


@dataclass
class TableRow:
    """One row of a paper-style results table."""

    n: int
    N: int
    l_avg: float
    l_max: int
    i_r: float | None = None  #: percentage, ``None`` for static tables

    def cells(self, dynamic: bool) -> list[str]:
        out = [str(self.n), str(self.N), f"{self.l_avg:.2f}", str(self.l_max)]
        if dynamic:
            out.append("-" if self.i_r is None else f"{self.i_r:.0f}")
        return out


@dataclass
class PaperTable:
    """A reproduced table plus the paper's reference values."""

    title: str
    rows: list[TableRow] = field(default_factory=list)
    reference: list[TableRow] = field(default_factory=list)
    dynamic: bool = False

    def add_result(self, n: int, result: SimulationResult) -> None:
        i_r = None
        if self.dynamic and result.attempts:
            i_r = 100.0 * result.injection_rate
        self.rows.append(
            TableRow(n=n, N=1 << n, l_avg=result.l_avg, l_max=result.l_max, i_r=i_r)
        )

    def header(self) -> list[str]:
        cols = ["n", "N", "L_avg", "L_max"]
        if self.dynamic:
            cols.append("I_r(%)")
        return cols

    def render(self, with_reference: bool = True) -> str:
        """ASCII rendering; optionally appends the paper's numbers."""
        header = self.header()
        lines = [self.title]
        ref_by_n = {r.n: r for r in self.reference}
        if with_reference and self.reference:
            header = header + ["|"] + [f"paper {c}" for c in self.header()[2:]]
        widths = [max(6, len(h)) for h in header]

        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

        lines.append(fmt(header))
        lines.append(fmt(["-" * w for w in widths]))
        for row in self.rows:
            cells = row.cells(self.dynamic)
            if with_reference and self.reference:
                ref = ref_by_n.get(row.n)
                cells = cells + ["|"] + (
                    ref.cells(self.dynamic)[2:] if ref else ["?"] * (len(header) - len(cells) - 1)
                )
            lines.append(fmt(cells))
        return "\n".join(lines)


def format_rows(rows: list[dict], columns: list[str] | None = None) -> str:
    """Generic dict-row table formatter for ad-hoc reports."""
    if not rows:
        return "(no rows)"
    cols = columns or list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in cols
    }
    head = "  ".join(str(c).rjust(widths[c]) for c in cols)
    sep = "  ".join("-" * widths[c] for c in cols)
    body = [
        "  ".join(str(r.get(c, "")).rjust(widths[c]) for c in cols) for r in rows
    ]
    return "\n".join([head, sep] + body)
