"""Programmatic regeneration of the paper's figures.

The paper's figures are structural diagrams, not data plots:

* **Figure 1** — the QDG of a 3-hypercube hung from ``000`` with its
  dynamic links;
* **Figure 2** — the QDG of a 3x3 mesh hung from ``(0,0)``;
* **Figure 3** — the QDG of an 8-node shuffle-exchange;
* **Figures 4-6** — the functional node designs for the three
  algorithms (node ``0101`` of the 4-hypercube, a mesh node, a
  shuffle-exchange node).

This module regenerates each figure as (a) a machine-readable
structure, (b) a Graphviz DOT document, and (c) an ASCII summary, so
the reproduction can be inspected and diffed in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

import networkx as nx

from ..core.qdg import build_qdg, explore, qdg_stats
from ..core.routing_function import RoutingAlgorithm
from ..node.model import NodeDesign, build_node_design
from ..routing.hypercube import HypercubeAdaptiveRouting
from ..routing.mesh import Mesh2DAdaptiveRouting
from ..routing.shuffle_exchange import ShuffleExchangeRouting
from ..topology.hypercube import Hypercube
from ..topology.mesh import Mesh2D
from ..topology.shuffle_exchange import ShuffleExchange


@dataclass
class FigureBundle:
    """One regenerated figure in all its renderings."""

    name: str
    graph: nx.DiGraph | None
    dot: str
    text: str
    stats: dict


def _default_label(q) -> str:
    return f"{q.kind}@{q.node}"


def qdg_to_dot(
    qdg: nx.DiGraph,
    title: str,
    label: Callable = _default_label,
    hide_inject_deliver: bool = True,
) -> str:
    """Graphviz DOT for a QDG; dynamic links are rendered dashed.

    The paper's Figures 1-3 omit the injection and delivery queues;
    ``hide_inject_deliver`` mirrors that.
    """
    lines = [
        f'digraph "{title}" {{',
        "  rankdir=TB;",
        '  node [shape=box, fontsize=10];',
    ]
    visible = {
        q
        for q in qdg.nodes
        if not (hide_inject_deliver and (q.is_injection or q.is_delivery))
    }
    for q in sorted(visible, key=repr):
        lines.append(f'  "{label(q)}";')
    for u, v, dyn in qdg.edges(data="dynamic"):
        if u not in visible or v not in visible:
            continue
        style = ' [style=dashed, color=red]' if dyn else ""
        lines.append(f'  "{label(u)}" -> "{label(v)}"{style};')
    lines.append("}")
    return "\n".join(lines)


def qdg_figure(
    algorithm: RoutingAlgorithm,
    title: str,
    label: Callable = _default_label,
) -> FigureBundle:
    """Regenerate a QDG figure (Figures 1-3) for an algorithm instance."""
    exp = explore(algorithm)
    qdg = build_qdg(algorithm, include_dynamic=True, exploration=exp)
    stats = qdg_stats(qdg)
    static = [e for e in qdg.edges(data="dynamic") if not e[2]]
    dynamic = [e for e in qdg.edges(data="dynamic") if e[2]]
    text_lines = [
        title,
        f"  queues: {stats['queues']}",
        f"  static QDG edges:  {stats['static_edges']}",
        f"  dynamic QDG edges: {stats['dynamic_edges']}",
        "  sample static edges: "
        + ", ".join(f"{label(u)}->{label(v)}" for u, v, _ in static[:6]),
        "  sample dynamic edges: "
        + ", ".join(f"{label(u)}->{label(v)}" for u, v, _ in dynamic[:6]),
    ]
    return FigureBundle(
        name=title,
        graph=qdg,
        dot=qdg_to_dot(qdg, title, label),
        text="\n".join(text_lines),
        stats=stats,
    )


def figure1_hypercube_qdg(n: int = 3) -> FigureBundle:
    """Figure 1: n-hypercube hung from 0...0 with dynamic links."""
    cube = Hypercube(n)
    alg = HypercubeAdaptiveRouting(cube)
    return qdg_figure(
        alg,
        f"Figure 1: {n}-hypercube hung from {'0' * n} with dynamic links",
        label=lambda q: f"{q.kind},{cube.format_node(q.node)}"
        if q.is_central
        else f"{q.kind}@{cube.format_node(q.node)}",
    )


def figure2_mesh_qdg(rows: int = 3) -> FigureBundle:
    """Figure 2: rows x rows mesh hung from (0,0) with dynamic links."""
    mesh = Mesh2D(rows)
    alg = Mesh2DAdaptiveRouting(mesh)
    return qdg_figure(
        alg, f"Figure 2: {rows}-mesh hung from (0,0) with dynamic links"
    )


def figure3_shuffle_qdg(n: int = 3) -> FigureBundle:
    """Figure 3: 2**n-node shuffle-exchange with dynamic links."""
    se = ShuffleExchange(n)
    alg = ShuffleExchangeRouting(se)
    return qdg_figure(
        alg,
        f"Figure 3: {n}-shuffle-exchange hung from {'0' * n} "
        "with dynamic links",
        label=lambda q: f"{q.kind},{se.format_node(q.node)}"
        if q.is_central
        else f"{q.kind}@{se.format_node(q.node)}",
    )


def node_design_figure(
    algorithm: RoutingAlgorithm,
    node: Hashable,
    title: str,
    format_node: Callable = str,
) -> FigureBundle:
    """Regenerate a node-design figure (Figures 4-6)."""
    design: NodeDesign = build_node_design(algorithm, node)
    text = f"{title}\n" + design.describe(format_node)
    stats = {
        "central_queues": design.num_central_queues,
        "buffers": design.num_buffers,
        "out_links": len(design.output_links),
        "in_links": len(design.input_links),
    }
    dot_lines = [f'digraph "{title}" {{', '  node [shape=record];']
    qlabel = "|".join(
        [f"<inj> inj"]
        + [f"<{k}> {k}" for k in design.central_queues]
        + ["<del> del"]
    )
    dot_lines.append(f'  "node" [label="{{{qlabel}}}"];')
    for l in design.output_links:
        for cls in l.classes:
            dot_lines.append(
                f'  "node" -> "out:{format_node(l.link[1])}:{cls}";'
            )
    for l in design.input_links:
        for cls in l.classes:
            dot_lines.append(
                f'  "in:{format_node(l.link[0])}:{cls}" -> "node";'
            )
    dot_lines.append("}")
    return FigureBundle(
        name=title,
        graph=None,
        dot="\n".join(dot_lines),
        text=text,
        stats=stats,
    )


def figure4_hypercube_node(n: int = 4, node: int = 0b0101) -> FigureBundle:
    """Figure 4: node 0101 of the 4-hypercube."""
    cube = Hypercube(n)
    alg = HypercubeAdaptiveRouting(cube)
    return node_design_figure(
        alg,
        node,
        f"Figure 4: node {cube.format_node(node)} of the {n}-hypercube",
        format_node=cube.format_node,
    )


def figure5_mesh_node(rows: int = 4, node=(1, 2)) -> FigureBundle:
    """Figure 5: the node for the mesh."""
    mesh = Mesh2D(rows)
    alg = Mesh2DAdaptiveRouting(mesh)
    return node_design_figure(
        alg, node, f"Figure 5: node {node} of the {rows}x{rows} mesh"
    )


def figure6_shuffle_node(n: int = 3, node: int = 0b001) -> FigureBundle:
    """Figure 6: the node for the shuffle-exchange."""
    se = ShuffleExchange(n)
    alg = ShuffleExchangeRouting(se)
    return node_design_figure(
        alg,
        node,
        f"Figure 6: node {se.format_node(node)} of the {n}-shuffle-exchange",
        format_node=se.format_node,
    )


ALL_FIGURES = {
    "figure1": figure1_hypercube_qdg,
    "figure2": figure2_mesh_qdg,
    "figure3": figure3_shuffle_qdg,
    "figure4": figure4_hypercube_node,
    "figure5": figure5_mesh_node,
    "figure6": figure6_shuffle_node,
}
