"""Injection models (paper, Section 7).

* **Static injection**: every node holds an a-priori fixed number of
  packets (1 or ``n`` in the paper); the run ends when all packets are
  delivered.
* **Dynamic injection**: in every cycle each node attempts, with
  probability ``lambda``, to place a packet in its injection queue;
  the attempt fails (and is counted as such) if the queue is still
  occupied.  The paper runs ``lambda = 1``.

Injection models only decide *when a node generates a packet and for
which destination*; the engine owns queue capacities and movement.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Hashable

import numpy as np

from ..core.message import Message
from .sampling import bernoulli_fires
from .traffic import TrafficPattern

if TYPE_CHECKING:  # pragma: no cover
    from .engine import PacketSimulator


class InjectionModel(ABC):
    """Generates packets into the simulator's injection queues."""

    name: str = "injection"

    def setup(self, sim: "PacketSimulator") -> None:
        """Called once before the first cycle."""

    @abstractmethod
    def attempt(self, sim: "PacketSimulator", cycle: int) -> None:
        """Called at the start of every cycle; may inject packets."""

    @abstractmethod
    def finished(self, sim: "PacketSimulator", cycle: int) -> bool:
        """Whether the run should stop after this cycle."""


class StaticInjection(InjectionModel):
    """``packets_per_node`` packets per node, all present at time 0.

    The node feeds its (size-1) injection queue from the backlog as
    soon as the queue drains; packets time-stamp their injection when
    they enter the injection queue.
    """

    def __init__(
        self,
        packets_per_node: int,
        pattern: TrafficPattern,
        rng: np.random.Generator,
    ):
        if packets_per_node < 1:
            raise ValueError("packets_per_node must be >= 1")
        self.packets_per_node = packets_per_node
        self.pattern = pattern
        self.rng = rng
        self.name = f"static({packets_per_node})"
        self.backlog: dict[Hashable, list[Message]] = {}
        self.total = 0

    def setup(self, sim: "PacketSimulator") -> None:
        alg = sim.algorithm
        self.backlog = {}
        self.total = 0
        for u in sim.nodes:
            msgs = []
            for _ in range(self.packets_per_node):
                dst = self.pattern.draw(u, self.rng)
                if dst == u:
                    continue  # fixed point: this node stays silent
                msgs.append(
                    Message(src=u, dst=dst, state=alg.initial_state(u, dst))
                )
            msgs.reverse()  # pop() from the end == FIFO over generation
            self.backlog[u] = msgs
            self.total += len(msgs)

    def attempt(self, sim: "PacketSimulator", cycle: int) -> None:
        for u in sim.nodes:
            backlog = self.backlog[u]
            if backlog and sim.injection_queue_free(u):
                msg = backlog.pop()
                sim.place_in_injection_queue(u, msg, cycle)

    def finished(self, sim: "PacketSimulator", cycle: int) -> bool:
        return sim.delivered_count >= self.total


class DynamicInjection(InjectionModel):
    """Bernoulli(lambda) injection attempts, fixed run length.

    ``duration`` is the total number of cycles; attempts and successes
    are counted from ``warmup`` onwards so the reported effective
    injection rate reflects steady state.
    """

    def __init__(
        self,
        rate: float,
        pattern: TrafficPattern,
        rng: np.random.Generator,
        duration: int,
        warmup: int = 0,
    ):
        if not 0.0 < rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")
        if warmup >= duration:
            raise ValueError("warmup must be shorter than the run")
        self.rate = rate
        self.pattern = pattern
        self.rng = rng
        self.duration = duration
        self.warmup = warmup
        self.name = f"dynamic(lambda={rate})"
        self.attempts = 0
        self.successes = 0

    def attempt(self, sim: "PacketSimulator", cycle: int) -> None:
        alg = sim.algorithm
        # The shared sampler consumes the RNG exactly as this model
        # always has (one random() vector, then one pattern draw per
        # firing node below), so extraction changed no byte of any log.
        tries = bernoulli_fires(sim.nodes, self.rate, self.rng)
        measuring = cycle >= self.warmup
        for u in tries:
            dst = self.pattern.draw(u, self.rng)
            if dst == u:
                continue
            if measuring:
                self.attempts += 1
            if sim.injection_queue_free(u):
                if measuring:
                    self.successes += 1
                msg = Message(src=u, dst=dst, state=alg.initial_state(u, dst))
                sim.place_in_injection_queue(u, msg, cycle)

    def finished(self, sim: "PacketSimulator", cycle: int) -> bool:
        return cycle + 1 >= self.duration
