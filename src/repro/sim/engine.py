"""Cycle-accurate packet-switched network simulator (paper, Section 7.1).

Reproduces the paper's node activity exactly:

* every node owns an injection queue of size 1, central queues of size
  5 (configurable), and an unbounded delivery queue;
* each **routing cycle** is one *node cycle* followed by one *link
  cycle*;
* in the node cycle, the node first fills its output buffers "from low
  to high dimensions, taking messages from the queues in FIFO order"
  (buffer-major assignment; if two messages want the same buffer the
  FIFO-earlier one wins), then reads its input buffers and its
  injection buffer and moves their messages into the required queues,
  with rotating-priority fairness;
* in the link cycle each link sends at most one packet per direction,
  and only into an empty input buffer on the far side;
* consequently a packet needs at least two routing cycles to cross a
  node (input buffer -> queue, queue -> output buffer).

Latency is counted from the cycle a packet enters its injection queue
to the cycle it enters the delivery queue; with this convention an
uncontended ``h``-hop route costs exactly ``2h + 1`` cycles, which
reproduces the paper's deterministic Table 2 (complement, one packet:
``L = 2n + 1``).

The engine is generic over :class:`~repro.core.routing_function.RoutingAlgorithm`
and :class:`~repro.topology.base.Topology`; adaptivity emerges from
messages grabbing whichever allowed output buffer is free first.

**Role in the engine lineage** (see ``docs/ARCHITECTURE.md`` for the
full capability matrix): this is the *reference* engine — the
executable specification every other engine
(:class:`~repro.sim.compiled.CompiledPacketSimulator`,
:class:`~repro.sim.fastcube.FastHypercubeSimulator`,
:class:`~repro.sim.vector.VectorSimulator`) is cross-validated
against, packet for packet.  It supports the complete feature
surface — any topology, fault observers, telemetry probes, route
tracing, FIFO/LIFO service, paper/rotating buffer policies — and has
no limitations other than speed: every hop re-derives
``static_hops`` / ``dynamic_hops`` / ``buffer_class`` /
``update_state`` through the generic interface, which is the 1x
baseline the other engines are measured over.
"""

from __future__ import annotations

from typing import Hashable

from ..core.message import Message
from ..core.queues import QueueId
from ..core.routing_function import RoutingAlgorithm
from ..node.arbitration import rotated
from .injection import InjectionModel
from .metrics import LatencyStats, SimulationResult


class DeadlockError(RuntimeError):
    """Raised when no packet makes progress for ``stall_limit`` cycles."""


class CycleLimitExceeded(RuntimeError):
    """Raised when :meth:`PacketSimulator.run` hits its ``max_cycles`` cap.

    Distinct from :class:`DeadlockError`: the network may still be
    making (slow) progress, it just did not finish within the budget.
    """


class SimulationHalt(Exception):
    """Control-flow signal: an observer asks the run to stop gracefully.

    Raised by observers (e.g. the fault watchdog in
    :mod:`repro.faults.watchdog`) when continuing is pointless — every
    remaining packet is provably undeliverable under the current fault
    set — but the partial result is still meaningful.  ``run`` catches
    it and finalizes the :class:`SimulationResult` with ``halt`` set.
    """

    def __init__(self, reason: str, report=None, undeliverable: int = 0):
        super().__init__(reason)
        self.reason = reason
        self.report = report
        self.undeliverable = undeliverable


class PacketSimulator:
    """Simulates one routing algorithm under one injection model."""

    def __init__(
        self,
        algorithm: RoutingAlgorithm,
        injection: InjectionModel,
        central_capacity: int = 5,
        stall_limit: int = 1000,
        trace: bool = False,
        collect_occupancy: bool = False,
        occupancy_sample_every: int = 1,
        policy: str = "paper",
        service: str = "fifo",
    ):
        if policy not in ("paper", "rotating"):
            raise ValueError("policy must be 'paper' or 'rotating'")
        if service not in ("fifo", "lifo"):
            raise ValueError("service must be 'fifo' or 'lifo'")
        self.algorithm = algorithm
        self.topology = algorithm.topology
        self.injection = injection
        self.central_capacity = central_capacity
        self.stall_limit = stall_limit
        self.trace = trace
        self.collect_occupancy = collect_occupancy
        self.occupancy_sample_every = occupancy_sample_every
        #: Output-buffer fill order: ``"paper"`` serves buffers strictly
        #: low-to-high dimension every cycle (the Section-7.1 wording);
        #: ``"rotating"`` starts the scan one buffer later each cycle,
        #: which spreads adaptive traffic across dimensions.
        self.policy = policy
        #: Queue service discipline.  The paper's livelock-freedom rests
        #: on FIFO fairness; ``"lifo"`` (youngest first) deliberately
        #: violates it so starvation becomes observable
        #: (benchmarks/test_ablation_fairness.py).
        self.service = service

        topo = self.topology
        self.nodes: list[Hashable] = list(topo.nodes())

        # Per-node queue structure.
        self.kinds: dict[Hashable, tuple[str, ...]] = {}
        self.central: dict[Hashable, dict[str, list[Message]]] = {}
        self.inj: dict[Hashable, Message | None] = {}
        for u in self.nodes:
            kinds = algorithm.central_queue_kinds(u)
            self.kinds[u] = kinds
            self.central[u] = {k: [] for k in kinds}
            self.inj[u] = None

        # Link buffers: one output + one input slot per (u, v, class).
        self.out_buf: dict[tuple, Message | None] = {}
        self.in_buf: dict[tuple, Message | None] = {}
        #: Per node: outgoing (v, class, key) in low-to-high link order.
        self.out_keys: dict[Hashable, list[tuple[Hashable, str, tuple]]] = {}
        #: Per node: incoming buffer keys.
        self.in_keys: dict[Hashable, list[tuple]] = {}
        #: Per directed link: its traffic classes.
        self.link_classes: dict[tuple[Hashable, Hashable], tuple[str, ...]] = {}
        for u in self.nodes:
            self.out_keys[u] = []
            self.in_keys.setdefault(u, [])
        for u in self.nodes:
            nbrs = sorted(
                topo.neighbors(u), key=lambda v: topo.link_index(u, v)
            )
            for v in nbrs:
                classes = algorithm.buffer_classes(u, v)
                self.link_classes[(u, v)] = classes
                for cls in classes:
                    key = (u, v, cls)
                    self.out_buf[key] = None
                    self.in_buf[key] = None
                    self.out_keys[u].append((v, cls, key))
                    self.in_keys[v].append(key)

        # Bookkeeping.
        self.cycle = 0
        self.injected_count = 0
        self.delivered_count = 0
        self.active = 0  # injected but not yet delivered
        self.latency = LatencyStats()
        self.measure_from = getattr(injection, "warmup", 0)
        self._last_progress = 0
        #: Cycle observers (duck-typed): ``on_cycle(sim, cycle)`` runs
        #: at the start of every routing cycle; an optional
        #: ``on_stall(sim) -> bool`` is consulted before the engine
        #: raises :class:`DeadlockError` (return True to suppress, or
        #: raise :class:`SimulationHalt` / a richer error instead).
        #: Empty by default, so the healthy hot path is untouched.
        self.observers: list = []
        #: Telemetry event sink (``repro.telemetry``): when an object
        #: with ``append`` is installed here, the engine feeds it one
        #: raw tuple per packet movement (inject/hop/enqueue/deliver).
        #: None by default — the disabled cost is a single local
        #: None-check per move.
        self._events = None
        #: Live fault state (owned by :class:`repro.faults.adapters.FaultInjector`).
        #: ``dead_nodes`` freeze a node's whole node cycle and block its
        #: injection queue; ``blocked_links`` (dead + stalled directed
        #: links) transfer nothing during the link cycle.  Both empty in
        #: a healthy run, where every guard short-circuits.
        self.dead_nodes: frozenset = frozenset()
        self.blocked_links: frozenset = frozenset()
        #: When set to a list (see ``repro.faults.experiments``), every
        #: delivered message object is appended to it, which is what
        #: reroute-overhead accounting reads traced hops from.
        self.delivered_messages: list | None = None
        self.occupancy_sum: dict[tuple[Hashable, str], int] = {}
        self.occupancy_peak: dict[tuple[Hashable, str], int] = {}
        self.occupancy_samples = 0

    # ------------------------------------------------------------------
    # Injection-model interface
    # ------------------------------------------------------------------
    def injection_queue_free(self, u: Hashable) -> bool:
        if self.dead_nodes and u in self.dead_nodes:
            return False  # a down node generates nothing
        return self.inj[u] is None

    def add_observer(self, observer) -> None:
        """Attach a cycle observer (fault injector, watchdog, ...)."""
        self.observers.append(observer)

    def place_in_injection_queue(
        self, u: Hashable, msg: Message, cycle: int
    ) -> None:
        if self.inj[u] is not None:
            raise RuntimeError(f"injection queue at {u} occupied")
        msg.injected_cycle = cycle
        if self.trace:
            msg.hops = [QueueId(u, "inj")]
        self.inj[u] = msg
        self.injected_count += 1
        self.active += 1
        self._last_progress = cycle
        if self._events is not None:
            self._events.append(("inject", cycle, msg.uid, u, msg.dst))

    # ------------------------------------------------------------------
    # One routing cycle
    # ------------------------------------------------------------------
    def step(self) -> None:
        cycle = self.cycle
        if self.observers:
            for obs in self.observers:
                obs.on_cycle(self, cycle)
        self.injection.attempt(self, cycle)
        dead = self.dead_nodes
        if dead:
            for u in self.nodes:
                if u not in dead:
                    self._node_fill_output_buffers(u)
            for u in self.nodes:
                if u not in dead:
                    self._node_read_inputs(u)
        else:
            for u in self.nodes:
                self._node_fill_output_buffers(u)
            for u in self.nodes:
                self._node_read_inputs(u)
        self._link_cycle()
        if self.collect_occupancy and cycle % self.occupancy_sample_every == 0:
            self._sample_occupancy()
        self.cycle += 1
        if (
            self.active > 0
            and self.cycle - self._last_progress > self.stall_limit
        ):
            self._on_stall()

    def _on_stall(self) -> None:
        """No packet moved for ``stall_limit`` cycles.

        Observers get the first say: a fault injector may suppress the
        alarm because a scheduled fault transition is still ahead, and
        the deadlock watchdog raises a structured
        :class:`~repro.faults.watchdog.DeadlockDetected` (or a graceful
        :class:`SimulationHalt`) instead of the bare error below.
        """
        for obs in self.observers:
            handler = getattr(obs, "on_stall", None)
            if handler is not None and handler(self):
                return  # handled: keep running
        raise DeadlockError(
            f"no progress for {self.stall_limit} cycles at cycle "
            f"{self.cycle} with {self.active} active packets "
            f"({self.algorithm.name})"
        )

    # -- node cycle, part 1: queues -> output buffers + internal moves ----
    def _node_fill_output_buffers(self, u: Hashable) -> None:
        alg = self.algorithm
        queues = self.central[u]
        kinds = self.kinds[u]
        events = self._events

        # Service order: FIFO position first, then queue kind — heads
        # of all queues are candidates before any second-in-line packet.
        entries: list[tuple[int, int, Message, QueueId]] = []
        for ki, kind in enumerate(kinds):
            q_id = QueueId(u, kind)
            for pos, msg in enumerate(queues[kind]):
                entries.append((pos, ki, msg, q_id))
        if not entries:
            return
        if self.service == "fifo":
            entries.sort(key=lambda t: (t[0], t[1]))
        else:  # lifo: serve the youngest arrivals first (unfair)
            entries.sort(key=lambda t: (-t[0], t[1]))

        # Candidate hops per message (computed once per cycle).
        plans: dict[int, tuple[dict, list]] = {}
        for _pos, _ki, msg, q_id in entries:
            ext: dict[tuple[Hashable, str], tuple[QueueId, bool]] = {}
            internal: list[tuple[QueueId, bool]] = []
            for dyn, hops in (
                (False, alg.static_hops(q_id, msg.dst, msg.state)),
                (True, alg.dynamic_hops(q_id, msg.dst, msg.state)),
            ):
                for q2 in hops:
                    if q2.node == u:
                        internal.append((q2, dyn))
                    else:
                        cls = alg.buffer_class(q_id, q2, dyn)
                        ext.setdefault((q2.node, cls), (q2, dyn))
            plans[msg.uid] = (ext, internal)

        moved: set[int] = set()

        # Buffer-major assignment, low to high link index ("paper") or
        # starting at a rotating offset ("rotating").
        out_keys = self.out_keys[u]
        if self.policy == "rotating" and len(out_keys) > 1:
            out_keys = rotated(out_keys, self.cycle)
        for v, cls, key in out_keys:
            if self.out_buf[key] is not None:
                continue
            for _pos, _ki, msg, q_id in entries:
                if msg.uid in moved:
                    continue
                cand = plans[msg.uid][0].get((v, cls))
                if cand is None:
                    continue
                q2, dyn = cand
                queues[q_id.kind].remove(msg)
                msg.state = alg.update_state(msg.state, q_id, q2)
                msg.target = q2
                msg.record_hop(q2)
                self.out_buf[key] = msg
                moved.add(msg.uid)
                self._last_progress = self.cycle
                if events is not None:
                    events.append(
                        ("hop", self.cycle, msg.uid, u, v, cls, dyn, q2.kind)
                    )
                break

        # Internal moves (phase change, delivery, self-state updates).
        for _pos, _ki, msg, q_id in entries:
            if msg.uid in moved:
                continue
            for q2, _dyn in plans[msg.uid][1]:
                if q2.is_delivery:
                    queues[q_id.kind].remove(msg)
                    self._deliver(msg)
                    moved.add(msg.uid)
                    break
                if q2 == q_id:
                    # Degenerate self-hop: state advances in place.
                    msg.state = alg.update_state(msg.state, q_id, q2)
                    msg.record_hop(q2)
                    moved.add(msg.uid)
                    self._last_progress = self.cycle
                    if events is not None:
                        events.append(
                            ("enqueue", self.cycle, msg.uid, u, q2.kind)
                        )
                    break
                target = queues[q2.kind]
                if len(target) < self.central_capacity:
                    queues[q_id.kind].remove(msg)
                    msg.state = alg.update_state(msg.state, q_id, q2)
                    msg.record_hop(q2)
                    target.append(msg)
                    moved.add(msg.uid)
                    self._last_progress = self.cycle
                    if events is not None:
                        events.append(
                            ("enqueue", self.cycle, msg.uid, u, q2.kind)
                        )
                    break

    def _resolve_entry_queue(self, q2: QueueId, state, dst):
        """Fold forced internal phase switches into queue entry.

        Section 7.1 says the node "moves their messages to the
        *required* queues": a packet whose only continuation from the
        nominal target queue is an internal move to a sibling queue
        (the phase change) is placed directly into that sibling, so a
        phase change costs no extra cycle — this is what makes the
        deterministic complement latency exactly ``2n + 1`` (Table 2).
        Self-hops (degenerate shuffles) and delivery are never folded.
        """
        alg = self.algorithm
        for _ in range(8):  # bounded by the internal-chain length
            if alg.dynamic_hops(q2, dst, state):
                break
            nxt = alg.static_hops(q2, dst, state)
            if len(nxt) != 1:
                break
            (q3,) = nxt
            if q3 == q2 or q3.node != q2.node or not q3.is_central:
                break
            state = alg.update_state(state, q2, q3)
            q2 = q3
        return q2, state

    # -- node cycle, part 2: input + injection buffers -> queues ----------
    def _node_read_inputs(self, u: Hashable) -> None:
        alg = self.algorithm
        queues = self.central[u]
        events = self._events
        sources: list = list(self.in_keys[u]) + ["inj"]
        for src in rotated(sources, self.cycle):
            if src == "inj":
                msg = self.inj[u]
                if msg is None:
                    continue
                targets = alg.injection_targets(u, msg.dst, msg.state)
                placed = False
                for q2 in sorted(targets):
                    st = alg.update_state(msg.state, QueueId(u, "inj"), q2)
                    q2, st = self._resolve_entry_queue(q2, st, msg.dst)
                    if len(queues[q2.kind]) < self.central_capacity:
                        msg.state = st
                        msg.record_hop(q2)
                        queues[q2.kind].append(msg)
                        if events is not None:
                            events.append(
                                ("enqueue", self.cycle, msg.uid, u, q2.kind)
                            )
                        placed = True
                        break
                if placed:
                    self.inj[u] = None
                    self._last_progress = self.cycle
            else:
                msg = self.in_buf[src]
                if msg is None:
                    continue
                nominal = msg.target
                q2, st = self._resolve_entry_queue(nominal, msg.state, msg.dst)
                if len(queues[q2.kind]) < self.central_capacity:
                    self.in_buf[src] = None
                    msg.target = None
                    msg.state = st
                    if q2 != nominal:
                        msg.record_hop(q2)
                    queues[q2.kind].append(msg)
                    self._last_progress = self.cycle
                    if events is not None:
                        events.append(
                            ("enqueue", self.cycle, msg.uid, u, q2.kind)
                        )

    # -- link cycle --------------------------------------------------------
    def _link_cycle(self) -> None:
        cycle = self.cycle
        blocked = self.blocked_links
        for link, classes in self.link_classes.items():
            if blocked and link in blocked:
                continue  # dead or stalled link: transfers nothing
            if len(classes) == 1:
                order = classes
            else:
                order = rotated(classes, cycle)
            for cls in order:
                key = (link[0], link[1], cls)
                msg = self.out_buf[key]
                if msg is not None and self.in_buf[key] is None:
                    self.out_buf[key] = None
                    self.in_buf[key] = msg
                    self._last_progress = cycle
                    break  # one packet per link direction per cycle

    # -- delivery and stats -------------------------------------------------
    def _deliver(self, msg: Message) -> None:
        msg.delivered_cycle = self.cycle
        self.delivered_count += 1
        self.active -= 1
        self._last_progress = self.cycle
        if self._events is not None:
            self._events.append(
                ("deliver", self.cycle, msg.uid, msg.dst, msg.latency)
            )
        if msg.injected_cycle >= self.measure_from:
            self.latency.record(msg.latency)
        if self.delivered_messages is not None:
            self.delivered_messages.append(msg)

    def _sample_occupancy(self) -> None:
        self.occupancy_samples += 1
        for u in self.nodes:
            for kind, q in self.central[u].items():
                occ = len(q)
                key = (u, kind)
                self.occupancy_sum[key] = self.occupancy_sum.get(key, 0) + occ
                if occ > self.occupancy_peak.get(key, 0):
                    self.occupancy_peak[key] = occ

    def occupancy_mean(self) -> dict[tuple[Hashable, str], float]:
        if not self.occupancy_samples:
            return {}
        return {
            k: v / self.occupancy_samples for k, v in self.occupancy_sum.items()
        }

    # ------------------------------------------------------------------
    # Full runs
    # ------------------------------------------------------------------
    def run(self, max_cycles: int | None = None) -> SimulationResult:
        """Run until the injection model reports completion.

        ``max_cycles`` is a hard safety cap (default 10M): exceeding it
        raises :class:`CycleLimitExceeded` with the in-flight packet
        count instead of looping forever.  A :class:`SimulationHalt`
        raised by an observer (e.g. the fault watchdog deciding every
        remaining packet is undeliverable) ends the run gracefully and
        is recorded on the result instead of propagating.
        """
        self.injection.setup(self)
        limit = max_cycles if max_cycles is not None else 10_000_000
        halt: SimulationHalt | None = None
        try:
            while self.cycle < limit:
                self.step()
                if self.injection.finished(self, self.cycle - 1):
                    break
            else:
                raise CycleLimitExceeded(
                    f"simulation exceeded {limit} cycles with no end in "
                    f"sight: {self.active} of {self.injected_count} "
                    f"injected packets still in flight "
                    f"({self.algorithm.name}; raise max_cycles or check "
                    "for livelock)"
                )
        except SimulationHalt as h:
            halt = h
        occupancy = {}
        if self.collect_occupancy:
            occupancy = {
                "mean": self.occupancy_mean(),
                "peak": dict(self.occupancy_peak),
            }
        result = SimulationResult(
            algorithm=self.algorithm.name,
            topology=self.topology.name,
            pattern=getattr(self.injection, "pattern", None).name
            if getattr(self.injection, "pattern", None)
            else "?",
            injection=self.injection.name,
            cycles=self.cycle,
            injected=self.injected_count,
            delivered=self.delivered_count,
            latency=self.latency,
            attempts=getattr(self.injection, "attempts", 0),
            successes=getattr(self.injection, "successes", 0),
            undelivered=self.active,
            occupancy=occupancy,
            halt=halt.reason if halt is not None else None,
            undeliverable=halt.undeliverable if halt is not None else 0,
        )
        # Run-end observer hook (e.g. a telemetry probe folding its
        # collected signals into result.telemetry).
        for obs in self.observers:
            hook = getattr(obs, "on_run_end", None)
            if hook is not None:
                hook(self, result)
        return result
