"""Compiled routing plans: memoized candidate-hop tables.

The generic :class:`~repro.sim.engine.PacketSimulator` re-derives, for
every queued message in every cycle, the full candidate set the paper's
node cycle needs: ``static_hops`` / ``dynamic_hops`` (two frozensets of
freshly-allocated :class:`QueueId` objects), a ``buffer_class`` call per
external hop, and an ``update_state`` call per move.  Profiling
(docs/PERFORMANCE.md) attributes ~70% of the engine's inner-loop time to
exactly this churn.

The routing function, however, is *pure*: every quantity above is a
deterministic function of ``(queue, destination, state)``.  This module
memoizes the fully-resolved answer per such key:

* :class:`CentralPlan` — what a message occupying a central queue may do
  this cycle, split the way the engine consumes it: an ``external``
  mapping ``(neighbor, buffer_class) -> (next_queue, new_state)`` and an
  ``internal`` tuple of ``(action, next_queue, new_state)`` steps
  (delivery / in-place state advance / sibling-queue move);
* entry resolution — the fold of forced internal phase switches
  performed by ``PacketSimulator._resolve_entry_queue``;
* injection plans — the sorted injection targets with their
  ``update_state`` + entry fold already applied.

Plans are built lazily on first use, so algorithms with unbounded state
spaces (the shuffle-exchange shuffle counter grows with ``2n``) stay
correct and merely populate more entries, while bounded-state algorithms
(hypercube, mesh, torus phase bits) converge to dense tables after the
first few cycles.  States must be hashable for memoization; unhashable
states transparently fall back to direct evaluation, preserving the
generic engine's contract.

The memo dictionaries (``central_memo`` / ``entry_memo`` /
``inject_memo``) are deliberately exposed: the compiled engine inlines
``dict.get`` on them in its inner loop and only calls the builder
methods on a miss.

Everything stored is immutable (tuples, interned :class:`QueueId`), and
the construction replays the reference engine's iteration orders
exactly — static hops before dynamic hops, first-wins per
``(neighbor, class)`` slot — which is what keeps the compiled engine
packet-for-packet identical to the reference engine.
"""

from __future__ import annotations

from typing import Any, Hashable, NamedTuple

from ..core.hops import DELIVER_STEP, MOVE_STEP, SELF_STEP
from ..core.queues import QueueId
from ..core.routing_function import RoutingAlgorithm

#: Internal-step action codes live in :mod:`repro.core.hops` (shared
#: with the integer hop kernels); re-exported here for compatibility.
__all__ = [
    "DELIVER_STEP",
    "SELF_STEP",
    "MOVE_STEP",
    "CentralPlan",
    "RoutingPlanCache",
]


class CentralPlan(NamedTuple):
    """Resolved candidate moves for one ``(queue, dst, state)`` key."""

    #: ``(neighbor, buffer_class) -> (next_queue, new_state, is_dynamic)``;
    #: the first candidate per slot wins, statics before dynamics,
    #: exactly as the reference engine's ``setdefault`` does.
    #: ``is_dynamic`` records whether the winning hop rides a dynamic
    #: link (telemetry's Section-2-extension usage metric).
    external: dict[tuple[Hashable, str], tuple[QueueId, Any, bool]]
    #: ``(action, next_queue, new_state)`` in reference order.
    internal: tuple[tuple[int, QueueId, Any], ...]


class RoutingPlanCache:
    """Lazy per-algorithm memo of fully-resolved routing plans.

    One instance is owned by each
    :class:`~repro.sim.compiled.CompiledPacketSimulator`; sharing one
    across simulators of the *same* algorithm instance is safe (plans
    depend only on the pure routing function).
    """

    def __init__(self, algorithm: RoutingAlgorithm):
        self.algorithm = algorithm
        #: ``(queue, dst, state) -> CentralPlan``
        self.central_memo: dict[tuple, CentralPlan] = {}
        #: ``(queue, dst, state) -> (resolved_queue, resolved_state)``
        self.entry_memo: dict[tuple, tuple[QueueId, Any]] = {}
        #: ``(node, dst, state) -> ((kind, queue, state), ...)``
        self.inject_memo: dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    # Statistics (tests, docs)
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total number of memoized plans (all three tables)."""
        return (
            len(self.central_memo)
            + len(self.entry_memo)
            + len(self.inject_memo)
        )

    def memory_bytes(self) -> int:
        """Shallow footprint estimate of the three memo tables.

        Counts the dicts plus one level of keys and values (the
        CentralPlan externals dict included) — enough to compare
        against the integer tables' packed-array footprint
        (telemetry gauge ``repro_plan_cache_bytes``), without a full
        recursive traversal of shared QueueId/state objects.
        """
        import sys

        total = 0
        for memo in (self.central_memo, self.entry_memo, self.inject_memo):
            total += sys.getsizeof(memo)
            for key, value in memo.items():
                total += sys.getsizeof(key) + sys.getsizeof(value)
                if isinstance(value, CentralPlan):
                    total += sys.getsizeof(value.external)
                    total += sys.getsizeof(value.internal)
        return total

    # ------------------------------------------------------------------
    # Central-queue plans
    # ------------------------------------------------------------------
    def central_plan(
        self, q_id: QueueId, dst: Hashable, state: Any
    ) -> CentralPlan:
        """Plan for a message in central queue ``q_id`` (memoized)."""
        key = (q_id, dst, state)
        try:
            plan = self.central_memo.get(key)
        except TypeError:  # unhashable state: evaluate directly
            return self._build_central(q_id, dst, state)
        if plan is None:
            plan = self.central_memo[key] = self._build_central(
                q_id, dst, state
            )
        return plan

    def _build_central(
        self, q_id: QueueId, dst: Hashable, state: Any
    ) -> CentralPlan:
        alg = self.algorithm
        u = q_id.node
        external: dict[tuple[Hashable, str], tuple[QueueId, Any, bool]] = {}
        internal: list[tuple[int, QueueId, Any]] = []
        for dyn, hops in (
            (False, alg.static_hops(q_id, dst, state)),
            (True, alg.dynamic_hops(q_id, dst, state)),
        ):
            for q2 in hops:
                if q2.node == u:
                    if q2.is_delivery:
                        internal.append((DELIVER_STEP, q2, state))
                    elif q2 == q_id:
                        internal.append(
                            (SELF_STEP, q2, alg.update_state(state, q_id, q2))
                        )
                    else:
                        internal.append(
                            (MOVE_STEP, q2, alg.update_state(state, q_id, q2))
                        )
                else:
                    cls = alg.buffer_class(q_id, q2, dyn)
                    slot = (q2.node, cls)
                    if slot not in external:
                        external[slot] = (
                            q2,
                            alg.update_state(state, q_id, q2),
                            dyn,
                        )
        return CentralPlan(external, tuple(internal))

    # ------------------------------------------------------------------
    # Queue-entry resolution (the forced-phase-switch fold)
    # ------------------------------------------------------------------
    def entry(self, q2: QueueId, dst: Hashable, state: Any) -> tuple[QueueId, Any]:
        """Where a packet heading for ``q2`` actually lands (memoized).

        Mirrors ``PacketSimulator._resolve_entry_queue``: forced single
        static internal moves to a sibling central queue are folded into
        the entry so a phase change costs no extra cycle.
        """
        key = (q2, dst, state)
        try:
            resolved = self.entry_memo.get(key)
        except TypeError:
            return self._resolve_entry(q2, dst, state)
        if resolved is None:
            resolved = self.entry_memo[key] = self._resolve_entry(
                q2, dst, state
            )
        return resolved

    def _resolve_entry(
        self, q2: QueueId, dst: Hashable, state: Any
    ) -> tuple[QueueId, Any]:
        alg = self.algorithm
        for _ in range(8):  # bounded by the internal-chain length
            if alg.dynamic_hops(q2, dst, state):
                break
            nxt = alg.static_hops(q2, dst, state)
            if len(nxt) != 1:
                break
            (q3,) = nxt
            if q3 == q2 or q3.node != q2.node or not q3.is_central:
                break
            state = alg.update_state(state, q2, q3)
            q2 = q3
        return q2, state

    # ------------------------------------------------------------------
    # Injection plans
    # ------------------------------------------------------------------
    def injection_plan(
        self, u: Hashable, dst: Hashable, state: Any
    ) -> tuple[tuple[str, QueueId, Any], ...]:
        """Sorted injection targets with state update + entry fold applied.

        Returns ``((kind, resolved_queue, resolved_state), ...)`` in the
        reference engine's ``sorted(targets)`` order; the engine places
        the message into the first queue with spare capacity.
        """
        key = (u, dst, state)
        try:
            plan = self.inject_memo.get(key)
        except TypeError:
            return self._build_injection(u, dst, state)
        if plan is None:
            plan = self.inject_memo[key] = self._build_injection(
                u, dst, state
            )
        return plan

    def _build_injection(
        self, u: Hashable, dst: Hashable, state: Any
    ) -> tuple[tuple[str, QueueId, Any], ...]:
        alg = self.algorithm
        inj = QueueId(u, "inj")
        plan = []
        for q2 in sorted(alg.injection_targets(u, dst, state)):
            st = alg.update_state(state, inj, q2)
            q2r, st = self._resolve_entry(q2, dst, st)
            plan.append((q2r.kind, q2r, st))
        return tuple(plan)
