"""Latency and throughput metrics (paper, Section 7).

The paper reports, per configuration, the average latency ``L_avg``,
the maximum latency ``L_max``, and — for dynamic injection — the
effective injection rate ``I_r`` (successful injection attempts over
total attempts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class LatencyStats:
    """Accumulates delivery latencies."""

    values: list[int] = field(default_factory=list)

    def record(self, latency: int) -> None:
        self.values.append(latency)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else float("nan")

    @property
    def maximum(self) -> int:
        return max(self.values) if self.values else 0

    @property
    def minimum(self) -> int:
        return min(self.values) if self.values else 0

    def percentile(self, p: float) -> float:
        if not self.values:
            return float("nan")
        return float(np.percentile(self.values, p))

    def histogram(self, bins: int = 20) -> tuple[np.ndarray, np.ndarray]:
        if not self.values:
            # Empty runs (all packets dropped, zero injection) yield an
            # all-zero histogram over a nominal [0, 1] range instead of
            # whatever numpy's empty-input behavior of the day is.
            return np.zeros(bins, dtype=np.intp), np.linspace(0.0, 1.0, bins + 1)
        return np.histogram(np.asarray(self.values), bins=bins)


@dataclass
class SimulationResult:
    """Everything one simulation run reports.

    ``latency`` covers messages *injected* after the warm-up window;
    ``attempts``/``successes`` count post-warm-up injection attempts,
    giving the paper's effective injection rate.
    """

    algorithm: str
    topology: str
    pattern: str
    injection: str
    cycles: int
    injected: int
    delivered: int
    latency: LatencyStats
    attempts: int = 0
    successes: int = 0
    undelivered: int = 0
    occupancy: dict = field(default_factory=dict)
    seed: int | None = None
    #: Number of packets a fault watchdog classified as undeliverable
    #: (destination unreachable under the active fault set, or frozen
    #: inside a down node).  0 for healthy runs.
    undeliverable: int = 0
    #: Reason string when the run was stopped gracefully by an observer
    #: (see :class:`repro.sim.engine.SimulationHalt`); None otherwise.
    halt: str | None = None
    #: Summary dict produced by an attached
    #: :class:`repro.telemetry.TelemetryProbe` (hop split, link
    #: utilization, occupancy, latency histogram, fault epochs); None
    #: when the run was not instrumented.  Plain data, so results stay
    #: picklable for parallel sweeps.
    telemetry: dict | None = None

    @property
    def l_avg(self) -> float:
        """Paper's ``L_avg``."""
        return self.latency.mean

    @property
    def l_max(self) -> int:
        """Paper's ``L_max``."""
        return self.latency.maximum

    @property
    def injection_rate(self) -> float:
        """Paper's ``I_r`` as a fraction in [0, 1]."""
        if self.attempts == 0:
            return float("nan")
        return self.successes / self.attempts

    @property
    def throughput(self) -> float:
        """Delivered messages per node per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.delivered / self.cycles

    @property
    def delivered_fraction(self) -> float:
        """Fraction of injected packets that reached their destination.

        1.0 for a healthy completed run; < 1.0 when packets were still
        in flight at the end of a fixed-duration run or when faults made
        some packets undeliverable.  Defined as 1.0 when nothing was
        injected (an empty run is vacuously complete).
        """
        if self.injected == 0:
            return 1.0
        return self.delivered / self.injected

    def row(self) -> dict:
        """Flat dict for table rendering."""
        out = {
            "algorithm": self.algorithm,
            "pattern": self.pattern,
            "L_avg": round(self.l_avg, 2),
            "L_max": self.l_max,
            "delivered": self.delivered,
            "delivered_frac": round(self.delivered_fraction, 4),
            "in_flight": self.undelivered,
            "cycles": self.cycles,
        }
        if self.undeliverable:
            out["undeliverable"] = self.undeliverable
        if self.attempts:
            out["I_r(%)"] = round(100.0 * self.injection_rate, 1)
        if self.telemetry:
            t = self.telemetry
            out["link_util"] = round(t["link_utilization"], 4)
            out["dyn_hops(%)"] = round(
                100.0 * t["hops"]["dynamic_fraction"], 1
            )
            occ = t["occupancy"]
            if occ["mean"] is not None:
                out["occ_mean"] = round(occ["mean"], 3)
                out["occ_peak"] = occ["peak"]
        return out
