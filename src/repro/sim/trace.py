"""Structured event tracing for simulations.

Wraps a :class:`PacketSimulator` run and records per-packet events
(injection, queue entries, link transfers, delivery) as structured
records, reconstructable into per-packet timelines — the debugging
companion to the aggregate metrics.  Tracing costs memory proportional
to traffic, so it is opt-in and intended for small instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

from ..core.message import Message
from ..core.queues import QueueId
from .engine import PacketSimulator


@dataclass(frozen=True)
class TraceEvent:
    """One step of one packet's journey.

    ``enter`` events are stamped at *dispatch* time — the cycle the
    packet was sent toward the queue (placed into the output buffer or
    moved internally); the physical queue entry follows one cycle
    later for inter-node hops.
    """

    cycle: int
    uid: int
    kind: str  #: "inject" | "enter" | "deliver"
    queue: QueueId


class TracingSimulator(PacketSimulator):
    """PacketSimulator that records a structured event log.

    Uses the engine's built-in hop recording (``trace=True``) plus
    injection/delivery hooks; events carry the cycle at which each
    queue was *entered*.
    """

    def __init__(self, *args, **kwargs):
        kwargs["trace"] = True
        super().__init__(*args, **kwargs)
        self.events: list[TraceEvent] = []
        self._hop_counts: dict[int, int] = {}

    def place_in_injection_queue(
        self, u: Hashable, msg: Message, cycle: int
    ) -> None:
        super().place_in_injection_queue(u, msg, cycle)
        self.events.append(
            TraceEvent(cycle, msg.uid, "inject", QueueId(u, "inj"))
        )
        self._hop_counts[msg.uid] = 1  # the injection queue itself

    def step(self) -> None:
        super().step()
        # Flush newly recorded hops into events (msg.hops grows as the
        # engine moves packets; we attribute them to this cycle).
        cycle = self.cycle - 1
        for u in self.nodes:
            for q in self.central[u].values():
                for msg in q:
                    self._flush(msg, cycle)
        for slot in self.out_buf.values():
            if slot is not None:
                self._flush(slot, cycle)
        for slot in self.in_buf.values():
            if slot is not None:
                self._flush(slot, cycle)

    def _flush(self, msg: Message, cycle: int) -> None:
        seen = self._hop_counts.get(msg.uid, 1)
        hops = msg.hops or []
        for q in hops[seen:]:
            self.events.append(TraceEvent(cycle, msg.uid, "enter", q))
        self._hop_counts[msg.uid] = max(seen, len(hops))

    def _deliver(self, msg: Message) -> None:
        self._flush(msg, self.cycle)
        super()._deliver(msg)
        self.events.append(
            TraceEvent(
                self.cycle, msg.uid, "deliver", QueueId(msg.dst, "del")
            )
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def timeline(self, uid: int) -> list[TraceEvent]:
        """All events of one packet, in order."""
        return [e for e in self.events if e.uid == uid]

    def packets(self) -> Iterator[int]:
        return iter(sorted({e.uid for e in self.events}))

    def format_timeline(self, uid: int) -> str:
        lines = []
        for e in self.timeline(uid):
            lines.append(f"  cycle {e.cycle:4d}: {e.kind:8s} {e.queue!r}")
        return "\n".join(lines)
