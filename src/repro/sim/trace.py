"""Per-packet timeline tracing, built on the telemetry event log.

:class:`TracingSimulator` (reference engine) and
:class:`CompiledTracingSimulator` record the structured event log of
:mod:`repro.telemetry.events` and reconstruct the classic per-packet
view from it: ``inject`` / ``enter`` / ``deliver``
:class:`TraceEvent` records, with ``enter`` stamped at *dispatch* time
(the cycle the packet was sent toward the queue) exactly as the
original bespoke tracer did — ``format_timeline`` output is unchanged
(``tests/test_sim_trace.py`` keeps a golden sample).

Tracing costs memory proportional to traffic, so it is opt-in and
intended for small instances.  For aggregate signals use a
:class:`~repro.telemetry.TelemetryProbe` instead; for the raw log use
``sim.log`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.queues import QueueId
from ..telemetry.events import EventLog
from .compiled import CompiledPacketSimulator
from .engine import PacketSimulator


@dataclass(frozen=True)
class TraceEvent:
    """One step of one packet's journey.

    ``enter`` events are stamped at *dispatch* time — the cycle the
    packet was sent toward the queue (placed into the output buffer or
    moved internally); the physical queue entry follows one cycle
    later for inter-node hops.
    """

    cycle: int
    uid: int
    kind: str  #: "inject" | "enter" | "deliver"
    queue: QueueId


class _TracingMixin:
    """Event-log recording + old-style timeline reconstruction.

    Mixed into either engine: installs an :class:`EventLog` as the
    engine's event sink and keeps ``trace=True`` so ``Message.hops``
    stays populated for route-level consumers.
    """

    def __init__(self, *args, **kwargs):
        kwargs["trace"] = True
        super().__init__(*args, **kwargs)
        #: The raw structured event log (schema v1).
        self.log = EventLog()
        self._events = self.log.raw
        self._reconstructed: list[TraceEvent] = []
        self._reconstructed_from = 0

    @property
    def events(self) -> list[TraceEvent]:
        """Old-style trace events, canonical (cycle, uid) order.

        Reconstruction walks the raw log: a ``hop`` is an ``enter`` of
        the dispatched-to queue at dispatch time; the physical-arrival
        ``enqueue`` that follows is folded away unless the packet
        landed in a *different* queue (the entry fold), which surfaces
        as its own ``enter`` — matching what ``Message.record_hop``
        used to capture.
        """
        if self._reconstructed_from != len(self.log.raw):
            self._reconstructed = self._reconstruct()
            self._reconstructed_from = len(self.log.raw)
        return self._reconstructed

    def _reconstruct(self) -> list[TraceEvent]:
        out: list[TraceEvent] = []
        pending: dict[int, tuple] = {}  # uid -> (node, kind) in flight
        for ev in self.log.canonical():
            kind, cycle, uid = ev[0], ev[1], ev[2]
            if kind == "inject":
                out.append(
                    TraceEvent(cycle, uid, "inject", QueueId(ev[3], "inj"))
                )
            elif kind == "hop":
                out.append(
                    TraceEvent(cycle, uid, "enter", QueueId(ev[4], ev[7]))
                )
                pending[uid] = (ev[4], ev[7])
            elif kind == "enqueue":
                if pending.pop(uid, None) != (ev[3], ev[4]):
                    out.append(
                        TraceEvent(cycle, uid, "enter", QueueId(ev[3], ev[4]))
                    )
            elif kind == "deliver":
                pending.pop(uid, None)
                out.append(
                    TraceEvent(cycle, uid, "deliver", QueueId(ev[3], "del"))
                )
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def timeline(self, uid: int) -> list[TraceEvent]:
        """All events of one packet, in order."""
        return [e for e in self.events if e.uid == uid]

    def packets(self) -> Iterator[int]:
        return iter(sorted({e.uid for e in self.events}))

    def format_timeline(self, uid: int) -> str:
        lines = []
        for e in self.timeline(uid):
            lines.append(f"  cycle {e.cycle:4d}: {e.kind:8s} {e.queue!r}")
        return "\n".join(lines)


class TracingSimulator(_TracingMixin, PacketSimulator):
    """Reference engine with the structured event log attached."""


class CompiledTracingSimulator(_TracingMixin, CompiledPacketSimulator):
    """Compiled engine with the structured event log attached."""
