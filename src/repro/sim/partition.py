"""Topology partitioning for the sharded engine (``repro.sim.sharded``).

A :class:`TopologyPartition` assigns every node (by its dense
:class:`~repro.sim.tables.RoutingTables` index, i.e. its position in
``topology.nodes()`` order) to one shard.  The sharded engine runs one
:class:`~repro.sim.vector.VectorSimulator`-derived worker per shard and
exchanges boundary-link traffic each cycle, so a good partition keeps
shards balanced and the boundary (links whose endpoints live on
different shards) small.

Three strategies, chosen by topology family:

* ``dimension-prefix`` — hypercubes and cube-connected cycles.  Both
  families iterate their nodes address-major (the hypercube's node
  *is* its address; the CCC iterates ``(w, p)`` cycle-major), so
  splitting the node order into equal contiguous runs assigns each
  shard one high-order address-prefix range: for a ``2^b``-way split
  of a hypercube the boundary is exactly the ``b`` highest dimensions'
  links.
* ``block`` — meshes and tori.  The node order is axis-0-major, so
  contiguous runs are slabs of consecutive rows (hyperplanes of the
  first axis); the boundary is the row seam between adjacent slabs
  (plus the wrap-around links on a torus).
* ``hash`` — every other graph (shuffle-exchange, Benes, arbitrary
  digraphs).  A deterministic content hash (CRC-32 of the canonical
  node label) spreads nodes without assuming any geometry.  Balance is
  statistical and the boundary is large; this is the honest fallback
  for topologies without locality.

All strategies are pure functions of ``(topology, n_shards)`` — every
worker process recomputes the same partition, which the sharded
engine's replay protocol depends on.
"""

from __future__ import annotations

import warnings
import zlib
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from ..topology.base import Topology
from ..topology.ccc import CubeConnectedCycles
from ..topology.hypercube import Hypercube
from ..topology.mesh import Mesh

__all__ = ["TopologyPartition", "partition_topology"]


@dataclass(frozen=True)
class TopologyPartition:
    """Shard assignment for one topology's node set.

    ``owner[i]`` is the shard that simulates node ``i`` (dense index in
    ``topology.nodes()`` order).  Instances are deterministic given
    ``(topology, n_shards)``; see :func:`partition_topology`.
    """

    n_shards: int
    kind: str  #: "dimension-prefix" | "block" | "hash"
    owner: np.ndarray = field(repr=False)  #: node index -> shard id

    def shard_nodes(self, shard: int) -> np.ndarray:
        """Dense node indices owned by ``shard`` (ascending)."""
        return np.flatnonzero(self.owner == shard)

    def counts(self) -> np.ndarray:
        """Nodes per shard."""
        return np.bincount(self.owner, minlength=self.n_shards)

    def boundary_links(self, topology: Topology) -> int:
        """Number of directed links crossing a shard boundary."""
        nid = {u: i for i, u in enumerate(topology.nodes())}
        owner = self.owner
        return sum(
            1
            for u in topology.nodes()
            for v in topology.neighbors(u)
            if owner[nid[u]] != owner[nid[v]]
        )

    def describe(self) -> str:
        counts = self.counts()
        return (
            f"{self.kind} partition into {self.n_shards} shard(s); "
            f"{int(counts.min())}-{int(counts.max())} nodes/shard"
        )


def _stable_hash(label: Hashable) -> int:
    """Process-independent node hash (``hash()`` is salted per run)."""
    return zlib.crc32(repr(label).encode("utf-8"))


def _contiguous(n_nodes: int, n_shards: int) -> np.ndarray:
    owner = np.empty(n_nodes, dtype=np.int64)
    for shard, chunk in enumerate(np.array_split(np.arange(n_nodes), n_shards)):
        owner[chunk] = shard
    return owner


def partition_topology(
    topology: Topology, n_shards: int
) -> TopologyPartition:
    """Partition ``topology`` into ``n_shards`` shards.

    ``n_shards`` must be a positive integer (:class:`ValueError`
    otherwise).  Asking for more shards than the topology has nodes is
    wasteful but not fatal: a :class:`UserWarning` is emitted and the
    count is clamped to the node count, so every shard owns at least
    one node.
    """
    if not isinstance(n_shards, int) or isinstance(n_shards, bool):
        raise ValueError(f"n_shards must be an int, got {n_shards!r}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    nodes = list(topology.nodes())
    n_nodes = len(nodes)
    if n_shards > n_nodes:
        warnings.warn(
            f"{n_shards} shards requested for {n_nodes}-node "
            f"{topology.name}; clamping to one shard per node",
            UserWarning,
            stacklevel=2,
        )
        n_shards = n_nodes
    if isinstance(topology, (Hypercube, CubeConnectedCycles)):
        kind = "dimension-prefix"
        owner = _contiguous(n_nodes, n_shards)
    elif isinstance(topology, Mesh):  # Torus subclasses Mesh
        kind = "block"
        owner = _contiguous(n_nodes, n_shards)
    else:
        kind = "hash"
        owner = np.asarray(
            [_stable_hash(u) % n_shards for u in nodes], dtype=np.int64
        )
    return TopologyPartition(n_shards=n_shards, kind=kind, owner=owner)
