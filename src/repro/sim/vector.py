"""Vectorized table-driven engine (any algorithm, any topology).

:class:`VectorSimulator` executes the paper's Section-7.1 routing cycle
over the integer tables of :class:`~repro.sim.tables.RoutingTables`:
messages live in parallel int arrays (destination, state id, nominal
target queue, injection cycle), link buffers are numpy int arrays
holding message indices, and the link cycle runs as batched numpy
operations over whole class-groups of links at once.  The node cycle
only visits nodes that can act — nodes with queued messages in the
fill phase, nodes with occupied input/injection buffers in the read
phase — so an idle region of a 4096-node network costs (almost)
nothing, where the generic engines pay per node per cycle.

**Identity guarantees.**  Packet-for-packet identical to
:class:`~repro.sim.engine.PacketSimulator` at equal seeds on every
topology: same latencies, cycle counts, injection statistics, and a
byte-identical canonical telemetry event log
(``tests/test_sim_vector.py``).  The fill phase replays the compiled
engine's message-major greedy matching (provably equal to the
reference engine's buffer-major loop under aligned preference orders),
the read phase replays the rotating input fairness through the slot-id
order that equals ``in_keys``, and the link cycle's class rotation is
``cycle % k`` per ``k``-class link — the same ``rotated`` the
reference engine uses.

**Limitations** (each raises a descriptive
:class:`~repro.sim.tables.EngineCapabilityError` — the engine never
silently degrades; see the engine matrix in ``docs/ARCHITECTURE.md``):

* routing states must be hashable (interned to table ids);
* no generic observer loop: the only observer accepted is a
  :class:`~repro.telemetry.TelemetryProbe`, which this engine drives
  itself (below).  Fault injectors and watchdogs need the reference or
  compiled engine — ``repro.faults.experiments.make_fault_simulator``
  therefore maps ``engine="vector"`` to ``"auto"``;
* no per-hop tracing (``trace=True``) and no ``delivered_messages``
  capture.

**Telemetry.**  Events are buffered *columnar* during the run — flat
int lists per event kind, no tuple or label allocation on the hot
path — and materialized once at run end, stable-sorted by
``(cycle, uid)``: exactly the canonical order of
:meth:`~repro.telemetry.events.EventLog.canonical`, so JSONL output is
byte-identical with the generic engines.  Metrics-only probes receive
the same canonical stream through their sink; occupancy histograms are
fed via bucketed bulk counts (``Histogram.observe_many``) at the same
sampling points the probe's own ``on_cycle`` would use.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from ..core.message import Message
from ..core.routing_function import RoutingAlgorithm
from .engine import CycleLimitExceeded, DeadlockError
from .injection import InjectionModel
from .metrics import LatencyStats, SimulationResult
from .plans import DELIVER_STEP, SELF_STEP
from .tables import EngineCapabilityError, RoutingTables

__all__ = ["VectorSimulator"]


class VectorSimulator:
    """Table-driven engine; drop-in for :class:`PacketSimulator` runs."""

    def __init__(
        self,
        algorithm: RoutingAlgorithm,
        injection: InjectionModel,
        central_capacity: int = 5,
        stall_limit: int = 1000,
        trace: bool = False,
        collect_occupancy: bool = False,
        occupancy_sample_every: int = 1,
        policy: str = "paper",
        service: str = "fifo",
        tables: RoutingTables | None = None,
    ):
        if policy not in ("paper", "rotating"):
            raise ValueError("policy must be 'paper' or 'rotating'")
        if service not in ("fifo", "lifo"):
            raise ValueError("service must be 'fifo' or 'lifo'")
        if trace:
            raise EngineCapabilityError(
                "the vector engine does not record per-hop traces; use "
                "engine='reference' or engine='compiled' "
                "(see docs/ARCHITECTURE.md)"
            )
        self.algorithm = algorithm
        self.topology = algorithm.topology
        self.injection = injection
        self.central_capacity = central_capacity
        self.stall_limit = stall_limit
        self.trace = False
        self.collect_occupancy = collect_occupancy
        self.occupancy_sample_every = occupancy_sample_every
        self.policy = policy
        self.service = service

        self.tables = (
            tables if tables is not None else RoutingTables(algorithm)
        )
        if self.tables.algorithm is not algorithm:
            raise ValueError("tables were built for a different algorithm")
        t = self.tables

        #: Node labels in reference order (injection models iterate this).
        self.nodes: list[Hashable] = t.nodes
        self._nid = t.nid
        self.link_classes = t.link_classes
        self._n_in = [len(s) for s in t.node_in_slots]
        self._slot_pos = t.slot_in_pos
        self._slot_src = t.slot_src
        self._slot_dst = t.slot_dst
        # Per class-count k: contiguous per-class slot columns, so the
        # link cycle gathers without re-slicing each cycle.
        self._link_cols: dict[int, list[np.ndarray]] = {
            k: [np.ascontiguousarray(mat[:, j]) for j in range(k)]
            for k, mat in t.link_groups.items()
        }

        # ---- dynamic state ---------------------------------------------
        #: Central queues: one python list of message indices per qid.
        self._q: list[list[int]] = [[] for _ in range(t.n_queues)]
        #: Queued messages per node + the set of nodes with any.
        self._load: list[int] = [0] * len(self.nodes)
        self._busy: set[int] = set()
        #: Injection buffers (message index or -1) + occupied-node set.
        self._inj: list[int] = [-1] * len(self.nodes)
        self._inj_busy: set[int] = set()
        #: Link buffers as message-index arrays (-1 = empty).
        self._out = np.full(t.n_slots, -1, dtype=np.int64)
        self._in = np.full(t.n_slots, -1, dtype=np.int64)

        # Parallel per-message storage (index = registration order).
        self._mobj: list[Message] = []
        self._muid: list[int] = []
        self._mdst: list[int] = []
        self._mstate: list[int] = []
        self._mtarget: list[int] = []
        self._minj: list[int] = []
        self._msig_q: list[int] = []
        self._msig_st: list[int] = []
        self._mrow: list[tuple | None] = []

        # Bookkeeping (same contract as the reference engine).
        self.cycle = 0
        self.injected_count = 0
        self.delivered_count = 0
        self.active = 0
        self.latency = LatencyStats()
        self.measure_from = getattr(injection, "warmup", 0)
        self._last_progress = 0
        self.dead_nodes: frozenset = frozenset()
        self.blocked_links: frozenset = frozenset()
        self._events = None  # sink installed by TelemetryProbe.attach
        self._probe = None
        self._recording = False

        # Columnar event buffers (flat int lists; flushed at run end).
        self._ev_inject: list[int] = []  # (cycle, mi, node) triples
        self._ev_enqueue: list[int] = []  # (cycle, mi, qid) triples
        self._ev_hop: list[int] = []  # (cycle, mi, slot, dyn, qid) 5-tuples
        self._ev_deliver: list[int] = []  # (cycle, mi) pairs

        # Occupancy accounting (engine-level collect_occupancy).
        self._occ_sum = None
        self._occ_peak = None
        self.occupancy_samples = 0
        # Buffered probe occupancy series: (cycle, per-queue lengths).
        self._series_buf: list[tuple[int, np.ndarray]] = []

    # ------------------------------------------------------------------
    # Observer interface (telemetry probes only)
    # ------------------------------------------------------------------
    def add_observer(self, observer) -> None:
        """Accept a telemetry probe; reject everything else loudly."""
        from ..telemetry.probe import TelemetryProbe

        if isinstance(observer, TelemetryProbe):
            self._probe = observer
            return
        raise EngineCapabilityError(
            f"the vector engine has no generic observer loop and cannot "
            f"attach {type(observer).__name__}; fault injectors and "
            "watchdogs need engine='reference' or engine='compiled' "
            "(see docs/ARCHITECTURE.md)"
        )

    # ------------------------------------------------------------------
    # Injection-model interface
    # ------------------------------------------------------------------
    def injection_queue_free(self, u: Hashable) -> bool:
        return self._inj[self._nid[u]] == -1

    def place_in_injection_queue(
        self, u: Hashable, msg: Message, cycle: int
    ) -> None:
        ui = self._nid[u]
        if self._inj[ui] != -1:
            raise RuntimeError(f"injection queue at {u} occupied")
        msg.injected_cycle = cycle
        mi = len(self._muid)
        self._mobj.append(msg)
        self._muid.append(msg.uid)
        self._mdst.append(self._nid[msg.dst])
        self._mstate.append(self.tables.state_id(msg.state))
        self._mtarget.append(-1)
        self._minj.append(cycle)
        self._msig_q.append(-1)
        self._msig_st.append(-1)
        self._mrow.append(None)
        self._inj[ui] = mi
        self._inj_busy.add(ui)
        self.injected_count += 1
        self.active += 1
        self._last_progress = cycle
        if self._recording:
            self._ev_inject.extend((cycle, mi, ui))

    # ------------------------------------------------------------------
    # One routing cycle
    # ------------------------------------------------------------------
    def step(self) -> None:
        cycle = self.cycle
        # The sink is installed by attach() after construction.
        self._recording = self._events is not None
        probe = self._probe
        if probe is not None and probe.enabled:
            if cycle % probe.occupancy_every == 0:
                self._probe_sample(probe)
        self.injection.attempt(self, cycle)
        if self._busy:
            for ui in list(self._busy):
                self._fill_node(ui, cycle)
        self._read_inputs(cycle)
        self._link_cycle(cycle)
        if self.collect_occupancy and cycle % self.occupancy_sample_every == 0:
            self._sample_occupancy()
        self.cycle += 1
        if (
            self.active > 0
            and self.cycle - self._last_progress > self.stall_limit
        ):
            raise DeadlockError(
                f"no progress for {self.stall_limit} cycles at cycle "
                f"{self.cycle} with {self.active} active packets "
                f"({self.algorithm.name})"
            )

    # -- node cycle, part 1: queues -> output buffers + internal moves ----
    def _fill_node(self, ui: int, cycle: int) -> None:
        t = self.tables
        Q = self._q
        active = []
        maxlen = 0
        for qid in t.node_qids[ui]:
            q = Q[qid]
            if q:
                active.append((qid, q))
                if len(q) > maxlen:
                    maxlen = len(q)

        out = self._out
        base = t.node_out_start[ui]
        n_keys = t.node_out_count[ui]
        start = (
            cycle % n_keys
            if (self.policy == "rotating" and n_keys)
            else 0
        )
        mstate = self._mstate
        mdst = self._mdst
        msig_q = self._msig_q
        msig_st = self._msig_st
        mrow = self._mrow
        central_row = t.central_row
        recording = self._recording
        removed: dict[int, list[int]] = {}
        delta: dict[int, int] = {}
        pending: list[tuple] = []
        load_delta = 0

        # Message-major assignment in service order (positions
        # ascending for FIFO / descending for LIFO, queue-id ascending
        # as the tie-break) — the compiled engine's loop, on ints.
        positions = (
            range(maxlen)
            if self.service == "fifo"
            else range(maxlen - 1, -1, -1)
        )
        for pos in positions:
            for qid, q in active:
                if pos >= len(q):
                    continue
                mi = q[pos]
                st = mstate[mi]
                if msig_q[mi] == qid and msig_st[mi] == st:
                    row = mrow[mi]
                else:
                    row = central_row(qid, mdst[mi], st)
                    msig_q[mi] = qid
                    msig_st[mi] = st
                    mrow[mi] = row
                ext_slots = row[0]
                chosen = -1
                if ext_slots:
                    if start:
                        # "rotating": minimum rank from the cycle's
                        # starting slot.
                        best = n_keys
                        for j, s in enumerate(ext_slots):
                            if out[s] == -1:
                                r = s - base - start
                                if r < 0:
                                    r += n_keys
                                if r < best:
                                    best = r
                                    chosen = j
                    else:
                        # "paper": slot-ascending, first free wins.
                        for j, s in enumerate(ext_slots):
                            if out[s] == -1:
                                chosen = j
                                break
                if chosen >= 0:
                    s = ext_slots[chosen]
                    removed.setdefault(qid, []).append(pos)
                    delta[qid] = delta.get(qid, 0) - 1
                    load_delta -= 1
                    mstate[mi] = row[2][chosen]
                    tq = row[1][chosen]
                    self._mtarget[mi] = tq
                    out[s] = mi
                    self._last_progress = cycle
                    if recording:
                        self._ev_hop.extend(
                            (cycle, mi, s, row[3][chosen], tq)
                        )
                elif row[4]:
                    pending.append((qid, pos, mi, row[4]))

        # Internal moves (phase change, delivery, self-state updates).
        cap = self.central_capacity
        for qid, pos, mi, internal in pending:
            for action, tq, tst in internal:
                if action == DELIVER_STEP:
                    removed.setdefault(qid, []).append(pos)
                    delta[qid] = delta.get(qid, 0) - 1
                    load_delta -= 1
                    self._deliver(mi, cycle)
                    break
                if action == SELF_STEP:
                    mstate[mi] = tst
                    self._last_progress = cycle
                    if recording:
                        self._ev_enqueue.extend((cycle, mi, tq))
                    break
                # MOVE_STEP: sibling central queue, capacity permitting.
                if len(Q[tq]) + delta.get(tq, 0) < cap:
                    removed.setdefault(qid, []).append(pos)
                    delta[qid] = delta.get(qid, 0) - 1
                    mstate[mi] = tst
                    Q[tq].append(mi)
                    self._last_progress = cycle
                    if recording:
                        self._ev_enqueue.extend((cycle, mi, tq))
                    break

        # One compaction per touched queue (deferred pops).
        for qid, poplist in removed.items():
            q = Q[qid]
            drop = set(poplist)
            Q[qid] = [m for i, m in enumerate(q) if i not in drop]
        if load_delta:
            load = self._load[ui] + load_delta
            self._load[ui] = load
            if not load:
                self._busy.discard(ui)

    # -- node cycle, part 2: input + injection buffers -> queues ----------
    def _read_inputs(self, cycle: int) -> None:
        in_buf = self._in
        arrivals = np.flatnonzero(in_buf != -1)
        per_node: dict[int, list[int]] = {}
        if arrivals.size:
            slot_dst = self._slot_dst
            for s in arrivals.tolist():
                per_node.setdefault(slot_dst[s], []).append(s)
        targets = set(per_node)
        targets.update(self._inj_busy)
        if not targets:
            return

        t = self.tables
        Q = self._q
        cap = self.central_capacity
        mstate = self._mstate
        mdst = self._mdst
        mtarget = self._mtarget
        slot_pos = self._slot_pos
        entry_row = t.entry_row
        injection_row = t.injection_row
        recording = self._recording
        for ui in targets:
            n_in = self._n_in[ui]
            total = n_in + 1  # + the injection buffer
            start = cycle % total
            # Occupied sources in the reference engine's rotated order:
            # rank = (source position - start) mod total; slot lists are
            # ascending, the injection buffer sits at position n_in.
            items = [
                ((slot_pos[s] - start) % total, s)
                for s in per_node.get(ui, ())
            ]
            if self._inj[ui] != -1:
                items.append(((n_in - start) % total, -1))
            if len(items) > 1:
                items.sort()
            filled = 0
            for _rank, s in items:
                if s == -1:  # the injection buffer
                    mi = self._inj[ui]
                    for tq, tst in injection_row(ui, mdst[mi], mstate[mi]):
                        if len(Q[tq]) < cap:
                            mstate[mi] = tst
                            Q[tq].append(mi)
                            self._inj[ui] = -1
                            self._inj_busy.discard(ui)
                            filled += 1
                            self._last_progress = cycle
                            if recording:
                                self._ev_enqueue.extend((cycle, mi, tq))
                            break
                else:
                    mi = in_buf.item(s)
                    tq, tst = entry_row(mtarget[mi], mdst[mi], mstate[mi])
                    if len(Q[tq]) < cap:
                        in_buf[s] = -1
                        mtarget[mi] = -1
                        mstate[mi] = tst
                        Q[tq].append(mi)
                        filled += 1
                        self._last_progress = cycle
                        if recording:
                            self._ev_enqueue.extend((cycle, mi, tq))
            if filled:
                if not self._load[ui]:
                    self._busy.add(ui)
                self._load[ui] += filled

    # -- link cycle --------------------------------------------------------
    def _link_cycle(self, cycle: int) -> None:
        out = self._out
        inb = self._in
        progressed = False
        for k, cols in self._link_cols.items():
            if k == 1:
                col = cols[0]
                mv = (out[col] != -1) & (inb[col] == -1)
                if mv.any():
                    mc = col[mv]
                    inb[mc] = out[mc]
                    out[mc] = -1
                    progressed = True
            else:
                r = cycle % k
                done = np.zeros(len(cols[0]), dtype=bool)
                for p in range(k):
                    col = cols[(r + p) % k]
                    mv = (out[col] != -1) & (inb[col] == -1) & ~done
                    if mv.any():
                        mc = col[mv]
                        inb[mc] = out[mc]
                        out[mc] = -1
                        done |= mv
                        progressed = True
        if progressed:
            self._last_progress = cycle

    # -- delivery and stats -------------------------------------------------
    def _deliver(self, mi: int, cycle: int) -> None:
        msg = self._mobj[mi]
        msg.delivered_cycle = cycle
        self.delivered_count += 1
        self.active -= 1
        self._last_progress = cycle
        if self._recording:
            self._ev_deliver.extend((cycle, mi))
        if self._minj[mi] >= self.measure_from:
            self.latency.record(cycle - self._minj[mi])

    def _queue_lengths(self) -> np.ndarray:
        return np.fromiter(
            map(len, self._q), dtype=np.int64, count=self.tables.n_queues
        )

    def _sample_occupancy(self) -> None:
        lens = self._queue_lengths()
        if self._occ_sum is None:
            self._occ_sum = np.zeros(self.tables.n_queues, dtype=np.int64)
            self._occ_peak = np.zeros(self.tables.n_queues, dtype=np.int64)
        self._occ_sum += lens
        np.maximum(self._occ_peak, lens, out=self._occ_peak)
        self.occupancy_samples += 1

    def occupancy_mean(self) -> dict[tuple[Hashable, str], float]:
        if not self.occupancy_samples:
            return {}
        t = self.tables
        return {
            (t.nodes[t.queue_node[q]], t.queue_kind[q]): (
                int(self._occ_sum[q]) / self.occupancy_samples
            )
            for q in range(t.n_queues)
        }

    def _occupancy_peaks(self) -> dict[tuple[Hashable, str], int]:
        # The reference engine only records queues seen occupied.
        if self._occ_peak is None:
            return {}
        t = self.tables
        return {
            (t.nodes[t.queue_node[q]], t.queue_kind[q]): int(
                self._occ_peak[q]
            )
            for q in np.flatnonzero(self._occ_peak).tolist()
        }

    # -- telemetry ---------------------------------------------------------
    def _probe_sample(self, probe) -> None:
        lens = self._queue_lengths()
        hist = probe._occ_hist
        if hist is not None:
            for occ, count in enumerate(np.bincount(lens).tolist()):
                if count:
                    hist.observe_many(occ, count)
        if probe.series_enabled:
            self._series_buf.append((self.cycle, lens))
        if probe._inflight is not None:
            probe._inflight.set(self.active)

    def _materialize_events(self) -> list[tuple]:
        """Buffered columns -> canonical raw event tuples.

        Concatenation order (inject, enqueue, hop, deliver) plus a
        stable sort by ``(cycle, uid)`` reproduces
        :meth:`EventLog.canonical` exactly: the only same-``(cycle,
        uid)`` pair an engine can emit is inject-then-enqueue, and the
        concat order preserves it.
        """
        t = self.tables
        nodes = t.nodes
        muid = self._muid
        mdst = self._mdst
        minj = self._minj
        qkind = t.queue_kind
        qnode = t.queue_node
        evs: list[tuple] = []
        buf = self._ev_inject
        for i in range(0, len(buf), 3):
            c, mi, ui = buf[i], buf[i + 1], buf[i + 2]
            evs.append(("inject", c, muid[mi], nodes[ui], nodes[mdst[mi]]))
        buf = self._ev_enqueue
        for i in range(0, len(buf), 3):
            c, mi, qid = buf[i], buf[i + 1], buf[i + 2]
            evs.append(("enqueue", c, muid[mi], nodes[qnode[qid]], qkind[qid]))
        buf = self._ev_hop
        for i in range(0, len(buf), 5):
            c, mi, s, dyn, tq = (
                buf[i],
                buf[i + 1],
                buf[i + 2],
                buf[i + 3],
                buf[i + 4],
            )
            evs.append(
                (
                    "hop",
                    c,
                    muid[mi],
                    nodes[t.slot_src[s]],
                    nodes[t.slot_dst[s]],
                    t.slot_cls[s],
                    bool(dyn),
                    qkind[tq],
                )
            )
        buf = self._ev_deliver
        for i in range(0, len(buf), 2):
            c, mi = buf[i], buf[i + 1]
            evs.append(
                ("deliver", c, muid[mi], nodes[mdst[mi]], c - minj[mi])
            )
        evs.sort(key=lambda ev: (ev[1], ev[2]))
        return evs

    def _flush_telemetry(self, result: SimulationResult) -> None:
        sink = self._events
        if sink is not None:
            evs = self._materialize_events()
            extend = getattr(sink, "extend", None)
            if extend is not None:
                extend(evs)
            else:
                for ev in evs:
                    sink.append(ev)
        probe = self._probe
        if probe is None:
            return
        if probe.enabled and probe.series_enabled and self._series_buf:
            t = self.tables
            labels = [
                (t.nodes[t.queue_node[q]], t.queue_kind[q])
                for q in range(t.n_queues)
            ]
            series = probe.occupancy_series
            for c, lens in self._series_buf:
                for (u, kind), occ in zip(labels, lens.tolist()):
                    series.append((c, u, kind, occ))
            self._series_buf = []
        hook = getattr(probe, "on_run_end", None)
        if hook is not None:
            hook(self, result)

    # ------------------------------------------------------------------
    # Full runs
    # ------------------------------------------------------------------
    def run(self, max_cycles: int | None = None) -> SimulationResult:
        """Run until the injection model reports completion.

        Same contract as :meth:`PacketSimulator.run`, minus observer
        halts (the vector engine attaches no fault observers).
        """
        self.injection.setup(self)
        limit = max_cycles if max_cycles is not None else 10_000_000
        while self.cycle < limit:
            self.step()
            if self.injection.finished(self, self.cycle - 1):
                break
        else:
            raise CycleLimitExceeded(
                f"simulation exceeded {limit} cycles with no end in "
                f"sight: {self.active} of {self.injected_count} "
                f"injected packets still in flight "
                f"({self.algorithm.name}; raise max_cycles or check "
                "for livelock)"
            )
        occupancy = {}
        if self.collect_occupancy:
            occupancy = {
                "mean": self.occupancy_mean(),
                "peak": self._occupancy_peaks(),
            }
        result = SimulationResult(
            algorithm=self.algorithm.name,
            topology=self.topology.name,
            pattern=getattr(self.injection, "pattern", None).name
            if getattr(self.injection, "pattern", None)
            else "?",
            injection=self.injection.name,
            cycles=self.cycle,
            injected=self.injected_count,
            delivered=self.delivered_count,
            latency=self.latency,
            attempts=getattr(self.injection, "attempts", 0),
            successes=getattr(self.injection, "successes", 0),
            undelivered=self.active,
            occupancy=occupancy,
        )
        self._flush_telemetry(result)
        return result
