"""Vectorized table-driven engine (any algorithm, any topology).

:class:`VectorSimulator` executes the paper's Section-7.1 routing cycle
over the integer tables of :class:`~repro.sim.tables.RoutingTables`:
messages live in parallel int arrays (destination, state id, resolved
entry queue, injection cycle), central queues are rows of one int
matrix, link buffers are numpy int arrays holding message indices, and
all three phases of the cycle have batched numpy forms:

* the **fill phase** sweeps all busy nodes at once, one
  ``(position, queue-kind)`` step at a time: a single
  :meth:`~repro.sim.tables.RoutingTables.central_rids` gather maps
  every node's candidate message to its packed hop row, and a
  per-row argmax over output-buffer freeness performs the greedy
  matching for the whole network in a handful of array ops;
* the **read phase** ranks every occupied input/injection buffer with
  one ``lexsort`` and admits per-queue prefixes against capacity;
* the **link cycle** moves whole class-groups of links per operation.

Sparse cycles dispatch to per-node python loops instead (the batch
constant does not pay off under a few dozen actors); both paths
replicate the reference engine exactly, so the hybrid switch is
invisible in the output.

**Identity guarantees.**  Packet-for-packet identical to
:class:`~repro.sim.engine.PacketSimulator` at equal seeds on every
topology: same latencies, cycle counts, injection statistics, and a
byte-identical canonical telemetry event log
(``tests/test_sim_vector.py``, ``tests/test_sim_kernels.py``).  The
fill phase replays the compiled engine's message-major greedy matching
(provably equal to the reference engine's buffer-major loop under
aligned preference orders) — the batch form runs the same
(position, kind) steps across nodes, which commute because queues,
output buffers, and internal moves never cross nodes.  The read phase
replays the rotating input fairness: the batched rank
``(source position - cycle) mod (inputs + 1)`` equals the reference
rotation, and per-queue prefix admission equals the sequential loop
because rejected reads have no side effects.  The link cycle's class
rotation is ``cycle % k`` per ``k``-class link — the same ``rotated``
the reference engine uses.

**Limitations** (each raises a descriptive
:class:`~repro.sim.tables.EngineCapabilityError` — the engine never
silently degrades; see the engine matrix in ``docs/ARCHITECTURE.md``):

* routing states must be hashable (interned to table ids);
* no generic observer loop: the only observer accepted is a
  :class:`~repro.telemetry.TelemetryProbe`, which this engine drives
  itself (below).  Fault injectors and watchdogs need the reference or
  compiled engine — ``repro.faults.experiments.make_fault_simulator``
  therefore maps ``engine="vector"`` to ``"auto"``;
* no per-hop tracing (``trace=True``) and no ``delivered_messages``
  capture.

**Telemetry.**  Events are buffered *columnar* during the run — flat
int lists per event kind, no tuple or label allocation on the hot
path — and materialized once at run end, stable-sorted by
``(cycle, uid)``: exactly the canonical order of
:meth:`~repro.telemetry.events.EventLog.canonical`, so JSONL output is
byte-identical with the generic engines.  Metrics-only probes receive
the same canonical stream through their sink; occupancy histograms are
fed via bucketed bulk counts (``Histogram.observe_many``) at the same
sampling points the probe's own ``on_cycle`` would use.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from ..core.message import Message
from ..core.routing_function import RoutingAlgorithm
from .engine import CycleLimitExceeded, DeadlockError
from .injection import InjectionModel
from .metrics import LatencyStats, SimulationResult
from .plans import DELIVER_STEP, SELF_STEP
from .tables import EngineCapabilityError, RoutingTables

__all__ = ["VectorSimulator"]

#: Rank larger than any rotating-policy slot rank (masks occupied slots).
_NO_RANK = 1 << 40


class VectorSimulator:
    """Table-driven engine; drop-in for :class:`PacketSimulator` runs."""

    def __init__(
        self,
        algorithm: RoutingAlgorithm,
        injection: InjectionModel,
        central_capacity: int = 5,
        stall_limit: int = 1000,
        trace: bool = False,
        collect_occupancy: bool = False,
        occupancy_sample_every: int = 1,
        policy: str = "paper",
        service: str = "fifo",
        tables: RoutingTables | None = None,
    ):
        if policy not in ("paper", "rotating"):
            raise ValueError("policy must be 'paper' or 'rotating'")
        if service not in ("fifo", "lifo"):
            raise ValueError("service must be 'fifo' or 'lifo'")
        if trace:
            raise EngineCapabilityError(
                "the vector engine does not record per-hop traces; use "
                "engine='reference' or engine='compiled' "
                "(see docs/ARCHITECTURE.md)"
            )
        self.algorithm = algorithm
        self.topology = algorithm.topology
        self.injection = injection
        self.central_capacity = central_capacity
        self.stall_limit = stall_limit
        self.trace = False
        self.collect_occupancy = collect_occupancy
        self.occupancy_sample_every = occupancy_sample_every
        self.policy = policy
        self.service = service

        self.tables = (
            tables if tables is not None else RoutingTables(algorithm)
        )
        if self.tables.algorithm is not algorithm:
            raise ValueError("tables were built for a different algorithm")
        t = self.tables

        #: Node labels in reference order (injection models iterate this).
        self.nodes: list[Hashable] = t.nodes
        self._nid = t.nid
        self.link_classes = t.link_classes
        self._n_in = [len(s) for s in t.node_in_slots]
        self._slot_pos = t.slot_in_pos
        self._slot_src = t.slot_src
        self._slot_dst = t.slot_dst
        # Numpy mirrors of the per-node/per-slot tables for the batch
        # paths (the layout keeps them as python lists for the sparse
        # loops).
        self._n_in_a = np.asarray(self._n_in, dtype=np.int64)
        self._slot_pos_a = np.asarray(t.slot_in_pos, dtype=np.int64)
        self._slot_dst_a = np.asarray(t.slot_dst, dtype=np.int64)
        self._out_start_a = np.asarray(t.node_out_start, dtype=np.int64)
        self._out_count_a = np.asarray(t.node_out_count, dtype=np.int64)
        # Per class-count k: contiguous per-class slot columns, so the
        # link cycle gathers without re-slicing each cycle.
        self._link_cols: dict[int, list[np.ndarray]] = {
            k: [np.ascontiguousarray(mat[:, j]) for j in range(k)]
            for k, mat in t.link_groups.items()
        }
        # Homogeneous layouts (every node has the same queue kinds, so
        # qid = node * nk + kind) unlock the batched fill sweep.
        kind_counts = {len(qs) for qs in t.node_qids}
        self._uniform_nk = (
            kind_counts.pop() if len(kind_counts) == 1 else 0
        )

        # ---- dynamic state ---------------------------------------------
        # Central queues as one int matrix: row qid holds message
        # indices, -1-padded.  `_qlen` is the physical row length
        # (including in-fill tombstones), `_qcount` the live count;
        # rows are compacted (qlen == qcount, entries contiguous from
        # column 0) between phases.  Width 2*cap+2 covers the worst
        # mid-fill case (cap live + cap same-cycle MOVE appends).
        n_nodes = len(self.nodes)
        width = 2 * central_capacity + 2
        self._qbuf = np.full((t.n_queues, width), -1, dtype=np.int64)
        self._qlen = np.zeros(t.n_queues, dtype=np.int64)
        self._qcount = np.zeros(t.n_queues, dtype=np.int64)
        #: Queued messages per node (busy = nonzero entries).
        self._load = np.zeros(n_nodes, dtype=np.int64)
        #: Injection buffers (message index or -1).
        self._inj = np.full(n_nodes, -1, dtype=np.int64)
        #: Link buffers as message-index arrays (-1 = empty).  The out
        #: array carries one extra occupied sentinel slot that packed
        #: hop rows use as padding, so padded candidates never match.
        self._out = np.full(t.n_slots + 1, -1, dtype=np.int64)
        self._out[t.n_slots] = -2
        self._in = np.full(t.n_slots, -1, dtype=np.int64)

        # Parallel per-message storage (index = registration order).
        # Numpy columns for the batch paths; python lists where only
        # the python paths touch them.
        self._mn = 0
        cap0 = 1024
        self._mdst = np.empty(cap0, dtype=np.int64)
        self._mstate = np.empty(cap0, dtype=np.int64)
        self._minj = np.empty(cap0, dtype=np.int64)
        # Entry queue/state the message will request on arrival —
        # resolved at hop time (external moves) or injection time.
        self._ment_q = np.empty(cap0, dtype=np.int64)
        self._ment_st = np.empty(cap0, dtype=np.int64)
        self._mobj: list[Message] = []
        self._muid: list[int] = []
        self._msig_q: list[int] = []
        self._msig_st: list[int] = []
        self._mrow: list[tuple | None] = []
        # Set once an injection row is empty or non-singleton; the
        # batched read cannot replay the multi-target retry loop, so
        # reads stay on the sparse path from then on.
        self._inj_multi = False

        #: Hybrid dispatch floors: batch phases win once this many
        #: nodes (fill) / buffered messages (read) act in one cycle.
        self.batch_fill_min = 24
        self.batch_read_min = 48

        # Bookkeeping (same contract as the reference engine).
        self.cycle = 0
        self.injected_count = 0
        self.delivered_count = 0
        self.active = 0
        self.latency = LatencyStats()
        self.measure_from = getattr(injection, "warmup", 0)
        self._last_progress = 0
        self.dead_nodes: frozenset = frozenset()
        self.blocked_links: frozenset = frozenset()
        self._events = None  # sink installed by TelemetryProbe.attach
        self._probe = None
        self._recording = False

        # Columnar event buffers (flat int lists; flushed at run end).
        self._ev_inject: list[int] = []  # (cycle, mi, node) triples
        self._ev_enqueue: list[int] = []  # (cycle, mi, qid) triples
        self._ev_hop: list[int] = []  # (cycle, mi, slot, dyn, qid) 5-tuples
        self._ev_deliver: list[int] = []  # (cycle, mi) pairs

        # Occupancy accounting (engine-level collect_occupancy).
        self._occ_sum = None
        self._occ_peak = None
        self.occupancy_samples = 0
        # Buffered probe occupancy series: (cycle, per-queue lengths).
        self._series_buf: list[tuple[int, np.ndarray]] = []

    # ------------------------------------------------------------------
    # Observer interface (telemetry probes only)
    # ------------------------------------------------------------------
    def add_observer(self, observer) -> None:
        """Accept a telemetry probe; reject everything else loudly."""
        from ..telemetry.probe import TelemetryProbe

        if isinstance(observer, TelemetryProbe):
            self._probe = observer
            return
        raise EngineCapabilityError(
            f"the vector engine has no generic observer loop and cannot "
            f"attach {type(observer).__name__}; fault injectors and "
            "watchdogs need engine='reference' or engine='compiled' "
            "(see docs/ARCHITECTURE.md)"
        )

    # ------------------------------------------------------------------
    # Growable storage
    # ------------------------------------------------------------------
    def _grow_qbuf(self, need: int) -> None:
        old = self._qbuf
        width = max(old.shape[1] * 2, need + 1)
        buf = np.full((old.shape[0], width), -1, dtype=np.int64)
        buf[:, : old.shape[1]] = old
        self._qbuf = buf

    def _grow_msgs(self) -> None:
        cap = self._mdst.size * 2
        for name in ("_mdst", "_mstate", "_minj", "_ment_q", "_ment_st"):
            col = getattr(self, name)
            grown = np.empty(cap, dtype=np.int64)
            grown[: col.size] = col
            setattr(self, name, grown)

    # ------------------------------------------------------------------
    # Injection-model interface
    # ------------------------------------------------------------------
    def injection_queue_free(self, u: Hashable) -> bool:
        return bool(self._inj[self._nid[u]] == -1)

    def place_in_injection_queue(
        self, u: Hashable, msg: Message, cycle: int
    ) -> None:
        ui = self._nid[u]
        if self._inj[ui] != -1:
            raise RuntimeError(f"injection queue at {u} occupied")
        msg.injected_cycle = cycle
        mi = self._mn
        if mi == self._mdst.size:
            self._grow_msgs()
        self._mobj.append(msg)
        self._muid.append(msg.uid)
        dst_i = self._nid[msg.dst]
        sid = self.tables.state_id(msg.state)
        self._mdst[mi] = dst_i
        self._mstate[mi] = sid
        self._minj[mi] = cycle
        self._msig_q.append(-1)
        self._msig_st.append(-1)
        self._mrow.append(None)
        row = self.tables.injection_row(ui, dst_i, sid)
        if len(row) == 1:
            self._ment_q[mi], self._ment_st[mi] = row[0]
        else:
            self._ment_q[mi] = -1
            self._ment_st[mi] = 0
            self._inj_multi = True
        self._mn = mi + 1
        self._inj[ui] = mi
        self.injected_count += 1
        self.active += 1
        self._last_progress = cycle
        if self._recording:
            self._ev_inject.extend((cycle, mi, ui))

    # ------------------------------------------------------------------
    # One routing cycle
    # ------------------------------------------------------------------
    def step(self) -> None:
        cycle = self.cycle
        # The sink is installed by attach() after construction.
        self._recording = self._events is not None
        probe = self._probe
        if probe is not None and probe.enabled:
            if cycle % probe.occupancy_every == 0:
                self._probe_sample(probe)
        self.injection.attempt(self, cycle)
        busy = np.flatnonzero(self._load)
        if busy.size:
            if self._uniform_nk and busy.size >= self.batch_fill_min:
                self._fill_batch(busy, cycle)
            else:
                for ui in busy.tolist():
                    self._fill_node(ui, cycle)
        self._read_inputs(cycle)
        self._link_cycle(cycle)
        if self.collect_occupancy and cycle % self.occupancy_sample_every == 0:
            self._sample_occupancy()
        self.cycle += 1
        if (
            self.active > 0
            and self.cycle - self._last_progress > self.stall_limit
        ):
            raise DeadlockError(
                f"no progress for {self.stall_limit} cycles at cycle "
                f"{self.cycle} with {self.active} active packets "
                f"({self.algorithm.name})"
            )

    # -- node cycle, part 1: queues -> output buffers + internal moves ----
    def _fill_batch(self, busy: np.ndarray, cycle: int) -> None:
        """All busy nodes at once, one (position, kind) step at a time.

        Each step touches at most one message per node, and nodes are
        independent in the fill phase (queues, output buffers, and
        internal moves never cross nodes), so running the per-node
        steps in lockstep across the network reproduces each node's
        sequential message-major sweep exactly.
        """
        t = self.tables
        nk = self._uniform_nk
        qbuf = self._qbuf
        qlen = self._qlen
        qcount = self._qcount
        out = self._out
        load = self._load
        mstate = self._mstate
        mdst = self._mdst
        ment_q = self._ment_q
        ment_st = self._ment_st
        central_rids = t.central_rids
        recording = self._recording
        rotating = self.policy == "rotating"

        qbase = busy * nk
        lens = qlen[
            (qbase[:, None] + np.arange(nk)).ravel()
        ].reshape(-1, nk)
        maxlen = int(lens.max())
        positions = (
            range(maxlen)
            if self.service == "fifo"
            else range(maxlen - 1, -1, -1)
        )
        pending: list[tuple[int, int, int, int]] = []
        progressed = False
        for pos in positions:
            for r in range(nk):
                sel = np.flatnonzero(lens[:, r] > pos)
                if not sel.size:
                    continue
                q_sel = qbase[sel] + r
                mis = qbuf[q_sel, pos]
                rids = central_rids(q_sel, mdst[mis], mstate[mis])
                # Re-fetch the packed arrays each step: a memo miss
                # inside central_rids can grow (reallocate) them.
                row_slots = t.row_slots
                row_queues = t.row_queues
                row_states = t.row_states
                row_dyn = t.row_dyn
                row_entq = t.row_entq
                row_entst = t.row_entst
                row_hasint = t.row_hasint
                cand = row_slots[rids]
                free = out[cand] == -1
                got = free.any(axis=1)
                if rotating:
                    nodes_sel = busy[sel]
                    n_keys = np.maximum(self._out_count_a[nodes_sel], 1)
                    rank = (
                        cand - self._out_start_a[nodes_sel][:, None] - cycle
                    ) % n_keys[:, None]
                    rank[~free] = _NO_RANK
                    pick = np.argmin(rank, axis=1)
                else:
                    # "paper": slot-ascending, first free wins (rows
                    # are slot-sorted, padding sorts last).
                    pick = np.argmax(free, axis=1)
                gi = np.flatnonzero(got)
                if gi.size:
                    jg = pick[gi]
                    rg = rids[gi]
                    mg = mis[gi]
                    sg = cand[gi, jg]
                    out[sg] = mg
                    qg = q_sel[gi]
                    qbuf[qg, pos] = -1  # tombstone; compacted below
                    qcount[qg] -= 1
                    load[busy[sel[gi]]] -= 1
                    mstate[mg] = row_states[rg, jg]
                    ment_q[mg] = row_entq[rg, jg]
                    ment_st[mg] = row_entst[rg, jg]
                    progressed = True
                    if recording:
                        ev = np.empty((gi.size, 5), dtype=np.int64)
                        ev[:, 0] = cycle
                        ev[:, 1] = mg
                        ev[:, 2] = sg
                        ev[:, 3] = row_dyn[rg, jg]
                        ev[:, 4] = row_queues[rg, jg]
                        self._ev_hop.extend(ev.ravel().tolist())
                blocked = np.flatnonzero(~got & (row_hasint[rids] != 0))
                if blocked.size:
                    qp = q_sel[blocked]
                    mp = mis[blocked]
                    rp = rids[blocked]
                    for i in range(blocked.size):
                        pending.append(
                            (int(qp[i]), pos, int(mp[i]), int(rp[i]))
                        )
        if progressed:
            self._last_progress = cycle
        if pending:
            self._run_internal(pending, cycle)
        self._compact()

    def _run_internal(
        self, pending: list[tuple[int, int, int, int]], cycle: int
    ) -> None:
        """Internal moves for the batch fill, in sweep order.

        Per node this is the same (position, kind)-ordered pending list
        the sparse path builds, and internal moves never cross nodes,
        so the global order is immaterial.
        """
        t = self.tables
        cap = self.central_capacity
        qlen = self._qlen
        qcount = self._qcount
        mstate = self._mstate
        queue_node = t.queue_node
        row_internal = t.row_internal
        recording = self._recording
        for qid, pos, mi, rid in pending:
            for action, tq, tst in row_internal[rid]:
                if action == DELIVER_STEP:
                    self._qbuf[qid, pos] = -1
                    qcount[qid] -= 1
                    self._load[queue_node[qid]] -= 1
                    self._deliver(mi, cycle)
                    break
                if action == SELF_STEP:
                    mstate[mi] = tst
                    self._last_progress = cycle
                    if recording:
                        self._ev_enqueue.extend((cycle, mi, tq))
                    break
                # MOVE_STEP: sibling central queue, capacity permitting.
                if qcount[tq] < cap:
                    self._qbuf[qid, pos] = -1
                    qcount[qid] -= 1
                    end = int(qlen[tq])
                    if end >= self._qbuf.shape[1]:
                        self._grow_qbuf(end)
                    self._qbuf[tq, end] = mi
                    qlen[tq] = end + 1
                    qcount[tq] += 1
                    mstate[mi] = tst
                    self._last_progress = cycle
                    if recording:
                        self._ev_enqueue.extend((cycle, mi, tq))
                    break

    def _compact(self) -> None:
        """Squeeze in-fill tombstones out of dirty queue rows.

        Stable partition: survivors keep their order, same-cycle MOVE
        appends stay behind them — the order the sparse path produces.
        """
        qlen = self._qlen
        qcount = self._qcount
        dirty = np.flatnonzero(qlen != qcount)
        if dirty.size:
            rows = self._qbuf[dirty]
            order = np.argsort(rows == -1, axis=1, kind="stable")
            self._qbuf[dirty] = np.take_along_axis(rows, order, axis=1)
            qlen[dirty] = qcount[dirty]

    def _fill_node(self, ui: int, cycle: int) -> None:
        t = self.tables
        qbuf = self._qbuf
        qlen = self._qlen
        qcount = self._qcount
        qlists: dict[int, list[int]] = {}
        active = []
        maxlen = 0
        for qid in t.node_qids[ui]:
            length = int(qlen[qid])
            if length:
                q = qbuf[qid, :length].tolist()
                qlists[qid] = q
                active.append((qid, q))
                if length > maxlen:
                    maxlen = length

        out = self._out
        base = t.node_out_start[ui]
        n_keys = t.node_out_count[ui]
        start = (
            cycle % n_keys
            if (self.policy == "rotating" and n_keys)
            else 0
        )
        mstate = self._mstate
        mdst = self._mdst
        msig_q = self._msig_q
        msig_st = self._msig_st
        mrow = self._mrow
        central_row = t.central_row
        entry_row = t.entry_row
        recording = self._recording
        removed: dict[int, list[int]] = {}
        appended: set[int] = set()
        delta: dict[int, int] = {}
        pending: list[tuple] = []
        load_delta = 0

        # Message-major assignment in service order (positions
        # ascending for FIFO / descending for LIFO, queue-id ascending
        # as the tie-break) — the compiled engine's loop, on ints.
        positions = (
            range(maxlen)
            if self.service == "fifo"
            else range(maxlen - 1, -1, -1)
        )
        for pos in positions:
            for qid, q in active:
                if pos >= len(q):
                    continue
                mi = q[pos]
                st = int(mstate[mi])
                if msig_q[mi] == qid and msig_st[mi] == st:
                    row = mrow[mi]
                else:
                    row = central_row(qid, int(mdst[mi]), st)
                    msig_q[mi] = qid
                    msig_st[mi] = st
                    mrow[mi] = row
                ext_slots = row[0]
                chosen = -1
                if ext_slots:
                    if start:
                        # "rotating": minimum rank from the cycle's
                        # starting slot.
                        best = n_keys
                        for j, s in enumerate(ext_slots):
                            if out[s] == -1:
                                rnk = s - base - start
                                if rnk < 0:
                                    rnk += n_keys
                                if rnk < best:
                                    best = rnk
                                    chosen = j
                    else:
                        # "paper": slot-ascending, first free wins.
                        for j, s in enumerate(ext_slots):
                            if out[s] == -1:
                                chosen = j
                                break
                if chosen >= 0:
                    s = ext_slots[chosen]
                    removed.setdefault(qid, []).append(pos)
                    delta[qid] = delta.get(qid, 0) - 1
                    load_delta -= 1
                    nst = row[2][chosen]
                    mstate[mi] = nst
                    tq = row[1][chosen]
                    eq, est = entry_row(tq, int(mdst[mi]), nst)
                    self._ment_q[mi] = eq
                    self._ment_st[mi] = est
                    out[s] = mi
                    self._last_progress = cycle
                    if recording:
                        self._ev_hop.extend(
                            (cycle, mi, s, row[3][chosen], tq)
                        )
                elif row[4]:
                    pending.append((qid, pos, mi, row[4]))

        # Internal moves (phase change, delivery, self-state updates).
        cap = self.central_capacity
        for qid, pos, mi, internal in pending:
            for action, tq, tst in internal:
                if action == DELIVER_STEP:
                    removed.setdefault(qid, []).append(pos)
                    delta[qid] = delta.get(qid, 0) - 1
                    load_delta -= 1
                    self._deliver(mi, cycle)
                    break
                if action == SELF_STEP:
                    mstate[mi] = tst
                    self._last_progress = cycle
                    if recording:
                        self._ev_enqueue.extend((cycle, mi, tq))
                    break
                # MOVE_STEP: sibling central queue, capacity permitting.
                tlist = qlists.setdefault(tq, [])
                if len(tlist) + delta.get(tq, 0) < cap:
                    removed.setdefault(qid, []).append(pos)
                    delta[qid] = delta.get(qid, 0) - 1
                    mstate[mi] = tst
                    tlist.append(mi)
                    appended.add(tq)
                    self._last_progress = cycle
                    if recording:
                        self._ev_enqueue.extend((cycle, mi, tq))
                    break

        # One write-back per touched queue (deferred pops, compacted).
        if removed or appended:
            for qid in set(removed) | appended:
                q = qlists[qid]
                drop = removed.get(qid)
                if drop:
                    keep = set(drop)
                    q = [m for i, m in enumerate(q) if i not in keep]
                length = len(q)
                old = int(qlen[qid])
                if length > qbuf.shape[1]:
                    self._grow_qbuf(length)
                    qbuf = self._qbuf
                if length:
                    qbuf[qid, :length] = q
                if length < old:
                    qbuf[qid, length:old] = -1
                qlen[qid] = length
                qcount[qid] = length
        if load_delta:
            self._load[ui] += load_delta

    # -- node cycle, part 2: input + injection buffers -> queues ----------
    def _read_inputs(self, cycle: int) -> None:
        arrivals = np.flatnonzero(self._in != -1)
        inj_nodes = np.flatnonzero(self._inj != -1)
        count = arrivals.size + inj_nodes.size
        if not count:
            return
        if count >= self.batch_read_min and not self._inj_multi:
            self._read_batch(arrivals, inj_nodes, cycle)
        else:
            self._read_sparse(arrivals, inj_nodes, cycle)

    def _read_batch(
        self, arrivals: np.ndarray, inj_nodes: np.ndarray, cycle: int
    ) -> None:
        """All occupied input/injection buffers in one admission pass.

        Rank ``(source position - cycle) mod (inputs + 1)`` is the
        reference engine's rotated read order (the injection buffer
        sits at position ``inputs``).  Sorting by (node, rank) and
        admitting per-target-queue prefixes against free capacity
        equals the sequential loop: a rejected read has no side
        effects, and an admission only consumes capacity in its own
        queue.
        """
        nodes_parts = []
        rank_parts = []
        mi_parts = []
        src_parts = []
        if arrivals.size:
            a_nodes = self._slot_dst_a[arrivals]
            a_total = self._n_in_a[a_nodes] + 1
            nodes_parts.append(a_nodes)
            rank_parts.append(
                (self._slot_pos_a[arrivals] - cycle) % a_total
            )
            mi_parts.append(self._in[arrivals])
            src_parts.append(arrivals)
        if inj_nodes.size:
            i_total = self._n_in_a[inj_nodes] + 1
            nodes_parts.append(inj_nodes)
            rank_parts.append((i_total - 1 - cycle) % i_total)
            mi_parts.append(self._inj[inj_nodes])
            src_parts.append(np.full(inj_nodes.size, -1, dtype=np.int64))
        nodes_all = np.concatenate(nodes_parts)
        rank_all = np.concatenate(rank_parts)
        mi_all = np.concatenate(mi_parts)
        src_all = np.concatenate(src_parts)

        order = np.lexsort((rank_all, nodes_all))
        mi_o = mi_all[order]
        tq_o = self._ment_q[mi_o]
        group = np.argsort(tq_o, kind="stable")
        tq_s = tq_o[group]
        mi_s = mi_o[group]
        src_s = src_all[order][group]
        node_s = nodes_all[order][group]
        total = tq_s.size
        starts = np.flatnonzero(np.r_[True, tq_s[1:] != tq_s[:-1]])
        counts = np.diff(np.r_[starts, total])
        seq = np.arange(total) - np.repeat(starts, counts)
        admit = np.flatnonzero(
            seq < self.central_capacity - self._qcount[tq_s]
        )
        if not admit.size:
            return
        tq_a = tq_s[admit]
        mi_a = mi_s[admit]
        src_a = src_s[admit]
        node_a = node_s[admit]
        pos = self._qlen[tq_a] + seq[admit]
        high = int(pos.max())
        if high >= self._qbuf.shape[1]:
            self._grow_qbuf(high)
        self._qbuf[tq_a, pos] = mi_a
        np.add.at(self._qlen, tq_a, 1)
        np.add.at(self._qcount, tq_a, 1)
        np.add.at(self._load, node_a, 1)
        self._mstate[mi_a] = self._ment_st[mi_a]
        from_link = src_a >= 0
        self._in[src_a[from_link]] = -1
        self._inj[node_a[~from_link]] = -1
        self._last_progress = cycle
        if self._recording:
            ev = np.empty((mi_a.size, 3), dtype=np.int64)
            ev[:, 0] = cycle
            ev[:, 1] = mi_a
            ev[:, 2] = tq_a
            self._ev_enqueue.extend(ev.ravel().tolist())

    def _read_sparse(
        self, arrivals: np.ndarray, inj_nodes: np.ndarray, cycle: int
    ) -> None:
        per_node: dict[int, list[int]] = {}
        if arrivals.size:
            slot_dst = self._slot_dst
            for s in arrivals.tolist():
                per_node.setdefault(slot_dst[s], []).append(s)
        targets = set(per_node)
        targets.update(inj_nodes.tolist())

        t = self.tables
        qbuf = self._qbuf
        qlen = self._qlen
        qcount = self._qcount
        cap = self.central_capacity
        mstate = self._mstate
        mdst = self._mdst
        ment_q = self._ment_q
        ment_st = self._ment_st
        slot_pos = self._slot_pos
        injection_row = t.injection_row
        recording = self._recording
        in_buf = self._in
        inj = self._inj
        for ui in targets:
            n_in = self._n_in[ui]
            total = n_in + 1  # + the injection buffer
            start = cycle % total
            # Occupied sources in the reference engine's rotated order:
            # rank = (source position - start) mod total; slot lists are
            # ascending, the injection buffer sits at position n_in.
            items = [
                ((slot_pos[s] - start) % total, s)
                for s in per_node.get(ui, ())
            ]
            if inj[ui] != -1:
                items.append(((n_in - start) % total, -1))
            if len(items) > 1:
                items.sort()
            filled = 0
            for _rank, s in items:
                if s == -1:  # the injection buffer
                    mi = int(inj[ui])
                    for tq, tst in injection_row(
                        ui, int(mdst[mi]), int(mstate[mi])
                    ):
                        if qcount[tq] < cap:
                            mstate[mi] = tst
                            end = int(qlen[tq])
                            if end >= qbuf.shape[1]:
                                self._grow_qbuf(end)
                                qbuf = self._qbuf
                            qbuf[tq, end] = mi
                            qlen[tq] = end + 1
                            qcount[tq] += 1
                            inj[ui] = -1
                            filled += 1
                            self._last_progress = cycle
                            if recording:
                                self._ev_enqueue.extend((cycle, mi, tq))
                            break
                else:
                    mi = int(in_buf[s])
                    tq = int(ment_q[mi])
                    if qcount[tq] < cap:
                        in_buf[s] = -1
                        mstate[mi] = ment_st[mi]
                        end = int(qlen[tq])
                        if end >= qbuf.shape[1]:
                            self._grow_qbuf(end)
                            qbuf = self._qbuf
                        qbuf[tq, end] = mi
                        qlen[tq] = end + 1
                        qcount[tq] += 1
                        filled += 1
                        self._last_progress = cycle
                        if recording:
                            self._ev_enqueue.extend((cycle, mi, tq))
            if filled:
                self._load[ui] += filled

    # -- link cycle --------------------------------------------------------
    def _link_cycle(self, cycle: int) -> None:
        out = self._out
        inb = self._in
        progressed = False
        for k, cols in self._link_cols.items():
            if k == 1:
                col = cols[0]
                mv = (out[col] != -1) & (inb[col] == -1)
                if mv.any():
                    mc = col[mv]
                    inb[mc] = out[mc]
                    out[mc] = -1
                    progressed = True
            else:
                r = cycle % k
                done = np.zeros(len(cols[0]), dtype=bool)
                for p in range(k):
                    col = cols[(r + p) % k]
                    mv = (out[col] != -1) & (inb[col] == -1) & ~done
                    if mv.any():
                        mc = col[mv]
                        inb[mc] = out[mc]
                        out[mc] = -1
                        done |= mv
                        progressed = True
        if progressed:
            self._last_progress = cycle

    # -- delivery and stats -------------------------------------------------
    def _deliver(self, mi: int, cycle: int) -> None:
        msg = self._mobj[mi]
        msg.delivered_cycle = cycle
        self.delivered_count += 1
        self.active -= 1
        self._last_progress = cycle
        if self._recording:
            self._ev_deliver.extend((cycle, mi))
        injected = int(self._minj[mi])
        if injected >= self.measure_from:
            self.latency.record(cycle - injected)

    def _queue_lengths(self) -> np.ndarray:
        return self._qcount.copy()

    def _sample_occupancy(self) -> None:
        lens = self._queue_lengths()
        if self._occ_sum is None:
            self._occ_sum = np.zeros(self.tables.n_queues, dtype=np.int64)
            self._occ_peak = np.zeros(self.tables.n_queues, dtype=np.int64)
        self._occ_sum += lens
        np.maximum(self._occ_peak, lens, out=self._occ_peak)
        self.occupancy_samples += 1

    def occupancy_mean(self) -> dict[tuple[Hashable, str], float]:
        if not self.occupancy_samples:
            return {}
        t = self.tables
        return {
            (t.nodes[t.queue_node[q]], t.queue_kind[q]): (
                int(self._occ_sum[q]) / self.occupancy_samples
            )
            for q in range(t.n_queues)
        }

    def _occupancy_peaks(self) -> dict[tuple[Hashable, str], int]:
        # The reference engine only records queues seen occupied.
        if self._occ_peak is None:
            return {}
        t = self.tables
        return {
            (t.nodes[t.queue_node[q]], t.queue_kind[q]): int(
                self._occ_peak[q]
            )
            for q in np.flatnonzero(self._occ_peak).tolist()
        }

    # -- telemetry ---------------------------------------------------------
    def _probe_sample(self, probe) -> None:
        lens = self._queue_lengths()
        hist = probe._occ_hist
        if hist is not None:
            for occ, count in enumerate(np.bincount(lens).tolist()):
                if count:
                    hist.observe_many(occ, count)
        if probe.series_enabled:
            self._series_buf.append((self.cycle, lens))
        if probe._inflight is not None:
            probe._inflight.set(self.active)

    def _materialize_events(self) -> list[tuple]:
        """Buffered columns -> canonical raw event tuples.

        Concatenation order (inject, enqueue, hop, deliver) plus a
        stable sort by ``(cycle, uid)`` reproduces
        :meth:`EventLog.canonical` exactly: the only same-``(cycle,
        uid)`` pair an engine can emit is inject-then-enqueue, and the
        concat order preserves it.
        """
        t = self.tables
        nodes = t.nodes
        muid = self._muid
        mdst = self._mdst[: self._mn].tolist()
        minj = self._minj[: self._mn].tolist()
        qkind = t.queue_kind
        qnode = t.queue_node
        evs: list[tuple] = []
        buf = self._ev_inject
        for i in range(0, len(buf), 3):
            c, mi, ui = buf[i], buf[i + 1], buf[i + 2]
            evs.append(("inject", c, muid[mi], nodes[ui], nodes[mdst[mi]]))
        buf = self._ev_enqueue
        for i in range(0, len(buf), 3):
            c, mi, qid = buf[i], buf[i + 1], buf[i + 2]
            evs.append(("enqueue", c, muid[mi], nodes[qnode[qid]], qkind[qid]))
        buf = self._ev_hop
        for i in range(0, len(buf), 5):
            c, mi, s, dyn, tq = (
                buf[i],
                buf[i + 1],
                buf[i + 2],
                buf[i + 3],
                buf[i + 4],
            )
            evs.append(
                (
                    "hop",
                    c,
                    muid[mi],
                    nodes[t.slot_src[s]],
                    nodes[t.slot_dst[s]],
                    t.slot_cls[s],
                    bool(dyn),
                    qkind[tq],
                )
            )
        buf = self._ev_deliver
        for i in range(0, len(buf), 2):
            c, mi = buf[i], buf[i + 1]
            evs.append(
                ("deliver", c, muid[mi], nodes[mdst[mi]], c - minj[mi])
            )
        evs.sort(key=lambda ev: (ev[1], ev[2]))
        return evs

    def _flush_telemetry(self, result: SimulationResult) -> None:
        sink = self._events
        if sink is not None:
            evs = self._materialize_events()
            extend = getattr(sink, "extend", None)
            if extend is not None:
                extend(evs)
            else:
                for ev in evs:
                    sink.append(ev)
        probe = self._probe
        if probe is None:
            return
        if probe.enabled and probe.series_enabled and self._series_buf:
            t = self.tables
            labels = [
                (t.nodes[t.queue_node[q]], t.queue_kind[q])
                for q in range(t.n_queues)
            ]
            series = probe.occupancy_series
            for c, lens in self._series_buf:
                for (u, kind), occ in zip(labels, lens.tolist()):
                    series.append((c, u, kind, occ))
            self._series_buf = []
        hook = getattr(probe, "on_run_end", None)
        if hook is not None:
            hook(self, result)

    # ------------------------------------------------------------------
    # Full runs
    # ------------------------------------------------------------------
    def run(self, max_cycles: int | None = None) -> SimulationResult:
        """Run until the injection model reports completion.

        Same contract as :meth:`PacketSimulator.run`, minus observer
        halts (the vector engine attaches no fault observers).
        """
        self.injection.setup(self)
        limit = max_cycles if max_cycles is not None else 10_000_000
        while self.cycle < limit:
            self.step()
            if self.injection.finished(self, self.cycle - 1):
                break
        else:
            raise CycleLimitExceeded(
                f"simulation exceeded {limit} cycles with no end in "
                f"sight: {self.active} of {self.injected_count} "
                f"injected packets still in flight "
                f"({self.algorithm.name}; raise max_cycles or check "
                "for livelock)"
            )
        occupancy = {}
        if self.collect_occupancy:
            occupancy = {
                "mean": self.occupancy_mean(),
                "peak": self._occupancy_peaks(),
            }
        result = SimulationResult(
            algorithm=self.algorithm.name,
            topology=self.topology.name,
            pattern=getattr(self.injection, "pattern", None).name
            if getattr(self.injection, "pattern", None)
            else "?",
            injection=self.injection.name,
            cycles=self.cycle,
            injected=self.injected_count,
            delivered=self.delivered_count,
            latency=self.latency,
            attempts=getattr(self.injection, "attempts", 0),
            successes=getattr(self.injection, "successes", 0),
            undelivered=self.active,
            occupancy=occupancy,
        )
        self._flush_telemetry(result)
        return result
