"""Specialized fast simulator for the hypercube algorithms.

:class:`~repro.sim.engine.PacketSimulator` is generic over any
topology/routing-function pair, which costs it frozenset and QueueId
churn in the inner loop.  This module re-implements the *same
Section-7.1 semantics* for the hypercube two-phase algorithms only,
with integer bit operations and pre-compiled per-node buffer tables —
roughly an order of magnitude faster, which is what makes the paper's
n = 10..14 range practical in pure Python.

Equivalence is not approximate: the fast engine mirrors the reference
engine's iteration orders (buffer fill low -> high dimension, FIFO
entry ranks, rotating input fairness, per-link class rotation) and
consumes the *same* injection-model objects, so a run with the same
seed produces identical per-packet latencies.  The test-suite
cross-validates this packet-for-packet
(``tests/test_sim_fastcube.py``).

Restrictions (engine matrix: ``docs/ARCHITECTURE.md``): hypercube
topology with the fully-adaptive (default) or hung
(``dynamic_links=False``) algorithm only; **no observer hook** — so no
fault injection, no telemetry probes, no route tracing — and FIFO
service with the paper buffer policy only.  ``build_simulator``
enforces all of this up front: a non-qualifying algorithm raises
:class:`~repro.sim.tables.EngineCapabilityError` and a telemetry
request raises ``ValueError``, each carrying the engine matrix.
Everything within that envelope matches :class:`PacketSimulator`
(central capacity, stall watchdog, metrics).
"""

from __future__ import annotations

from ..core.message import Message
from ..routing.hypercube import (
    HypercubeAdaptiveRouting,
    HypercubeHungRouting,
)
from ..topology.hypercube import Hypercube
from .engine import DeadlockError
from .injection import InjectionModel
from .metrics import LatencyStats, SimulationResult

# Buffer class codes.
_A, _B, _DYN = 0, 1, 2
_CLS_NAME = {_A: "A", _B: "B", _DYN: "dyn"}


class FastHypercubeSimulator:
    """Drop-in fast engine for hypercube two-phase routing."""

    def __init__(
        self,
        algorithm: HypercubeHungRouting,
        injection: InjectionModel,
        central_capacity: int = 5,
        stall_limit: int = 1000,
    ):
        if not isinstance(algorithm, HypercubeHungRouting):
            raise TypeError(
                "FastHypercubeSimulator supports the hypercube two-phase "
                "algorithms only"
            )
        if type(algorithm) not in (
            HypercubeAdaptiveRouting,
            HypercubeHungRouting,
        ):
            raise TypeError(
                f"unsupported hypercube variant {type(algorithm).__name__}; "
                "use the generic PacketSimulator"
            )
        self.algorithm = algorithm
        self.topology: Hypercube = algorithm.topology
        self.injection = injection
        self.central_capacity = central_capacity
        self.stall_limit = stall_limit
        self.dynamic_links = isinstance(algorithm, HypercubeAdaptiveRouting)

        n = self.topology.n
        N = 1 << n
        self.n = n
        self.N = N
        self.mask = N - 1
        self.nodes = list(range(N))

        # Per node: out-buffer descriptors in the reference engine's
        # order (dim ascending; down-links carry class A, up-links B
        # then dyn) and the matching in-buffer tables.
        self.out_desc: list[list[tuple[int, int, int]]] = []  # (dim, cls, v)
        for u in range(N):
            desc = []
            for dim in range(n):
                v = u ^ (1 << dim)
                if (u >> dim) & 1 == 0:
                    desc.append((dim, _A, v))
                else:
                    desc.append((dim, _B, v))
                    if self.dynamic_links:
                        desc.append((dim, _DYN, v))
            self.out_desc.append(desc)
        self.out_buf: list[list[Message | None]] = [
            [None] * len(d) for d in self.out_desc
        ]

        # In-buffer tables: reference order is ascending sender node,
        # classes in the sender's out order.  in_map[u][slot] gives the
        # (v, in_slot) fed by out slot `slot` of node u.
        self.in_desc: list[list[tuple[int, int, int]]] = [[] for _ in range(N)]
        self.in_buf: list[list[Message | None]] = [[] for _ in range(N)]
        self.out_to_in: list[list[int]] = [
            [0] * len(d) for d in self.out_desc
        ]
        for u in range(N):
            for slot, (dim, cls, v) in enumerate(self.out_desc[u]):
                self.in_desc[v].append((dim, cls, u))
                self.in_buf[v].append(None)
                self.out_to_in[u][slot] = len(self.in_desc[v]) - 1

        # Physical-link class groups for the link cycle: per (u, dim),
        # out slots in class order (A) or (B, dyn).
        self.link_groups: list[list[list[int]]] = []
        for u in range(N):
            groups: list[list[int]] = [[] for _ in range(n)]
            for slot, (dim, _cls, _v) in enumerate(self.out_desc[u]):
                groups[dim].append(slot)
            self.link_groups.append(groups)

        # Queues (plain lists, FIFO by append/remove) and injection slots.
        self.qA: list[list[Message]] = [[] for _ in range(N)]
        self.qB: list[list[Message]] = [[] for _ in range(N)]
        self.inj: list[Message | None] = [None] * N

        self.cycle = 0
        self.injected_count = 0
        self.delivered_count = 0
        self.active = 0
        self.latency = LatencyStats()
        self.measure_from = getattr(injection, "warmup", 0)
        self._last_progress = 0

    # ------------------------------------------------------------------
    # Injection-model interface (mirrors PacketSimulator)
    # ------------------------------------------------------------------
    def injection_queue_free(self, u: int) -> bool:
        return self.inj[u] is None

    def place_in_injection_queue(self, u: int, msg: Message, cycle: int) -> None:
        if self.inj[u] is not None:
            raise RuntimeError(f"injection queue at {u} occupied")
        msg.injected_cycle = cycle
        self.inj[u] = msg
        self.injected_count += 1
        self.active += 1
        self._last_progress = cycle

    # ------------------------------------------------------------------
    # One routing cycle
    # ------------------------------------------------------------------
    def step(self) -> None:
        cycle = self.cycle
        self.injection.attempt(self, cycle)
        for u in self.nodes:
            self._fill_output_buffers(u)
        for u in self.nodes:
            self._read_inputs(u)
        self._link_cycle()
        self.cycle += 1
        if (
            self.active > 0
            and self.cycle - self._last_progress > self.stall_limit
        ):
            raise DeadlockError(
                f"no progress for {self.stall_limit} cycles "
                f"(fast engine, {self.algorithm.name})"
            )

    def _fill_output_buffers(self, u: int) -> None:
        qA, qB = self.qA[u], self.qB[u]
        if not qA and not qB:
            return
        mask = self.mask
        out_buf = self.out_buf[u]
        desc = self.out_desc[u]

        # Entry ranks: (position, kind index) — heads of both queues
        # come before any second-in-line packet, A before B on ties.
        entries: list[tuple[int, int, Message]] = []
        for pos, msg in enumerate(qA):
            entries.append((pos, 0, msg))
        for pos, msg in enumerate(qB):
            entries.append((pos, 1, msg))
        entries.sort(key=lambda t: (t[0], t[1]))

        moved: set[int] = set()
        # Buffer-major assignment in descriptor (low-dim first) order.
        for slot, (dim, cls, _v) in enumerate(desc):
            if out_buf[slot] is not None:
                continue
            bit = 1 << dim
            for pos, ki, msg in entries:
                if msg.uid in moved:
                    continue
                dst = msg.dst
                if ki == 0:  # phase A
                    zeros = ~u & dst & mask
                    if not zeros:
                        continue  # internal switch handled below
                    if cls == _A:
                        want = bool(zeros & bit)
                    elif cls == _DYN and self.dynamic_links:
                        want = bool(u & ~dst & bit)
                    else:
                        want = False
                else:  # phase B: all differing dims, class B
                    want = cls == _B and bool((u ^ dst) & bit)
                if not want:
                    continue
                (qA if ki == 0 else qB).remove(msg)
                out_buf[slot] = msg
                moved.add(msg.uid)
                self._last_progress = self.cycle
                break

        # Internal moves: delivery, and the (normally pre-folded)
        # A -> B phase switch.
        for pos, ki, msg in entries:
            if msg.uid in moved:
                continue
            if msg.dst == u:
                (qA if ki == 0 else qB).remove(msg)
                self._deliver(msg)
                moved.add(msg.uid)
            elif ki == 0 and not (~u & msg.dst & mask):
                if len(qB) < self.central_capacity:
                    qA.remove(msg)
                    qB.append(msg)
                    moved.add(msg.uid)
                    self._last_progress = self.cycle

    def _entry_kind(self, v: int, msg: Message, sender_cls: int) -> int:
        """Queue a packet enters at ``v`` (phase fold at entry)."""
        if sender_cls == _B:
            return 1
        if v == msg.dst:
            return 0  # delivery next cycle; stays in the A queue
        if ~v & msg.dst & self.mask:
            return 0
        return 1  # fold: no zeros left, enter phase B directly

    def _read_inputs(self, v: int) -> None:
        in_buf = self.in_buf[v]
        in_desc = self.in_desc[v]
        qA, qB = self.qA[v], self.qB[v]
        cap = self.central_capacity
        total = len(in_buf) + 1  # + the injection buffer
        start = self.cycle % total
        for i in range(total):
            idx = (start + i) % total
            if idx == len(in_buf):  # the injection buffer
                msg = self.inj[v]
                if msg is None:
                    continue
                if ~v & msg.dst & self.mask:
                    target, ki = qA, 0
                else:
                    target, ki = qB, 1
                if len(target) < cap:
                    target.append(msg)
                    self.inj[v] = None
                    self._last_progress = self.cycle
            else:
                msg = in_buf[idx]
                if msg is None:
                    continue
                ki = self._entry_kind(v, msg, in_desc[idx][1])
                target = qA if ki == 0 else qB
                if len(target) < cap:
                    in_buf[idx] = None
                    target.append(msg)
                    self._last_progress = self.cycle

    def _link_cycle(self) -> None:
        cycle = self.cycle
        out_to_in = self.out_to_in
        for u in self.nodes:
            out_buf = self.out_buf[u]
            for dim, slots in enumerate(self.link_groups[u]):
                if len(slots) > 1 and cycle % 2:
                    order = (slots[1], slots[0])
                else:
                    order = slots
                for slot in order:
                    msg = out_buf[slot]
                    if msg is None:
                        continue
                    v = self.out_desc[u][slot][2]
                    in_slot = out_to_in[u][slot]
                    if self.in_buf[v][in_slot] is None:
                        out_buf[slot] = None
                        self.in_buf[v][in_slot] = msg
                        self._last_progress = cycle
                        break  # one packet per link direction

    def _deliver(self, msg: Message) -> None:
        msg.delivered_cycle = self.cycle
        self.delivered_count += 1
        self.active -= 1
        self._last_progress = self.cycle
        if msg.injected_cycle >= self.measure_from:
            self.latency.record(msg.latency)

    # ------------------------------------------------------------------
    # Runs (mirrors PacketSimulator.run)
    # ------------------------------------------------------------------
    def run(self, max_cycles: int | None = None) -> SimulationResult:
        self.injection.setup(self)
        limit = max_cycles if max_cycles is not None else 10_000_000
        while self.cycle < limit:
            self.step()
            if self.injection.finished(self, self.cycle - 1):
                break
        else:
            raise RuntimeError(
                f"simulation exceeded {limit} cycles "
                f"({self.active} packets still active)"
            )
        return SimulationResult(
            algorithm=self.algorithm.name,
            topology=self.topology.name,
            pattern=getattr(self.injection, "pattern", None).name
            if getattr(self.injection, "pattern", None)
            else "?",
            injection=self.injection.name,
            cycles=self.cycle,
            injected=self.injected_count,
            delivered=self.delivered_count,
            latency=self.latency,
            attempts=getattr(self.injection, "attempts", 0),
            successes=getattr(self.injection, "successes", 0),
            undelivered=self.active,
        )
