"""Specialized fast simulator for the hypercube algorithms.

Historically this module carried its own hand-rolled integer engine
(bit-twiddling buffer tables, ~10x over the reference engine).  The
integer hop kernel of :mod:`repro.routing.hypercube` plus the batched
node cycle of :class:`~repro.sim.vector.VectorSimulator` now produce
the same integer tables and the same per-cycle work from the generic
machinery, so :class:`FastHypercubeSimulator` is a thin subclass: it
keeps the historical engine's strict constructor contract (hypercube
two-phase algorithms only, no observers, FIFO service with the paper
buffer policy) and delegates everything else.

Equivalence is not approximate: the vector engine replays the
reference engine's iteration orders (buffer fill low -> high
dimension, FIFO entry ranks, rotating input fairness, per-link class
rotation) and consumes the *same* injection-model objects, so a run
with the same seed produces identical per-packet latencies.  The
test-suite cross-validates this packet-for-packet
(``tests/test_sim_fastcube.py``).

Restrictions (engine matrix: ``docs/ARCHITECTURE.md``): hypercube
topology with the fully-adaptive (default) or hung
(``dynamic_links=False``) algorithm only; **no observer hook** — so no
fault injection, no telemetry probes, no route tracing — and FIFO
service with the paper buffer policy only.  ``build_simulator``
enforces all of this up front: a non-qualifying algorithm raises
:class:`~repro.sim.tables.EngineCapabilityError` and a telemetry
request raises ``ValueError``, each carrying the engine matrix.
Everything within that envelope matches :class:`PacketSimulator`
(central capacity, stall watchdog, metrics).
"""

from __future__ import annotations

from ..routing.hypercube import (
    HypercubeAdaptiveRouting,
    HypercubeHungRouting,
)
from .injection import InjectionModel
from .tables import EngineCapabilityError
from .vector import VectorSimulator

__all__ = ["FastHypercubeSimulator"]


class FastHypercubeSimulator(VectorSimulator):
    """Drop-in fast engine for hypercube two-phase routing."""

    def __init__(
        self,
        algorithm: HypercubeHungRouting,
        injection: InjectionModel,
        central_capacity: int = 5,
        stall_limit: int = 1000,
    ):
        if not isinstance(algorithm, HypercubeHungRouting):
            raise TypeError(
                "FastHypercubeSimulator supports the hypercube two-phase "
                "algorithms only"
            )
        if type(algorithm) not in (
            HypercubeAdaptiveRouting,
            HypercubeHungRouting,
        ):
            raise TypeError(
                f"unsupported hypercube variant {type(algorithm).__name__}; "
                "use the generic PacketSimulator"
            )
        super().__init__(
            algorithm,
            injection,
            central_capacity=central_capacity,
            stall_limit=stall_limit,
        )

    def add_observer(self, observer) -> None:
        raise EngineCapabilityError(
            "the fast engine has no observer hook; use engine='reference' "
            "or engine='compiled' (see docs/ARCHITECTURE.md)"
        )
