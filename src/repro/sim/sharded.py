"""Sharded multi-process execution of the vector engine.

:class:`ShardedSimulator` splits a topology into per-worker shards
(:mod:`repro.sim.partition`), runs one :class:`_ShardEngine` — a
:class:`~repro.sim.vector.VectorSimulator` subclass restricted to its
shard's nodes — per worker process, and synchronizes the workers with
one conservative barrier per routing cycle.  The result (delivered
packets, metrics, the canonical JSONL event log) is **byte-identical**
to a serial reference/vector run at equal seeds; `docs/SHARDING.md`
walks through the protocol and the identity argument in detail.

The short version:

* **Identical structure everywhere.**  Node, queue, and link-slot ids
  are pure functions of the topology (``RoutingTables`` interns them in
  ``topology.nodes()`` order), so every worker addresses the same
  global id space and the partition is recomputed identically in every
  process.
* **Replayed injection.**  Message uids and RNG draws happen in global
  node order inside the injection model.  Every worker replays the
  *whole* model — placements on foreign nodes are dropped after their
  uid/RNG effects — so the uid stream matches the serial run exactly.
  (For plain :class:`~repro.sim.injection.StaticInjection`, whose
  ``attempt`` is per-node and RNG-free, the replay collapses to the
  local nodes after a shared ``setup``.)
* **Mirrored boundary buffers.**  A link whose endpoints live on
  different shards has its output buffer owned by the source shard and
  its input buffer by the destination shard; each side keeps a mirror
  of the other's occupancy, refreshed at the per-cycle barrier, and
  both sides replay the *same* link-cycle decision (same ``cycle % k``
  rotation over the same slot ids) so the mirrors never diverge.
* **Canonical merge.**  Per-shard event streams are merged in the
  canonical ``(cycle, uid)`` order of
  :meth:`~repro.telemetry.events.EventLog.canonical`; the only
  same-key event pair an engine can emit (inject→enqueue) never
  crosses shards, so the merge is unambiguous and byte-stable.

**Capability limits** (honest :class:`EngineCapabilityError`, like the
vector engine): no per-hop tracing, no generic observers (telemetry
probes only), and no fault schedules yet —
``repro.faults.experiments.make_fault_simulator`` refuses
``engine="sharded"`` instead of silently remapping.  One behavioral
caveat: deadlock detection sees remote progress one barrier late, so a
:class:`DeadlockError` may fire one cycle later than serial (the cycle
and packet counts in the message are the converged global values).
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import os
import time
from typing import Hashable

import numpy as np

from ..core.message import (
    Message,
    message_id_watermark,
    set_message_id_watermark,
)
from ..core.routing_function import RoutingAlgorithm
from .engine import CycleLimitExceeded, DeadlockError
from .injection import InjectionModel, StaticInjection
from .metrics import LatencyStats, SimulationResult
from .partition import TopologyPartition, partition_topology
from .tables import EngineCapabilityError, RoutingTables
from .vector import VectorSimulator

__all__ = ["ShardedSimulator", "shard_count"]


def shard_count(default: int | None = None) -> int:
    """Resolve the shard count: ``REPRO_SHARDS`` env var, else
    ``default``, else one shard per available core (capped at 4)."""
    env = os.environ.get("REPRO_SHARDS")
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_SHARDS must be a positive integer, got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(
                f"REPRO_SHARDS must be a positive integer, got {env!r}"
            )
        return value
    if default is not None:
        return default
    return max(1, min(4, os.cpu_count() or 1))


class _Aborted(Exception):
    """A peer shard failed; this worker exits quietly."""


def _cycle_limit_message(sim) -> str:
    # Same text the serial engines raise, built from the converged
    # global counters so every shard (and the parent) agrees on it.
    return (
        f"simulation exceeded {sim._limit} cycles with no end in "
        f"sight: {sim.active} of {sim.injected_count} "
        f"injected packets still in flight "
        f"({sim.algorithm.name}; raise max_cycles or check "
        "for livelock)"
    )


# ======================================================================
# Per-shard engine
# ======================================================================
class _ShardEngine(VectorSimulator):
    """A vector engine that owns one shard of the network.

    The full integer tables are shared (global id space); only the
    dynamic state of local nodes is ever populated.  Boundary links
    keep occupancy mirrors of their remote half, refreshed at the
    barrier (`docs/SHARDING.md`).
    """

    def __init__(
        self,
        algorithm: RoutingAlgorithm,
        injection: InjectionModel,
        shard_id: int,
        partition: TopologyPartition,
        mirror_injection: bool,
        **kwargs,
    ):
        super().__init__(algorithm, injection, **kwargs)
        self.shard_id = shard_id
        self.partition = partition
        t = self.tables
        owner = np.asarray(partition.owner, dtype=np.int64)
        self._owner = owner
        self._local_mask = owner == shard_id
        self._local_nodes = np.flatnonzero(self._local_mask)
        qnode = np.asarray(t.queue_node, dtype=np.int64)
        self._local_qids = np.flatnonzero(self._local_mask[qnode])
        slot_src = np.asarray(t.slot_src, dtype=np.int64)
        slot_dst = np.asarray(t.slot_dst, dtype=np.int64)
        self._slot_src_a = slot_src
        src_local = owner[slot_src] == shard_id
        dst_local = owner[slot_dst] == shard_id
        #: Boundary slots whose *output* buffer we own / whose *input*
        #: buffer we own.
        self._bout = np.flatnonzero(src_local & ~dst_local)
        self._bin = np.flatnonzero(~src_local & dst_local)
        self._slot_dst_owner = owner[slot_dst]
        self._slot_src_owner = owner[slot_src]
        # Split the link-cycle class groups three ways: both endpoints
        # local (the inherited `_link_cycle` handles these), source
        # local (out buffer real, in buffer mirrored), destination
        # local (out mirrored, in real).  A row's k slots share one
        # (src, dst) pair, so membership is decided by column 0.
        internal_cols: dict[int, list[np.ndarray]] = {}
        bnd_src_cols: dict[int, list[np.ndarray]] = {}
        bnd_dst_cols: dict[int, list[np.ndarray]] = {}
        for k, mat in t.link_groups.items():
            first = mat[:, 0]
            s_loc = src_local[first]
            d_loc = dst_local[first]
            for rows, store in (
                (s_loc & d_loc, internal_cols),
                (s_loc & ~d_loc, bnd_src_cols),
                (d_loc & ~s_loc, bnd_dst_cols),
            ):
                if rows.any():
                    sub = mat[rows]
                    store[k] = [
                        np.ascontiguousarray(sub[:, j]) for j in range(k)
                    ]
        self._link_cols = internal_cols
        self._bnd_src_cols = bnd_src_cols
        self._bnd_dst_cols = bnd_dst_cols
        # Occupancy mirrors of the remote halves of boundary links.
        # Kept outside `_in`/`_out` so the inherited phases never see
        # remote state.
        self._rin_occ = np.zeros(t.n_slots, dtype=bool)
        self._rout_occ = np.zeros(t.n_slots, dtype=bool)
        self._rout_payload: dict[int, tuple] = {}
        # Remote injection-buffer mirror (True = free), refreshed from
        # the barrier bitmasks; only consulted by replayed models.
        self._mirror_injection = mirror_injection
        self._rinj_free = np.ones(len(self.nodes), dtype=bool)
        self._peer_nodes = [
            partition.shard_nodes(j) for j in range(partition.n_shards)
        ]
        # Per-cycle outgoing state, drained by `collect()`.
        self._fills_by_dst: dict[int, list[tuple]] = {}
        self._drains_by_src: dict[int, list[int]] = {}
        self._delta_injected = 0
        self._delta_delivered = 0
        # Run-total shard statistics (per-shard telemetry gauges).
        self.local_injected_total = 0
        self.local_delivered_total = 0
        self.boundary_sent_total = 0
        self.boundary_recv_total = 0
        # Probe state, buffered locally (no probe object in workers).
        self._hist_counts = np.zeros(0, dtype=np.int64)
        self._shard_series: list[tuple[int, np.ndarray]] = []
        self._last_active_sample: int | None = None
        #: Measured deliveries as (cycle, uid, latency) — merged by the
        #: parent in (cycle, uid) order into the run's LatencyStats.
        self._lat_log: list[tuple[int, int, int]] = []

    # ------------------------------------------------------------------
    # Injection facade (global replay)
    # ------------------------------------------------------------------
    def injection_queue_free(self, u: Hashable) -> bool:
        ui = self._nid[u]
        if self._local_mask[ui]:
            return bool(self._inj[ui] == -1)
        return bool(self._rinj_free[ui])

    def place_in_injection_queue(
        self, u: Hashable, msg: Message, cycle: int
    ) -> None:
        ui = self._nid[u]
        if self._local_mask[ui]:
            super().place_in_injection_queue(u, msg, cycle)
            self._delta_injected += 1
            self.local_injected_total += 1
            return
        # Foreign node: the owning shard replays the identical
        # placement; here only the mirror changes (the message's uid
        # and RNG draws were already consumed, which is the point).
        if not self._rinj_free[ui]:
            raise RuntimeError(f"injection queue at {u} occupied")
        self._rinj_free[ui] = False

    def localize_static_injection(self) -> None:
        """Shrink the replay to local nodes (plain static models only).

        ``StaticInjection.attempt`` touches one node at a time with no
        RNG, so after the (global, uid-consuming) ``setup`` the foreign
        nodes can simply be dropped from the iteration — their
        placements happen on the owning shard.  ``total`` stays global.
        """
        model = self.injection
        self.nodes = [self.tables.nodes[i] for i in self._local_nodes]
        model.backlog = {u: model.backlog[u] for u in self.nodes}

    # ------------------------------------------------------------------
    # Delivery / accounting
    # ------------------------------------------------------------------
    def _deliver(self, mi: int, cycle: int) -> None:
        super()._deliver(mi, cycle)
        self._delta_delivered += 1
        self.local_delivered_total += 1
        injected = int(self._minj[mi])
        if injected >= self.measure_from:
            self._lat_log.append(
                (cycle, int(self._muid[mi]), cycle - injected)
            )

    # ------------------------------------------------------------------
    # Phase A: probe sample + injection + fill + read
    # ------------------------------------------------------------------
    def sample_probe(self, cycle: int, series: bool) -> None:
        # Mirrors VectorSimulator._probe_sample over the local queues;
        # foreign queues are sampled by their owning shard, and the
        # union of the shards' samples is the serial full-network
        # sample.  `active` converged at the last barrier, so it is the
        # global in-flight count.
        lens = self._qcount[self._local_qids]
        counts = np.bincount(lens)
        if counts.size > self._hist_counts.size:
            grown = np.zeros(counts.size, dtype=np.int64)
            grown[: self._hist_counts.size] = self._hist_counts
            self._hist_counts = grown
        self._hist_counts[: counts.size] += counts
        if series:
            self._shard_series.append((cycle, lens.copy()))
        self._last_active_sample = int(self.active)

    def phase_node(self, cycle: int) -> None:
        self._recording = self._events is not None
        self.injection.attempt(self, cycle)
        bout = self._bout
        pre_out = self._out[bout] != -1
        busy = np.flatnonzero(self._load)
        if busy.size:
            if self._uniform_nk and busy.size >= self.batch_fill_min:
                self._fill_batch(busy, cycle)
            else:
                for ui in busy.tolist():
                    self._fill_node(ui, cycle)
        new_fills = bout[(self._out[bout] != -1) & ~pre_out]
        for s in new_fills.tolist():
            dst_shard = int(self._slot_dst_owner[s])
            self._fills_by_dst.setdefault(dst_shard, []).append(
                self._fill_payload(s)
            )
        bin_ = self._bin
        pre_in = self._in[bin_] != -1
        self._read_inputs(cycle)
        drained = bin_[pre_in & (self._in[bin_] == -1)]
        for s in drained.tolist():
            src_shard = int(self._slot_src_owner[s])
            self._drains_by_src.setdefault(src_shard, []).append(int(s))

    def _fill_payload(self, s: int) -> tuple:
        # Everything the destination shard needs to re-register the
        # message under the same uid: ids are global, but routing-state
        # *ids* are interned lazily per process, so the entry state
        # travels as its (hashable) object and is re-interned on
        # arrival.
        mi = int(self._out[s])
        msg = self._mobj[mi]
        return (
            int(s),
            self._muid[mi],
            int(self._nid[msg.src]),
            int(self._mdst[mi]),
            int(self._minj[mi]),
            int(self._ment_q[mi]),
            self.tables.states[int(self._ment_st[mi])],
        )

    def _register_remote(self, payload: tuple) -> int:
        s, uid, src_i, dst_i, inj_cycle, ent_q, ent_state = payload
        mi = self._mn
        if mi == self._mdst.size:
            self._grow_msgs()
        nodes = self.tables.nodes
        # Explicit uid: does not consume the global counter.
        msg = Message(
            src=nodes[src_i],
            dst=nodes[dst_i],
            uid=uid,
            injected_cycle=inj_cycle,
        )
        self._mobj.append(msg)
        self._muid.append(uid)
        sid = self.tables.state_id(ent_state)
        self._mdst[mi] = dst_i
        self._mstate[mi] = sid
        self._minj[mi] = inj_cycle
        self._ment_q[mi] = ent_q
        self._ment_st[mi] = sid
        self._msig_q.append(-1)
        self._msig_st.append(-1)
        self._mrow.append(None)
        self._mn = mi + 1
        return mi

    # ------------------------------------------------------------------
    # Barrier payloads
    # ------------------------------------------------------------------
    def collect(self) -> tuple:
        fills = self._fills_by_dst
        drains = self._drains_by_src
        self._fills_by_dst = {}
        self._drains_by_src = {}
        self.boundary_sent_total += sum(len(v) for v in fills.values())
        bits = None
        if self._mirror_injection:
            local = self._local_nodes
            occupied = self._inj[local] != -1
            bits = np.packbits(occupied).tobytes()
        payload = (
            fills,
            drains,
            bits,
            self._delta_injected,
            self._delta_delivered,
            int(self._last_progress),
        )
        self._delta_injected = 0
        self._delta_delivered = 0
        return payload

    def apply(self, reply: tuple) -> None:
        fills, drains, bits_by_shard, d_inj, d_del, progress = reply
        self.injected_count += d_inj
        self.delivered_count += d_del
        self.active += d_inj - d_del
        for payload in fills:
            s = payload[0]
            self._rout_occ[s] = True
            self._rout_payload[s] = payload
            self.boundary_recv_total += 1
        for s in drains:
            self._rin_occ[s] = False
        for shard, bits in bits_by_shard:
            peers = self._peer_nodes[shard]
            occupied = np.unpackbits(
                np.frombuffer(bits, dtype=np.uint8), count=peers.size
            ).astype(bool)
            self._rinj_free[peers] = ~occupied
        if progress > self._last_progress:
            self._last_progress = progress

    # ------------------------------------------------------------------
    # Phase B: link cycle (internal + boundary)
    # ------------------------------------------------------------------
    def phase_link(self, cycle: int) -> None:
        self._link_cycle(cycle)
        self._boundary_link_cycle(cycle)
        if (
            self.collect_occupancy
            and cycle % self.occupancy_sample_every == 0
        ):
            self._sample_occupancy()

    def _boundary_link_cycle(self, cycle: int) -> None:
        """Replay the link cycle over boundary rows.

        Source-local rows move a real output buffer into the mirror of
        the remote input buffer; destination-local rows pop the
        mirrored output payload into the real input buffer.  Both
        sides evaluate the same occupancy predicate over the same slot
        ids with the same ``cycle % k`` rotation, so the two replicas
        of every decision agree.
        """
        out = self._out
        inb = self._in
        rin = self._rin_occ
        rout = self._rout_occ
        progressed = False
        for k, cols in self._bnd_src_cols.items():
            if k == 1:
                col = cols[0]
                mv = (out[col] != -1) & ~rin[col]
                if mv.any():
                    mc = col[mv]
                    rin[mc] = True
                    out[mc] = -1
                    progressed = True
            else:
                r = cycle % k
                done = np.zeros(len(cols[0]), dtype=bool)
                for p in range(k):
                    col = cols[(r + p) % k]
                    mv = (out[col] != -1) & ~rin[col] & ~done
                    if mv.any():
                        mc = col[mv]
                        rin[mc] = True
                        out[mc] = -1
                        done |= mv
                        progressed = True
        for k, cols in self._bnd_dst_cols.items():
            if k == 1:
                col = cols[0]
                mv = rout[col] & (inb[col] == -1)
                if mv.any():
                    mc = col[mv]
                    self._accept_remote(mc)
                    rout[mc] = False
                    progressed = True
            else:
                r = cycle % k
                done = np.zeros(len(cols[0]), dtype=bool)
                for p in range(k):
                    col = cols[(r + p) % k]
                    mv = rout[col] & (inb[col] == -1) & ~done
                    if mv.any():
                        mc = col[mv]
                        self._accept_remote(mc)
                        rout[mc] = False
                        done |= mv
                        progressed = True
        if progressed:
            self._last_progress = cycle

    def _accept_remote(self, slots: np.ndarray) -> None:
        for s in slots.tolist():
            mi = self._register_remote(self._rout_payload.pop(s))
            self._in[s] = mi

    # ------------------------------------------------------------------
    # Occupancy (restricted to local queues; the parent merges)
    # ------------------------------------------------------------------
    def occupancy_mean(self) -> dict[tuple[Hashable, str], float]:
        if not self.occupancy_samples:
            return {}
        t = self.tables
        return {
            (t.nodes[t.queue_node[q]], t.queue_kind[q]): (
                int(self._occ_sum[q]) / self.occupancy_samples
            )
            for q in self._local_qids.tolist()
        }


# ======================================================================
# Barrier hub (runs in the parent / the inline driver)
# ======================================================================
class _BarrierHub:
    """Routes one round of barrier payloads between shards."""

    def __init__(self, n_shards: int):
        self.n_shards = n_shards
        self.boundary_messages = [0] * n_shards

    def route(self, payloads: list[tuple]) -> list[tuple]:
        n = self.n_shards
        inj_total = sum(p[3] for p in payloads)
        del_total = sum(p[4] for p in payloads)
        progress = max(p[5] for p in payloads)
        for i, p in enumerate(payloads):
            self.boundary_messages[i] += sum(
                len(v) for v in p[0].values()
            )
        replies = []
        for j in range(n):
            fills: list[tuple] = []
            drains: list[int] = []
            bits: list[tuple[int, bytes]] = []
            for i, p in enumerate(payloads):
                if i == j:
                    continue
                fills.extend(p[0].get(j, ()))
                drains.extend(p[1].get(j, ()))
                if p[2] is not None:
                    bits.append((i, p[2]))
            replies.append(
                (
                    fills,
                    drains,
                    bits,
                    inj_total - payloads[j][3],
                    del_total - payloads[j][4],
                    progress,
                )
            )
        return replies


# ======================================================================
# Per-shard driver (lockstep loop; works inline or in a worker process)
# ======================================================================
class _ShardRunner:
    """Drives one shard engine through the barrier protocol."""

    def __init__(
        self,
        engine: _ShardEngine,
        limit: int,
        record_events: bool,
        sample_every: int,
        sample_series: bool,
    ):
        self.engine = engine
        self.limit = limit
        self.sample_every = sample_every
        self.sample_series = sample_series
        self.barrier_wait = 0.0
        engine._limit = limit
        if record_events:
            engine._events = []

    def setup(self) -> None:
        eng = self.engine
        eng.injection.setup(eng)
        if not eng._mirror_injection:
            eng.localize_static_injection()

    def phase_a(self) -> tuple:
        eng = self.engine
        cycle = eng.cycle
        if self.sample_every and cycle % self.sample_every == 0:
            eng.sample_probe(cycle, self.sample_series)
        eng.phase_node(cycle)
        return eng.collect()

    def phase_b(self, reply: tuple) -> str:
        eng = self.engine
        cycle = eng.cycle
        eng.apply(reply)
        eng.phase_link(cycle)
        eng.cycle += 1
        # Remote link-phase progress reaches this shard one barrier
        # late, hence the +1 slack over the serial threshold.
        if (
            eng.active > 0
            and eng.cycle - eng._last_progress > eng.stall_limit + 1
        ):
            raise DeadlockError(
                f"no progress for {eng.stall_limit} cycles at cycle "
                f"{eng.cycle} with {eng.active} active packets "
                f"({eng.algorithm.name})"
            )
        if eng.injection.finished(eng, eng.cycle - 1):
            return "done"
        if eng.cycle >= self.limit:
            raise CycleLimitExceeded(_cycle_limit_message(eng))
        return "run"

    def run_with(self, exchange) -> dict:
        """Full lockstep loop against a barrier ``exchange`` callable."""
        self.setup()
        while True:
            payload = self.phase_a()
            reply = exchange(self.engine.cycle, payload)
            if self.phase_b(reply) == "done":
                return self.shard_result()

    def shard_result(self) -> dict:
        eng = self.engine
        model = eng.injection
        # The serial run consumes one uid per Message the model
        # constructs; the parent advances its own counter by this much
        # so a follow-up run continues the same uid stream.
        uids_consumed = (
            model.total
            if isinstance(model, StaticInjection)
            else eng.injected_count
        )
        occupancy = None
        if eng.collect_occupancy:
            occupancy = {
                "mean": eng.occupancy_mean(),
                "peak": eng._occupancy_peaks(),
            }
        return {
            "shard": eng.shard_id,
            "cycles": eng.cycle,
            "injected": eng.injected_count,
            "delivered": eng.delivered_count,
            "active": eng.active,
            "attempts": getattr(model, "attempts", 0),
            "successes": getattr(model, "successes", 0),
            "uids_consumed": uids_consumed,
            "latency": eng._lat_log,
            "events": (
                eng._materialize_events()
                if eng._events is not None
                else None
            ),
            "hist_counts": eng._hist_counts,
            "series": eng._shard_series,
            "last_active_sample": eng._last_active_sample,
            "occupancy": occupancy,
            "local_nodes": int(eng._local_nodes.size),
            "local_injected": eng.local_injected_total,
            "local_delivered": eng.local_delivered_total,
            "boundary_sent": eng.boundary_sent_total,
            "boundary_recv": eng.boundary_recv_total,
            "barrier_wait": self.barrier_wait,
        }


# ======================================================================
# Worker process entry point
# ======================================================================
#: Exception classes a worker may legitimately re-raise in the parent.
_WORKER_EXCEPTIONS = {
    "DeadlockError": DeadlockError,
    "CycleLimitExceeded": CycleLimitExceeded,
    "EngineCapabilityError": EngineCapabilityError,
    "ValueError": ValueError,
    "RuntimeError": RuntimeError,
    "KeyError": KeyError,
}


def _worker_entry(conn, spec: dict) -> None:
    try:
        set_message_id_watermark(spec["uid_watermark"])
        algorithm = spec["algorithm"]
        tables = spec["tables"]
        if tables is None:
            # Spawn start method: the kernelized tables may not pickle,
            # so each worker rebuilds them (deterministic structure).
            tables = RoutingTables(algorithm)
        engine = _ShardEngine(
            algorithm,
            spec["injection"],
            spec["shard_id"],
            spec["partition"],
            spec["mirror_injection"],
            tables=tables,
            **spec["engine_kwargs"],
        )
        runner = _ShardRunner(
            engine,
            spec["limit"],
            spec["record_events"],
            spec["sample_every"],
            spec["sample_series"],
        )

        def exchange(cycle: int, payload: tuple) -> tuple:
            conn.send(("barrier", cycle, payload))
            t0 = time.perf_counter()
            msg = conn.recv()
            runner.barrier_wait += time.perf_counter() - t0
            if msg[0] == "abort":
                raise _Aborted()
            return msg[1]

        conn.send(("done", runner.run_with(exchange)))
    except _Aborted:
        pass
    except BaseException as exc:
        try:
            conn.send(("error", type(exc).__name__, str(exc)))
        except Exception:
            pass
    finally:
        conn.close()


# ======================================================================
# The public engine
# ======================================================================
class ShardedSimulator:
    """Sharded multi-process drop-in for :class:`VectorSimulator` runs.

    Same constructor contract as the vector engine plus the sharding
    knobs.  ``shards=None`` resolves through :func:`shard_count`
    (``REPRO_SHARDS``, else min(cores, 4)); ``inline=True`` runs the
    shard engines lockstep inside this process — the full barrier
    protocol without process isolation, used by the identity tests and
    automatically when only one shard is requested.

    The run's results are merged from the shard workers and are
    byte-identical to a serial run at equal seeds (`docs/SHARDING.md`).
    """

    def __init__(
        self,
        algorithm: RoutingAlgorithm,
        injection: InjectionModel,
        shards: int | None = None,
        partition: TopologyPartition | None = None,
        inline: bool = False,
        central_capacity: int = 5,
        stall_limit: int = 1000,
        trace: bool = False,
        collect_occupancy: bool = False,
        occupancy_sample_every: int = 1,
        policy: str = "paper",
        service: str = "fifo",
        tables: RoutingTables | None = None,
    ):
        if trace:
            raise EngineCapabilityError(
                "the sharded engine does not record per-hop traces; use "
                "engine='reference' or engine='compiled' "
                "(see docs/ARCHITECTURE.md)"
            )
        if policy not in ("paper", "rotating"):
            raise ValueError("policy must be 'paper' or 'rotating'")
        if service not in ("fifo", "lifo"):
            raise ValueError("service must be 'fifo' or 'lifo'")
        self.algorithm = algorithm
        self.topology = algorithm.topology
        self.injection = injection
        self.collect_occupancy = collect_occupancy
        self.tables = (
            tables if tables is not None else RoutingTables(algorithm)
        )
        if self.tables.algorithm is not algorithm:
            raise ValueError("tables were built for a different algorithm")
        if partition is None:
            partition = partition_topology(
                self.topology, shard_count(shards)
            )
        self.partition = partition
        self.n_shards = partition.n_shards
        self.inline = inline or self.n_shards == 1
        self._mirror_injection = type(injection) is not StaticInjection
        self._engine_kwargs = dict(
            central_capacity=central_capacity,
            stall_limit=stall_limit,
            collect_occupancy=collect_occupancy,
            occupancy_sample_every=occupancy_sample_every,
            policy=policy,
            service=service,
        )
        # Mirror the vector engine's public surface so
        # TelemetryProbe.attach and result assembly work unchanged.
        self.nodes = self.tables.nodes
        self.link_classes = self.tables.link_classes
        self.dead_nodes: frozenset = frozenset()
        self.blocked_links: frozenset = frozenset()
        self._events = None
        self._probe = None
        self.cycle = 0
        self.injected_count = 0
        self.delivered_count = 0
        self.active = 0
        self.latency = LatencyStats()
        self._limit = 0
        self.hub_stats: dict | None = None

    # ------------------------------------------------------------------
    def add_observer(self, observer) -> None:
        """Accept a telemetry probe; reject everything else loudly."""
        from ..telemetry.probe import TelemetryProbe

        if isinstance(observer, TelemetryProbe):
            self._probe = observer
            return
        raise EngineCapabilityError(
            f"the sharded engine has no generic observer loop and cannot "
            f"attach {type(observer).__name__}; fault injectors and "
            "watchdogs need engine='reference' or engine='compiled' "
            "(see docs/ARCHITECTURE.md)"
        )

    # ------------------------------------------------------------------
    def run(self, max_cycles: int | None = None) -> SimulationResult:
        limit = max_cycles if max_cycles is not None else 10_000_000
        self._limit = limit
        if limit <= 0:
            raise CycleLimitExceeded(_cycle_limit_message(self))
        probe = self._probe
        probe_on = probe is not None and probe.enabled
        record_events = probe_on
        sample_every = probe.occupancy_every if probe_on else 0
        sample_series = probe_on and probe.series_enabled
        self._uid_watermark = message_id_watermark()
        if self.inline:
            results = self._run_inline(
                limit, record_events, sample_every, sample_series
            )
        else:
            results = self._run_processes(
                limit, record_events, sample_every, sample_series
            )
        return self._finalize(results)

    # ------------------------------------------------------------------
    def _make_engine(self, shard_id: int, injection) -> _ShardEngine:
        return _ShardEngine(
            self.algorithm,
            injection,
            shard_id,
            self.partition,
            self._mirror_injection,
            tables=self.tables,
            **self._engine_kwargs,
        )

    def _run_inline(
        self,
        limit: int,
        record_events: bool,
        sample_every: int,
        sample_series: bool,
    ) -> list[dict]:
        import copy

        k = self.n_shards
        # Every shard replays the injection model against its own
        # replica (own RNG state) and the shared global uid stream —
        # the counter is rewound to the round's watermark before each
        # replica so all replicas draw the same uids.
        runners = []
        for i in range(k):
            model = (
                self.injection
                if i == 0
                else copy.deepcopy(self.injection)
            )
            runners.append(
                _ShardRunner(
                    self._make_engine(i, model),
                    limit,
                    record_events,
                    sample_every,
                    sample_series,
                )
            )
        hub = _BarrierHub(k)
        mark = message_id_watermark()
        for runner in runners:
            set_message_id_watermark(mark)
            runner.setup()
        while True:
            mark = message_id_watermark()
            payloads = []
            for runner in runners:
                set_message_id_watermark(mark)
                payloads.append(runner.phase_a())
            replies = hub.route(payloads)
            statuses = [
                runner.phase_b(reply)
                for runner, reply in zip(runners, replies)
            ]
            if statuses[0] == "done":
                assert all(s == "done" for s in statuses)
                self.hub_stats = {
                    "boundary_messages": hub.boundary_messages
                }
                return [runner.shard_result() for runner in runners]

    def _run_processes(
        self,
        limit: int,
        record_events: bool,
        sample_every: int,
        sample_series: bool,
    ) -> list[dict]:
        method = (
            "fork"
            if "fork" in mp.get_all_start_methods()
            else "spawn"
        )
        ctx = mp.get_context(method)
        spec_base = dict(
            algorithm=self.algorithm,
            injection=self.injection,
            partition=self.partition,
            mirror_injection=self._mirror_injection,
            engine_kwargs=self._engine_kwargs,
            limit=limit,
            record_events=record_events,
            sample_every=sample_every,
            sample_series=sample_series,
            uid_watermark=self._uid_watermark,
            # Fork shares the parent's tables copy-on-write; spawn
            # pickles the spec, so the (possibly unpicklable) kernel
            # tables are rebuilt worker-side instead.
            tables=self.tables if method == "fork" else None,
        )
        conns = []
        procs = []
        for i in range(self.n_shards):
            parent_conn, child_conn = ctx.Pipe()
            spec = dict(spec_base, shard_id=i)
            proc = ctx.Process(
                target=_worker_entry, args=(child_conn, spec), daemon=True
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        hub = _BarrierHub(self.n_shards)
        try:
            while True:
                msgs = []
                for conn in conns:
                    try:
                        msgs.append(conn.recv())
                    except EOFError:
                        msgs.append(
                            (
                                "error",
                                "RuntimeError",
                                "shard worker exited unexpectedly",
                            )
                        )
                kinds = {m[0] for m in msgs}
                if kinds == {"barrier"}:
                    cycles = {m[1] for m in msgs}
                    if len(cycles) != 1:
                        raise RuntimeError(
                            f"shard barrier desync: cycles {sorted(cycles)}"
                        )
                    replies = hub.route([m[2] for m in msgs])
                    for conn, reply in zip(conns, replies):
                        conn.send(("barrier", reply))
                    continue
                if "error" in kinds:
                    for conn, m in zip(conns, msgs):
                        if m[0] == "barrier":
                            try:
                                conn.send(("abort", "peer shard failed"))
                            except (BrokenPipeError, OSError):
                                pass
                    err = next(m for m in msgs if m[0] == "error")
                    raise _WORKER_EXCEPTIONS.get(err[1], RuntimeError)(
                        err[2]
                    )
                self.hub_stats = {
                    "boundary_messages": hub.boundary_messages
                }
                return [m[1] for m in msgs]
        finally:
            for conn in conns:
                conn.close()
            for proc in procs:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - crash cleanup
                    proc.terminate()
                    proc.join(timeout=10)

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def _finalize(self, results: list[dict]) -> SimulationResult:
        results.sort(key=lambda r: r["shard"])
        first = results[0]
        # Converged global counters: identical on every shard.
        self.cycle = first["cycles"]
        self.injected_count = first["injected"]
        self.delivered_count = first["delivered"]
        self.active = first["active"]
        # Keep the parent's uid stream where a serial run would have
        # left it (the workers' consumption never touched this
        # process's counter under fork).
        set_message_id_watermark(
            self._uid_watermark + first["uids_consumed"]
        )
        merged_lat = sorted(
            (entry for r in results for entry in r["latency"])
        )
        self.latency = LatencyStats(
            values=[latency for _, _, latency in merged_lat]
        )
        occupancy: dict = {}
        if self.collect_occupancy:
            mean: dict = {}
            peak: dict = {}
            for r in results:
                mean.update(r["occupancy"]["mean"])
                peak.update(r["occupancy"]["peak"])
            occupancy = {"mean": mean, "peak": peak}
        pattern = getattr(self.injection, "pattern", None)
        result = SimulationResult(
            algorithm=self.algorithm.name,
            topology=self.topology.name,
            pattern=pattern.name if pattern else "?",
            injection=self.injection.name,
            cycles=self.cycle,
            injected=self.injected_count,
            delivered=self.delivered_count,
            latency=self.latency,
            attempts=first["attempts"],
            successes=first["successes"],
            undelivered=self.active,
            occupancy=occupancy,
        )
        self._flush_sharded_telemetry(results, result)
        return result

    def _flush_sharded_telemetry(
        self, results: list[dict], result: SimulationResult
    ) -> None:
        merged = None
        if results[0]["events"] is not None:
            merged = list(
                heapq.merge(
                    *(r["events"] for r in results),
                    key=lambda ev: (ev[1], ev[2]),
                )
            )
        sink = self._events
        if sink is not None and merged is not None:
            extend = getattr(sink, "extend", None)
            if extend is not None:
                extend(merged)
            else:
                for ev in merged:
                    sink.append(ev)
        probe = self._probe
        if probe is None:
            return
        if probe.enabled:
            hist = probe._occ_hist
            if hist is not None:
                size = max(r["hist_counts"].size for r in results)
                if size:
                    total = np.zeros(size, dtype=np.int64)
                    for r in results:
                        counts = r["hist_counts"]
                        total[: counts.size] += counts
                    for occ, count in enumerate(total.tolist()):
                        if count:
                            hist.observe_many(occ, count)
            if (
                probe._inflight is not None
                and results[0]["last_active_sample"] is not None
            ):
                probe._inflight.set(results[0]["last_active_sample"])
            if probe.series_enabled and results[0]["series"]:
                self._flush_series(results, probe)
            self._set_shard_gauges(results, probe.registry)
        hook = getattr(probe, "on_run_end", None)
        if hook is not None:
            hook(self, result)

    def _flush_series(self, results: list[dict], probe) -> None:
        t = self.tables
        owner = np.asarray(self.partition.owner, dtype=np.int64)
        qowner = owner[np.asarray(t.queue_node, dtype=np.int64)]
        shard_qids = [
            np.flatnonzero(qowner == r["shard"]) for r in results
        ]
        labels = [
            (t.nodes[t.queue_node[q]], t.queue_kind[q])
            for q in range(t.n_queues)
        ]
        series = probe.occupancy_series
        full = np.zeros(t.n_queues, dtype=np.int64)
        for idx in range(len(results[0]["series"])):
            cycle = results[0]["series"][idx][0]
            for r, qids in zip(results, shard_qids):
                sample_cycle, lens = r["series"][idx]
                if sample_cycle != cycle:
                    raise RuntimeError("shard series desync")
                full[qids] = lens
            for (u, kind), occ in zip(labels, full.tolist()):
                series.append((cycle, u, kind, occ))

    def _set_shard_gauges(self, results: list[dict], registry) -> None:
        registry.gauge(
            "repro_shard_count",
            help="Shards the last sharded run was partitioned into",
        ).set(self.n_shards)
        for r in results:
            labels = {"shard": str(r["shard"])}
            registry.gauge(
                "repro_shard_nodes",
                labels=labels,
                help="Nodes owned by this shard",
            ).set(r["local_nodes"])
            registry.gauge(
                "repro_shard_boundary_messages",
                labels=labels,
                help="Boundary-link packets this shard sent to peers",
            ).set(r["boundary_sent"])
            registry.gauge(
                "repro_shard_barrier_wait_seconds",
                labels=labels,
                help="Worker time spent waiting at the per-cycle barrier",
            ).set(r["barrier_wait"])
            registry.gauge(
                "repro_shard_packets_injected",
                labels=labels,
                help="Packets injected at this shard's nodes",
            ).set(r["local_injected"])
            registry.gauge(
                "repro_shard_packets_delivered",
                labels=labels,
                help="Packets delivered at this shard's nodes",
            ).set(r["local_delivered"])
            counts = r["hist_counts"]
            samples = int(counts.sum())
            mean_occ = (
                float(
                    (counts * np.arange(counts.size)).sum() / samples
                )
                if samples
                else 0.0
            )
            registry.gauge(
                "repro_shard_mean_occupancy",
                labels=labels,
                help="Mean sampled occupancy of this shard's queues",
            ).set(mean_occ)
