"""Cycle-accurate simulation: engine, injection models, traffic, metrics."""

from .compiled import CompiledPacketSimulator
from .engine import (
    CycleLimitExceeded,
    DeadlockError,
    PacketSimulator,
    SimulationHalt,
)
from .fastcube import FastHypercubeSimulator
from .injection import DynamicInjection, InjectionModel, StaticInjection
from .plans import CentralPlan, RoutingPlanCache
from .tables import EngineCapabilityError, RoutingTables
from .vector import VectorSimulator
from .metrics import LatencyStats, SimulationResult
from .partition import TopologyPartition, partition_topology
from .rng import make_rng
from .sharded import ShardedSimulator, shard_count
from .trace import CompiledTracingSimulator, TraceEvent, TracingSimulator
from .traffic import (
    BitReversalTraffic,
    HotspotTraffic,
    ComplementTraffic,
    LeveledPermutationTraffic,
    MeshTransposeTraffic,
    PermutationTraffic,
    RandomTraffic,
    ShufflePermutationTraffic,
    TornadoTraffic,
    TrafficPattern,
    TransposeTraffic,
    hypercube_pattern,
    transpose_address,
)

__all__ = [
    "PacketSimulator",
    "CompiledPacketSimulator",
    "FastHypercubeSimulator",
    "VectorSimulator",
    "ShardedSimulator",
    "shard_count",
    "TopologyPartition",
    "partition_topology",
    "RoutingTables",
    "EngineCapabilityError",
    "RoutingPlanCache",
    "CentralPlan",
    "DeadlockError",
    "CycleLimitExceeded",
    "SimulationHalt",
    "InjectionModel",
    "StaticInjection",
    "DynamicInjection",
    "LatencyStats",
    "SimulationResult",
    "make_rng",
    "TracingSimulator",
    "CompiledTracingSimulator",
    "TraceEvent",
    "TrafficPattern",
    "RandomTraffic",
    "PermutationTraffic",
    "ComplementTraffic",
    "TransposeTraffic",
    "LeveledPermutationTraffic",
    "BitReversalTraffic",
    "HotspotTraffic",
    "ShufflePermutationTraffic",
    "MeshTransposeTraffic",
    "TornadoTraffic",
    "hypercube_pattern",
    "transpose_address",
]
