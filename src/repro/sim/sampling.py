"""Seeded arrival/destination sampling shared by injection models.

Two call sites need the same primitive — "which nodes fire a packet
this cycle, and to where": the closed-loop
:class:`~repro.sim.injection.DynamicInjection` model (paper, Section 7)
and the open-loop workload driver of the streaming traffic service
(:mod:`repro.serve.workloads`).  Both must consume the RNG in exactly
the same order, because byte-identical replays across engines hinge on
identical draw sequences; keeping the logic in one place makes that a
structural property instead of a copy-paste invariant.

Also here: the user-count distributions of the serving scenarios
(Poisson / normal / log-normal), parameterized by *mean* (and variance
where it applies) so a load shape can scale the mean without changing
the distribution family.
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence

import numpy as np

from .traffic import TrafficPattern

#: Distribution names accepted for user-count sampling.
USER_DISTRIBUTIONS = ("poisson", "normal", "log_normal")


def bernoulli_fires(
    nodes: Sequence[Hashable], rate: float, rng: np.random.Generator
) -> Sequence[Hashable]:
    """Nodes that attempt an injection this cycle (Bernoulli(rate) each).

    ``rate >= 1`` short-circuits to *every* node without consuming any
    RNG, matching the saturated fast path the paper's ``lambda = 1``
    runs always took; otherwise exactly one ``rng.random(len(nodes))``
    vector is drawn, preserving :class:`DynamicInjection`'s historical
    draw sequence byte for byte.
    """
    if rate >= 1.0:
        return nodes
    if rate <= 0.0:
        return ()
    draws = rng.random(len(nodes))
    return [u for u, x in zip(nodes, draws) if x < rate]


def draw_arrivals(
    nodes: Sequence[Hashable],
    rate: float,
    pattern: TrafficPattern,
    rng: np.random.Generator,
) -> list[tuple[Hashable, Hashable]]:
    """One cycle of seeded ``(source, destination)`` arrival offers.

    Destinations are drawn in firing-node order (one ``pattern.draw``
    per firing node, after the single Bernoulli vector), which is the
    exact RNG consumption order of the closed-loop model.  Fixed points
    (``dst == src``) are filtered out here — patterns return them to
    mean "this node stays silent".
    """
    offers = []
    for u in bernoulli_fires(nodes, rate, rng):
        dst = pattern.draw(u, rng)
        if dst != u:
            offers.append((u, dst))
    return offers


def draw_user_count(
    distribution: str,
    mean: float,
    variance: float | None,
    rng: np.random.Generator,
) -> int:
    """One sample of an active-user count (non-negative integer).

    ``poisson`` ignores ``variance`` (it equals the mean by
    definition); ``normal`` draws N(mean, variance) clipped at zero;
    ``log_normal`` solves the underlying ``mu``/``sigma`` so the
    *arithmetic* mean and variance of the samples match the configured
    ones.  ``mean <= 0`` yields 0 without consuming RNG only when the
    distribution could never produce a positive count.
    """
    if distribution == "poisson":
        return int(rng.poisson(max(0.0, mean)))
    if variance is None:
        variance = mean
    if distribution == "normal":
        sigma = math.sqrt(max(0.0, variance))
        return max(0, int(round(rng.normal(mean, sigma))))
    if distribution == "log_normal":
        if mean <= 0.0:
            return 0
        sigma2 = math.log(1.0 + max(0.0, variance) / (mean * mean))
        mu = math.log(mean) - sigma2 / 2.0
        return max(0, int(round(rng.lognormal(mu, math.sqrt(sigma2)))))
    raise ValueError(
        f"unknown user-count distribution {distribution!r}; expected one "
        f"of {USER_DISTRIBUTIONS}"
    )
