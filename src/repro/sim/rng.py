"""Seeded random-number helpers.

All stochastic components (traffic patterns, dynamic injection) draw
from ``numpy.random.Generator`` instances derived from a single
experiment seed, so every simulation is exactly reproducible.
"""

from __future__ import annotations

import zlib

import numpy as np


def make_rng(seed: int | None, stream: str = "") -> np.random.Generator:
    """A generator for a named stream derived from ``seed``.

    Distinct ``stream`` labels yield independent generators for the
    same experiment seed (CRC-mixed seed sequence).
    """
    if seed is None:
        # Explicit opt-out: seed=None requests OS entropy.
        return np.random.default_rng()  # lint: ok
    mix = zlib.crc32(stream.encode("utf-8"))
    return np.random.default_rng(np.random.SeedSequence([int(seed), mix]))
