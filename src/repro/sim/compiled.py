"""Compiled generic engine: plan-cache-backed :class:`PacketSimulator`.

:class:`CompiledPacketSimulator` runs *any*
:class:`~repro.core.routing_function.RoutingAlgorithm` — mesh, torus,
shuffle-exchange, CCC, Beneš, user-defined — with the reference
engine's exact Section-7.1 semantics, but consults a
:class:`~repro.sim.plans.RoutingPlanCache` instead of re-deriving
``static_hops`` / ``dynamic_hops`` / ``buffer_class`` / ``update_state``
per message per cycle.  On top of the plan cache it applies four
allocation-free rewrites of the inner loop:

* central-queue pops are deferred: moves mark ``(kind, position)`` and
  each touched queue is compacted once at the end of the node cycle,
  replacing the reference engine's per-move ``list.remove`` scans
  (capacity checks read ``len(queue) + pending_removals``);
* buffer assignment runs message-major: each entry, in service order,
  claims the lowest-rank free buffer among its own (slot-sorted)
  candidates.  Greedy matching with globally aligned preference orders
  is order-insensitive, so this yields the same assignment as the
  reference engine's buffer-major loop while touching only
  ``O(entries x degree)`` candidate pairs;
* each message caches its resolved plan (``Message.plan_sig`` /
  ``Message.plan``): a packet parked in the same queue with the same
  state across cycles — the common case under load — skips even the
  memo-dict hash;
* per-``(node, kind)`` :class:`QueueId` objects and per-link class
  rotation orders are interned at construction instead of being
  rebuilt every cycle;
* the input-side rotation walks indices instead of materializing a
  rotated source list per node per cycle.

Equivalence is not approximate: iteration orders (buffer fill low-to-
high link index, FIFO/LIFO entry ranks, ``paper``/``rotating`` buffer
policies, rotating input fairness, per-link class rotation) match the
reference engine statement for statement, and the same injection-model
objects drive both, so a run with the same seed produces identical
per-packet latencies on every topology
(``tests/test_sim_compiled.py`` cross-validates this, including the
LIFO and rotating-policy variants).

**Identity guarantees and limitations** (engine matrix:
``docs/ARCHITECTURE.md``): packet-for-packet identical to the
reference engine on every topology, including byte-identical canonical
telemetry event logs, with the *full* feature surface — fault
observers, telemetry probes, route tracing, service/policy variants.
The only behavioral caveat is performance-shaped: unhashable routing
states skip the plan cache and fall back to direct evaluation (still
identical, merely slower).  This is the engine ``auto`` selects for
everything the specialized fast engine cannot run.
"""

from __future__ import annotations

from typing import Hashable

from ..core.routing_function import RoutingAlgorithm
from ..core.queues import QueueId
from .engine import PacketSimulator
from .injection import InjectionModel
from .plans import DELIVER_STEP, SELF_STEP, RoutingPlanCache


class CompiledPacketSimulator(PacketSimulator):
    """Drop-in replacement for :class:`PacketSimulator` (any algorithm)."""

    def __init__(
        self,
        algorithm: RoutingAlgorithm,
        injection: InjectionModel,
        plan_cache: RoutingPlanCache | None = None,
        **kwargs,
    ):
        super().__init__(algorithm, injection, **kwargs)
        #: Lazily-populated plan memo; may be shared across simulators
        #: of the same algorithm instance (e.g. an offered-load sweep).
        self.plan_cache = (
            plan_cache
            if plan_cache is not None
            else RoutingPlanCache(algorithm)
        )
        if self.plan_cache.algorithm is not algorithm:
            raise ValueError("plan_cache was built for a different algorithm")

        # Interned central-queue ids, aligned with self.kinds[u].
        self._qids: dict[Hashable, tuple[QueueId, ...]] = {
            u: tuple(QueueId(u, k) for k in self.kinds[u]) for u in self.nodes
        }
        # Out-buffer slot layout: (neighbor, class) -> position in
        # self.out_keys[u].  Lets fill plans address buffers by integer
        # slot instead of hashing (v, cls) per buffer per cycle.
        self._slot_maps: dict[Hashable, dict[tuple, int]] = {
            u: {(v, cls): j for j, (v, cls, _key) in enumerate(keys)}
            for u, keys in self.out_keys.items()
        }
        # Out-buffer keys per node, aligned with self.out_keys[u]; the
        # fill loop addresses out_buf through these by slot index.
        self._out_bufkeys: dict[Hashable, tuple[tuple, ...]] = {
            u: tuple(key for (_v, _cls, key) in keys)
            for u, keys in self.out_keys.items()
        }
        # Engine-level fill-plan memo: the shared CentralPlan with its
        # external candidates re-keyed to this engine's slot indices.
        # (queue, dst, state) -> (ext, internal) with
        # ext = ((slot, next_queue, new_state), ...) sorted by slot.
        self._fill_memo: dict[tuple, tuple] = {}
        # Per-link buffer keys, pre-rotated: _link_rot[i][r] is the key
        # order the reference engine would use at cycle ≡ r (mod #classes).
        self._link_rot: list[tuple[tuple[tuple, ...], ...]] = []
        for (u, v), classes in self.link_classes.items():
            base = tuple((u, v, cls) for cls in classes)
            self._link_rot.append(
                tuple(tuple(base[r:] + base[:r]) for r in range(len(base)))
            )

    def _build_fill_plan(self, key: tuple) -> tuple:
        """Build (and memoize, if hashable) one slot-indexed fill plan."""
        q_id, dst, state = key
        shared = self.plan_cache.central_plan(q_id, dst, state)
        slot_map = self._slot_maps[q_id.node]
        ext = []
        for slot, (q2, new_state, dyn) in shared.external.items():
            j = slot_map.get(slot)
            # Candidates without a physical buffer are unreachable in
            # the reference engine too; drop them here.
            if j is not None:
                ext.append((j, q2, new_state, slot[1], dyn))
        # Slot-ascending order lets the message-major fill loop take
        # the first free candidate under the "paper" policy (and scan
        # for the min rotated rank under "rotating") without sorting.
        ext.sort(key=lambda cand: cand[0])
        plan = (tuple(ext), shared.internal)
        try:
            self._fill_memo[key] = plan
        except TypeError:  # unhashable state: rebuild per use
            pass
        return plan

    # -- node cycle, part 1: queues -> output buffers + internal moves ----
    def _node_fill_output_buffers(self, u: Hashable) -> None:
        queues = self.central[u]
        qids = self._qids[u]

        # Live views of the non-empty queues, kind-index ascending.  No
        # mutation happens during the scan below (pops are deferred,
        # internal appends run in phase 2), so indexing these live
        # equals the reference engine's entry snapshot.
        active = []
        maxlen = 0
        for ki, kind in enumerate(self.kinds[u]):
            q = queues[kind]
            if q:
                active.append((qids[ki], kind, q))
                if len(q) > maxlen:
                    maxlen = len(q)
        if not active:
            return

        out_buf = self.out_buf
        bufkeys = self._out_bufkeys[u]
        n_keys = len(bufkeys)
        start = self.cycle % n_keys if self.policy == "rotating" else 0
        taken = bytearray(n_keys)
        fill_memo = self._fill_memo
        trace = self.trace
        cycle = self.cycle
        events = self._events
        #: kind -> snapshot positions popped this cycle (compacted below).
        removed: dict[str, list[int]] = {}
        #: kind -> pending removal count; len(queue) + delta is the
        #: effective occupancy the reference engine would observe.
        delta: dict[str, int] = {}
        #: unmoved entries that carry internal steps, in service order.
        pending: list[tuple] = []

        # Message-major assignment, walking entries directly in service
        # order: positions ascending (FIFO) / descending (LIFO), kind
        # index ascending as the tie-break.  Each entry claims the free
        # un-taken buffer its plan ranks first; by the aligned-greedy
        # equivalence this reproduces the reference engine's
        # buffer-major matching exactly.
        positions = (
            range(maxlen)
            if self.service == "fifo"
            else range(maxlen - 1, -1, -1)
        )
        for pos in positions:
            for q_id, kind, q in active:
                if pos >= len(q):
                    continue
                msg = q[pos]
                sig = (q_id, msg.state)
                if msg.plan_sig == sig:
                    ext, internal = msg.plan
                else:
                    key = (q_id, msg.dst, msg.state)
                    try:
                        plan = fill_memo.get(key)
                    except TypeError:
                        plan = self._build_fill_plan(key)
                    else:
                        if plan is None:
                            plan = self._build_fill_plan(key)
                    msg.plan_sig = sig
                    msg.plan = plan
                    ext, internal = plan
                chosen = None
                if ext:
                    if start:
                        # "rotating": rank is the offset from the
                        # cycle's starting slot; take the minimum.
                        best = n_keys
                        for cand in ext:
                            j = cand[0]
                            if taken[j] or out_buf[bufkeys[j]] is not None:
                                continue
                            r = j - start
                            if r < 0:
                                r += n_keys
                            if r < best:
                                best = r
                                chosen = cand
                    else:
                        # "paper": candidates are slot-ascending, so
                        # the first free one is the lowest-rank one.
                        for cand in ext:
                            j = cand[0]
                            if not taken[j] and out_buf[bufkeys[j]] is None:
                                chosen = cand
                                break
                if chosen is not None:
                    j, q2, new_state, cls, dyn = chosen
                    taken[j] = 1
                    removed.setdefault(kind, []).append(pos)
                    delta[kind] = delta.get(kind, 0) - 1
                    msg.state = new_state
                    msg.target = q2
                    if trace:
                        msg.record_hop(q2)
                    out_buf[bufkeys[j]] = msg
                    self._last_progress = cycle
                    if events is not None:
                        events.append(
                            ("hop", cycle, msg.uid, u, q2.node, cls, dyn,
                             q2.kind)
                        )
                elif internal:
                    pending.append((pos, kind, msg, internal))

        # Internal moves (phase change, delivery, self-state updates).
        cap = self.central_capacity
        for pos, kind, msg, internal in pending:
            for action, q2, new_state in internal:
                if action == DELIVER_STEP:
                    removed.setdefault(kind, []).append(pos)
                    delta[kind] = delta.get(kind, 0) - 1
                    self._deliver(msg)
                    break
                if action == SELF_STEP:
                    # Degenerate self-hop: state advances in place.
                    msg.state = new_state
                    if trace:
                        msg.record_hop(q2)
                    self._last_progress = cycle
                    if events is not None:
                        events.append(
                            ("enqueue", cycle, msg.uid, u, q2.kind)
                        )
                    break
                # MOVE_STEP: sibling central queue, capacity permitting.
                k2 = q2.kind
                if len(queues[k2]) + delta.get(k2, 0) < cap:
                    removed.setdefault(kind, []).append(pos)
                    delta[kind] = delta.get(kind, 0) - 1
                    msg.state = new_state
                    if trace:
                        msg.record_hop(q2)
                    queues[k2].append(msg)
                    self._last_progress = cycle
                    if events is not None:
                        events.append(
                            ("enqueue", cycle, msg.uid, u, q2.kind)
                        )
                    break

        # One compaction per touched queue replaces the reference
        # engine's per-move list.remove scans.  Same-cycle appends sit
        # past the snapshot positions, so they always survive.
        for kind, poplist in removed.items():
            q = queues[kind]
            drop = set(poplist)
            queues[kind] = [m for i, m in enumerate(q) if i not in drop]

    # -- node cycle, part 2: input + injection buffers -> queues ----------
    def _node_read_inputs(self, u: Hashable) -> None:
        queues = self.central[u]
        cap = self.central_capacity
        in_keys = self.in_keys[u]
        n_in = len(in_keys)
        total = n_in + 1  # + the injection buffer
        start = self.cycle % total
        in_buf = self.in_buf
        cache = self.plan_cache
        entry_memo = cache.entry_memo
        trace = self.trace
        events = self._events
        for i in range(total):
            idx = (start + i) % total
            if idx == n_in:  # the injection buffer
                msg = self.inj[u]
                if msg is None:
                    continue
                for kind, q2, st in cache.injection_plan(
                    u, msg.dst, msg.state
                ):
                    if len(queues[kind]) < cap:
                        msg.state = st
                        if trace:
                            msg.record_hop(q2)
                        queues[kind].append(msg)
                        self.inj[u] = None
                        self._last_progress = self.cycle
                        if events is not None:
                            events.append(
                                ("enqueue", self.cycle, msg.uid, u, kind)
                            )
                        break
            else:
                src = in_keys[idx]
                msg = in_buf[src]
                if msg is None:
                    continue
                nominal = msg.target
                key = (nominal, msg.dst, msg.state)
                try:
                    resolved = entry_memo.get(key)
                except TypeError:
                    resolved = cache._resolve_entry(*key)
                else:
                    if resolved is None:
                        resolved = cache.entry(*key)
                q2, st = resolved
                if len(queues[q2.kind]) < cap:
                    in_buf[src] = None
                    msg.target = None
                    msg.state = st
                    if trace and q2 != nominal:
                        msg.record_hop(q2)
                    queues[q2.kind].append(msg)
                    self._last_progress = self.cycle
                    if events is not None:
                        events.append(
                            ("enqueue", self.cycle, msg.uid, u, q2.kind)
                        )

    def invalidate_plans(self) -> None:
        """Drop every memoized routing plan (fault-epoch transitions).

        The plan memos are pure functions of ``(queue, dst, state)``
        only while the routing function itself is fixed; a
        :class:`~repro.faults.adapters.FaultAwareRouting` adapter whose
        live fault set just changed invalidates all of them.  Fault
        transitions are rare, so a full rebuild is cheaper than
        epoch-tagging every hot-path key.
        """
        self._fill_memo.clear()
        self.plan_cache = RoutingPlanCache(self.algorithm)
        for u in self.nodes:
            for q in self.central[u].values():
                for msg in q:
                    msg.plan_sig = None
                    msg.plan = None
            msg = self.inj[u]
            if msg is not None:
                msg.plan_sig = None
                msg.plan = None
        for buf in (self.out_buf, self.in_buf):
            for msg in buf.values():
                if msg is not None:
                    msg.plan_sig = None
                    msg.plan = None

    # -- link cycle --------------------------------------------------------
    def _link_cycle(self) -> None:
        cycle = self.cycle
        out_buf = self.out_buf
        in_buf = self.in_buf
        blocked = self.blocked_links
        for rots in self._link_rot:
            if blocked and rots[0][0][:2] in blocked:
                continue  # dead or stalled link: transfers nothing
            keys = rots[cycle % len(rots)] if len(rots) > 1 else rots[0]
            for key in keys:
                msg = out_buf[key]
                if msg is not None and in_buf[key] is None:
                    out_buf[key] = None
                    in_buf[key] = msg
                    self._last_progress = cycle
                    break  # one packet per link direction per cycle
