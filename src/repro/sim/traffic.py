"""Communication patterns (paper, Section 7).

The paper evaluates four patterns on the hypercube:

* **random routing** — every message picks a destination uniformly
  over the other nodes;
* **complement** — destination is the bitwise complement of the
  source address;
* **transpose** — the two halves of the binary address are swapped
  (the middle bit is kept for odd ``n``);
* **leveled permutation** — a random permutation in which every node
  sends to a node of its own level (Hamming weight); cited from
  [FCS90] as adversarial for oblivious minimal routing.

Extra patterns (bit reversal, shuffle, mesh transpose, tornado) extend
the benchmark surface beyond the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable

import numpy as np

from ..topology.base import Topology
from ..topology.hypercube import Hypercube, hamming_weight
from ..topology.mesh import Mesh
from ..topology.torus import Torus


class TrafficPattern(ABC):
    """Destination chooser for injected messages."""

    name: str = "traffic"

    #: True when every node has one fixed destination (a permutation
    #: or partial permutation); such patterns ignore the RNG.
    is_permutation: bool = False

    @abstractmethod
    def draw(self, src: Hashable, rng: np.random.Generator) -> Hashable:
        """Destination for the next message injected at ``src``.

        May return ``src`` itself, which callers interpret as "this
        node does not inject" (used by permutations with fixed points).
        """


class RandomTraffic(TrafficPattern):
    """Uniformly random destinations over ``V - {src}``."""

    name = "random"

    def __init__(self, topology: Topology):
        self.nodes = list(topology.nodes())
        self.index = {u: i for i, u in enumerate(self.nodes)}
        self.n = len(self.nodes)

    def draw(self, src: Hashable, rng: np.random.Generator) -> Hashable:
        # Uniform over V - {src}: draw from n-1 slots and skip src.
        r = int(rng.integers(self.n - 1))
        if r >= self.index[src]:
            r += 1
        return self.nodes[r]


class PermutationTraffic(TrafficPattern):
    """Fixed map ``src -> sigma(src)``; fixed points mean no injection."""

    is_permutation = True

    def __init__(self, mapping: dict[Hashable, Hashable], name: str):
        self.mapping = dict(mapping)
        self.name = name
        targets = list(self.mapping.values())
        if len(set(targets)) != len(targets):
            raise ValueError(f"{name}: mapping is not injective")

    def draw(self, src: Hashable, rng: np.random.Generator) -> Hashable:
        return self.mapping[src]


class ComplementTraffic(PermutationTraffic):
    """Hypercube complement: ``dst = ~src`` (Tables 2, 6, 10)."""

    def __init__(self, topology: Hypercube):
        mask = (1 << topology.n) - 1
        super().__init__(
            {u: u ^ mask for u in topology.nodes()}, name="complement"
        )


def transpose_address(u: int, n: int) -> int:
    """Swap the address halves; odd ``n`` keeps the central bit."""
    h = n // 2
    low = u & ((1 << h) - 1)
    high = u >> (n - h)
    middle = u & (((1 << (n - h)) - 1) ^ ((1 << h) - 1))
    return (low << (n - h)) | middle | high


class TransposeTraffic(PermutationTraffic):
    """Hypercube transpose (Tables 3, 7, 11)."""

    def __init__(self, topology: Hypercube):
        n = topology.n
        super().__init__(
            {u: transpose_address(u, n) for u in topology.nodes()},
            name="transpose",
        )


class LeveledPermutationTraffic(PermutationTraffic):
    """Random permutation preserving the Hamming weight (Tables 4, 8, 12)."""

    def __init__(self, topology: Hypercube, rng: np.random.Generator):
        n = topology.n
        by_level: dict[int, list[int]] = {}
        for u in topology.nodes():
            by_level.setdefault(hamming_weight(u), []).append(u)
        mapping: dict[int, int] = {}
        for level_nodes in by_level.values():
            perm = rng.permutation(len(level_nodes))
            for i, u in enumerate(level_nodes):
                mapping[u] = level_nodes[int(perm[i])]
        super().__init__(mapping, name="leveled")


class BitReversalTraffic(PermutationTraffic):
    """Hypercube bit reversal: address bits read backwards."""

    def __init__(self, topology: Hypercube):
        n = topology.n

        def rev(u: int) -> int:
            return int(format(u, f"0{n}b")[::-1], 2)

        super().__init__({u: rev(u) for u in topology.nodes()}, name="bit-reversal")


class ShufflePermutationTraffic(PermutationTraffic):
    """Hypercube perfect-shuffle permutation: one left rotation."""

    def __init__(self, topology: Hypercube):
        n = topology.n
        mask = (1 << n) - 1

        def rot(u: int) -> int:
            return ((u << 1) | (u >> (n - 1))) & mask

        super().__init__({u: rot(u) for u in topology.nodes()}, name="shuffle-perm")


class MeshTransposeTraffic(PermutationTraffic):
    """Mesh/torus transpose: ``(x, y) -> (y, x)`` (square 2-D only)."""

    def __init__(self, topology: Mesh):
        if topology.k != 2 or topology.shape[0] != topology.shape[1]:
            raise ValueError("mesh transpose needs a square 2-D mesh")
        super().__init__(
            {u: (u[1], u[0]) for u in topology.nodes()}, name="mesh-transpose"
        )


class TornadoTraffic(PermutationTraffic):
    """Torus tornado: shift by just under half the ring in dim 0."""

    def __init__(self, topology: Torus):
        s = topology.shape[0]
        shift = (s - 1) // 2
        super().__init__(
            {
                u: (((u[0] + shift) % s),) + u[1:]
                for u in topology.nodes()
            },
            name="tornado",
        )


class HotspotTraffic(TrafficPattern):
    """Uniform traffic with a fraction directed at one hot node.

    With probability ``fraction`` the destination is ``hotspot``;
    otherwise uniform over the other nodes.  A standard stressor for
    adaptive routers (not in the paper's set, used by the extended
    benchmarks).
    """

    def __init__(
        self, topology: Topology, hotspot: Hashable | None = None,
        fraction: float = 0.2,
    ):
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.nodes = list(topology.nodes())
        self.hotspot = hotspot if hotspot is not None else self.nodes[-1]
        if self.hotspot not in self.nodes:
            raise ValueError(f"hotspot {self.hotspot!r} is not a node")
        self.fraction = fraction
        self.uniform = RandomTraffic(topology)
        self.name = f"hotspot({fraction:.0%})"

    def draw(self, src: Hashable, rng: np.random.Generator) -> Hashable:
        if src != self.hotspot and rng.random() < self.fraction:
            return self.hotspot
        return self.uniform.draw(src, rng)


def hypercube_pattern(
    name: str, topology: Hypercube, rng: np.random.Generator
) -> TrafficPattern:
    """Factory for the paper's four hypercube patterns (plus extras)."""
    if name == "random":
        return RandomTraffic(topology)
    if name == "complement":
        return ComplementTraffic(topology)
    if name == "transpose":
        return TransposeTraffic(topology)
    if name == "leveled":
        return LeveledPermutationTraffic(topology, rng)
    if name == "bit-reversal":
        return BitReversalTraffic(topology)
    if name == "shuffle-perm":
        return ShufflePermutationTraffic(topology)
    raise ValueError(f"unknown hypercube pattern {name!r}")
