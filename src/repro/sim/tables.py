"""Integer routing tables: the vector engine's compilation layer.

:class:`RoutingTables` lowers one
:class:`~repro.core.routing_function.RoutingAlgorithm` — *any*
algorithm, on any topology — onto dense integer identifiers so an
engine can run the paper's node cycle without hashing a single label
object on the hot path:

* nodes are interned ``0..N-1`` in ``topology.nodes()`` order (the
  reference engine's node order);
* central queues get global ids ``0..n_queues-1``, node-major in
  ``central_queue_kinds`` order;
* link buffers get global *slot* ids, node-major and low-to-high
  ``link_index`` within a node, classes in ``buffer_classes`` order —
  so slot-ascending order **is** the reference engine's output-buffer
  fill order, and slot-ascending order per receiving node **is** the
  reference engine's input-buffer rotation order;
* routing states are interned lazily to small ints (states must be
  hashable; :class:`EngineCapabilityError` otherwise — the reference
  and compiled engines remain available for unhashable-state
  algorithms).

On top of the static structure, three lazily-memoized row tables mirror
:class:`~repro.sim.plans.RoutingPlanCache` (which this class wraps, so
the first-wins external-candidate semantics, statics-before-dynamics
order and the forced-phase-switch entry fold are *the same code* the
compiled engine trusts):

* :meth:`central_row` — ``(queue, dst, state) ->`` parallel tuples of
  external candidates (slot / next queue / next state / dynamic flag,
  slot-ascending) plus internal ``(action, queue, state)`` steps;
* :meth:`entry_row` — where a packet nominally heading for a queue
  actually lands after the entry fold;
* :meth:`injection_row` — resolved injection targets in the reference
  engine's ``sorted(targets)`` order.

Rows contain only ints, so the engine's per-message work is integer
compares and array indexing; identity with the reference engine is
established by ``tests/test_sim_vector.py``.
"""

from __future__ import annotations

import time
from typing import Any, Hashable

import numpy as np

from ..core.queues import QueueId
from ..core.routing_function import RoutingAlgorithm
from .plans import DELIVER_STEP, SELF_STEP, RoutingPlanCache

__all__ = ["EngineCapabilityError", "RoutingTables"]

#: Ceiling on the dense ``(queue, dst)`` row-id index (cells); larger
#: networks fall back to a dict-keyed row-id map.
_DENSE_ROWID_CELLS = 16_777_216


class EngineCapabilityError(TypeError):
    """A requested engine cannot run the requested configuration.

    Raised with a message that names the limitation and the engines
    that do support the configuration (see the engine matrix in
    ``docs/ARCHITECTURE.md``).
    """


class RoutingTables:
    """Dense integer lowering of one routing algorithm + topology.

    One instance may be shared by several
    :class:`~repro.sim.vector.VectorSimulator` objects built around the
    *same* algorithm instance (rows are pure functions of
    ``(queue, dst, state)``), mirroring how
    :class:`~repro.sim.plans.RoutingPlanCache` is shared by compiled
    simulators.
    """

    def __init__(self, algorithm: RoutingAlgorithm, use_kernel: bool = True):
        t_start = time.perf_counter()
        self.algorithm = algorithm
        self.plans = RoutingPlanCache(algorithm)
        topo = algorithm.topology

        # ---- node interning (reference engine node order) -------------
        self.nodes: list[Hashable] = list(topo.nodes())
        self.nid: dict[Hashable, int] = {u: i for i, u in enumerate(self.nodes)}
        n = len(self.nodes)

        # ---- central queues: global ids, node-major ----------------------
        self.node_qids: list[list[int]] = []
        self.queue_node: list[int] = []
        self.queue_kind: list[str] = []
        self.qid_of: dict[tuple[int, str], int] = {}
        for ui, u in enumerate(self.nodes):
            ids = []
            for kind in algorithm.central_queue_kinds(u):
                qid = len(self.queue_node)
                self.qid_of[(ui, kind)] = qid
                self.queue_node.append(ui)
                self.queue_kind.append(kind)
                ids.append(qid)
            self.node_qids.append(ids)
        self.n_queues = len(self.queue_node)
        #: Interned QueueId per global queue id (for row construction).
        self.queue_objs: list[QueueId] = [
            QueueId(self.nodes[self.queue_node[q]], self.queue_kind[q])
            for q in range(self.n_queues)
        ]

        # ---- link buffer slots: global ids, node-major, low-to-high ----
        self.slot_src: list[int] = []
        self.slot_dst: list[int] = []
        self.slot_cls: list[str] = []
        self.slot_of: dict[tuple[int, int, str], int] = {}
        self.node_out_start: list[int] = []
        self.node_out_count: list[int] = []
        #: ``(u_label, v_label) -> classes`` in reference insertion order
        #: (telemetry probes read ``len(sim.link_classes)``).
        self.link_classes: dict[tuple, tuple[str, ...]] = {}
        link_slot_lists: dict[int, list[list[int]]] = {}
        for ui, u in enumerate(self.nodes):
            self.node_out_start.append(len(self.slot_src))
            nbrs = sorted(
                topo.neighbors(u), key=lambda v: topo.link_index(u, v)
            )
            for v in nbrs:
                classes = algorithm.buffer_classes(u, v)
                self.link_classes[(u, v)] = classes
                vi = self.nid[v]
                slots = []
                for cls in classes:
                    s = len(self.slot_src)
                    self.slot_of[(ui, vi, cls)] = s
                    self.slot_src.append(ui)
                    self.slot_dst.append(vi)
                    self.slot_cls.append(cls)
                    slots.append(s)
                link_slot_lists.setdefault(len(slots), []).append(slots)
            self.node_out_count.append(
                len(self.slot_src) - self.node_out_start[-1]
            )
        self.n_slots = len(self.slot_src)

        # Input-side view: reference ``in_keys[v]`` appends in outer
        # sender-node order, so it equals "slots with slot_dst == v,
        # ascending global slot id".
        self.node_in_slots: list[list[int]] = [[] for _ in range(n)]
        self.slot_in_pos: list[int] = [0] * self.n_slots
        for s in range(self.n_slots):
            vi = self.slot_dst[s]
            self.slot_in_pos[s] = len(self.node_in_slots[vi])
            self.node_in_slots[vi].append(s)

        #: Directed links grouped by class count ``k``: an ``(L, k)``
        #: int array of slot ids per group.  Per-link class rotation is
        #: ``cycle % k``, exactly the reference engine's ``rotated``.
        self.link_groups: dict[int, np.ndarray] = {
            k: np.asarray(v, dtype=np.int64)
            for k, v in link_slot_lists.items()
        }

        # ---- state interning + row memos -------------------------------
        self.states: list[Any] = []
        self._state_ids: dict[Any, int] = {}
        self._central: dict[tuple[int, int, int], tuple] = {}
        self._entry: dict[tuple[int, int, int], tuple[int, int]] = {}
        self._inject: dict[tuple[int, int, int], tuple] = {}
        self._init_rows()

        # ---- compiled hop kernel (optional fast path) ------------------
        #: The algorithm's integer hop kernel, or ``None`` (plan-cache
        #: translation only).  See :mod:`repro.core.hops`.
        self.kernel = None
        if use_kernel:
            hook = getattr(algorithm, "compile_hops", None)
            if hook is not None:
                self.kernel = hook(self)
        #: Wall-clock seconds to build the structure + compile the
        #: kernel (telemetry gauge ``repro_tables_compile_seconds``).
        self.compile_seconds = time.perf_counter() - t_start

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def state_id(self, state: Any) -> int:
        """Small-int id of a routing state (interned on first use)."""
        try:
            sid = self._state_ids.get(state)
        except TypeError as exc:
            raise EngineCapabilityError(
                f"the vector engine requires hashable routing states; "
                f"{self.algorithm.name} produced {state!r} — use "
                "engine='reference' or engine='compiled' "
                "(see docs/ARCHITECTURE.md)"
            ) from exc
        if sid is None:
            sid = self._state_ids[state] = len(self.states)
            self.states.append(state)
        return sid

    @property
    def size(self) -> int:
        """Total number of memoized rows (all three tables)."""
        return len(self._central) + len(self._entry) + len(self._inject)

    # ------------------------------------------------------------------
    # Packed row ids (the batched engine's central-row representation)
    # ------------------------------------------------------------------
    def _init_rows(self) -> None:
        """(Re)initialize the packed central-row arrays + row-id index.

        A *row id* (rid) names one built central row; the candidate
        data lives in parallel ``(rid, candidate)`` numpy arrays so the
        batched fill phase gathers whole batches of rows without
        touching Python objects.  ``row_entq``/``row_entst`` hold the
        *entry-resolved* landing queue/state per candidate, so the read
        phase needs no further lookups.
        """
        cap = 256
        width = 4
        self._row_n = 0
        self.row_slots = np.full((cap, width), self.n_slots, dtype=np.int64)
        self.row_queues = np.full((cap, width), -1, dtype=np.int64)
        self.row_states = np.zeros((cap, width), dtype=np.int64)
        self.row_dyn = np.zeros((cap, width), dtype=np.int64)
        self.row_entq = np.full((cap, width), -1, dtype=np.int64)
        self.row_entst = np.zeros((cap, width), dtype=np.int64)
        self.row_hasint = np.zeros(cap, dtype=np.int64)
        #: Internal steps per rid (python tuples; only walked on stalls).
        self.row_internal: list[tuple] = []
        cells = self.n_queues * len(self.nodes)
        if 0 < cells <= _DENSE_ROWID_CELLS:
            self._rowid_dense: np.ndarray | None = np.full(
                (self.n_queues, len(self.nodes), 1), -1, dtype=np.int64
            )
            self._rowid_map: dict[tuple[int, int, int], int] | None = None
        else:
            self._rowid_dense = None
            self._rowid_map = {}

    @property
    def has_dense_rowids(self) -> bool:
        """Whether row ids are indexed by a dense numpy gather table."""
        return self._rowid_dense is not None

    @property
    def rows_packed(self) -> int:
        """Number of central rows packed into the rid arrays."""
        return self._row_n

    def _grow_rows(self, width: int) -> None:
        cap, w = self.row_slots.shape
        new_cap = cap if self._row_n < cap else cap * 2
        new_w = w
        while new_w < width:
            new_w *= 2
        pads = {
            "row_slots": self.n_slots,
            "row_queues": -1,
            "row_states": 0,
            "row_dyn": 0,
            "row_entq": -1,
            "row_entst": 0,
        }
        for name, pad in pads.items():
            old = getattr(self, name)
            arr = np.full((new_cap, new_w), pad, dtype=np.int64)
            arr[:cap, :w] = old
            setattr(self, name, arr)
        if new_cap != cap:
            hasint = np.zeros(new_cap, dtype=np.int64)
            hasint[:cap] = self.row_hasint
            self.row_hasint = hasint

    def _grow_rowid_states(self, sid: int) -> None:
        tab = self._rowid_dense
        depth = max(sid + 1, len(self.states), tab.shape[2] * 2)
        new = np.full((tab.shape[0], tab.shape[1], depth), -1, dtype=np.int64)
        new[:, :, : tab.shape[2]] = tab
        self._rowid_dense = new

    def _pack_row(self, dst_i: int, row: tuple) -> int:
        slots, queues, states, dyn, internal = row
        nc = len(slots)
        if self._row_n >= self.row_slots.shape[0] or nc > self.row_slots.shape[1]:
            self._grow_rows(nc)
        rid = self._row_n
        self._row_n = rid + 1
        if nc:
            self.row_slots[rid, :nc] = slots
            self.row_queues[rid, :nc] = queues
            self.row_states[rid, :nc] = states
            self.row_dyn[rid, :nc] = dyn
            for j in range(nc):
                eq, est = self.entry_row(queues[j], dst_i, states[j])
                self.row_entq[rid, j] = eq
                self.row_entst[rid, j] = est
        self.row_hasint[rid] = 1 if internal else 0
        self.row_internal.append(internal)
        return rid

    def central_rid(self, qid: int, dst_i: int, sid: int) -> int:
        """Packed row id for ``(qid, dst_i, sid)`` (built on first use)."""
        tab = self._rowid_dense
        if tab is not None:
            if sid >= tab.shape[2]:
                self._grow_rowid_states(sid)
                tab = self._rowid_dense
            rid = int(tab[qid, dst_i, sid])
            if rid >= 0:
                return rid
        else:
            rid = self._rowid_map.get((qid, dst_i, sid), -1)
            if rid >= 0:
                return rid
        rid = self._pack_row(dst_i, self.central_row(qid, dst_i, sid))
        if self._rowid_dense is not None:
            self._rowid_dense[qid, dst_i, sid] = rid
        else:
            self._rowid_map[(qid, dst_i, sid)] = rid
        return rid

    def central_rids(
        self, qids: np.ndarray, dsts: np.ndarray, sids: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`central_rid`.

        One numpy gather + a python miss loop in dense row-id mode; an
        all-python loop in dict mode (networks past the dense ceiling),
        where the candidate-selection math downstream still vectorizes.
        """
        tab = self._rowid_dense
        if tab is None:
            get = self._rowid_map.get
            out = np.empty(len(qids), dtype=np.int64)
            for i in range(len(qids)):
                key = (int(qids[i]), int(dsts[i]), int(sids[i]))
                rid = get(key, -1)
                if rid < 0:
                    rid = self.central_rid(*key)
                out[i] = rid
            return out
        if len(self.states) > tab.shape[2]:
            self._grow_rowid_states(len(self.states) - 1)
            tab = self._rowid_dense
        rids = tab[qids, dsts, sids]
        misses = np.flatnonzero(rids < 0)
        if misses.size:
            for i in misses.tolist():
                rids[i] = self.central_rid(
                    int(qids[i]), int(dsts[i]), int(sids[i])
                )
        return rids

    def clear_rows(self) -> None:
        """Drop every memoized/packed row (structure + kernel stay).

        Used by the fault adapter's epoch-gated kernel: rows depend on
        the live fault set, so an epoch flip invalidates them all.
        Engines must not hold row references across a call (the vector
        engine never runs fault epochs; the analyzer rebuilds per
        epoch).
        """
        self._central.clear()
        self._entry.clear()
        self._inject.clear()
        self.plans.central_memo.clear()
        self.plans.entry_memo.clear()
        self.plans.inject_memo.clear()
        self._init_rows()

    def memory_bytes(self) -> int:
        """Approximate resident bytes of rows + row index (telemetry).

        Numpy arrays are counted exactly; the per-entry cost of the
        three memo dicts (key tuple + value tuples) is estimated at a
        flat 200 bytes.
        """
        total = (
            self.row_slots.nbytes
            + self.row_queues.nbytes
            + self.row_states.nbytes
            + self.row_dyn.nbytes
            + self.row_entq.nbytes
            + self.row_entst.nbytes
            + self.row_hasint.nbytes
        )
        if self._rowid_dense is not None:
            total += self._rowid_dense.nbytes
        else:
            total += 100 * len(self._rowid_map)
        total += 200 * self.size
        return total

    # ------------------------------------------------------------------
    # Row tables
    # ------------------------------------------------------------------
    def central_row(self, qid: int, dst_i: int, sid: int) -> tuple:
        """Fill-phase row for a message in central queue ``qid``.

        Returns ``(ext_slots, ext_queues, ext_states, ext_dyn,
        internal)`` — four parallel tuples of external candidates
        sorted slot-ascending (first-wins per physical buffer, statics
        before dynamics, exactly :class:`RoutingPlanCache`), plus the
        internal ``(action, queue_id, state_id)`` steps in reference
        order (``queue_id`` is -1 for delivery).
        """
        key = (qid, dst_i, sid)
        row = self._central.get(key)
        if row is None:
            row = self._central[key] = self._build_central(qid, dst_i, sid)
        return row

    def _build_central(self, qid: int, dst_i: int, sid: int) -> tuple:
        if self.kernel is not None:
            row = self.kernel.central_row(qid, dst_i, sid)
            if row is not None:
                return row
        plan = self.plans.central_plan(
            self.queue_objs[qid], self.nodes[dst_i], self.states[sid]
        )
        ui = self.queue_node[qid]
        ext = []
        for (v, cls), (q2, new_state, dyn) in plan.external.items():
            # Candidates without a physical buffer are unreachable in
            # the reference engine too; drop them (after first-wins).
            s = self.slot_of.get((ui, self.nid[v], cls))
            if s is not None:
                ext.append(
                    (
                        s,
                        self.qid_of[(self.nid[q2.node], q2.kind)],
                        self.state_id(new_state),
                        1 if dyn else 0,
                    )
                )
        ext.sort()
        internal = tuple(
            (
                action,
                -1
                if action == DELIVER_STEP
                else self.qid_of[(ui, q2.kind)],
                sid if action == DELIVER_STEP else self.state_id(st),
            )
            for action, q2, st in plan.internal
        )
        return (
            tuple(c[0] for c in ext),
            tuple(c[1] for c in ext),
            tuple(c[2] for c in ext),
            tuple(c[3] for c in ext),
            internal,
        )

    def entry_row(self, qid: int, dst_i: int, sid: int) -> tuple[int, int]:
        """Where a packet nominally targeting ``qid`` actually lands.

        The forced-phase-switch fold of
        ``PacketSimulator._resolve_entry_queue``, on ints.
        """
        key = (qid, dst_i, sid)
        row = self._entry.get(key)
        if row is None:
            if self.kernel is not None:
                row = self.kernel.entry_row(qid, dst_i, sid)
            if row is None:
                q2, st = self.plans.entry(
                    self.queue_objs[qid], self.nodes[dst_i], self.states[sid]
                )
                row = (
                    self.qid_of[(self.nid[q2.node], q2.kind)],
                    self.state_id(st),
                )
            self._entry[key] = row
        return row

    def injection_row(self, ui: int, dst_i: int, sid: int) -> tuple:
        """Resolved injection targets: ``((queue_id, state_id), ...)``
        in the reference engine's ``sorted(targets)`` order."""
        key = (ui, dst_i, sid)
        row = self._inject.get(key)
        if row is None:
            if self.kernel is not None:
                row = self.kernel.injection_row(ui, dst_i, sid)
            if row is None:
                plan = self.plans.injection_plan(
                    self.nodes[ui], self.nodes[dst_i], self.states[sid]
                )
                row = tuple(
                    (
                        self.qid_of[(self.nid[q2.node], q2.kind)],
                        self.state_id(st),
                    )
                    for _kind, q2, st in plan
                )
            self._inject[key] = row
        return row
