"""Integer routing tables: the vector engine's compilation layer.

:class:`RoutingTables` lowers one
:class:`~repro.core.routing_function.RoutingAlgorithm` — *any*
algorithm, on any topology — onto dense integer identifiers so an
engine can run the paper's node cycle without hashing a single label
object on the hot path:

* nodes are interned ``0..N-1`` in ``topology.nodes()`` order (the
  reference engine's node order);
* central queues get global ids ``0..n_queues-1``, node-major in
  ``central_queue_kinds`` order;
* link buffers get global *slot* ids, node-major and low-to-high
  ``link_index`` within a node, classes in ``buffer_classes`` order —
  so slot-ascending order **is** the reference engine's output-buffer
  fill order, and slot-ascending order per receiving node **is** the
  reference engine's input-buffer rotation order;
* routing states are interned lazily to small ints (states must be
  hashable; :class:`EngineCapabilityError` otherwise — the reference
  and compiled engines remain available for unhashable-state
  algorithms).

On top of the static structure, three lazily-memoized row tables mirror
:class:`~repro.sim.plans.RoutingPlanCache` (which this class wraps, so
the first-wins external-candidate semantics, statics-before-dynamics
order and the forced-phase-switch entry fold are *the same code* the
compiled engine trusts):

* :meth:`central_row` — ``(queue, dst, state) ->`` parallel tuples of
  external candidates (slot / next queue / next state / dynamic flag,
  slot-ascending) plus internal ``(action, queue, state)`` steps;
* :meth:`entry_row` — where a packet nominally heading for a queue
  actually lands after the entry fold;
* :meth:`injection_row` — resolved injection targets in the reference
  engine's ``sorted(targets)`` order.

Rows contain only ints, so the engine's per-message work is integer
compares and array indexing; identity with the reference engine is
established by ``tests/test_sim_vector.py``.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from ..core.queues import QueueId
from ..core.routing_function import RoutingAlgorithm
from .plans import DELIVER_STEP, SELF_STEP, RoutingPlanCache

__all__ = ["EngineCapabilityError", "RoutingTables"]


class EngineCapabilityError(TypeError):
    """A requested engine cannot run the requested configuration.

    Raised with a message that names the limitation and the engines
    that do support the configuration (see the engine matrix in
    ``docs/ARCHITECTURE.md``).
    """


class RoutingTables:
    """Dense integer lowering of one routing algorithm + topology.

    One instance may be shared by several
    :class:`~repro.sim.vector.VectorSimulator` objects built around the
    *same* algorithm instance (rows are pure functions of
    ``(queue, dst, state)``), mirroring how
    :class:`~repro.sim.plans.RoutingPlanCache` is shared by compiled
    simulators.
    """

    def __init__(self, algorithm: RoutingAlgorithm):
        self.algorithm = algorithm
        self.plans = RoutingPlanCache(algorithm)
        topo = algorithm.topology

        # ---- node interning (reference engine node order) -------------
        self.nodes: list[Hashable] = list(topo.nodes())
        self.nid: dict[Hashable, int] = {u: i for i, u in enumerate(self.nodes)}
        n = len(self.nodes)

        # ---- central queues: global ids, node-major ----------------------
        self.node_qids: list[list[int]] = []
        self.queue_node: list[int] = []
        self.queue_kind: list[str] = []
        self.qid_of: dict[tuple[int, str], int] = {}
        for ui, u in enumerate(self.nodes):
            ids = []
            for kind in algorithm.central_queue_kinds(u):
                qid = len(self.queue_node)
                self.qid_of[(ui, kind)] = qid
                self.queue_node.append(ui)
                self.queue_kind.append(kind)
                ids.append(qid)
            self.node_qids.append(ids)
        self.n_queues = len(self.queue_node)
        #: Interned QueueId per global queue id (for row construction).
        self.queue_objs: list[QueueId] = [
            QueueId(self.nodes[self.queue_node[q]], self.queue_kind[q])
            for q in range(self.n_queues)
        ]

        # ---- link buffer slots: global ids, node-major, low-to-high ----
        self.slot_src: list[int] = []
        self.slot_dst: list[int] = []
        self.slot_cls: list[str] = []
        self.slot_of: dict[tuple[int, int, str], int] = {}
        self.node_out_start: list[int] = []
        self.node_out_count: list[int] = []
        #: ``(u_label, v_label) -> classes`` in reference insertion order
        #: (telemetry probes read ``len(sim.link_classes)``).
        self.link_classes: dict[tuple, tuple[str, ...]] = {}
        link_slot_lists: dict[int, list[list[int]]] = {}
        for ui, u in enumerate(self.nodes):
            self.node_out_start.append(len(self.slot_src))
            nbrs = sorted(
                topo.neighbors(u), key=lambda v: topo.link_index(u, v)
            )
            for v in nbrs:
                classes = algorithm.buffer_classes(u, v)
                self.link_classes[(u, v)] = classes
                vi = self.nid[v]
                slots = []
                for cls in classes:
                    s = len(self.slot_src)
                    self.slot_of[(ui, vi, cls)] = s
                    self.slot_src.append(ui)
                    self.slot_dst.append(vi)
                    self.slot_cls.append(cls)
                    slots.append(s)
                link_slot_lists.setdefault(len(slots), []).append(slots)
            self.node_out_count.append(
                len(self.slot_src) - self.node_out_start[-1]
            )
        self.n_slots = len(self.slot_src)

        # Input-side view: reference ``in_keys[v]`` appends in outer
        # sender-node order, so it equals "slots with slot_dst == v,
        # ascending global slot id".
        self.node_in_slots: list[list[int]] = [[] for _ in range(n)]
        self.slot_in_pos: list[int] = [0] * self.n_slots
        for s in range(self.n_slots):
            vi = self.slot_dst[s]
            self.slot_in_pos[s] = len(self.node_in_slots[vi])
            self.node_in_slots[vi].append(s)

        #: Directed links grouped by class count ``k``: an ``(L, k)``
        #: int array of slot ids per group.  Per-link class rotation is
        #: ``cycle % k``, exactly the reference engine's ``rotated``.
        self.link_groups: dict[int, np.ndarray] = {
            k: np.asarray(v, dtype=np.int64)
            for k, v in link_slot_lists.items()
        }

        # ---- state interning + row memos -------------------------------
        self.states: list[Any] = []
        self._state_ids: dict[Any, int] = {}
        self._central: dict[tuple[int, int, int], tuple] = {}
        self._entry: dict[tuple[int, int, int], tuple[int, int]] = {}
        self._inject: dict[tuple[int, int, int], tuple] = {}

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def state_id(self, state: Any) -> int:
        """Small-int id of a routing state (interned on first use)."""
        try:
            sid = self._state_ids.get(state)
        except TypeError as exc:
            raise EngineCapabilityError(
                f"the vector engine requires hashable routing states; "
                f"{self.algorithm.name} produced {state!r} — use "
                "engine='reference' or engine='compiled' "
                "(see docs/ARCHITECTURE.md)"
            ) from exc
        if sid is None:
            sid = self._state_ids[state] = len(self.states)
            self.states.append(state)
        return sid

    @property
    def size(self) -> int:
        """Total number of memoized rows (all three tables)."""
        return len(self._central) + len(self._entry) + len(self._inject)

    # ------------------------------------------------------------------
    # Row tables
    # ------------------------------------------------------------------
    def central_row(self, qid: int, dst_i: int, sid: int) -> tuple:
        """Fill-phase row for a message in central queue ``qid``.

        Returns ``(ext_slots, ext_queues, ext_states, ext_dyn,
        internal)`` — four parallel tuples of external candidates
        sorted slot-ascending (first-wins per physical buffer, statics
        before dynamics, exactly :class:`RoutingPlanCache`), plus the
        internal ``(action, queue_id, state_id)`` steps in reference
        order (``queue_id`` is -1 for delivery).
        """
        key = (qid, dst_i, sid)
        row = self._central.get(key)
        if row is None:
            row = self._central[key] = self._build_central(qid, dst_i, sid)
        return row

    def _build_central(self, qid: int, dst_i: int, sid: int) -> tuple:
        plan = self.plans.central_plan(
            self.queue_objs[qid], self.nodes[dst_i], self.states[sid]
        )
        ui = self.queue_node[qid]
        ext = []
        for (v, cls), (q2, new_state, dyn) in plan.external.items():
            # Candidates without a physical buffer are unreachable in
            # the reference engine too; drop them (after first-wins).
            s = self.slot_of.get((ui, self.nid[v], cls))
            if s is not None:
                ext.append(
                    (
                        s,
                        self.qid_of[(self.nid[q2.node], q2.kind)],
                        self.state_id(new_state),
                        1 if dyn else 0,
                    )
                )
        ext.sort()
        internal = tuple(
            (
                action,
                -1
                if action == DELIVER_STEP
                else self.qid_of[(ui, q2.kind)],
                sid if action == DELIVER_STEP else self.state_id(st),
            )
            for action, q2, st in plan.internal
        )
        return (
            tuple(c[0] for c in ext),
            tuple(c[1] for c in ext),
            tuple(c[2] for c in ext),
            tuple(c[3] for c in ext),
            internal,
        )

    def entry_row(self, qid: int, dst_i: int, sid: int) -> tuple[int, int]:
        """Where a packet nominally targeting ``qid`` actually lands.

        The forced-phase-switch fold of
        ``PacketSimulator._resolve_entry_queue``, on ints.
        """
        key = (qid, dst_i, sid)
        row = self._entry.get(key)
        if row is None:
            q2, st = self.plans.entry(
                self.queue_objs[qid], self.nodes[dst_i], self.states[sid]
            )
            row = self._entry[key] = (
                self.qid_of[(self.nid[q2.node], q2.kind)],
                self.state_id(st),
            )
        return row

    def injection_row(self, ui: int, dst_i: int, sid: int) -> tuple:
        """Resolved injection targets: ``((queue_id, state_id), ...)``
        in the reference engine's ``sorted(targets)`` order."""
        key = (ui, dst_i, sid)
        row = self._inject.get(key)
        if row is None:
            plan = self.plans.injection_plan(
                self.nodes[ui], self.nodes[dst_i], self.states[sid]
            )
            row = self._inject[key] = tuple(
                (
                    self.qid_of[(self.nid[q2.node], q2.kind)],
                    self.state_id(st),
                )
                for _kind, q2, st in plan
            )
        return row
