"""Validated YAML scenario schema for the streaming traffic service.

A *scenario* describes everything a long-running serving run needs:
the network (topology family + size + routing algorithm), one or more
**user populations** (how many users are active, how often each one
sends, to which destinations, at what service class), and the
**service settings** (tick size, cycle budget, admission policy,
telemetry endpoint).  The YAML is parsed into plain dataclasses and
**validated up front** — every error names the offending YAML path
(``populations[0].users.distribution: ...``) so a bad scenario fails
before the first simulated cycle, never during one.

Schema overview (see ``docs/SERVING.md`` for the full field
reference)::

    name: smoke                    # required
    seed: 42
    topology: {family: hypercube, size: 4}
    algorithm: adaptive            # per-family choices, default adaptive
    engine: auto                   # reference | compiled | vector | auto
    populations:                   # >= 1 entry
      - name: humans
        qos: gold                  # service-class tag on every packet
        users: {mean: 40, distribution: poisson}    # or normal/log_normal
        rate_per_user: 0.002       # packets / user / cycle, > 0
        resample_every: 100        # cycles between user-count re-samples
        pattern: random            # destination pattern (family-aware)
        load_shape: {kind: diurnal, period: 1000, amplitude: 0.5}
    service:
      tick_cycles: 50              # metrics/pacing tick
      duration_cycles: 2000        # null = run until stopped
      warmup_cycles: 0
      drain_limit_cycles: 100000
      tick_seconds: null           # optional wall-clock pacing per tick
      occupancy_every: 16
      stall_limit: 10000
      central_capacity: 5
      record: false                # full event log (determinism contract)
      admission:
        policy: defer              # drop | defer | shed-by-class
        max_deferred_per_node: 8
        shed_threshold: 64         # shed-by-class only
        class_order: [gold, bronze]   # highest priority first

The loader accepts a YAML string/path or an already-parsed mapping, so
programmatic callers (tests, sweeps) never round-trip through text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..routing import (
    HypercubeAdaptiveRouting,
    HypercubeHungRouting,
    HypercubeObliviousRouting,
    Mesh2DAdaptiveRouting,
    Mesh2DRestrictedRouting,
    ShuffleExchangeRouting,
    TorusRouting,
)
from ..sim.sampling import USER_DISTRIBUTIONS
from ..sim.traffic import (
    HotspotTraffic,
    MeshTransposeTraffic,
    RandomTraffic,
    TornadoTraffic,
    TrafficPattern,
    hypercube_pattern,
)
from ..topology import Hypercube, Mesh2D, ShuffleExchange, Torus
from ..topology.base import Topology
from ..topology.hypercube import Hypercube as _Hypercube

#: Engines the service loop can step (see docs/SERVING.md): the fast
#: engine has no observer hook for the live probe, and the sharded
#: engine replays injection models inside worker processes where the
#: service's drain signal cannot reach them.
SERVE_ENGINES = ("auto", "reference", "compiled", "vector")

#: Admission policies (docs/SERVING.md, "Admission policies").
ADMISSION_POLICIES = ("drop", "defer", "shed-by-class")

#: Load-shape kinds.
LOAD_SHAPES = ("constant", "diurnal", "bursty")

#: The paper's four hypercube patterns plus the extended set.
_HYPERCUBE_PATTERNS = (
    "random",
    "complement",
    "transpose",
    "leveled",
    "bit-reversal",
    "shuffle-perm",
)


class ScenarioError(ValueError):
    """A scenario failed validation; the message names the YAML path."""


def _err(path: str, message: str) -> ScenarioError:
    return ScenarioError(f"{path}: {message}")


def _require_mapping(value: Any, path: str) -> dict:
    if not isinstance(value, dict):
        raise _err(path, f"expected a mapping, got {type(value).__name__}")
    return value


def _reject_unknown(mapping: dict, known: tuple, path: str) -> None:
    unknown = sorted(set(mapping) - set(known))
    if unknown:
        raise _err(
            path,
            f"unknown field {unknown[0]!r} (expected one of "
            f"{', '.join(sorted(known))})",
        )


def _number(mapping: dict, key: str, path: str, default=None, *,
            required: bool = False, minimum=None, strict_min=None):
    if key not in mapping or mapping[key] is None:
        if required:
            raise _err(f"{path}.{key}", "required field is missing")
        return default
    value = mapping[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _err(
            f"{path}.{key}",
            f"expected a number, got {type(value).__name__}",
        )
    value = float(value)
    if strict_min is not None and value <= strict_min:
        raise _err(f"{path}.{key}", f"must be > {strict_min}, got {value:g}")
    if minimum is not None and value < minimum:
        raise _err(f"{path}.{key}", f"must be >= {minimum}, got {value:g}")
    return value


def _integer(mapping: dict, key: str, path: str, default=None, *,
             required: bool = False, minimum=None):
    value = _number(
        mapping, key, path, default=default, required=required,
        minimum=minimum,
    )
    if value is None:
        return None
    if value != int(value):
        raise _err(f"{path}.{key}", f"expected an integer, got {value:g}")
    return int(value)


def _choice(mapping: dict, key: str, path: str, choices: tuple, default=None):
    value = mapping.get(key, default)
    if value not in choices:
        raise _err(
            f"{path}.{key}",
            f"{value!r} is not one of {', '.join(map(repr, choices))}",
        )
    return value


# ----------------------------------------------------------------------
# Topology / algorithm / pattern families
# ----------------------------------------------------------------------
def _build_hypercube(size: str) -> Topology:
    return Hypercube(int(size))


def _build_mesh(size: str) -> Topology:
    return Mesh2D(int(str(size).split("x")[0]))


def _build_torus(size: str) -> Topology:
    parts = [int(x) for x in str(size).split("x")]
    if len(parts) == 1:
        parts = parts * 2
    return Torus(tuple(parts))


def _build_shuffle(size: str) -> Topology:
    return ShuffleExchange(int(size))


#: family -> (topology factory over a size string,
#:            {algorithm name -> algorithm factory})
SERVE_FAMILIES: dict[str, tuple[Callable[[str], Topology], dict]] = {
    "hypercube": (
        _build_hypercube,
        {
            "adaptive": HypercubeAdaptiveRouting,
            "hung": HypercubeHungRouting,
            "oblivious": HypercubeObliviousRouting,
        },
    ),
    "mesh": (
        _build_mesh,
        {
            "adaptive": Mesh2DAdaptiveRouting,
            "restricted": Mesh2DRestrictedRouting,
        },
    ),
    "torus": (_build_torus, {"adaptive": TorusRouting}),
    "shuffle-exchange": (_build_shuffle, {"adaptive": ShuffleExchangeRouting}),
}


def make_pattern(
    name: str,
    topology: Topology,
    rng: np.random.Generator,
    params: dict | None = None,
    path: str = "pattern",
) -> TrafficPattern:
    """Destination pattern by scenario name, family-aware.

    ``random`` and ``hotspot`` work on every topology; the remaining
    names are family-specific and raise a :class:`ScenarioError`
    naming the offending path when the topology cannot host them.
    """
    params = params or {}
    try:
        if name == "random":
            return RandomTraffic(topology)
        if name == "hotspot":
            return HotspotTraffic(
                topology, fraction=float(params.get("fraction", 0.2))
            )
        if name in _HYPERCUBE_PATTERNS:
            if not isinstance(topology, _Hypercube):
                raise _err(
                    path,
                    f"pattern {name!r} needs a hypercube topology, "
                    f"not {topology.name}",
                )
            return hypercube_pattern(name, topology, rng)
        if name == "mesh-transpose":
            return MeshTransposeTraffic(topology)
        if name == "tornado":
            return TornadoTraffic(topology)
    except ScenarioError:
        raise
    except (ValueError, AttributeError, TypeError) as exc:
        raise _err(path, f"pattern {name!r} rejected: {exc}")
    raise _err(path, f"unknown pattern {name!r}")


# ----------------------------------------------------------------------
# Schema dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UserDistribution:
    """Active-user count as a random variable (mean + family)."""

    mean: float
    distribution: str = "poisson"
    variance: float | None = None

    @staticmethod
    def parse(raw: Any, path: str) -> "UserDistribution":
        raw = _require_mapping(raw, path)
        _reject_unknown(raw, ("mean", "distribution", "variance"), path)
        mean = _number(raw, "mean", path, required=True, minimum=0.0)
        dist = _choice(
            raw, "distribution", path, USER_DISTRIBUTIONS, default="poisson"
        )
        variance = _number(raw, "variance", path, minimum=0.0)
        if dist == "poisson" and variance is not None:
            raise _err(
                f"{path}.variance",
                "poisson has no free variance (it equals the mean); "
                "drop the field or pick normal/log_normal",
            )
        return UserDistribution(mean=mean, distribution=dist,
                                variance=variance)


@dataclass(frozen=True)
class LoadShape:
    """Time-varying multiplier applied to a population's mean users.

    * ``constant`` — 1 everywhere (the default);
    * ``diurnal``  — ``1 + amplitude * sin(2*pi*cycle/period + phase)``,
      the day/night swell;
    * ``bursty``   — ``multiplier`` during the first ``burst_cycles``
      of every ``period``, 1 otherwise (on/off flash crowds).
    """

    kind: str = "constant"
    period: int = 1000
    amplitude: float = 0.5
    multiplier: float = 4.0
    burst_cycles: int = 100
    phase: float = 0.0

    @staticmethod
    def parse(raw: Any, path: str) -> "LoadShape":
        if raw is None:
            return LoadShape()
        raw = _require_mapping(raw, path)
        kind = _choice(raw, "kind", path, LOAD_SHAPES, default="constant")
        known: tuple
        if kind == "constant":
            known = ("kind",)
        elif kind == "diurnal":
            known = ("kind", "period", "amplitude", "phase")
        else:  # bursty
            known = ("kind", "period", "multiplier", "burst_cycles")
        _reject_unknown(raw, known, path)
        period = _integer(raw, "period", path, default=1000, minimum=1)
        amplitude = _number(raw, "amplitude", path, default=0.5, minimum=0.0)
        if amplitude is not None and amplitude > 1.0:
            raise _err(
                f"{path}.amplitude", f"must be <= 1.0, got {amplitude:g}"
            )
        multiplier = _number(
            raw, "multiplier", path, default=4.0, strict_min=0.0
        )
        burst = _integer(raw, "burst_cycles", path, default=100, minimum=1)
        phase = _number(raw, "phase", path, default=0.0)
        if kind == "bursty" and burst > period:
            raise _err(
                f"{path}.burst_cycles",
                f"must be <= period ({period}), got {burst}",
            )
        return LoadShape(
            kind=kind, period=period, amplitude=amplitude,
            multiplier=multiplier, burst_cycles=burst, phase=phase,
        )

    def multiplier_at(self, cycle: int) -> float:
        if self.kind == "diurnal":
            return 1.0 + self.amplitude * float(
                np.sin(2.0 * np.pi * cycle / self.period + self.phase)
            )
        if self.kind == "bursty":
            return (
                self.multiplier
                if cycle % self.period < self.burst_cycles
                else 1.0
            )
        return 1.0


@dataclass(frozen=True)
class Population:
    """One user population: arrival process + destinations + QoS tag."""

    name: str
    users: UserDistribution
    rate_per_user: float
    qos: str = "default"
    pattern: str = "random"
    pattern_params: dict = field(default_factory=dict)
    resample_every: int = 100
    load_shape: LoadShape = field(default_factory=LoadShape)

    _FIELDS = (
        "name",
        "users",
        "rate_per_user",
        "qos",
        "pattern",
        "pattern_params",
        "resample_every",
        "load_shape",
    )

    @staticmethod
    def parse(raw: Any, path: str) -> "Population":
        raw = _require_mapping(raw, path)
        _reject_unknown(raw, Population._FIELDS, path)
        name = raw.get("name")
        if not isinstance(name, str) or not name:
            raise _err(f"{path}.name", "required non-empty string")
        if "users" not in raw:
            raise _err(f"{path}.users", "required field is missing")
        users = UserDistribution.parse(raw["users"], f"{path}.users")
        rate = _number(
            raw, "rate_per_user", path, required=True, strict_min=0.0
        )
        qos = raw.get("qos", "default")
        if not isinstance(qos, str) or not qos:
            raise _err(f"{path}.qos", "expected a non-empty string")
        pattern = raw.get("pattern", "random")
        if not isinstance(pattern, str):
            raise _err(f"{path}.pattern", "expected a string")
        params = raw.get("pattern_params") or {}
        _require_mapping(params, f"{path}.pattern_params")
        resample = _integer(
            raw, "resample_every", path, default=100, minimum=1
        )
        shape = LoadShape.parse(raw.get("load_shape"), f"{path}.load_shape")
        return Population(
            name=name,
            users=users,
            rate_per_user=rate,
            qos=qos,
            pattern=pattern,
            pattern_params=dict(params),
            resample_every=resample,
            load_shape=shape,
        )


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission-control policy knobs (docs/SERVING.md)."""

    policy: str = "defer"
    max_deferred_per_node: int = 8
    shed_threshold: int = 64
    class_order: tuple[str, ...] = ()

    @staticmethod
    def parse(raw: Any, path: str) -> "AdmissionConfig":
        if raw is None:
            return AdmissionConfig()
        raw = _require_mapping(raw, path)
        _reject_unknown(
            raw,
            ("policy", "max_deferred_per_node", "shed_threshold",
             "class_order"),
            path,
        )
        policy = _choice(
            raw, "policy", path, ADMISSION_POLICIES, default="defer"
        )
        max_deferred = _integer(
            raw, "max_deferred_per_node", path, default=8, minimum=0
        )
        shed = _integer(raw, "shed_threshold", path, default=64, minimum=0)
        order = raw.get("class_order", ())
        if order is None:
            order = ()
        if not isinstance(order, (list, tuple)) or not all(
            isinstance(c, str) for c in order
        ):
            raise _err(f"{path}.class_order", "expected a list of strings")
        return AdmissionConfig(
            policy=policy,
            max_deferred_per_node=max_deferred,
            shed_threshold=shed,
            class_order=tuple(order),
        )


@dataclass(frozen=True)
class ServiceConfig:
    """Service-loop settings: ticks, budgets, recording, endpoint."""

    tick_cycles: int = 50
    duration_cycles: int | None = None
    warmup_cycles: int = 0
    drain_limit_cycles: int = 100_000
    tick_seconds: float | None = None
    occupancy_every: int = 16
    stall_limit: int = 10_000
    central_capacity: int = 5
    record: bool = False
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)

    _FIELDS = (
        "tick_cycles",
        "duration_cycles",
        "warmup_cycles",
        "drain_limit_cycles",
        "tick_seconds",
        "occupancy_every",
        "stall_limit",
        "central_capacity",
        "record",
        "admission",
    )

    @staticmethod
    def parse(raw: Any, path: str) -> "ServiceConfig":
        if raw is None:
            return ServiceConfig()
        raw = _require_mapping(raw, path)
        _reject_unknown(raw, ServiceConfig._FIELDS, path)
        record = raw.get("record", False)
        if not isinstance(record, bool):
            raise _err(f"{path}.record", "expected a boolean")
        return ServiceConfig(
            tick_cycles=_integer(
                raw, "tick_cycles", path, default=50, minimum=1
            ),
            duration_cycles=_integer(
                raw, "duration_cycles", path, default=None, minimum=1
            ),
            warmup_cycles=_integer(
                raw, "warmup_cycles", path, default=0, minimum=0
            ),
            drain_limit_cycles=_integer(
                raw, "drain_limit_cycles", path, default=100_000, minimum=1
            ),
            tick_seconds=_number(
                raw, "tick_seconds", path, default=None, minimum=0.0
            ),
            occupancy_every=_integer(
                raw, "occupancy_every", path, default=16, minimum=1
            ),
            stall_limit=_integer(
                raw, "stall_limit", path, default=10_000, minimum=1
            ),
            central_capacity=_integer(
                raw, "central_capacity", path, default=5, minimum=1
            ),
            record=record,
            admission=AdmissionConfig.parse(
                raw.get("admission"), f"{path}.admission"
            ),
        )


@dataclass(frozen=True)
class Scenario:
    """A fully-validated serving scenario."""

    name: str
    seed: int
    family: str
    size: str
    algorithm: str
    engine: str
    populations: tuple[Population, ...]
    service: ServiceConfig

    _FIELDS = (
        "name",
        "seed",
        "topology",
        "algorithm",
        "engine",
        "populations",
        "service",
    )

    def build_topology(self) -> Topology:
        build, _algs = SERVE_FAMILIES[self.family]
        return build(self.size)

    def build_algorithm(self, topology: Topology):
        _build, algs = SERVE_FAMILIES[self.family]
        return algs[self.algorithm](topology)

    def describe(self) -> str:
        pops = ", ".join(
            f"{p.name}({p.qos}: ~{p.users.mean:g} users x "
            f"{p.rate_per_user:g}/cycle, {p.load_shape.kind})"
            for p in self.populations
        )
        dur = (
            f"{self.service.duration_cycles} cycles"
            if self.service.duration_cycles
            else "until stopped"
        )
        return (
            f"scenario {self.name!r}: {self.family} {self.size} "
            f"[{self.algorithm}] engine={self.engine} seed={self.seed}; "
            f"populations: {pops}; duration: {dur}; "
            f"admission: {self.service.admission.policy}"
        )


def parse_scenario(raw: Any, path: str = "scenario") -> Scenario:
    """Validate an already-parsed mapping into a :class:`Scenario`."""
    raw = _require_mapping(raw, path)
    _reject_unknown(raw, Scenario._FIELDS, path)

    name = raw.get("name")
    if not isinstance(name, str) or not name:
        raise _err(f"{path}.name", "required non-empty string")
    seed = _integer(raw, "seed", path, default=12345)

    topo_raw = _require_mapping(
        raw.get("topology") or {}, f"{path}.topology"
    )
    _reject_unknown(topo_raw, ("family", "size"), f"{path}.topology")
    family = _choice(
        topo_raw,
        "family",
        f"{path}.topology",
        tuple(SERVE_FAMILIES),
        default="hypercube",
    )
    size = topo_raw.get("size")
    if size is None:
        raise _err(f"{path}.topology.size", "required field is missing")
    size = str(size)

    _build, algs = SERVE_FAMILIES[family]
    algorithm = _choice(
        raw, "algorithm", path, tuple(algs), default="adaptive"
    )
    engine = _choice(raw, "engine", path, SERVE_ENGINES, default="auto")

    pops_raw = raw.get("populations")
    if not isinstance(pops_raw, list) or not pops_raw:
        raise _err(
            f"{path}.populations", "expected a non-empty list of populations"
        )
    populations = tuple(
        Population.parse(p, f"{path}.populations[{i}]")
        for i, p in enumerate(pops_raw)
    )
    seen: set[str] = set()
    for i, p in enumerate(populations):
        if p.name in seen:
            raise _err(
                f"{path}.populations[{i}].name",
                f"duplicate population name {p.name!r}",
            )
        seen.add(p.name)

    service = ServiceConfig.parse(raw.get("service"), f"{path}.service")

    scenario = Scenario(
        name=name,
        seed=seed,
        family=family,
        size=size,
        algorithm=algorithm,
        engine=engine,
        populations=populations,
        service=service,
    )
    # Cross-field checks that need the real topology are cheap at the
    # sizes serving targets; do them up front so `--validate` is total.
    try:
        topology = scenario.build_topology()
    except (ValueError, TypeError) as exc:
        raise _err(f"{path}.topology.size", f"rejected by {family}: {exc}")
    rng = np.random.default_rng(0)  # lint: ok (validation probe only)
    for i, p in enumerate(populations):
        make_pattern(
            p.pattern,
            topology,
            rng,
            p.pattern_params,
            path=f"{path}.populations[{i}].pattern",
        )
    return scenario


def load_scenario(source: Any) -> Scenario:
    """Load a scenario from a YAML path/string or a parsed mapping.

    PyYAML is only imported when text must actually be parsed, so the
    core library keeps its numpy+networkx-only dependency surface;
    callers with parsed dicts never need YAML installed.
    """
    if isinstance(source, dict):
        return parse_scenario(source)
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - env without pyyaml
        raise ScenarioError(
            "loading YAML scenarios needs the 'pyyaml' package; install "
            "it or pass an already-parsed mapping to load_scenario()"
        ) from exc
    text = source
    from pathlib import Path

    if isinstance(source, (str, Path)):
        p = Path(source)
        # Heuristic: treat one-line strings with no newline as paths.
        if isinstance(source, Path) or (
            "\n" not in str(source) and p.suffix in (".yaml", ".yml")
        ):
            if not p.exists():
                raise ScenarioError(f"scenario file not found: {source}")
            text = p.read_text()
    try:
        raw = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ScenarioError(f"scenario is not valid YAML: {exc}")
    return parse_scenario(raw)
