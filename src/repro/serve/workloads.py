"""Open-loop workload driver: scenarios -> per-cycle injection demand.

A batch experiment's :class:`~repro.sim.injection.DynamicInjection` is
*closed-loop*: a node that finds its injection queue occupied simply
counts a failed attempt and the demand evaporates.  A **service** is
open-loop — users keep arriving whether or not the network can take
them — so :class:`OpenLoopInjection` turns a validated
:class:`~repro.serve.scenario.Scenario` into a stream of *offers* and
hands every one to an :class:`~repro.serve.admission.AdmissionController`,
which decides (drop / defer / shed) against injection-queue
backpressure.

Per cycle, for each population in declaration order:

1. every ``resample_every`` cycles, re-draw the active-user count from
   the population's distribution, with the mean scaled by its load
   shape (diurnal swell, bursts) at the current cycle;
2. convert users to a per-node Bernoulli rate
   ``min(1, users * rate_per_user / n_nodes)`` and draw this cycle's
   ``(src, dst)`` offers through the *same* seeded sampler
   (:mod:`repro.sim.sampling`) the closed-loop model uses;
3. tag each offer with the population's QoS class and submit it.

Determinism: each population owns two named RNG streams derived from
the scenario seed (user counts and arrivals), populations are
processed in declaration order, and admission decisions depend only on
engine-invariant queue occupancy — so identical scenario + seed +
cycle budget replays byte-identically on every engine, which is the
record-mode contract `tests/test_serve_service.py` enforces.

The driver implements the ordinary :class:`InjectionModel` interface,
so any stepping engine accepts it unchanged; ``finished`` additionally
drives the **drain** protocol: once :meth:`begin_drain` is called (a
stop signal) or the duration budget is exhausted, no new offers are
generated, the deferred backlog is cancelled (counted, never silently
lost), and the run ends when the last in-flight packet delivers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..core.message import Message
from ..sim.injection import InjectionModel
from ..sim.rng import make_rng
from ..sim.sampling import draw_arrivals, draw_user_count
from .admission import AdmissionController, Offer
from .scenario import Population, Scenario, make_pattern

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import PacketSimulator


class _PopulationState:
    """Live sampling state of one population."""

    __slots__ = ("spec", "pattern", "users_rng", "arrivals_rng",
                 "active_users", "rate")

    def __init__(self, spec: Population, topology, seed: int):
        self.spec = spec
        self.users_rng = make_rng(seed, f"serve-users-{spec.name}")
        self.arrivals_rng = make_rng(seed, f"serve-arrivals-{spec.name}")
        self.pattern = make_pattern(
            spec.pattern, topology, self.arrivals_rng, spec.pattern_params
        )
        self.active_users = 0
        self.rate = 0.0

    def resample(self, cycle: int, n_nodes: int) -> None:
        u = self.spec.users
        mean = u.mean * self.spec.load_shape.multiplier_at(cycle)
        variance = u.variance
        if variance is not None and u.mean > 0:
            # Scale the variance with the squared mean shift so the
            # coefficient of variation survives the load shape.
            variance = variance * (mean / u.mean) ** 2
        self.active_users = draw_user_count(
            u.distribution, mean, variance, self.users_rng
        )
        self.rate = min(
            1.0, self.active_users * self.spec.rate_per_user / n_nodes
        )


class OpenLoopInjection(InjectionModel):
    """Scenario-driven open-loop injection with admission control."""

    def __init__(self, scenario: Scenario, topology, algorithm):
        self.scenario = scenario
        self.topology = topology
        self.algorithm = algorithm
        self.name = f"open-loop({scenario.name})"
        self.warmup = scenario.service.warmup_cycles
        self.duration = scenario.service.duration_cycles
        self.admission = AdmissionController(scenario.service.admission)
        self.populations = [
            _PopulationState(p, topology, scenario.seed)
            for p in scenario.populations
        ]
        self.n_nodes = len(list(topology.nodes()))
        #: uid -> qos class for packets in flight; the telemetry layer
        #: pops entries at delivery (`TelemetryProbe(qos_of=...)`), so
        #: memory stays proportional to in-flight traffic.
        self.uid_qos: dict[int, str] = {}
        #: Closed-loop-compatible accounting (SimulationResult reads
        #: these): attempts = offers, successes = admissions.
        self.attempts = 0
        self.successes = 0
        self.draining = False
        self.drain_reason: str | None = None
        self.drain_cycle: int | None = None
        self.drain_limit = scenario.service.drain_limit_cycles
        #: Set when the drain safety valve fired with packets still in
        #: flight (exit code 3; should never happen on a healthy run —
        #: the paper's algorithms are deadlock-free).
        self.drain_timed_out = False
        #: Optional service hook, called once every ``tick_cycles``
        #: with ``(sim, cycle)`` — metrics publishing, pacing, signal
        #: polling.  Never affects simulation state.
        self.on_tick: Callable | None = None
        self._tick_cycles = scenario.service.tick_cycles
        #: Offers generated since the last tick (offered-load gauge).
        self.tick_offers = 0

    # ------------------------------------------------------------------
    def qos_of(self, uid: int) -> str | None:
        """Resolve-and-forget the service class of a delivered packet."""
        return self.uid_qos.pop(uid, None)

    def begin_drain(self, reason: str, cycle: int | None = None) -> None:
        """Stop offering new traffic; cancel the deferred backlog.

        Idempotent.  In-flight packets keep routing until delivered —
        the drain invariant (nothing injected is ever lost) is checked
        by ``tests/test_serve_service.py``.
        """
        if self.draining:
            return
        self.draining = True
        self.drain_reason = reason
        self.drain_cycle = cycle
        self.admission.cancel_backlog()

    # ------------------------------------------------------------------
    # InjectionModel interface
    # ------------------------------------------------------------------
    def attempt(self, sim: "PacketSimulator", cycle: int) -> None:
        if self.on_tick is not None and cycle % self._tick_cycles == 0:
            self.on_tick(sim, cycle)
        if not self.draining and (
            self.duration is not None and cycle >= self.duration
        ):
            self.begin_drain("duration budget reached", cycle)
        if self.draining:
            return
        offers: list[Offer] = []
        for pop in self.populations:
            if cycle % pop.spec.resample_every == 0:
                pop.resample(cycle, self.n_nodes)
            if pop.rate <= 0.0:
                continue
            for src, dst in draw_arrivals(
                sim.nodes, pop.rate, pop.pattern, pop.arrivals_rng
            ):
                offers.append(Offer(src, dst, pop.spec.qos, cycle))
        self.attempts += len(offers)
        self.tick_offers += len(offers)
        self.admission.admit(sim, cycle, offers, self._place(sim))

    def _place(self, sim):
        alg = self.algorithm

        def place(offer: Offer, cycle: int) -> None:
            msg = Message(
                src=offer.src,
                dst=offer.dst,
                state=alg.initial_state(offer.src, offer.dst),
                qos=offer.qos,
            )
            self.uid_qos[msg.uid] = offer.qos
            self.successes += 1
            sim.place_in_injection_queue(offer.src, msg, cycle)

        return place

    def finished(self, sim: "PacketSimulator", cycle: int) -> bool:
        if not self.draining:
            return False
        if sim.active == 0:
            return True
        if (
            self.drain_cycle is not None
            and cycle - self.drain_cycle >= self.drain_limit
        ):
            self.drain_timed_out = True
            return True
        return False
