"""Admission control at the injection queues.

The paper's Section-6 node holds a generated packet in its size-1
**injection queue** until a legal central queue frees up — which makes
that queue the natural admission-control point for an open-loop
service: when a node's injection queue is still occupied, the network
is exerting backpressure and the service must decide what to do with
the newly-offered packet.  Three policies:

* ``drop``          — reject the offer immediately (count it, move on);
* ``defer``         — park the offer in a bounded per-node FIFO and
  retry it ahead of new offers on later cycles; overflow drops the
  *newest* offer (the paper's queues never reorder, neither do we);
* ``shed-by-class`` — like ``defer``, but once the total deferred
  backlog exceeds ``shed_threshold``, offers of the *lowest-priority*
  service classes are dropped (shed) on arrival instead of deferred,
  keeping the deferral budget for the classes the scenario ranks
  highest (``class_order``, highest first).

Every decision is counted per service class, and the counters are
plain integers on this object — picklable, engine-agnostic, published
into the Prometheus registry by the service loop each tick
(``repro_admission_*``; see docs/OBSERVABILITY.md).

Determinism: decisions depend only on offer order and injection-queue
occupancy, both of which are identical across engines at equal seeds,
so admission outcomes (and therefore message uids) replay exactly.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from .scenario import AdmissionConfig


class Offer:
    """One offered packet: where from, where to, which class."""

    __slots__ = ("src", "dst", "qos", "offered_cycle")

    def __init__(self, src, dst, qos: str, offered_cycle: int):
        self.src = src
        self.dst = dst
        self.qos = qos
        self.offered_cycle = offered_cycle


class AdmissionController:
    """Gates offered packets on injection-queue backpressure."""

    def __init__(self, config: AdmissionConfig):
        self.config = config
        self.policy = config.policy
        #: Per-node FIFO of deferred offers (defer / shed-by-class).
        self.deferred: dict[Hashable, deque] = {}
        self.deferred_total = 0
        # -- counters, all keyed by qos class ---------------------------
        self.offered: dict[str, int] = {}
        self.accepted: dict[str, int] = {}
        self.dropped: dict[str, int] = {}
        self.shed: dict[str, int] = {}
        self.cancelled: dict[str, int] = {}
        #: Offers that waited >= 1 cycle before admission or drop.
        self.deferred_count: dict[str, int] = {}
        #: Cumulative cycles offers spent waiting in deferral FIFOs.
        self.defer_wait_cycles = 0
        # Class priority: position in class_order (earlier = higher);
        # classes not listed rank below all listed ones, alphabetically
        # among themselves for determinism.
        self._rank = {c: i for i, c in enumerate(config.class_order)}

    # ------------------------------------------------------------------
    def _count(self, table: dict[str, int], qos: str, n: int = 1) -> None:
        table[qos] = table.get(qos, 0) + n

    def _priority(self, qos: str) -> tuple:
        rank = self._rank.get(qos)
        if rank is None:
            return (1, qos)  # unlisted classes rank below listed ones
        return (0, rank)

    def _best_deferred_priority(self):
        """Highest priority among currently-deferred offers (or None).

        The *shed tier* is every class strictly below this: the
        controller never sheds the best class, and with a single class
        in play ``shed-by-class`` degrades to plain ``defer``.
        """
        return min(
            (self._priority(o.qos) for q in self.deferred.values()
             for o in q),
            default=None,
        )

    # ------------------------------------------------------------------
    # The per-cycle admission pass
    # ------------------------------------------------------------------
    def admit(self, sim, cycle: int, offers: list[Offer], place) -> None:
        """Retry deferred offers, then gate this cycle's new ones.

        ``place(offer, cycle)`` actually injects (the workload driver
        owns message construction so uids are assigned only on
        acceptance).  Deferred offers are retried in node order of
        first deferral, FIFO within a node — ahead of every new offer,
        so a deferred packet can never be starved by fresh arrivals at
        its own node.
        """
        if self.deferred_total:
            emptied = []
            for node, fifo in self.deferred.items():
                if fifo and sim.injection_queue_free(node):
                    offer = fifo.popleft()
                    self.deferred_total -= 1
                    self.defer_wait_cycles += cycle - offer.offered_cycle
                    self._count(self.accepted, offer.qos)
                    place(offer, cycle)
                if not fifo:
                    emptied.append(node)
            for node in emptied:
                del self.deferred[node]

        shedding = self.policy == "shed-by-class"
        best = self._best_deferred_priority() if shedding else None
        for offer in offers:
            self._count(self.offered, offer.qos)
            if sim.injection_queue_free(offer.src) and not self.deferred.get(
                offer.src
            ):
                self._count(self.accepted, offer.qos)
                place(offer, cycle)
                continue
            # Backpressure: the injection queue is occupied (or older
            # deferred offers at this node are still ahead in line).
            if self.policy == "drop":
                self._count(self.dropped, offer.qos)
                continue
            prio = self._priority(offer.qos)
            if (
                shedding
                and self.deferred_total >= self.config.shed_threshold
                and best is not None
                and prio > best
            ):
                self._count(self.shed, offer.qos)
                continue
            fifo = self.deferred.get(offer.src)
            if fifo is None:
                fifo = self.deferred[offer.src] = deque()
            if len(fifo) >= self.config.max_deferred_per_node:
                self._count(self.dropped, offer.qos)
                continue
            fifo.append(offer)
            self.deferred_total += 1
            self._count(self.deferred_count, offer.qos)
            if shedding and (best is None or prio < best):
                best = prio

    def cancel_backlog(self) -> int:
        """Drop every deferred offer (drain begins); returns the count.

        Cancelled offers were never injected, so the drain invariant
        "injected == delivered at the final snapshot" is unaffected;
        they are tallied separately so load reports stay honest.
        """
        n = 0
        for fifo in self.deferred.values():
            for offer in fifo:
                self._count(self.cancelled, offer.qos)
                n += 1
        self.deferred.clear()
        self.deferred_total = 0
        return n

    # ------------------------------------------------------------------
    def classes(self) -> list[str]:
        """Every service class any counter has seen, sorted."""
        seen: set[str] = set()
        for table in (
            self.offered,
            self.accepted,
            self.dropped,
            self.shed,
            self.cancelled,
            self.deferred_count,
        ):
            seen.update(table)
        return sorted(seen)

    def snapshot(self) -> dict:
        """Plain-dict counter dump (health endpoint, tests, logs)."""
        return {
            "policy": self.policy,
            "offered": dict(self.offered),
            "accepted": dict(self.accepted),
            "dropped": dict(self.dropped),
            "shed": dict(self.shed),
            "cancelled": dict(self.cancelled),
            "deferred": dict(self.deferred_count),
            "deferred_backlog": self.deferred_total,
            "defer_wait_cycles": self.defer_wait_cycles,
        }
