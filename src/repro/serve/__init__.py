"""``repro.serve`` — the streaming traffic service subsystem.

Turns the batch engines into a long-running, signal-driven service:
validated YAML scenarios (:mod:`~repro.serve.scenario`), open-loop
workload generation with admission control
(:mod:`~repro.serve.workloads`, :mod:`~repro.serve.admission`), the
service loop with graceful drain (:mod:`~repro.serve.service`), and a
live ``/metrics`` + ``/healthz`` endpoint (:mod:`~repro.serve.http`).

Entry points: ``repro serve <scenario.yaml>`` on the command line, or
programmatically::

    from repro.serve import load_scenario, TrafficService

    svc = TrafficService(load_scenario("examples/scenarios/smoke.yaml"))
    exit_code = svc.serve(port=0)

See ``docs/SERVING.md`` for the schema reference, admission policies,
endpoint contract, and determinism guarantees.
"""

from .admission import AdmissionController, Offer
from .scenario import (
    ADMISSION_POLICIES,
    LOAD_SHAPES,
    SERVE_ENGINES,
    Scenario,
    ScenarioError,
    load_scenario,
    parse_scenario,
)
from .service import (
    EXIT_CLEAN,
    EXIT_DRAIN_TIMEOUT,
    EXIT_ENGINE_ERROR,
    TrafficService,
)
from .workloads import OpenLoopInjection

__all__ = [
    "ADMISSION_POLICIES",
    "LOAD_SHAPES",
    "SERVE_ENGINES",
    "AdmissionController",
    "Offer",
    "Scenario",
    "ScenarioError",
    "load_scenario",
    "parse_scenario",
    "EXIT_CLEAN",
    "EXIT_DRAIN_TIMEOUT",
    "EXIT_ENGINE_ERROR",
    "TrafficService",
    "OpenLoopInjection",
]
