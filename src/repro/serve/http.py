"""Live telemetry endpoint for the traffic service (stdlib only).

A tiny :class:`http.server.ThreadingHTTPServer` running in a daemon
thread next to the simulation loop:

* ``GET /metrics``  — Prometheus text format, rendered from the live
  :class:`~repro.telemetry.registry.MetricRegistry` on every scrape
  (the existing :func:`~repro.telemetry.exporters.prometheus_text`
  exporter — no second metrics pipeline);
* ``GET /healthz``  — one JSON object: service phase
  (``serving``/``draining``/``stopped``), current cycle, in-flight and
  delivered packet counts, and the admission counter snapshot.

The handler only ever *reads*: the registry's metric objects are
mutated by the simulation thread with plain int/float writes, so a
scrape observes a consistent-enough point-in-time view without locks
(exactly the Prometheus client-library convention).  Nothing here can
block or slow the simulation loop.

Binding to port 0 picks an ephemeral port; the bound port is exposed
as :attr:`TelemetryEndpoint.port` and printed by the CLI so smoke
tests can scrape it (``benchmarks/bench_serve.py``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from ..telemetry import prometheus_text
from ..telemetry.registry import MetricRegistry


class _Handler(BaseHTTPRequestHandler):
    """Routes /metrics and /healthz; everything else is 404."""

    # Set per-server via the factory in TelemetryEndpoint.start().
    registry: MetricRegistry
    health: Callable[[], dict]

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler casing)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = prometheus_text(self.registry).encode()
            self._reply(200, "text/plain; version=0.0.4", body)
        elif path == "/healthz":
            body = (
                json.dumps(self.health(), sort_keys=True) + "\n"
            ).encode()
            self._reply(200, "application/json", body)
        else:
            self._reply(404, "text/plain", b"not found\n")

    def _reply(self, status: int, ctype: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args) -> None:  # pragma: no cover
        pass  # scrapes must not spam the service's stdout


class TelemetryEndpoint:
    """The /metrics + /healthz server, owned by the service loop."""

    def __init__(
        self,
        registry: MetricRegistry,
        health: Callable[[], dict],
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.registry = registry
        self.health = health
        self.host = host
        self.port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "TelemetryEndpoint":
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {"registry": self.registry, "health": staticmethod(self.health)},
        )
        self._server = ThreadingHTTPServer((self.host, self.port), handler)
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
