"""The long-running traffic service loop (``repro serve``).

:class:`TrafficService` wires a validated scenario into a live system:

* the engine comes from the existing
  :func:`~repro.experiments.runner.build_simulator` factory — the
  service never re-implements engine selection, it only *narrows* it
  (see :data:`~repro.serve.scenario.SERVE_ENGINES`);
* injection is the scenario's :class:`~repro.serve.workloads.\
  OpenLoopInjection` model, so the engine's own ``run()`` loop does the
  stepping and the per-engine finalization (result construction, probe
  flushing) stays in one place;
* every ``tick_cycles`` simulated cycles the model calls back into the
  service, which publishes admission/offered-load/QoS metrics into the
  Prometheus registry, optionally paces against wall clock
  (``tick_seconds``), and polls for stop signals;
* ``SIGINT``/``SIGTERM`` (or an exhausted ``duration_cycles`` budget)
  trigger a **graceful drain**: no new offers, the deferral backlog is
  cancelled (counted), and the run ends when the last in-flight packet
  delivers — the final snapshot therefore always satisfies
  ``injected == delivered`` (checked by ``tests/test_serve_service.py``).

Engines that cannot serve are refused loudly (the repo-wide policy):
``fast`` has no observer hook for the live probe, and ``sharded``
replays injection models inside worker processes where the service's
drain signal and tick callbacks cannot reach — see docs/SERVING.md.

Determinism (record mode): with ``service.record: true`` the probe
keeps the full event log, and identical scenario + seed + cycle budget
produce byte-identical ``events.jsonl`` artifacts on every serve
engine — the contract the CI smoke job and the service tests pin.

Exit codes: 0 clean drain, 3 drain limit exceeded (packets still in
flight when ``drain_limit_cycles`` ran out), 4 engine failure
(deadlock/stall/cycle cap).
"""

from __future__ import annotations

import signal
import time
from typing import Callable

from ..core.message import reset_message_ids
from ..experiments.runner import build_simulator
from ..sim.engine import DeadlockError, CycleLimitExceeded
from ..sim.metrics import SimulationResult
from ..sim.tables import EngineCapabilityError
from ..telemetry import MetricRegistry, TelemetryProbe, write_artifacts
from .http import TelemetryEndpoint
from .scenario import SERVE_ENGINES, Scenario
from .workloads import OpenLoopInjection

#: Exit codes of :meth:`TrafficService.serve`.
EXIT_CLEAN = 0
EXIT_DRAIN_TIMEOUT = 3
EXIT_ENGINE_ERROR = 4


def _reject_unservable_engine(engine: str) -> None:
    if engine in SERVE_ENGINES:
        return
    if engine == "fast":
        raise EngineCapabilityError(
            "engine='fast' cannot serve: the service's live telemetry "
            "probe needs an observer hook, which the fast engine "
            "deliberately lacks. Use engine='vector' for throughput or "
            "'compiled' for full observability (docs/SERVING.md, "
            "'Engines')."
        )
    if engine == "sharded":
        raise EngineCapabilityError(
            "engine='sharded' cannot serve: shard workers replay the "
            "injection model in their own processes, where the "
            "service's drain signal and tick callbacks cannot reach. "
            "Use engine='vector' (the same kernel, single-process) — "
            "see docs/SHARDING.md 'Capability limits' and "
            "docs/SERVING.md."
        )
    raise EngineCapabilityError(
        f"engine={engine!r} is not a serve engine; expected one of "
        f"{SERVE_ENGINES} (docs/SERVING.md)"
    )


class TrafficService:
    """One serving run: scenario -> engine + admission + endpoint."""

    def __init__(
        self,
        scenario: Scenario,
        engine: str | None = None,
        record: bool | None = None,
        registry: MetricRegistry | None = None,
        emit: Callable[[str], None] | None = None,
    ):
        self.scenario = scenario
        self.engine = engine or scenario.engine
        _reject_unservable_engine(self.engine)
        svc = scenario.service
        self.record = svc.record if record is None else record
        self.registry = registry if registry is not None else MetricRegistry()
        self.emit = emit or (lambda line: None)

        self.topology = scenario.build_topology()
        self.algorithm = scenario.build_algorithm(self.topology)
        self.model = OpenLoopInjection(scenario, self.topology, self.algorithm)
        self.model.on_tick = self._on_tick
        self.probe = TelemetryProbe(
            registry=self.registry,
            events=self.record,
            series=False,
            occupancy_every=svc.occupancy_every,
            qos_of=self.model.qos_of,
        )
        self.sim = build_simulator(
            self.algorithm,
            self.model,
            engine=self.engine,
            telemetry=self.probe,
            central_capacity=svc.central_capacity,
            stall_limit=svc.stall_limit,
        )
        self.endpoint: TelemetryEndpoint | None = None
        self.result: SimulationResult | None = None
        self._stop_signal: str | None = None
        self._published: dict[tuple[str, str], int] = {}
        self._wall_next: float | None = None
        # Static identity gauges so the very first scrape is non-empty.
        self._cycle_gauge = self.registry.gauge(
            "repro_service_cycle", help="Current routing cycle"
        )
        self._phase_gauge = self.registry.gauge(
            "repro_service_draining",
            help="1 while draining, 0 while serving",
        )
        self._backlog_gauge = self.registry.gauge(
            "repro_admission_backlog",
            help="Offers currently parked in deferral FIFOs",
        )
        self._offered_gauge = self.registry.gauge(
            "repro_offered_load",
            help="Offered packets per cycle over the last tick",
        )

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def install_signal_handlers(self) -> None:
        """Route SIGINT/SIGTERM into a graceful drain (CLI path only)."""

        def _handler(signum, frame):
            self._stop_signal = signal.Signals(signum).name

        signal.signal(signal.SIGINT, _handler)
        signal.signal(signal.SIGTERM, _handler)

    def request_stop(self, reason: str = "stop requested") -> None:
        """Programmatic drain trigger (tests, embedding)."""
        self._stop_signal = reason

    # ------------------------------------------------------------------
    # The tick callback (runs inside model.attempt, every tick_cycles)
    # ------------------------------------------------------------------
    def _on_tick(self, sim, cycle: int) -> None:
        if self._stop_signal is not None and not self.model.draining:
            self.emit(
                f"[cycle {cycle}] {self._stop_signal}: draining "
                f"({sim.active} in flight, "
                f"{self.model.admission.deferred_total} deferred cancelled)"
            )
            self.model.begin_drain(self._stop_signal, cycle)
        self._publish(sim, cycle)
        self._pace()

    def _publish(self, sim, cycle: int) -> None:
        reg = self.registry
        self._cycle_gauge.set(cycle)
        self._phase_gauge.set(1 if self.model.draining else 0)
        adm = self.model.admission
        self._backlog_gauge.set(adm.deferred_total)
        ticks = self.model.scenario.service.tick_cycles
        self._offered_gauge.set(self.model.tick_offers / ticks)
        self.model.tick_offers = 0
        for pop in self.model.populations:
            reg.gauge(
                "repro_active_users",
                labels={"population": pop.spec.name},
                help="Sampled active-user count per population",
            ).set(pop.active_users)
        # Admission counters live as plain ints on the controller
        # (engine-agnostic, picklable); publish monotonic deltas.
        tables = (
            ("offered", adm.offered),
            ("accepted", adm.accepted),
            ("dropped", adm.dropped),
            ("shed", adm.shed),
            ("cancelled", adm.cancelled),
            ("deferred", adm.deferred_count),
        )
        for outcome, table in tables:
            for qos, total in table.items():
                key = (outcome, qos)
                delta = total - self._published.get(key, 0)
                if delta:
                    reg.counter(
                        "repro_admission_offers_total",
                        labels={"outcome": outcome, "qos": qos},
                        help="Admission decisions by outcome and class",
                    ).inc(delta)
                    self._published[key] = total
        wait_key = ("wait", "")
        delta = adm.defer_wait_cycles - self._published.get(wait_key, 0)
        if delta:
            reg.counter(
                "repro_admission_defer_wait_cycles_total",
                help="Cumulative cycles offers waited in deferral FIFOs",
            ).inc(delta)
            self._published[wait_key] = adm.defer_wait_cycles

    def _pace(self) -> None:
        seconds = self.scenario.service.tick_seconds
        if not seconds:
            return
        now = time.monotonic()
        if self._wall_next is None:
            self._wall_next = now + seconds
            return
        if now < self._wall_next:
            time.sleep(self._wall_next - now)
        self._wall_next = max(self._wall_next + seconds, now)

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def health(self) -> dict:
        phase = "serving"
        if self.result is not None:
            phase = "stopped"
        elif self.model.draining:
            phase = "draining"
        return {
            "status": "ok",
            "phase": phase,
            "scenario": self.scenario.name,
            "engine": self.engine,
            "cycle": self.sim.cycle,
            "active": self.sim.active,
            "injected": self.sim.injected_count,
            "delivered": self.sim.delivered_count,
            "admission": self.model.admission.snapshot(),
        }

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------
    def serve(
        self,
        port: int | None = None,
        host: str = "127.0.0.1",
        outdir=None,
    ) -> int:
        """Run the scenario to completion; returns the exit code.

        ``port`` (even ``0`` for ephemeral) starts the ``/metrics`` +
        ``/healthz`` endpoint; ``None`` serves without one (tests).
        ``outdir`` writes record-mode artifacts (``events.jsonl``,
        ``metrics.prom``, ``summary.json``) after the drain.

        In record mode the global message-uid counter is restarted
        first, so identical scenario + seed + cycle budget produce
        byte-identical ``events.jsonl`` on every serve engine — the
        determinism contract in docs/SERVING.md.
        """
        if self.record:
            reset_message_ids()
        if port is not None:
            self.endpoint = TelemetryEndpoint(
                self.registry, self.health, host=host, port=port
            ).start()
            self.emit(f"telemetry endpoint: {self.endpoint.url}")
        self.emit(self.scenario.describe())
        code = EXIT_CLEAN
        try:
            self.result = self.sim.run()
        except (DeadlockError, CycleLimitExceeded) as exc:
            self.emit(f"engine error: {exc}")
            return self._finish(EXIT_ENGINE_ERROR, outdir)
        if self.model.drain_timed_out:
            self.emit(
                f"drain limit exceeded: {self.result.undelivered} packets "
                f"still in flight after "
                f"{self.scenario.service.drain_limit_cycles} cycles"
            )
            code = EXIT_DRAIN_TIMEOUT
        return self._finish(code, outdir)

    def _finish(self, code: int, outdir) -> int:
        if self.sim is not None:
            # Publish the final counter state before the last scrape.
            self._publish(self.sim, self.sim.cycle)
            self._phase_gauge.set(0)
        if self.result is not None:
            r = self.result
            self.emit(
                f"drained at cycle {r.cycles}: injected={r.injected} "
                f"delivered={r.delivered} in-flight={r.undelivered} "
                f"(reason: {self.model.drain_reason or 'engine stop'})"
            )
            for qos, counts in sorted(
                self.model.admission.snapshot()["offered"].items()
            ):
                acc = self.model.admission.accepted.get(qos, 0)
                self.emit(f"  class {qos}: offered={counts} accepted={acc}")
        if outdir is not None:
            paths = write_artifacts(self.probe, outdir)
            for kind in sorted(paths):
                self.emit(f"wrote {kind}: {paths[kind]}")
        if self.endpoint is not None:
            self.endpoint.stop()
            self.endpoint = None
        return code
