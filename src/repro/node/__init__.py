"""The routing node: buffers, arbitration, and functional designs (Section 6)."""

from .arbitration import RoundRobinArbiter, fifo_ranks, rotated
from .buffers import Buffer, BufferPair, OccupancyStats
from .model import LinkBufferSet, NodeDesign, build_node_design

__all__ = [
    "Buffer",
    "BufferPair",
    "OccupancyStats",
    "RoundRobinArbiter",
    "rotated",
    "fifo_ranks",
    "NodeDesign",
    "LinkBufferSet",
    "build_node_design",
]
