"""Single-slot link buffers.

Each physical link direction carries one input and one output buffer
*per traffic class* (Section 6): a static class per target central
queue, plus one class for dynamic-link traffic.  Buffers hold exactly
one packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..core.message import Message


@dataclass
class Buffer:
    """A one-packet buffer attached to a link direction and class."""

    link: tuple[Hashable, Hashable]  #: directed link (u, v)
    cls: str  #: traffic class (a queue kind or the dynamic class)
    slot: Message | None = None

    @property
    def empty(self) -> bool:
        return self.slot is None

    def put(self, msg: Message) -> None:
        if self.slot is not None:
            raise RuntimeError(f"buffer {self.link}/{self.cls} overrun")
        self.slot = msg

    def take(self) -> Message:
        if self.slot is None:
            raise RuntimeError(f"buffer {self.link}/{self.cls} underrun")
        msg, self.slot = self.slot, None
        return msg


@dataclass
class BufferPair:
    """The output buffer (at the sender) and input buffer (at the
    receiver) of one link direction and class."""

    out: Buffer
    inp: Buffer

    @classmethod
    def for_link(
        cls, u: Hashable, v: Hashable, traffic_class: str
    ) -> "BufferPair":
        return cls(
            out=Buffer((u, v), traffic_class),
            inp=Buffer((u, v), traffic_class),
        )


@dataclass
class OccupancyStats:
    """Running occupancy statistics for one queue or buffer class."""

    samples: int = 0
    total: int = 0
    peak: int = 0
    _series: list[int] = field(default_factory=list, repr=False)

    def record(self, occupancy: int, keep_series: bool = False) -> None:
        self.samples += 1
        self.total += occupancy
        if occupancy > self.peak:
            self.peak = occupancy
        if keep_series:
            self._series.append(occupancy)

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0
