"""Functional node designs (paper, Section 6, Figures 4-6).

A :class:`NodeDesign` enumerates, for one node of the network, every
hardware resource the routing algorithm requires:

* the injection and delivery queues,
* the central queues with their capacities,
* per incident link direction, the input/output buffers split by
  traffic class (one static class per target central queue that can
  arrive over that link, plus one class for dynamic-link traffic), and
* the internal connections between queues (phase changes, delivery).

The designs are derived *from the routing function itself* by probing
which transitions exist, so the structures reproduce Figures 4-6
mechanically; :mod:`repro.analysis.figures` renders them, and the
simulator instantiates its buffers from the same description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..core.queues import DELIVER, INJECT, QueueSpec
from ..core.routing_function import RoutingAlgorithm


@dataclass(frozen=True)
class LinkBufferSet:
    """Buffer classes of one directed link as seen from one node."""

    link: tuple[Hashable, Hashable]  #: directed link (u, v)
    link_index: int  #: service order at the sending node
    classes: tuple[str, ...]  #: traffic classes (queue kinds / ``dyn``)


@dataclass
class NodeDesign:
    """The functional design of one routing node."""

    node: Hashable
    algorithm_name: str
    central_queues: tuple[str, ...]
    queue_specs: dict[str, QueueSpec]
    #: Output buffer sets, one per outgoing link, in service order.
    output_links: list[LinkBufferSet] = field(default_factory=list)
    #: Input buffer sets, one per incoming link.
    input_links: list[LinkBufferSet] = field(default_factory=list)
    #: Internal queue-to-queue connections (e.g. ``("A", "B")``).
    internal_connections: list[tuple[str, str]] = field(default_factory=list)

    @property
    def num_central_queues(self) -> int:
        return len(self.central_queues)

    @property
    def num_buffers(self) -> int:
        return sum(len(l.classes) for l in self.output_links) + sum(
            len(l.classes) for l in self.input_links
        )

    def describe(self, format_node=str) -> str:
        """Multi-line textual rendering (the Figure 4-6 analogue)."""
        lines = [
            f"node {format_node(self.node)} [{self.algorithm_name}]",
            f"  queues: {INJECT}(cap=1), "
            + ", ".join(
                f"{k}(cap={self.queue_specs[k].capacity})"
                for k in self.central_queues
            )
            + f", {DELIVER}(cap=inf)",
        ]
        for l in self.output_links:
            lines.append(
                f"  out link#{l.link_index} -> {format_node(l.link[1])}: "
                + ", ".join(l.classes)
            )
        for l in self.input_links:
            lines.append(
                f"  in  link from {format_node(l.link[0])}: "
                + ", ".join(l.classes)
            )
        if self.internal_connections:
            lines.append(
                "  internal: "
                + ", ".join(f"{a} -> {b}" for a, b in self.internal_connections)
            )
        return "\n".join(lines)


def derive_internal_connections(
    algorithm: RoutingAlgorithm, node: Hashable
) -> list[tuple[str, str]]:
    """Internal queue-to-queue connections implied by the algorithm.

    Probes the routing function over all destinations and collects
    transitions that stay within ``node`` (phase switches and delivery).
    Exact for state-free algorithms; for stateful algorithms it probes
    the state space reachable through single-queue inspection, which
    covers every kind pair in practice (tests compare against the
    exhaustive exploration).
    """
    found: set[tuple[str, str]] = set()
    kinds = algorithm.central_queue_kinds(node)
    for dst in algorithm.topology.nodes():
        from ..core.qdg import explore

        # Exhaustive per-destination exploration is exact but costly;
        # only used for small figure-scale instances.
        exp = explore(algorithm, destinations=[dst])
        for t in exp.transitions:
            if (
                t.q_from.node == node
                and t.q_to.node == node
                and t.q_from.kind in kinds
            ):
                found.add((t.q_from.kind, t.q_to.kind))
    return sorted(found)


def build_node_design(
    algorithm: RoutingAlgorithm,
    node: Hashable,
    central_capacity: int = 5,
    derive_internal: bool = False,
) -> NodeDesign:
    """Instantiate the Section-6 node design for ``node``."""
    topo = algorithm.topology
    design = NodeDesign(
        node=node,
        algorithm_name=algorithm.name,
        central_queues=algorithm.central_queue_kinds(node),
        queue_specs=algorithm.queue_specs(node, central_capacity),
    )
    for v in sorted(topo.neighbors(node), key=lambda w: topo.link_index(node, w)):
        design.output_links.append(
            LinkBufferSet(
                link=(node, v),
                link_index=topo.link_index(node, v),
                classes=algorithm.buffer_classes(node, v),
            )
        )
    for u in topo.in_neighbors(node):
        design.input_links.append(
            LinkBufferSet(
                link=(u, node),
                link_index=topo.link_index(u, node),
                classes=algorithm.buffer_classes(u, node),
            )
        )
    if derive_internal:
        design.internal_connections = derive_internal_connections(
            algorithm, node
        )
    return design
