"""Fair arbitration helpers.

The paper requires that "some fair policy must be implemented so as to
guarantee fair access" to queues and links (Section 6), and
livelock-freedom rests on that fairness plus FIFO queue service.  We
use rotating-priority (round-robin) arbiters: each arbitration round
starts the scan one position later than the previous one, so every
contender is granted in bounded time.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


class RoundRobinArbiter:
    """Rotating-priority order over a fixed number of contenders."""

    def __init__(self, size: int):
        if size < 0:
            raise ValueError("size must be >= 0")
        self.size = size
        self._next = 0

    def order(self) -> list[int]:
        """Indices 0..size-1 starting at the current priority pointer."""
        if self.size == 0:
            return []
        s = self._next
        return [(s + i) % self.size for i in range(self.size)]

    def grant(self, index: int) -> None:
        """Record that ``index`` won; it moves to lowest priority."""
        if self.size:
            self._next = (index + 1) % self.size

    def rotate(self) -> None:
        """Advance the pointer unconditionally (per-cycle rotation)."""
        if self.size:
            self._next = (self._next + 1) % self.size


def rotated(seq: Sequence[T], offset: int) -> list[T]:
    """``seq`` rotated left by ``offset`` (cheap per-cycle fairness)."""
    if not seq:
        return []
    k = offset % len(seq)
    return list(seq[k:]) + list(seq[:k])


def fifo_ranks(queues: Iterable[Sequence[T]]) -> list[tuple[int, int, T]]:
    """Global FIFO service order across several queues.

    Returns ``(position, queue_index, item)`` triples sorted so that
    heads of all queues come first (ties broken by queue index) — the
    Section-7.1 rule that "if two messages want to enter the same
    buffer, the first one in the queue in FIFO order will get it".
    """
    out = []
    for qi, q in enumerate(queues):
        for pos, item in enumerate(q):
            out.append((pos, qi, item))
    out.sort(key=lambda t: (t[0], t[1]))
    return out
