"""Flit-level worm-hole simulator.

Models the pipeline behaviour worm-hole routing is known for:

* a worm's **header** advances by acquiring virtual channels; body
  flits follow through the reserved chain; the **tail** releases each
  channel as it passes;
* each virtual channel buffers ``depth`` flits (default 2);
* each **physical link** transfers at most one flit per cycle,
  round-robin among the virtual channels multiplexed over it;
* a blocked header waits on *any* of its candidate channels — the
  escape candidates are always among them, which is what the
  deadlock-freedom argument (see :mod:`repro.wormhole.verification`)
  relies on;
* the destination consumes one flit per worm per cycle.

The engine is generic over :class:`~repro.wormhole.routing.WormholeScheme`.
Uncontended, a worm of ``L`` flits crossing ``h`` links is delivered in
``h + L + 1`` cycles (header pipeline + body drain) — the distance
insensitivity that motivated worm-hole routing, in contrast to the
packet engine's ``2h + 1`` per-packet store-and-forward cost.
"""

from __future__ import annotations

from typing import Hashable

from ..node.arbitration import rotated
from ..sim.metrics import LatencyStats
from .channels import ChannelId, ChannelState
from .flit import Worm
from .routing import WormholeScheme


class WormholeDeadlockError(RuntimeError):
    """No flit moved for ``stall_limit`` cycles with worms in flight."""


class WormholeSimulator:
    """Simulates a set of worms through one worm-hole scheme."""

    def __init__(
        self,
        scheme: WormholeScheme,
        channel_depth: int = 2,
        stall_limit: int = 1000,
    ):
        self.scheme = scheme
        self.topology = scheme.topology
        self.depth = channel_depth
        self.stall_limit = stall_limit

        self.channels: dict[ChannelId, ChannelState] = {
            cid: ChannelState(cid, channel_depth)
            for cid in scheme.all_channels()
        }
        #: per directed link: its channel ids (for link arbitration)
        self.link_channels: dict[tuple, list[ChannelId]] = {}
        for cid in self.channels:
            self.link_channels.setdefault(cid.link, []).append(cid)

        self.cycle = 0
        self.pending: list[Worm] = []  #: not yet injected (header off-net)
        self.active: list[Worm] = []  #: header in network, not delivered
        self.delivered: list[Worm] = []
        self.latency = LatencyStats()
        self.head_latency = LatencyStats()
        self._last_progress = 0

        # Per-worm runtime: the chain of reserved channels and counters.
        self._chain: dict[int, list[ChannelId]] = {}
        self._consumed: dict[int, int] = {}
        self._head_done: dict[int, bool] = {}

    # ------------------------------------------------------------------
    # Worm management
    # ------------------------------------------------------------------
    def offer(self, worm: Worm) -> None:
        """Queue a worm for injection at its source."""
        worm.state = self.scheme.initial_state(worm.src, worm.dst)
        self.pending.append(worm)

    def offer_all(self, worms) -> None:
        for w in worms:
            self.offer(w)

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------
    def step(self) -> None:
        self._inject_headers()
        self._advance_headers()
        self._consume_flits()
        self._transfer_flits()
        self._release_tails()
        self.cycle += 1
        in_flight = len(self.active) + len(self.pending)
        if in_flight and self.cycle - self._last_progress > self.stall_limit:
            raise WormholeDeadlockError(
                f"no flit progress for {self.stall_limit} cycles "
                f"({len(self.active)} worms active, {self.scheme.name})"
            )

    def _head_node(self, worm: Worm) -> Hashable:
        chain = self._chain[worm.uid]
        return chain[-1].v if chain else worm.src

    def _inject_headers(self) -> None:
        """Headers of pending worms try to enter the network."""
        still_pending = []
        # One worm may inject per source per cycle; serve in order.
        injecting_sources: set[Hashable] = set()
        for worm in self.pending:
            if worm.src in injecting_sources:
                still_pending.append(worm)
                continue
            if worm.src == worm.dst:
                continue  # degenerate; drop silently
            cand = self.scheme.candidates(worm.src, worm.dst, worm.state)
            got = None
            for cid in cand:
                ch = self.channels[cid]
                if ch.free:
                    got = cid
                    break
            if got is None:
                still_pending.append(worm)
                continue
            injecting_sources.add(worm.src)
            worm.injected_cycle = self.cycle
            worm.state = self.scheme.update_state(worm.state, got)
            ch = self.channels[got]
            ch.reserve(worm)
            ch.accept_flit()  # the header flit crosses the first link
            worm.flits_to_inject -= 1
            self._chain[worm.uid] = [got]
            self._consumed[worm.uid] = 0
            self._head_done[worm.uid] = False
            self.active.append(worm)
            self._last_progress = self.cycle
        self.pending = still_pending

    def _advance_headers(self) -> None:
        """Headers at intermediate nodes reserve their next channel."""
        for worm in self.active:
            if self._head_done[worm.uid]:
                continue
            chain = self._chain[worm.uid]
            head_ch = self.channels[chain[-1]]
            # The header is the last flit to have entered the chain end;
            # it is present iff that channel has buffered flits and no
            # further channel is reserved yet.
            if head_ch.flits == 0:
                continue
            u = chain[-1].v
            if u == worm.dst:
                self._head_done[worm.uid] = True
                worm.head_arrived_cycle = self.cycle
                continue
            for cid in self.scheme.candidates(u, worm.dst, worm.state):
                ch = self.channels[cid]
                if ch.free:
                    ch.reserve(worm)
                    worm.state = self.scheme.update_state(worm.state, cid)
                    chain.append(cid)
                    self._last_progress = self.cycle
                    break

    def _consume_flits(self) -> None:
        """The destination sinks one flit per worm per cycle."""
        finished = []
        for worm in self.active:
            if not self._head_done[worm.uid]:
                continue
            chain = self._chain[worm.uid]
            last = self.channels[chain[-1]]
            if last.flits > 0:
                last.emit_flit()
                self._consumed[worm.uid] += 1
                worm.flits_delivered += 1
                self._last_progress = self.cycle
                if self._consumed[worm.uid] == worm.length:
                    worm.delivered_cycle = self.cycle
                    finished.append(worm)
        for worm in finished:
            self.active.remove(worm)
            self.delivered.append(worm)
            self.latency.record(worm.latency)
            self.head_latency.record(worm.head_latency)
            for cid in self._chain.pop(worm.uid):
                ch = self.channels[cid]
                if ch.owner is worm:
                    ch.release()

    def _transfer_flits(self) -> None:
        """One flit per physical link per cycle, round-robin over VCs.

        A transfer moves a flit from the worm's previous chain element
        (or the source network interface) into the channel, based on
        start-of-cycle occupancies.
        """
        snapshots = {cid: ch.flits for cid, ch in self.channels.items()}
        for link, cids in self.link_channels.items():
            order = rotated(cids, self.cycle) if len(cids) > 1 else cids
            for cid in order:
                ch = self.channels[cid]
                worm = ch.owner
                if worm is None or snapshots[cid] >= self.depth:
                    continue
                chain = self._chain.get(worm.uid)
                if not chain:
                    continue
                idx = chain.index(cid)
                if idx == 0:
                    # Feed from the source network interface.
                    if worm.flits_to_inject <= 0:
                        continue
                    worm.flits_to_inject -= 1
                    ch.accept_flit()
                else:
                    prev = self.channels[chain[idx - 1]]
                    if snapshots[chain[idx - 1]] <= 0:
                        continue
                    prev.emit_flit()
                    ch.accept_flit()
                self._last_progress = self.cycle
                break  # one flit per physical link per cycle

    def _release_tails(self) -> None:
        """Channels fully passed by their worm's tail are released."""
        for worm in self.active:
            chain = self._chain[worm.uid]
            keep = []
            for i, cid in enumerate(chain):
                ch = self.channels[cid]
                if (
                    i < len(chain) - 1
                    and ch.flits == 0
                    and ch.exited >= worm.length
                ):
                    ch.release()
                else:
                    keep.append(cid)
            self._chain[worm.uid] = keep

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    def run(self, max_cycles: int = 1_000_000) -> "WormholeSimulator":
        """Step until every offered worm is delivered."""
        while (self.pending or self.active) and self.cycle < max_cycles:
            self.step()
        if self.pending or self.active:
            raise RuntimeError(
                f"wormhole run exceeded {max_cycles} cycles with "
                f"{len(self.pending) + len(self.active)} worms in flight"
            )
        return self
