"""Flits and worms.

In worm-hole routing a packet is a *worm* of flits: one header flit
that performs routing decisions, body flits that follow the header's
path pipeline-style, and a tail flit that releases the channels the
worm occupied.  Only the header carries routing information; body and
tail flits inherit the reserved channel chain.

The companion papers of this work ([GPS91], cited in Section 1 and at
the end of Section 4) extend the dynamic-link methodology to worm-hole
routing; :mod:`repro.wormhole` reproduces that extension with
escape-channel schemes on the hypercube and the 2-D torus.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Hashable

_worm_counter = itertools.count()


class FlitKind(Enum):
    HEAD = "head"
    BODY = "body"
    TAIL = "tail"


@dataclass(eq=False)
class Worm:
    """One worm-hole packet.

    ``length`` counts flits including header and tail (``length >= 1``;
    a single-flit worm's header doubles as its tail).
    """

    src: Hashable
    dst: Hashable
    length: int
    uid: int = field(default_factory=lambda: next(_worm_counter))
    injected_cycle: int = -1
    delivered_cycle: int = -1  #: cycle the TAIL reached the destination
    head_arrived_cycle: int = -1  #: cycle the HEAD reached the destination
    state: Any = None  #: routing state (phase etc.), owned by the scheme

    #: Flits not yet offered to the network (still at the source NI).
    flits_to_inject: int = 0
    #: Flits already consumed at the destination.
    flits_delivered: int = 0

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("worm length must be >= 1")
        self.flits_to_inject = self.length

    @property
    def delivered(self) -> bool:
        return self.delivered_cycle >= 0

    @property
    def latency(self) -> int:
        """Tail-delivery latency in cycles."""
        if not self.delivered or self.injected_cycle < 0:
            raise ValueError("worm not delivered yet")
        return self.delivered_cycle - self.injected_cycle

    @property
    def head_latency(self) -> int:
        """Header-arrival latency in cycles."""
        if self.head_arrived_cycle < 0 or self.injected_cycle < 0:
            raise ValueError("head not arrived yet")
        return self.head_arrived_cycle - self.injected_cycle

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Worm(#{self.uid} {self.src}->{self.dst} x{self.length})"


def reset_worm_ids() -> None:
    """Restart the worm id counter (test isolation helper)."""
    global _worm_counter
    _worm_counter = itertools.count()
