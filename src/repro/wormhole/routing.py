"""Worm-hole routing schemes with escape channels.

The dynamic-link methodology carries over to worm-hole routing (the
paper, Section 1 and end of Section 4, pointing to [GPS91]): keep an
*escape* sub-network of virtual channels whose channel dependency
graph is acyclic and always offers a route to the destination, and add
freely usable *adaptive* channels on top.  A blocked header may wait
on any candidate, and because the escape candidates are always among
them, the escape network drains any potential cycle — the channel-level
analogue of Section 2's conditions (this is the argument later
formalised by Duato, which [GPS91] anticipates for tori/hypercubes).

Schemes provided:

* :class:`HypercubeEcubeWormhole` — dimension-order, one VC per link
  (the [DS86a] baseline; its CDG is acyclic outright);
* :class:`HypercubeAdaptiveWormhole` — fully-adaptive minimal; escape
  VCs implement the paper's hung two-phase scheme (class ``eA`` on
  down-links, ``eB`` on up-links), one adaptive VC everywhere;
* :class:`TorusDimensionOrderWormhole` — dimension order with two
  dateline VCs per link ([DS86b] torus routing chip discipline);
* :class:`TorusAdaptiveWormhole` — fully-adaptive minimal; the same
  dateline escape discipline plus one adaptive VC per link.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable

from ..topology.hypercube import Hypercube
from ..topology.torus import Torus
from .channels import ChannelId

#: Class label of the adaptive (fully-permissive) virtual channel.
ADAPTIVE = "adp"


class WormholeScheme(ABC):
    """A worm-hole routing function over virtual channels."""

    name: str = "wormhole"
    is_minimal: bool = True
    is_fully_adaptive: bool = False

    def __init__(self, topology):
        self.topology = topology

    @abstractmethod
    def channel_classes(self, u: Hashable, v: Hashable) -> tuple[str, ...]:
        """VC classes on directed link ``u -> v``."""

    def initial_state(self, src: Hashable, dst: Hashable) -> Any:
        return None

    def update_state(self, state: Any, channel: ChannelId) -> Any:
        """New routing state after the header takes ``channel``."""
        return state

    @abstractmethod
    def escape_channels(
        self, u: Hashable, dst: Hashable, state: Any
    ) -> list[ChannelId]:
        """Escape candidates at ``u`` (non-empty unless ``u == dst``)."""

    def adaptive_channels(
        self, u: Hashable, dst: Hashable, state: Any
    ) -> list[ChannelId]:
        """Freely usable candidates (default: none — oblivious)."""
        return []

    def candidates(
        self, u: Hashable, dst: Hashable, state: Any
    ) -> list[ChannelId]:
        """All candidates, adaptive first (preferred), escape last."""
        esc = self.escape_channels(u, dst, state)
        adp = [
            c for c in self.adaptive_channels(u, dst, state) if c not in esc
        ]
        return adp + esc

    def all_channels(self):
        for u in self.topology.nodes():
            for v in self.topology.neighbors(u):
                for vc in self.channel_classes(u, v):
                    yield ChannelId(u, v, vc)


# ----------------------------------------------------------------------
# Hypercube
# ----------------------------------------------------------------------
class HypercubeEcubeWormhole(WormholeScheme):
    """Dimension-order worm-hole routing, one VC per link ([DS86a]).

    Correcting dimensions in ascending order orders the channels by
    dimension, so the CDG is acyclic without any VC splitting.
    """

    name = "wh-hypercube-ecube"
    is_fully_adaptive = False

    def __init__(self, topology: Hypercube):
        if not isinstance(topology, Hypercube):
            raise TypeError("requires a Hypercube topology")
        super().__init__(topology)
        self.n = topology.n

    def channel_classes(self, u: int, v: int) -> tuple[str, ...]:
        return ("e",)

    def escape_channels(self, u: int, dst: int, state: Any) -> list[ChannelId]:
        diff = u ^ dst
        if not diff:
            return []
        low = diff & -diff
        return [ChannelId(u, u ^ low, "e")]


class HypercubeAdaptiveWormhole(WormholeScheme):
    """Fully-adaptive minimal worm-hole routing on the hypercube.

    One adaptive channel per link direction permits every minimal hop
    at any time — the worm-hole analogue of the dynamic links — while
    the **escape** channel implements dimension-order routing.  On
    minimal routes a corrected dimension never becomes incorrect
    again, so every escape request concerns a strictly higher
    dimension than any escape channel already held: the extended
    escape CDG is acyclic (machine-checked).

    Why not the packet scheme's hung two-phase escape?  Worm-hole
    indirect dependencies break it: a worm can hold a phase-A (0 -> 1)
    escape channel at a deep level, descend via adaptive 1 -> 0 hops,
    and request a phase-A escape channel at a shallower level — a
    backward edge that closes a cycle.  The deliberately-faithful
    transcription is kept as :class:`HungEscapeHypercubeWormhole` and
    our verifier exhibits the cycle
    (``tests/test_wormhole_verification.py``); this is exactly why the
    worm-hole generalisation is non-trivial and deferred to [GPS91].
    """

    name = "wh-hypercube-adaptive"
    is_fully_adaptive = True

    def __init__(self, topology: Hypercube):
        if not isinstance(topology, Hypercube):
            raise TypeError("requires a Hypercube topology")
        super().__init__(topology)
        self.n = topology.n

    def channel_classes(self, u: int, v: int) -> tuple[str, ...]:
        return ("e", ADAPTIVE)

    @staticmethod
    def _dims(mask: int):
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def escape_channels(self, u: int, dst: int, state: Any) -> list[ChannelId]:
        diff = u ^ dst
        if not diff:
            return []
        low = diff & -diff
        return [ChannelId(u, u ^ low, "e")]

    def adaptive_channels(
        self, u: int, dst: int, state: Any
    ) -> list[ChannelId]:
        diff = u ^ dst
        return [
            ChannelId(u, u ^ (1 << i), ADAPTIVE) for i in self._dims(diff)
        ]


class HungEscapeHypercubeWormhole(HypercubeAdaptiveWormhole):
    """Negative example: the packet scheme's hung escape, verbatim.

    Class ``eA`` escape channels on down-links (0 -> 1 corrections),
    ``eB`` on up-links (1 -> 0), adaptive channels everywhere.  Safe
    for *packet* routing (Theorem 1), but NOT for worm-hole routing:
    the extended escape CDG has cycles through adaptive detours.  Kept
    so the verifier's counterexample stays reproducible.
    """

    name = "wh-hypercube-hung-escape"

    def channel_classes(self, u: int, v: int) -> tuple[str, ...]:
        dim = self.topology.link_index(u, v)
        if (u >> dim) & 1 == 0:
            return ("eA", ADAPTIVE)  # down-link: 0 -> 1 escape traffic
        return ("eB", ADAPTIVE)  # up-link: 1 -> 0 escape traffic

    def escape_channels(self, u: int, dst: int, state: Any) -> list[ChannelId]:
        mask = self.topology._mask
        zeros = ~u & dst & mask
        if zeros:
            return [
                ChannelId(u, u ^ (1 << i), "eA") for i in self._dims(zeros)
            ]
        ones = u & ~dst & mask
        return [ChannelId(u, u ^ (1 << i), "eB") for i in self._dims(ones)]


# ----------------------------------------------------------------------
# Torus
# ----------------------------------------------------------------------
class TorusDimensionOrderWormhole(WormholeScheme):
    """Dimension-order torus worm-hole routing with dateline VCs.

    Within each ring, worms start on VC class ``e1`` and switch to
    ``e0`` after crossing the ring's dateline (the [DS86b] torus
    routing chip discipline); dimensions are served in ascending
    order.  Worm state tracks which rings have been crossed.
    """

    name = "wh-torus-dimension-order"
    is_fully_adaptive = False

    def __init__(self, topology: Torus):
        if not isinstance(topology, Torus):
            raise TypeError("requires a Torus topology")
        super().__init__(topology)
        self.k = topology.k

    def channel_classes(self, u, v) -> tuple[str, ...]:
        return ("e0", "e1")

    def initial_state(self, src, dst) -> tuple[bool, ...]:
        return tuple(False for _ in range(self.k))

    def update_state(self, state, channel: ChannelId):
        # Dateline crossings count on every channel class: adaptive
        # hops too must demote later escape traffic to class e0.
        topo: Torus = self.topology
        u, v = channel.u, channel.v
        for i in range(self.k):
            if u[i] != v[i]:
                delta = +1 if (u[i] + 1) % topo.shape[i] == v[i] else -1
                if topo.crosses_dateline(u, i, delta):
                    return state[:i] + (True,) + state[i + 1 :]
                return state
        return state

    def _ring_escape(self, u, dst, state, dim: int) -> ChannelId:
        topo: Torus = self.topology
        delta = topo.minimal_directions(u[dim], dst[dim], dim)[0]
        v = topo.step(u, dim, delta)
        crossed = state[dim] or topo.crosses_dateline(u, dim, delta)
        return ChannelId(u, v, "e0" if crossed else "e1")

    def escape_channels(self, u, dst, state) -> list[ChannelId]:
        for i in range(self.k):
            if u[i] != dst[i]:
                return [self._ring_escape(u, dst, state, i)]
        return []


class TorusAdaptiveWormhole(TorusDimensionOrderWormhole):
    """Fully-adaptive minimal torus worm-hole routing ([GPS91]-style).

    The dimension-order dateline discipline is kept as the escape
    network; one adaptive VC per link direction allows any minimal hop
    at any time.  3 VCs per link direction in total — fewer than the
    [LH91] scheme the paper compares against, which is exactly the
    resource claim made at the end of Section 1.
    """

    name = "wh-torus-adaptive"
    is_fully_adaptive = True

    def channel_classes(self, u, v) -> tuple[str, ...]:
        return ("e0", "e1", ADAPTIVE)

    def adaptive_channels(self, u, dst, state) -> list[ChannelId]:
        topo: Torus = self.topology
        out = []
        for i in range(self.k):
            if u[i] == dst[i]:
                continue
            for delta in topo.minimal_directions(u[i], dst[i], i):
                out.append(ChannelId(u, topo.step(u, i, delta), ADAPTIVE))
        return out
