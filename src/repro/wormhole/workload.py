"""Worm workloads: batch and open-loop generators.

Mirrors :mod:`repro.sim.injection` for the flit-level engine: batch
(permutation / random) worm populations, and a Bernoulli open-loop
source for saturation studies.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import numpy as np

from ..sim.traffic import TrafficPattern
from ..topology.base import Topology
from .engine import WormholeSimulator
from .flit import Worm


def permutation_worms(
    topology: Topology,
    pattern: TrafficPattern,
    length: int,
    rng: np.random.Generator,
    per_node: int = 1,
) -> list[Worm]:
    """One batch of worms, ``per_node`` per source, destinations drawn
    from ``pattern`` (fixed points stay silent)."""
    worms = []
    for u in topology.nodes():
        for _ in range(per_node):
            dst = pattern.draw(u, rng)
            if dst != u:
                worms.append(Worm(src=u, dst=dst, length=length))
    return worms


class BernoulliWormSource:
    """Open-loop worm generation at rate ``lam`` per node per cycle.

    Unlike the packet model there is no size-1 injection queue: offered
    worms accumulate at the source NI, so the interesting metrics are
    the delivered throughput and the latency of *accepted* worms; the
    source also tracks the backlog as a saturation signal.
    """

    def __init__(
        self,
        topology: Topology,
        pattern: TrafficPattern,
        length: int,
        rate: float,
        rng: np.random.Generator,
    ):
        if not 0.0 < rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")
        self.topology = topology
        self.nodes = list(topology.nodes())
        self.pattern = pattern
        self.length = length
        self.rate = rate
        self.rng = rng
        self.offered = 0

    def emit(self, cycle: int) -> Iterable[Worm]:
        draws = self.rng.random(len(self.nodes))
        for u, x in zip(self.nodes, draws):
            if x < self.rate:
                dst = self.pattern.draw(u, self.rng)
                if dst != u:
                    self.offered += 1
                    yield Worm(src=u, dst=dst, length=self.length)


def run_open_loop(
    sim: WormholeSimulator,
    source: BernoulliWormSource,
    duration: int,
    drain: bool = False,
    max_cycles: int = 1_000_000,
) -> WormholeSimulator:
    """Drive a simulator from an open-loop source for ``duration``
    cycles (optionally draining the in-flight worms afterwards)."""
    while sim.cycle < duration:
        sim.offer_all(source.emit(sim.cycle))
        sim.step()
    if drain:
        while (sim.pending or sim.active) and sim.cycle < max_cycles:
            sim.step()
    return sim


def backlog(sim: WormholeSimulator) -> int:
    """Worms offered but whose header has not entered the network."""
    return len(sim.pending)
