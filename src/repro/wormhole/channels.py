"""Virtual channels.

Worm-hole routing's critical resources are not queues but *virtual
channels* (VCs): flit buffers multiplexed over a physical link.  A VC
is identified by the directed link it sits on plus a class label; the
channel dependency graph (CDG) over VCs plays the role the QDG plays
for packet routing (the paper bases its QDG definition on [DS86a]'s
virtual channels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, NamedTuple

from .flit import Worm


class ChannelId(NamedTuple):
    """A virtual channel on directed link ``u -> v`` with class ``vc``."""

    u: Hashable
    v: Hashable
    vc: str

    @property
    def link(self) -> tuple[Hashable, Hashable]:
        return (self.u, self.v)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ch[{self.u}->{self.v}:{self.vc}]"


@dataclass
class ChannelState:
    """Runtime state of one virtual channel in the flit simulator."""

    cid: ChannelId
    depth: int  #: flit-buffer depth
    owner: Worm | None = None  #: worm currently holding the channel
    flits: int = 0  #: flits of the owner currently buffered here
    entered: int = 0  #: owner flits that have entered so far
    exited: int = 0  #: owner flits that have left so far

    @property
    def free(self) -> bool:
        return self.owner is None

    @property
    def has_space(self) -> bool:
        return self.flits < self.depth

    def reserve(self, worm: Worm) -> None:
        if self.owner is not None:
            raise RuntimeError(f"{self.cid} already owned")
        self.owner = worm
        self.flits = 0
        self.entered = 0
        self.exited = 0

    def release(self) -> None:
        if self.flits:
            raise RuntimeError(f"releasing non-empty {self.cid}")
        self.owner = None
        self.entered = 0
        self.exited = 0

    def accept_flit(self) -> None:
        if not self.has_space:
            raise RuntimeError(f"{self.cid} buffer overrun")
        self.flits += 1
        self.entered += 1

    def emit_flit(self) -> None:
        if self.flits <= 0:
            raise RuntimeError(f"{self.cid} buffer underrun")
        self.flits -= 1
        self.exited += 1
