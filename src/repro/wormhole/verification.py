"""Deadlock-freedom verification for worm-hole schemes.

Packet routing needs the *queue* dependency graph to be (dynamically)
acyclic; worm-hole routing needs more, because a blocked worm keeps
holding every channel behind its header.  The sufficient condition
(anticipated by [GPS91], later formalised by Duato) is:

1. the **escape** sub-network must offer a candidate at every
   reachable ``(node, state)`` short of the destination, and
2. the escape channels' **extended** dependency graph — including
   *indirect* dependencies, where a worm holds an escape channel,
   travels over adaptive channels, and only later requests another
   escape channel — must be acyclic.

:func:`extended_escape_cdg` builds that graph by exhaustive
exploration of reachable header configurations ``(node, state,
last escape channel taken)``; consecutive-escape edges compose
transitively, so cycle detection over this graph covers arbitrary
held-channel chains.  :func:`verify_wormhole_scheme` packages the
checks into a report, mirroring :mod:`repro.core.verification`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable

import networkx as nx

from .channels import ChannelId
from .routing import ADAPTIVE, WormholeScheme


def _freeze(state: Any) -> Any:
    if isinstance(state, dict):
        return tuple(sorted(state.items()))
    return state


@dataclass
class WormholeReport:
    """Outcome of verifying one worm-hole scheme instance."""

    scheme: str
    escape_available: bool = True
    escape_cdg_acyclic: bool = True
    adjacency_ok: bool = True
    minimal: bool | None = None
    errors: list[str] = field(default_factory=list)

    @property
    def deadlock_free(self) -> bool:
        return (
            self.escape_available
            and self.escape_cdg_acyclic
            and self.adjacency_ok
        )

    def fail(self, attr: str, msg: str, cap: int = 20) -> None:
        setattr(self, attr, False)
        if len(self.errors) < cap:
            self.errors.append(msg)

    def summary(self) -> str:
        flags = {
            "escape-available": self.escape_available,
            "extended-escape-CDG": self.escape_cdg_acyclic,
            "adjacency": self.adjacency_ok,
        }
        if self.minimal is not None:
            flags["minimal"] = self.minimal
        body = ", ".join(
            f"{k}={'ok' if v else 'FAIL'}" for k, v in flags.items()
        )
        return f"{self.scheme}: {body}"


def extended_escape_cdg(
    scheme: WormholeScheme,
    sources: Iterable[Hashable] | None = None,
    destinations: Iterable[Hashable] | None = None,
    report: WormholeReport | None = None,
) -> nx.DiGraph:
    """The escape channels' extended dependency graph.

    Explores every reachable header configuration and adds an edge
    from the last escape channel a worm has taken to every escape
    channel it may request afterwards (directly or after any number of
    adaptive hops).
    """
    topo = scheme.topology
    srcs = list(sources) if sources is not None else list(topo.nodes())
    dsts = (
        list(destinations) if destinations is not None else list(topo.nodes())
    )
    g = nx.DiGraph()
    for dst in dsts:
        seen: set[tuple] = set()
        stack: list[tuple[Hashable, Any, ChannelId | None]] = []
        for src in srcs:
            if src == dst:
                continue
            st = scheme.initial_state(src, dst)
            key = (src, _freeze(st), None)
            if key not in seen:
                seen.add(key)
                stack.append((src, st, None))
        while stack:
            u, st, last = stack.pop()
            if u == dst:
                continue
            escapes = scheme.escape_channels(u, dst, st)
            if report is not None and not escapes:
                report.fail(
                    "escape_available",
                    f"no escape channel at {u} (dst={dst}, state={st})",
                )
            for e in escapes:
                g.add_node(e)
                if last is not None and last != e:
                    g.add_edge(last, e)
            for c in scheme.candidates(u, dst, st):
                if report is not None and not topo.is_adjacent(c.u, c.v):
                    report.fail(
                        "adjacency_ok", f"channel {c} spans non-adjacent nodes"
                    )
                st2 = scheme.update_state(st, c)
                last2 = c if c.vc != ADAPTIVE else last
                key = (c.v, _freeze(st2), last2)
                if key not in seen:
                    seen.add(key)
                    stack.append((c.v, st2, last2))
    return g


def verify_wormhole_scheme(
    scheme: WormholeScheme,
    sources: Iterable[Hashable] | None = None,
    destinations: Iterable[Hashable] | None = None,
    check_minimal: bool | None = None,
) -> WormholeReport:
    """Exhaustively verify one worm-hole scheme instance."""
    report = WormholeReport(scheme=scheme.name)
    g = extended_escape_cdg(scheme, sources, destinations, report)
    if not nx.is_directed_acyclic_graph(g):
        cyc = nx.find_cycle(g)
        report.fail(
            "escape_cdg_acyclic",
            "extended escape CDG cycle: "
            + " -> ".join(str(e[0]) for e in cyc),
        )
    do_min = scheme.is_minimal if check_minimal is None else check_minimal
    if do_min:
        report.minimal = True
        topo = scheme.topology
        srcs = list(sources) if sources is not None else list(topo.nodes())
        dsts = (
            list(destinations)
            if destinations is not None
            else list(topo.nodes())
        )
        for dst in dsts:
            for src in srcs:
                if src == dst:
                    continue
                st = scheme.initial_state(src, dst)
                for c in scheme.candidates(src, dst, st):
                    if (
                        topo.distance(c.v, dst)
                        != topo.distance(src, dst) - 1
                    ):
                        report.fail(
                            "minimal",
                            f"non-minimal first hop {c} for {src}->{dst}",
                        )
    return report
