"""Worm-hole routing extension (paper, Section 1 / [GPS91]).

Flit-level simulation with virtual channels, escape-channel adaptive
routing schemes for the hypercube and torus, and machine verification
of the extended escape channel-dependency-graph condition.
"""

from .channels import ChannelId, ChannelState
from .engine import WormholeDeadlockError, WormholeSimulator
from .flit import FlitKind, Worm, reset_worm_ids
from .routing import (
    ADAPTIVE,
    HungEscapeHypercubeWormhole,
    HypercubeAdaptiveWormhole,
    HypercubeEcubeWormhole,
    TorusAdaptiveWormhole,
    TorusDimensionOrderWormhole,
    WormholeScheme,
)
from .workload import (
    BernoulliWormSource,
    backlog,
    permutation_worms,
    run_open_loop,
)
from .verification import (
    WormholeReport,
    extended_escape_cdg,
    verify_wormhole_scheme,
)

__all__ = [
    "Worm",
    "FlitKind",
    "reset_worm_ids",
    "ChannelId",
    "ChannelState",
    "WormholeScheme",
    "ADAPTIVE",
    "HypercubeEcubeWormhole",
    "HypercubeAdaptiveWormhole",
    "HungEscapeHypercubeWormhole",
    "TorusDimensionOrderWormhole",
    "TorusAdaptiveWormhole",
    "WormholeSimulator",
    "WormholeDeadlockError",
    "WormholeReport",
    "extended_escape_cdg",
    "verify_wormhole_scheme",
    "permutation_worms",
    "BernoulliWormSource",
    "run_open_loop",
    "backlog",
]
