"""Fault-aware routing adapter and the engine-side fault injector.

:class:`FaultAwareRouting` wraps any
:class:`~repro.core.routing_function.RoutingAlgorithm` and filters its
hop relations through a live :class:`~repro.faults.models.FaultSet`:

* hops over dead links (or into/out of dead nodes) are withheld;
* hops that would use a buffer class the physical link does not carry
  are withheld too — once faults break the inner algorithm's phase
  invariants this *class realizability* check is what keeps offered
  hops executable by the node model;
* surviving **minimal** hops are preferred: if any inner static hop
  survives, only those are offered; if the statics are all dead but an
  inner dynamic hop survives, the packet rides adaptivity.  Surviving
  hops that move *away* from the destination in the faulted metric are
  withheld too — a healthy-minimal hop can walk straight back into a
  pocket whose only exit died, and repeatedly will (livelock);
* only when *every* inner hop is fault-blocked does the adapter offer
  greedy **detour** hops — live neighbors that still reach the
  destination, closest-first — which trades the paper's minimality and
  proven deadlock freedom for delivery (the honest downgrade is
  reported by :func:`verify_under_faults`, and the runtime watchdog
  guards the residual risk);
* a packet whose destination is unreachable over live links gets *no*
  hops at all: it parks where it is instead of wandering, and the
  watchdog counts it as undeliverable.

With an empty fault set every method returns the inner algorithm's
result object unchanged — the zero-overhead-when-healthy property
`tests/test_faults_adapter.py` pins down.

:class:`FaultInjector` is the engine observer that drives epochs: on
each cycle boundary it installs the scheduled fault set into both the
adapter and the engine (``dead_nodes``/``blocked_links``), retracts
packets stranded in the output buffers of newly-dead links, and tells
the compiled engine to drop its now-stale routing plans.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable

from ..core.hops import HopKernel
from ..core.queues import QueueId
from ..core.routing_function import RoutingAlgorithm
from ..core.verification import VerificationReport, verify_algorithm
from .models import EMPTY_FAULTS, FaultSchedule, FaultSet


class FaultAwareRouting(RoutingAlgorithm):
    """Wrap ``inner`` so its hop relations respect a live fault set.

    Parameters
    ----------
    inner:
        Any verified routing algorithm instance.
    faults:
        Initial fault set (default: healthy).  Swapped at epoch
        boundaries via :meth:`set_active`.
    detour:
        Offer greedy escape hops when every inner hop is fault-blocked.
        Disable to study pure filtering (packets then park as soon as
        their whole minimal hop set is dead).

    The adapter intentionally drops the inner algorithm's ``is_minimal``
    / ``is_fully_adaptive`` claims: under faults neither survives, and
    claiming them would make :func:`verify_under_faults` check the
    wrong things.
    """

    is_minimal = False
    is_fully_adaptive = False

    def __init__(
        self,
        inner: RoutingAlgorithm,
        faults: FaultSet | None = None,
        detour: bool = True,
    ):
        super().__init__(inner.topology)
        self.inner = inner
        self.detour = detour
        self.name = f"fault-aware({inner.name})"
        self.active: FaultSet = faults if faults is not None else EMPTY_FAULTS
        #: Per-epoch memo of detour hop sets keyed ``(q, dst)``.
        self._detour_memo: dict[tuple[QueueId, Hashable], frozenset] = {}
        #: Weak refs to RoutingTables layouts compiled against this
        #: adapter; their packed rows die with the epoch.
        self._layouts: list[weakref.ref] = []

    def set_active(self, faults: FaultSet | None) -> None:
        """Install the fault set of a new epoch."""
        self.active = faults if faults is not None else EMPTY_FAULTS
        self._detour_memo.clear()
        if self._layouts:
            live = []
            for ref in self._layouts:
                layout = ref()
                if layout is not None:
                    layout.clear_rows()
                    live.append(ref)
            self._layouts = live

    # ------------------------------------------------------------------
    # Structure and state: delegated untouched
    # ------------------------------------------------------------------
    def central_queue_kinds(self, node: Hashable) -> tuple[str, ...]:
        return self.inner.central_queue_kinds(node)

    def queue_specs(self, node: Hashable, central_capacity: int = 5):
        return self.inner.queue_specs(node, central_capacity)

    def buffer_class(self, q_from: QueueId, q_to: QueueId, dynamic: bool) -> str:
        return self.inner.buffer_class(q_from, q_to, dynamic)

    def buffer_classes(self, u: Hashable, v: Hashable) -> tuple[str, ...]:
        return self.inner.buffer_classes(u, v)

    def initial_state(self, src: Hashable, dst: Hashable) -> Any:
        return self.inner.initial_state(src, dst)

    def update_state(self, state: Any, q_from: QueueId, q_to: QueueId) -> Any:
        return self.inner.update_state(state, q_from, q_to)

    # ------------------------------------------------------------------
    # Hop filtering
    # ------------------------------------------------------------------
    def _usable(self, q: QueueId, q2: QueueId, dynamic: bool) -> bool:
        """Is the hop executable on the degraded physical network?"""
        u, w = q.node, q2.node
        if u == w or q2.is_delivery:
            return True
        fs = self.active
        if not fs.link_alive(u, w):
            return False
        # Class realizability: the link must physically carry the buffer
        # class this transition would use.  Inner invariants guarantee it
        # on a healthy network; detoured packets can violate it.
        cls = self.inner.buffer_class(q, q2, dynamic)
        return cls in self.inner.buffer_classes(u, w)

    def injection_targets(
        self, src: Hashable, dst: Hashable, state: Any = None
    ) -> frozenset[QueueId]:
        targets = self.inner.injection_targets(src, dst, state)
        fs = self.active
        if not fs.any:
            return targets
        if src in fs.dead_nodes or src not in fs.reachable(self.topology, dst):
            return frozenset()  # park: never inject the undeliverable
        return targets

    def _toward(self, q: QueueId, q2: QueueId, dst: Hashable) -> bool:
        """Does the hop avoid *increasing* the faulted distance?

        Inner hops always decrease the healthy distance (the paper's
        algorithms are minimal), so allowing equal-or-decreasing
        faulted distance makes every offered hop strictly decrease the
        pair ``(faulted distance, healthy distance)`` — which is what
        rules out routing cycles under faults.  Internal moves (phase
        changes, delivery) are always allowed.
        """
        if q2.node == q.node or q2.is_delivery:
            return True
        dist = self.active.distances(self.topology, dst)
        here = dist.get(q.node)
        there = dist.get(q2.node)
        return there is not None and (here is None or there <= here)

    def static_hops(
        self, q: QueueId, dst: Hashable, state: Any = None
    ) -> frozenset[QueueId]:
        inner_hops = self.inner.static_hops(q, dst, state)
        fs = self.active
        if not fs.any:
            return inner_hops
        if q.node not in fs.reachable(self.topology, dst):
            return frozenset()  # park: dst is cut off from here
        filtered = frozenset(
            q2
            for q2 in inner_hops
            if self._usable(q, q2, False) and self._toward(q, q2, dst)
        )
        if filtered:
            return filtered
        if not inner_hops:
            return inner_hops
        # Every static escape is dead.  Prefer surviving minimal dynamic
        # hops; detour only as the last resort.
        if self.dynamic_hops(q, dst, state):
            return frozenset()
        if self.detour:
            return self._detour_hops(q, dst)
        return frozenset()

    def dynamic_hops(
        self, q: QueueId, dst: Hashable, state: Any = None
    ) -> frozenset[QueueId]:
        inner_hops = self.inner.dynamic_hops(q, dst, state)
        fs = self.active
        if not fs.any or not inner_hops:
            return inner_hops
        if q.node not in fs.reachable(self.topology, dst):
            return frozenset()
        return frozenset(
            q2
            for q2 in inner_hops
            if self._usable(q, q2, True) and self._toward(q, q2, dst)
        )

    def _detour_hops(
        self, q: QueueId, dst: Hashable
    ) -> frozenset[QueueId]:
        """Escape hops when every inner hop is fault-blocked.

        Candidates are central queues on live neighbors that (a) still
        reach ``dst`` over live links and (b) sit behind a buffer class
        the connecting link physically carries; among those, only the
        ones closest to ``dst`` in the *faulted* metric
        (:meth:`FaultSet.distances`) are offered — steering by the
        healthy distance can walk into a pocket whose minimal exit is
        dead and oscillate forever.  Greedy and memoized per epoch;
        state-oblivious, so it is meant for the stateless algorithms
        (hypercube, mesh).  Mixed with surviving minimal hops it can
        still revisit nodes in principle — that is exactly what the
        livelock watchdog exists for.
        """
        key = (q, dst)
        cached = self._detour_memo.get(key)
        if cached is not None:
            return cached
        fs = self.active
        topo = self.topology
        u = q.node
        dist = fs.distances(topo, dst)
        cands: list[tuple[int, QueueId]] = []
        for w in topo.neighbors(u):
            dw = dist.get(w)
            if dw is None or not fs.link_alive(u, w):
                continue
            classes = self.inner.buffer_classes(u, w)
            for kind in self.inner.central_queue_kinds(w):
                q2 = QueueId(w, kind)
                if self.inner.buffer_class(q, q2, False) not in classes:
                    continue
                cands.append((dw, q2))
        if cands:
            best = min(d for d, _ in cands)
            out = frozenset(q2 for d, q2 in cands if d == best)
        else:
            out = frozenset()
        self._detour_memo[key] = out
        return out

    def compile_hops(self, layout):
        """Epoch-gated pass-through of the inner algorithm's kernel.

        While the live fault set is empty the adapter's hop relations
        *are* the inner algorithm's, so the inner kernel's rows stay
        valid; under any active fault the gate declines every key and
        the symbolic filtering above takes over.  ``set_active``
        registers the layout so an epoch change drops its packed rows
        and memos (``clear_rows``) — engines that drive fault epochs
        must additionally invalidate their own per-message memos,
        exactly as
        :meth:`~repro.sim.compiled.CompiledPacketSimulator.invalidate_plans`
        already does.
        """
        if type(self) is not FaultAwareRouting:
            return None
        hook = getattr(self.inner, "compile_hops", None)
        inner_kernel = hook(layout) if hook is not None else None
        if inner_kernel is None:
            return None
        self._layouts.append(weakref.ref(layout))
        return _FaultGatedKernel(layout, self, inner_kernel)


class _FaultGatedKernel(HopKernel):
    """Delegate to the healthy inner kernel; decline under faults."""

    def __init__(self, layout, adapter: FaultAwareRouting, inner: HopKernel):
        self.t = layout
        self.adapter = adapter
        self.inner = inner
        self._epoch: FaultSet = adapter.active

    def _healthy(self) -> bool:
        fs = self.adapter.active
        if fs is not self._epoch:
            # New fault epoch: every packed row is stale.
            self._epoch = fs
            self.t.clear_rows()
        return not fs.any

    def central_row(self, qid: int, dst_i: int, sid: int):
        if not self._healthy():
            return None
        return self.inner.central_row(qid, dst_i, sid)

    def entry_row(self, qid: int, dst_i: int, sid: int):
        if not self._healthy():
            return None
        return self.inner.entry_row(qid, dst_i, sid)

    def injection_row(self, ui: int, dst_i: int, sid: int):
        if not self._healthy():
            return None
        return self.inner.injection_row(ui, dst_i, sid)


class FaultInjector:
    """Engine observer that replays a :class:`FaultSchedule`.

    Attach (first, before any watchdog) to a simulator whose algorithm
    is the matching :class:`FaultAwareRouting` adapter.  On each epoch
    boundary it

    1. installs the new fault set into the adapter (routing view) and
       into the engine (``dead_nodes`` / ``blocked_links``),
    2. retracts packets sitting in the output buffers of newly-dead
       links back into a central queue of their node (over capacity if
       need be — retraction must not drop packets; packets inside a
       dead node are lost instead, which is the fail-stop semantics),
    3. invalidates the compiled engine's routing-plan cache, whose
       memos assumed the previous epoch's hop relations.

    Between boundaries ``on_cycle`` is two attribute loads and an
    identity check.  ``on_stall`` suppresses the engine's deadlock alarm
    while a scheduled change is still ahead (a transient stall window
    can legitimately freeze traffic for longer than ``stall_limit``).
    """

    def __init__(self, schedule: FaultSchedule, adapter: FaultAwareRouting):
        self.schedule = schedule
        self.adapter = adapter
        self._current: FaultSet | None = None

    def on_cycle(self, sim, cycle: int) -> None:
        fs = self.schedule.at(cycle)
        if fs is self._current:
            return
        previous = self._current
        self._current = fs
        self.adapter.set_active(fs)
        sim.dead_nodes = fs.dead_nodes
        sim.blocked_links = fs.blocked_links
        if fs.dead_links:
            self._retract(sim, fs, previous)
        invalidate = getattr(sim, "invalidate_plans", None)
        if invalidate is not None:
            invalidate()

    def on_stall(self, sim) -> bool:
        if self.schedule.next_change_after(sim.cycle) is not None:
            # A scheduled transition (e.g. stall recovery) is still
            # ahead; reset the progress clock and keep running.
            sim._last_progress = sim.cycle
            return True
        return False

    def _retract(
        self, sim, fs: FaultSet, previous: FaultSet | None
    ) -> None:
        """Pull committed packets out of newly-dead links' out-buffers.

        A packet already in the output buffer of a link that just died
        would otherwise sit there forever.  Fail-stop hardware would
        requeue it from the sender's buffer memory, so we put it back
        into a central queue at the sender — kind matched to its
        intended target queue when that kind exists locally.  The queue
        may momentarily exceed its capacity; the node simply drains it
        first.  Packets inside a dead *node* (including its buffers)
        are not retracted: they are lost with the node.
        """
        old_dead = previous.dead_links if previous is not None else frozenset()
        for (u, v, cls), msg in sim.out_buf.items():
            if msg is None or (u, v) not in fs.dead_links:
                continue
            if (u, v) in old_dead or u in fs.dead_nodes:
                continue
            sim.out_buf[(u, v, cls)] = None
            queues = sim.central[u]
            kind = msg.target.kind if msg.target is not None else None
            if kind not in queues:
                kind = next(iter(queues))
            if msg.hops and msg.target is not None and msg.hops[-1] == msg.target:
                msg.hops.pop()  # the hop never physically happened
            msg.target = None
            queues[kind].append(msg)
            if sim._events is not None:
                sim._events.append(
                    ("enqueue", sim.cycle, msg.uid, u, kind)
                )


@dataclass
class FaultVerification:
    """What :func:`verify_under_faults` learned about a degraded instance."""

    faults: FaultSet
    report: VerificationReport
    #: ``(src, dst)`` pairs with no live route at all; packets between
    #: them are undeliverable no matter the routing algorithm.
    unreachable_pairs: list[tuple[Hashable, Hashable]] = field(
        default_factory=list
    )

    @property
    def degraded(self) -> bool:
        """The Section-2 guarantees no longer all hold."""
        return not self.report.deadlock_free or bool(self.unreachable_pairs)

    @property
    def witnesses(self) -> list:
        """Minimal cycle witnesses, when the degraded static QDG is
        cyclic.  These come straight from the static analyzer's witness
        builder (``repro.statics.witness``) via ``verify_algorithm`` —
        the faults layer no longer derives its own cycle evidence.
        """
        return self.report.witnesses

    def summary(self) -> str:
        base = self.report.summary()
        if self.unreachable_pairs:
            base += f"; {len(self.unreachable_pairs)} unreachable (src,dst) pair(s)"
        if self.witnesses:
            base += "; " + "; ".join(w.describe() for w in self.witnesses)
        return f"[{self.faults.describe()}] {base}"


def verify_under_faults(
    algorithm: RoutingAlgorithm,
    faults: FaultSet,
    destinations: Iterable[Hashable] | None = None,
    detour: bool = True,
    **kwargs,
) -> FaultVerification:
    """Re-run the Section-2 verifier against the *faulted* instance.

    Wraps ``algorithm`` in :class:`FaultAwareRouting` pinned at
    ``faults`` and applies :func:`~repro.core.verification.verify_algorithm`
    to the degraded queue dependency graph.  The point is honesty, not
    reassurance: a fault set that severs a minimal-path invariant will
    (and should) fail conditions the healthy instance passed — most
    commonly ``no_dead_ends``, because the adapter withholds dead static
    escapes — and destinations cut off entirely are listed as
    ``unreachable_pairs``.  Minimality/full-adaptivity claims are
    dropped outright (see :class:`FaultAwareRouting`).
    """
    if isinstance(algorithm, FaultAwareRouting):
        adapter = algorithm
        if adapter.active is not faults:
            adapter.set_active(faults)
    else:
        adapter = FaultAwareRouting(algorithm, faults, detour=detour)
    topo = adapter.topology
    nodes = list(topo.nodes())
    dsts = list(destinations) if destinations is not None else nodes
    unreachable: list[tuple[Hashable, Hashable]] = []
    for dst in dsts:
        reach = faults.reachable(topo, dst)
        for src in nodes:
            if src != dst and src not in reach:
                unreachable.append((src, dst))
    report = verify_algorithm(
        adapter,
        destinations=destinations,
        check_minimal=False,
        check_fully_adaptive=False,
        **kwargs,
    )
    return FaultVerification(
        faults=faults, report=report, unreachable_pairs=unreachable
    )
