"""Fault injection and resilience analysis (beyond the paper).

The paper proves minimal fully-adaptive deadlock-free routing for
*healthy* networks.  This package asks the production question: what
does the algorithm family do when links stall, links die, or whole
nodes fail — and does the simulation say so honestly instead of
hanging?

* :mod:`repro.faults.models` — seeded, reproducible fault schedules
  (permanent link/node downs, transient link stalls) resolved into
  immutable per-epoch fault sets;
* :mod:`repro.faults.adapters` — :class:`FaultAwareRouting`, which
  filters any routing algorithm's hops through the live fault set
  (preferring surviving minimal hops, detouring as a last resort), and
  :class:`FaultInjector`, the engine observer replaying a schedule;
* :mod:`repro.faults.watchdog` — :class:`DeadlockWatchdog`, turning
  engine stalls into structured deadlock/undeliverable reports;
* :mod:`repro.faults.experiments` — degradation sweeps (delivery
  ratio, latency inflation, reroute overhead versus fault count).
"""

from .adapters import (
    FaultAwareRouting,
    FaultInjector,
    FaultVerification,
    verify_under_faults,
)
from .experiments import (
    RESILIENCE_FAMILIES,
    ResilienceResult,
    degradation_sweep,
    make_fault_simulator,
    run_with_faults,
)
from .models import (
    EMPTY_FAULTS,
    LINK_DOWN,
    LINK_STALL,
    NODE_DOWN,
    Fault,
    FaultSchedule,
    FaultSet,
    directed_link_down,
    link_down,
    link_stall,
    node_down,
)
from .watchdog import (
    DeadlockDetected,
    DeadlockReport,
    DeadlockWatchdog,
    SimObserver,
    StuckPacket,
)

__all__ = [
    "EMPTY_FAULTS",
    "LINK_DOWN",
    "LINK_STALL",
    "NODE_DOWN",
    "Fault",
    "FaultAwareRouting",
    "FaultInjector",
    "FaultSchedule",
    "FaultSet",
    "FaultVerification",
    "DeadlockDetected",
    "DeadlockReport",
    "DeadlockWatchdog",
    "RESILIENCE_FAMILIES",
    "ResilienceResult",
    "SimObserver",
    "StuckPacket",
    "degradation_sweep",
    "directed_link_down",
    "link_down",
    "link_stall",
    "make_fault_simulator",
    "node_down",
    "run_with_faults",
    "verify_under_faults",
]
