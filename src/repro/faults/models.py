"""Fault models: seeded, reproducible link/node failure schedules.

The paper proves deadlock freedom for a *healthy* network; this module
(and the rest of :mod:`repro.faults`) asks what happens when the
network degrades.  Three fault kinds are modeled:

* **permanent link-down** — a directed physical link stops carrying
  traffic from its onset cycle onward.  The routing adapter
  (:class:`~repro.faults.adapters.FaultAwareRouting`) stops offering it
  and the link cycle stops transferring over it;
* **permanent node-down** — the node freezes: it neither routes nor
  injects, every incident directed link (both directions) goes down
  with it, and packets stored inside it are lost;
* **transient link-stall** — the link transfers nothing during a
  bounded window but remains part of the routing function; committed
  packets simply wait it out while adaptive traffic naturally prefers
  other output buffers.

A :class:`FaultSchedule` is a *pure, reproducible* timeline: it is
built from an explicit fault list (scripted timeline), a fixed set
(everything down from cycle 0), or a seeded Bernoulli draw over links,
and resolves any cycle to an immutable :class:`FaultSet` epoch.  Two
schedules built from the same arguments produce identical epochs, so
fault experiments replay exactly — the property the cross-engine tests
(`tests/test_faults_engines.py`) rely on.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..sim.rng import make_rng
from ..topology.base import Topology

#: Fault kinds.
LINK_DOWN = "link-down"
NODE_DOWN = "node-down"
LINK_STALL = "link-stall"

_KINDS = (LINK_DOWN, NODE_DOWN, LINK_STALL)


@dataclass(frozen=True)
class Fault:
    """One fault event on the timeline.

    ``target`` is a directed link ``(u, v)`` for link faults or a node
    for node faults.  ``start`` is the first cycle the fault is active;
    ``end`` (exclusive) is the recovery cycle, ``None`` for permanent
    faults.  Link stalls must be bounded; link/node downs must be
    permanent (a repaired permanent fault would need state retraction
    semantics the adapter deliberately does not promise).
    """

    kind: str
    target: Hashable
    start: int = 0
    end: int | None = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == LINK_STALL and self.end is None:
            raise ValueError("a link stall needs an end cycle")
        if self.kind in (LINK_DOWN, NODE_DOWN) and self.end is not None:
            raise ValueError(f"{self.kind} faults are permanent (end=None)")
        if self.end is not None and self.end <= self.start:
            raise ValueError("fault end must be after its start")

    def active_at(self, cycle: int) -> bool:
        return cycle >= self.start and (self.end is None or cycle < self.end)


def link_down(u: Hashable, v: Hashable, at: int = 0) -> list[Fault]:
    """Permanent bidirectional link failure (both directed channels)."""
    return [
        Fault(LINK_DOWN, (u, v), start=at),
        Fault(LINK_DOWN, (v, u), start=at),
    ]


def directed_link_down(u: Hashable, v: Hashable, at: int = 0) -> list[Fault]:
    """Permanent failure of the single directed channel ``u -> v``."""
    return [Fault(LINK_DOWN, (u, v), start=at)]


def node_down(u: Hashable, at: int = 0) -> list[Fault]:
    """Permanent node failure (fail-stop)."""
    return [Fault(NODE_DOWN, u, start=at)]


def link_stall(
    u: Hashable, v: Hashable, at: int, until: int
) -> list[Fault]:
    """Transient bidirectional stall over ``[at, until)``."""
    return [
        Fault(LINK_STALL, (u, v), start=at, end=until),
        Fault(LINK_STALL, (v, u), start=at, end=until),
    ]


class FaultSet:
    """Immutable snapshot of everything broken during one epoch.

    ``dead_links`` / ``dead_nodes`` are the permanent failures the
    routing adapter filters against; ``stalled_links`` only block the
    link cycle.  Reachability queries ("can ``u`` still reach ``dst``
    over live links?") are memoized per destination — one reverse BFS
    each — because the adapter consults them on every hop evaluation of
    a degraded run.
    """

    __slots__ = ("dead_links", "dead_nodes", "stalled_links", "_reach", "_dist")

    def __init__(
        self,
        dead_links: Iterable[tuple] = (),
        dead_nodes: Iterable[Hashable] = (),
        stalled_links: Iterable[tuple] = (),
    ):
        self.dead_links: frozenset = frozenset(dead_links)
        self.dead_nodes: frozenset = frozenset(dead_nodes)
        self.stalled_links: frozenset = frozenset(stalled_links)
        self._reach: dict[Hashable, frozenset] = {}
        self._dist: dict[Hashable, dict[Hashable, int]] = {}

    @property
    def any(self) -> bool:
        """Whether this epoch degrades routing at all (stalls excluded:
        they delay packets but never change the routing function)."""
        return bool(self.dead_links or self.dead_nodes)

    @property
    def blocked_links(self) -> frozenset:
        """Directed links the link cycle must not serve this epoch."""
        return self.dead_links | self.stalled_links

    def link_alive(self, u: Hashable, v: Hashable) -> bool:
        return (
            (u, v) not in self.dead_links
            and u not in self.dead_nodes
            and v not in self.dead_nodes
        )

    def distances(
        self, topology: Topology, dst: Hashable
    ) -> dict[Hashable, int]:
        """Hop distance to ``dst`` over *live* links, per reaching node.

        Reverse BFS over the faulted physical network; ``dst`` maps to
        0, nodes with no live route are absent, and the map is empty
        when ``dst`` is down.  This faulted metric is what detours
        steer by — the healthy distance can point into a pocket whose
        only minimal exit is dead and ping-pong forever.
        """
        cached = self._dist.get(dst)
        if cached is not None:
            return cached
        dist: dict[Hashable, int] = {}
        if dst not in self.dead_nodes:
            dist[dst] = 0
            frontier = [dst]
            while frontier:
                nxt: list[Hashable] = []
                for u in frontier:
                    d = dist[u] + 1
                    for x in topology.in_neighbors(u):
                        if x in dist or x in self.dead_nodes:
                            continue
                        if (x, u) in self.dead_links:
                            continue
                        dist[x] = d
                        nxt.append(x)
                frontier = nxt
        self._dist[dst] = dist
        return dist

    def reachable(self, topology: Topology, dst: Hashable) -> frozenset:
        """Nodes that can still reach ``dst`` over live links.

        Derived from :meth:`distances`; includes ``dst`` itself, and is
        empty when ``dst`` is down.  Ignores buffer-class constraints
        (a class-starved route is possible in principle but did not
        occur on any tested topology; the runtime watchdog is the
        honest guard either way).
        """
        cached = self._reach.get(dst)
        if cached is not None:
            return cached
        out = frozenset(self.distances(topology, dst))
        self._reach[dst] = out
        return out

    def describe(self) -> str:
        parts = []
        if self.dead_nodes:
            parts.append(f"{len(self.dead_nodes)} node(s) down")
        if self.dead_links:
            parts.append(f"{len(self.dead_links)} directed link(s) down")
        if self.stalled_links:
            parts.append(f"{len(self.stalled_links)} link(s) stalled")
        return ", ".join(parts) or "healthy"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultSet {self.describe()}>"


#: The healthy epoch: shared so `fs is EMPTY_FAULTS` checks are cheap.
EMPTY_FAULTS = FaultSet()


class FaultSchedule:
    """A reproducible fault timeline over one topology.

    Epochs are precomputed at construction: ``at(cycle)`` is a bisect
    into a handful of immutable :class:`FaultSet` instances, so the
    per-cycle fault hook costs nothing measurable.  Node-down faults
    expand to the node plus all of its incident directed links.
    """

    def __init__(self, topology: Topology, faults: Iterable[Fault] = ()):
        self.topology = topology
        self.faults: tuple[Fault, ...] = tuple(faults)
        for f in self.faults:
            self._validate(f)
        times = {0}
        for f in self.faults:
            times.add(f.start)
            if f.end is not None:
                times.add(f.end)
        self._starts: list[int] = sorted(times)
        self._epochs: list[FaultSet] = [
            self._build_epoch(t) for t in self._starts
        ]

    def _validate(self, f: Fault) -> None:
        topo = self.topology
        if f.kind == NODE_DOWN:
            if f.target not in set(topo.nodes()):
                raise ValueError(f"node fault on unknown node {f.target!r}")
        else:
            u, v = f.target
            if not topo.is_adjacent(u, v):
                raise ValueError(
                    f"link fault on non-existent link {u!r} -> {v!r}"
                )

    def _build_epoch(self, cycle: int) -> FaultSet:
        dead_links: set[tuple] = set()
        dead_nodes: set[Hashable] = set()
        stalled: set[tuple] = set()
        topo = self.topology
        for f in self.faults:
            if not f.active_at(cycle):
                continue
            if f.kind == LINK_DOWN:
                dead_links.add(f.target)
            elif f.kind == LINK_STALL:
                stalled.add(f.target)
            else:  # NODE_DOWN: the node and every incident channel
                u = f.target
                dead_nodes.add(u)
                for v in topo.neighbors(u):
                    dead_links.add((u, v))
                for x in topo.in_neighbors(u):
                    dead_links.add((x, u))
        if not (dead_links or dead_nodes or stalled):
            return EMPTY_FAULTS
        return FaultSet(dead_links, dead_nodes, stalled)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def at(self, cycle: int) -> FaultSet:
        """The active epoch at ``cycle`` (immutable, shared)."""
        i = bisect_right(self._starts, cycle) - 1
        return self._epochs[i if i >= 0 else 0]

    def next_change_after(self, cycle: int) -> int | None:
        """The next epoch boundary strictly after ``cycle``, if any."""
        i = bisect_right(self._starts, cycle)
        return self._starts[i] if i < len(self._starts) else None

    @property
    def epochs(self) -> tuple[FaultSet, ...]:
        """All distinct epochs in timeline order (first may be healthy).

        The static analyzer (``repro.statics``) sweeps these: each
        epoch is a topology variant whose degraded instance must still
        certify (or honestly fail) the Section-2 conditions.
        """
        return tuple(self._epochs)

    @property
    def final(self) -> FaultSet:
        """The last epoch (all permanent faults active, stalls over)."""
        return self._epochs[-1]

    @property
    def is_empty(self) -> bool:
        return not self.faults

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FaultSchedule {len(self.faults)} fault(s), "
            f"{len(self._epochs)} epoch(s) on {self.topology.name}>"
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def healthy(cls, topology: Topology) -> "FaultSchedule":
        """The empty schedule (useful as a pass-through control)."""
        return cls(topology, ())

    @classmethod
    def fixed(
        cls, topology: Topology, faults: Iterable[Fault | Sequence[Fault]]
    ) -> "FaultSchedule":
        """Scripted timeline; accepts the helper functions' fault lists."""
        flat: list[Fault] = []
        for f in faults:
            if isinstance(f, Fault):
                flat.append(f)
            else:
                flat.extend(f)
        return cls(topology, flat)

    @classmethod
    def bernoulli_links(
        cls,
        topology: Topology,
        rate: float,
        seed: int,
        onset_max: int = 0,
    ) -> "FaultSchedule":
        """Each undirected link independently fails (both directions,
        permanently) with probability ``rate``; onset cycles are drawn
        uniformly from ``[0, onset_max]``.  Fully determined by
        ``(topology, rate, seed)`` via the repo's seed-derivation
        scheme, so every replica sees the same fault set.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        rng = make_rng(seed, f"faults-{topology.name}")
        undirected = sorted(
            {tuple(sorted((u, v), key=repr)) for u, v in topology.links()},
            key=repr,
        )
        faults: list[Fault] = []
        for u, v in undirected:
            if rng.random() < rate:
                at = int(rng.integers(0, onset_max + 1))
                faults.extend(link_down(u, v, at=at))
        return cls(topology, faults)

    @classmethod
    def random_links(
        cls,
        topology: Topology,
        count: int,
        seed: int,
        onset: int = 0,
    ) -> "FaultSchedule":
        """Exactly ``count`` distinct undirected links down at ``onset``.

        The sampled-count twin of :meth:`bernoulli_links`, used by the
        degradation sweeps where the x-axis is "number of failed links".
        """
        rng = make_rng(seed, f"faults-{topology.name}")
        undirected = sorted(
            {tuple(sorted((u, v), key=repr)) for u, v in topology.links()},
            key=repr,
        )
        if count > len(undirected):
            raise ValueError(
                f"asked for {count} faulty links; topology has only "
                f"{len(undirected)}"
            )
        picks = rng.choice(len(undirected), size=count, replace=False)
        faults: list[Fault] = []
        for i in sorted(int(p) for p in picks):
            u, v = undirected[i]
            faults.extend(link_down(u, v, at=onset))
        return cls(topology, faults)
