"""Resilience experiments: how gracefully does adaptivity degrade?

These runs go *beyond* the paper (which proves guarantees for healthy
networks only): we inject seeded link/node faults, route through the
:class:`~repro.faults.adapters.FaultAwareRouting` adapter with the
watchdog armed, and measure

* **delivery ratio** — delivered / generated, plus delivered over the
  packets that were still deliverable (fault sets can cut the graph);
* **undeliverable count** — the watchdog's honest tally of packets no
  routing algorithm could have saved;
* **latency inflation** — ``L_avg`` relative to the healthy baseline;
* **reroute overhead** — mean extra hops versus the healthy minimal
  distance, from traced routes of delivered packets.

See ``docs/RESILIENCE.md`` for the methodology and example tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.routing_function import RoutingAlgorithm, node_path
from ..experiments.parallel import parallel_map
from ..experiments.runner import (
    ENGINE_MATRIX,
    build_simulator,
    engine_choice,
    resolve_probe,
)
from ..routing.hypercube import HypercubeAdaptiveRouting
from ..routing.mesh import Mesh2DAdaptiveRouting
from ..sim.engine import PacketSimulator
from ..sim.injection import InjectionModel, StaticInjection
from ..sim.metrics import SimulationResult
from ..sim.tables import EngineCapabilityError
from ..sim.rng import make_rng
from ..sim.traffic import RandomTraffic
from ..topology.base import Topology
from ..topology.hypercube import Hypercube
from ..topology.mesh import Mesh2D
from .adapters import FaultAwareRouting, FaultInjector
from .models import FaultSchedule
from .watchdog import DeadlockWatchdog


def make_fault_simulator(
    algorithm: RoutingAlgorithm,
    model: InjectionModel,
    schedule: FaultSchedule,
    engine: str | None = None,
    watchdog: bool = True,
    detour: bool = True,
    livelock_limit: int | None = 25_000,
    telemetry=None,
    **kwargs,
) -> PacketSimulator:
    """Wire algorithm + injection + fault schedule into one engine.

    Wraps ``algorithm`` in :class:`FaultAwareRouting`, builds the
    requested engine (``auto`` resolves to the compiled engine — the
    adapter disqualifies the hypercube-only fast engine, and the vector
    engine accepts no fault observers, so ``fast`` and ``vector`` both
    fall back to ``auto`` here; ``sharded`` raises instead, see below),
    and attaches
    the :class:`FaultInjector` first, then (optionally) the
    :class:`DeadlockWatchdog`, in that order: the injector must update
    the epoch — and get the chance to suppress transient stalls —
    before the watchdog passes judgment.  A ``telemetry`` probe (True
    or a :class:`~repro.telemetry.TelemetryProbe`) attaches *last*, so
    it observes each epoch the same cycle the injector installs it.

    ``engine="sharded"`` (or ``REPRO_ENGINE=sharded``) is an error, not
    a silent remap: fault epochs are global state the shard workers do
    not replicate yet, and a sharded fault run would *look* like the
    serial one while silently dropping the schedule.  Until shard-aware
    fault replication lands, combining the two raises an
    :class:`~repro.sim.tables.EngineCapabilityError`.
    """
    adapter = FaultAwareRouting(algorithm, detour=detour)
    resolved = engine_choice() if engine is None else engine
    if resolved == "sharded":
        raise EngineCapabilityError(
            "engine='sharded' cannot run fault schedules: fault epochs "
            "are global state the shard workers do not replicate yet. "
            "Shard-aware fault replication (broadcasting the epoch "
            "schedule to every worker and merging per-shard drop "
            "events deterministically) is the tracked follow-up — see "
            "ROADMAP.md 'Shard-aware fault replication' and the "
            "'Capability limits' section of docs/SHARDING.md. "
            "Use engine='reference' or engine='compiled' (or unset "
            f"REPRO_ENGINE) for fault experiments.\n{ENGINE_MATRIX}"
        )
    if resolved in ("fast", "vector"):
        # the adapter is never fast-eligible, and the vector engine
        # accepts no fault observers; honor a REPRO_ENGINE default of
        # either by falling back instead of raising
        resolved = "auto"
    sim = build_simulator(adapter, model, engine=resolved, **kwargs)
    sim.add_observer(FaultInjector(schedule, adapter))
    if watchdog:
        sim.add_observer(DeadlockWatchdog(livelock_limit=livelock_limit))
    probe = resolve_probe(telemetry)
    if probe is not None:
        probe.attach(sim)
    return sim


@dataclass
class ResilienceResult:
    """One degraded run plus its resilience bookkeeping."""

    result: SimulationResult
    schedule: FaultSchedule
    generated: int  #: packets created, including never-injected backlog
    #: Mean extra hops per delivered packet versus the healthy minimal
    #: distance; NaN when the run was not traced.
    reroute_overhead: float = float("nan")

    @property
    def deliverable(self) -> int:
        """Packets the fault set left deliverable (watchdog-certified)."""
        return max(0, self.generated - self.result.undeliverable)

    @property
    def delivered_of_deliverable(self) -> float:
        """Delivery ratio over the packets that *could* be delivered."""
        if self.deliverable == 0:
            return 1.0
        return self.result.delivered / self.deliverable

    def row(self) -> dict:
        out = self.result.row()
        out["generated"] = self.generated
        out["delivered_of_deliverable"] = round(
            self.delivered_of_deliverable, 4
        )
        if self.reroute_overhead == self.reroute_overhead:  # not NaN
            out["reroute_overhead"] = round(self.reroute_overhead, 3)
        out["faults"] = self.schedule.final.describe()
        return out


def run_with_faults(
    algorithm: RoutingAlgorithm,
    model: InjectionModel,
    schedule: FaultSchedule,
    engine: str | None = None,
    watchdog: bool = True,
    detour: bool = True,
    measure_overhead: bool = False,
    max_cycles: int | None = None,
    telemetry=None,
    **kwargs,
) -> ResilienceResult:
    """Run one degraded simulation and collect resilience metrics.

    ``measure_overhead`` turns on route tracing and computes the mean
    reroute overhead from every delivered packet's actual node path.
    ``telemetry`` attaches a probe; its summary rides
    ``result.telemetry``.
    """
    if measure_overhead:
        kwargs.setdefault("trace", True)
    sim = make_fault_simulator(
        algorithm,
        model,
        schedule,
        engine=engine,
        watchdog=watchdog,
        detour=detour,
        telemetry=telemetry,
        **kwargs,
    )
    if measure_overhead:
        sim.delivered_messages = []
    result = sim.run(max_cycles=max_cycles)
    overhead = float("nan")
    if measure_overhead and sim.delivered_messages:
        topo = algorithm.topology
        extra = 0
        for msg in sim.delivered_messages:
            hops = len(node_path(msg.hops)) - 1
            extra += hops - topo.distance(msg.src, msg.dst)
        overhead = extra / len(sim.delivered_messages)
    generated = getattr(model, "total", result.injected)
    return ResilienceResult(
        result=result,
        schedule=schedule,
        generated=generated,
        reroute_overhead=overhead,
    )


#: Topology families the degradation sweep knows how to build:
#: key -> (topology factory over a size parameter, algorithm factory).
RESILIENCE_FAMILIES: dict[
    str,
    tuple[Callable[[int], Topology], Callable[[Topology], RoutingAlgorithm]],
] = {
    "hypercube": (lambda s: Hypercube(s), HypercubeAdaptiveRouting),
    "mesh": (lambda s: Mesh2D(s), Mesh2DAdaptiveRouting),
}


def _sweep_cell(cell: tuple) -> ResilienceResult:
    """Module-level worker (picklable for process pools)."""
    (family, size, count, seed, packets, engine, detour, telemetry) = cell
    build, make_alg = RESILIENCE_FAMILIES[family]
    topo = build(size)
    alg = make_alg(topo)
    if count:
        schedule = FaultSchedule.random_links(topo, count, seed)
    else:
        schedule = FaultSchedule.healthy(topo)
    model = StaticInjection(
        packets,
        RandomTraffic(topo),
        make_rng(seed, f"resilience-{family}-{size}"),
    )
    return run_with_faults(
        alg,
        model,
        schedule,
        engine=engine,
        detour=detour,
        measure_overhead=True,
        max_cycles=2_000_000,
        telemetry=telemetry,
    )


def degradation_sweep(
    family: str,
    size: int,
    fault_counts: Sequence[int],
    seed: int = 12345,
    packets_per_node: int = 1,
    engine: str | None = None,
    detour: bool = True,
    workers: int | None = None,
    telemetry: bool = False,
) -> list[dict]:
    """Delivery/latency/overhead versus the number of failed links.

    One row per entry of ``fault_counts`` (0 = healthy baseline; it is
    prepended when missing, since latency inflation is relative to it).
    Fault sets are seeded draws of ``count`` undirected links, so the
    sweep replays exactly; per-cell RNG derivation keeps parallel and
    serial runs identical.  ``telemetry`` attaches a metrics-only
    probe per cell, adding occupancy/utilization columns to the rows.
    """
    if family not in RESILIENCE_FAMILIES:
        raise ValueError(
            f"unknown family {family!r}; expected one of "
            f"{sorted(RESILIENCE_FAMILIES)}"
        )
    counts = list(fault_counts)
    if 0 not in counts:
        counts.insert(0, 0)
    cells = [
        (family, size, count, seed, packets_per_node, engine, detour,
         telemetry)
        for count in counts
    ]
    results = parallel_map(_sweep_cell, cells, workers=workers or 1)
    baseline = None
    rows = []
    for count, rr in zip(counts, results):
        if count == 0:
            baseline = rr.result.l_avg
        row = rr.row()
        row["failed_links"] = count
        if baseline and baseline == baseline and rr.result.latency.count:
            row["latency_x"] = round(rr.result.l_avg / baseline, 2)
        rows.append(row)
    return rows
