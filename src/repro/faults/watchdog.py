"""Runtime deadlock/livelock watchdog for the packet engines.

The paper's verified algorithms never deadlock on a healthy network,
and the engines' crude ``stall_limit`` guard turns an unexpected wedge
into a bare :class:`~repro.sim.engine.DeadlockError`.  Under injected
faults, neither is enough: a degraded run can wedge for *reasons* —
packets frozen inside a down node, destinations cut off by the fault
set, a genuine wait-for cycle over full queues — and a useful harness
must say which, instead of hanging or aborting opaquely.

:class:`DeadlockWatchdog` is an engine observer (see
``PacketSimulator.observers``) shared by the reference and compiled
engines (the compiled engine inherits ``step``/``run``).  When the
engine reports a no-progress interval, the watchdog classifies every
live packet, extracts the wait-for cycle over queues if one exists,
and then either

* raises :class:`DeadlockDetected` — a structured
  :class:`~repro.sim.engine.DeadlockError` carrying a full
  :class:`DeadlockReport` — when a deliverable packet is wedged, or
* raises :class:`~repro.sim.engine.SimulationHalt` when every stuck
  packet is provably undeliverable, so ``run`` finalizes a partial
  result (delivery counts, halt reason, undeliverable tally) instead
  of failing.

It also watches for *livelock*: packets moving forever without a
single delivery (possible once fault detours abandon the paper's
minimality guarantees).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..core.queues import QueueId
from ..sim.engine import DeadlockError, PacketSimulator, SimulationHalt
from ..telemetry.snapshots import find_wait_cycle
from .models import EMPTY_FAULTS, FaultSet


class SimObserver:
    """Base class for engine observers (duck-typed; subclassing is
    optional).  ``on_cycle`` runs at the start of every routing cycle;
    ``on_stall`` is consulted when the stall guard fires and may return
    True to suppress the alarm or raise a richer error."""

    def on_cycle(self, sim: PacketSimulator, cycle: int) -> None:
        pass

    def on_stall(self, sim: PacketSimulator) -> bool:
        return False


@dataclass
class StuckPacket:
    """One live packet's situation at analysis time."""

    src: Hashable
    dst: Hashable
    queue: QueueId | None  #: where it sits (None: link buffer)
    where: str  #: "queue" | "inj" | "out-buffer" | "in-buffer"
    category: str  #: "deliverable" | "unreachable" | "frozen" | "wedged"


@dataclass
class DeadlockReport:
    """Structured outcome of a no-progress (or no-delivery) analysis."""

    kind: str  #: "deadlock" | "undeliverable" | "livelock"
    cycle: int
    active: int
    stuck_deliverable: int = 0
    unreachable: int = 0  #: active packets whose dst is cut off
    frozen: int = 0  #: active packets inside a down node
    wedged: int = 0  #: active packets committed to a dead link buffer
    backlog_unreachable: int = 0  #: never-injected, dst cut off
    backlog_starved: int = 0  #: never-injected, blocked behind the above
    wait_cycle: tuple[QueueId, ...] | None = None
    fault_summary: str = "healthy"
    packets: list[StuckPacket] = field(default_factory=list)

    @property
    def undeliverable(self) -> int:
        """Packets that can never be delivered from here on."""
        return (
            self.unreachable
            + self.frozen
            + self.wedged
            + self.backlog_unreachable
            + self.backlog_starved
        )

    def summary(self) -> str:
        bits = [
            f"{self.kind} at cycle {self.cycle}",
            f"{self.active} active packet(s)",
            f"faults: {self.fault_summary}",
        ]
        if self.stuck_deliverable:
            bits.append(f"{self.stuck_deliverable} deliverable but stuck")
        if self.unreachable:
            bits.append(f"{self.unreachable} with unreachable destination")
        if self.frozen:
            bits.append(f"{self.frozen} frozen in down node(s)")
        if self.wedged:
            bits.append(f"{self.wedged} wedged on dead link buffer(s)")
        if self.backlog_unreachable or self.backlog_starved:
            bits.append(
                f"backlog: {self.backlog_unreachable} unreachable, "
                f"{self.backlog_starved} starved"
            )
        if self.wait_cycle:
            bits.append(
                "wait-for cycle: "
                + " -> ".join(str(q) for q in self.wait_cycle)
            )
        return "; ".join(bits)


class DeadlockDetected(DeadlockError):
    """A :class:`DeadlockError` carrying the watchdog's full report."""

    def __init__(self, report: DeadlockReport):
        super().__init__(report.summary())
        self.report = report


def _fault_set(sim: PacketSimulator) -> FaultSet:
    fs = getattr(sim.algorithm, "active", None)
    return fs if isinstance(fs, FaultSet) else EMPTY_FAULTS


class DeadlockWatchdog(SimObserver):
    """Observer that turns engine stalls into structured reports.

    Parameters
    ----------
    halt_when_undeliverable:
        When True (default), a stall whose every wedged packet is
        undeliverable ends the run gracefully via
        :class:`~repro.sim.engine.SimulationHalt` rather than raising.
    livelock_limit:
        Cycles without a *delivery* (while packets keep moving) before
        a livelock report is raised.  ``None`` disables the check.
    check_every:
        Livelock polling stride; progress bookkeeping only.
    """

    def __init__(
        self,
        halt_when_undeliverable: bool = True,
        livelock_limit: int | None = 25_000,
        check_every: int = 64,
    ):
        self.halt_when_undeliverable = halt_when_undeliverable
        self.livelock_limit = livelock_limit
        self.check_every = check_every
        self._last_delivered = 0
        self._last_delivery_cycle = 0

    # ------------------------------------------------------------------
    # Observer hooks
    # ------------------------------------------------------------------
    def on_cycle(self, sim: PacketSimulator, cycle: int) -> None:
        if self.livelock_limit is None or cycle % self.check_every:
            return
        if sim.delivered_count != self._last_delivered:
            self._last_delivered = sim.delivered_count
            self._last_delivery_cycle = cycle
            return
        if (
            sim.active > 0
            and cycle - self._last_delivery_cycle > self.livelock_limit
            and cycle - sim._last_progress <= sim.stall_limit
        ):
            # Packets are moving but nothing arrives: livelock.
            report = self.analyze(sim, kind="livelock")
            raise DeadlockDetected(report)

    def on_stall(self, sim: PacketSimulator) -> bool:
        report = self.analyze(sim, kind="deadlock")
        if (
            self.halt_when_undeliverable
            and report.stuck_deliverable == 0
            and report.undeliverable > 0
        ):
            report.kind = "undeliverable"
            raise SimulationHalt(
                report.summary(),
                report=report,
                undeliverable=report.undeliverable,
            )
        raise DeadlockDetected(report)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def analyze(
        self, sim: PacketSimulator, kind: str = "deadlock"
    ) -> DeadlockReport:
        """Classify every live packet and extract the wait-for cycle."""
        fs = _fault_set(sim)
        topo = sim.topology
        report = DeadlockReport(
            kind=kind,
            cycle=sim.cycle,
            active=sim.active,
            fault_summary=fs.describe(),
        )

        def reachable(u: Hashable, dst: Hashable) -> bool:
            if not fs.any:
                return True
            return u in fs.reachable(topo, dst)

        def classify(msg, u: Hashable, queue, where: str, category=None):
            if category is None:
                if u in fs.dead_nodes:
                    category = "frozen"
                elif not reachable(u, msg.dst):
                    category = "unreachable"
                else:
                    category = "deliverable"
            if category == "deliverable":
                report.stuck_deliverable += 1
            elif category == "unreachable":
                report.unreachable += 1
            elif category == "frozen":
                report.frozen += 1
            else:
                report.wedged += 1
            report.packets.append(
                StuckPacket(msg.src, msg.dst, queue, where, category)
            )

        for u in sim.nodes:
            for kind_, q in sim.central[u].items():
                for msg in q:
                    classify(msg, u, QueueId(u, kind_), "queue")
            msg = sim.inj[u]
            if msg is not None:
                classify(msg, u, QueueId(u, "inj"), "inj")
        for (u, v, _cls), msg in sim.out_buf.items():
            if msg is None:
                continue
            if (u, v) in fs.dead_links:
                classify(msg, u, None, "out-buffer", category="wedged")
            else:
                classify(msg, u, None, "out-buffer")
        for (_u, v, _cls), msg in sim.in_buf.items():
            if msg is not None:
                classify(msg, v, None, "in-buffer")

        # Never-injected backlog (static injection): packets that will
        # never even enter the network.  A backlog entry is starved
        # when its node's injection pipeline is permanently parked
        # (head packet undeliverable) or its node is down.
        backlog = getattr(sim.injection, "backlog", None)
        if isinstance(backlog, dict):
            for u, msgs in backlog.items():
                if not msgs:
                    continue
                head = sim.inj[u]
                node_parked = u in fs.dead_nodes or (
                    head is not None and not reachable(u, head.dst)
                )
                for msg in msgs:
                    if not reachable(u, msg.dst):
                        report.backlog_unreachable += 1
                    elif node_parked:
                        report.backlog_starved += 1

        if report.stuck_deliverable:
            report.wait_cycle = self._find_wait_cycle(sim, fs)
        return report

    def _find_wait_cycle(
        self, sim: PacketSimulator, fs: FaultSet
    ) -> tuple[QueueId, ...] | None:
        """Wait-for cycle over central queues — the classic
        store-and-forward deadlock witness.  Delegates to the shared
        snapshot helper in :mod:`repro.telemetry.snapshots`, so the
        same graph is available outside a stall analysis too."""
        return find_wait_cycle(sim, fs.dead_nodes)
