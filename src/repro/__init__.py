"""repro: fully-adaptive minimal deadlock-free packet routing.

Reproduction of Pifarré, Gravano, Felperin & Sanz,
*"Fully-Adaptive Minimal Deadlock-Free Packet Routing in Hypercubes,
Meshes, and Other Networks"*, SPAA 1991.

Public surface
--------------
* :mod:`repro.topology` — hypercube, mesh, torus, shuffle-exchange;
* :mod:`repro.routing` — the paper's algorithms and baselines;
* :mod:`repro.core` — routing-function framework, QDGs, machine
  verification of the deadlock-freedom conditions;
* :mod:`repro.node` — the Section-6 node designs;
* :mod:`repro.sim` — the Section-7 cycle-accurate simulator;
* :mod:`repro.experiments` — the paper's Tables 1-12 as runnable
  experiments;
* :mod:`repro.faults` — fault injection, the deadlock watchdog, and
  resilience/degradation experiments (beyond the paper);
* :mod:`repro.analysis` — table/figure rendering and occupancy studies.
"""

from . import analysis, core, experiments, faults, node, routing, sim, topology

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "experiments",
    "faults",
    "node",
    "routing",
    "sim",
    "topology",
    "__version__",
]
