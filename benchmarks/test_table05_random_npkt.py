"""Table 5: Random Routing, n packets per node (static injection).

Regenerates the paper's Table 5 (hypercube, fully-adaptive
algorithm) at the configured scale and checks its shape against the
published reference values.
"""

from conftest import bench_paper_table


def test_table05_random_npkt(benchmark):
    bench_paper_table(benchmark, 5)
