"""Ablation: full adaptivity vs oblivious routing.

The paper argues (Section 1) that oblivious minimal routing cannot
achieve optimal performance; this benchmark quantifies the gap on the
adversarial permutations with the queue structure held fixed (the
oblivious baseline is the deterministic restriction of the same hung
scheme), plus the structured-buffer-pool upper-bound comparator.
"""

from repro.analysis import format_rows
from repro.routing import (
    HypercubeAdaptiveRouting,
    HypercubeObliviousRouting,
    StructuredBufferPoolRouting,
)
from repro.sim import (
    PacketSimulator,
    StaticInjection,
    hypercube_pattern,
    make_rng,
)
from repro.topology import Hypercube

N_DIM = 5
FACTORIES = (
    HypercubeAdaptiveRouting,
    HypercubeObliviousRouting,
    StructuredBufferPoolRouting,
)


def run_grid():
    cube = Hypercube(N_DIM)
    results = {}
    for pattern_name in ("complement", "transpose"):
        for factory in FACTORIES:
            alg = factory(cube)
            pattern = hypercube_pattern(pattern_name, cube, make_rng(0))
            inj = StaticInjection(N_DIM, pattern, make_rng(0))
            results[(pattern_name, alg.name)] = PacketSimulator(alg, inj).run(
                max_cycles=200_000
            )
    return results


def test_ablation_oblivious(benchmark):
    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = [
        {"pattern": p, **r.row()}
        for (p, _a), r in sorted(results.items(), key=lambda kv: kv[0])
    ]
    print()
    print(format_rows(rows))
    for pattern in ("complement", "transpose"):
        adaptive = results[(pattern, "hypercube-adaptive")]
        oblivious = results[(pattern, "hypercube-oblivious")]
        # Full adaptivity must clearly beat the oblivious restriction.
        assert adaptive.l_avg < oblivious.l_avg, pattern
        # And approach the resource-rich buffer-pool comparator.
        pool = results[(pattern, f"structured-buffer-pool({N_DIM + 1})")]
        assert adaptive.l_avg <= 2.5 * pool.l_avg, pattern
