"""Engine micro-benchmark: node-cycles/s, reference vs compiled vs fast.

Measures the three engines on the same saturated random-traffic
workload (dynamic injection at ``lambda = 1``) for the hypercube, the
2-D mesh, and the shuffle-exchange, and writes the measurements — plus
the compiled/reference speedups — to ``BENCH_engine.json`` at the repo
root.  The engines are packet-for-packet identical
(``tests/test_sim_compiled.py`` / ``tests/test_sim_fastcube.py``), so
throughput is the only thing that can differ.

Run standalone (writes the JSON)::

    PYTHONPATH=src python benchmarks/bench_engine.py

or through pytest (the ``perf`` marker keeps it out of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py -m perf -s
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.experiments import build_simulator
from repro.routing import (
    HypercubeAdaptiveRouting,
    MeshAdaptiveRouting,
    ShuffleExchangeRouting,
    TorusRouting,
)
from repro.sim import DynamicInjection, RandomTraffic, make_rng
from repro.topology import Hypercube, Mesh, ShuffleExchange, Torus

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_engine.json"

#: (workload key, topology factory, algorithm, engines to measure).
WORKLOADS = [
    (
        "hypercube-n6",
        lambda: Hypercube(6),
        HypercubeAdaptiveRouting,
        ("reference", "compiled", "fast"),
    ),
    (
        "mesh-8x8",
        lambda: Mesh((8, 8)),
        MeshAdaptiveRouting,
        ("reference", "compiled"),
    ),
    (
        "shuffle-n6",
        lambda: ShuffleExchange(6),
        ShuffleExchangeRouting,
        ("reference", "compiled"),
    ),
    (
        "torus-6x6",
        lambda: Torus((6, 6)),
        TorusRouting,
        ("reference", "compiled"),
    ),
]

CYCLES = 300
REPEATS = 3


def run_engine(engine, make_topology, algorithm_cls, cycles=CYCLES):
    """Time one run; returns (node-cycles/s, SimulationResult)."""
    topo = make_topology()
    model = DynamicInjection(
        1.0, RandomTraffic(topo), make_rng(0, "bench"), duration=cycles
    )
    sim = build_simulator(algorithm_cls(topo), model, engine=engine)
    t0 = time.perf_counter()
    result = sim.run(max_cycles=2_000_000)
    elapsed = time.perf_counter() - t0
    return topo.num_nodes * result.cycles / elapsed, result


def collect(cycles=CYCLES, repeats=REPEATS) -> dict:
    """Best-of-``repeats`` node-cycles/s for every workload x engine."""
    out: dict[str, dict] = {}
    for key, make_topology, algorithm_cls, engines in WORKLOADS:
        row: dict[str, float] = {}
        delivered: dict[str, int] = {}
        for engine in engines:
            best = 0.0
            for _ in range(repeats):
                ncs, result = run_engine(
                    engine, make_topology, algorithm_cls, cycles
                )
                best = max(best, ncs)
            row[engine] = round(best, 1)
            delivered[engine] = result.delivered
        # Same workload, identical engines => identical delivery counts.
        assert len(set(delivered.values())) == 1, delivered
        entry = {"node_cycles_per_s": row, "delivered": delivered["reference"]}
        if "compiled" in row:
            entry["compiled_speedup"] = round(
                row["compiled"] / row["reference"], 2
            )
        if "fast" in row:
            entry["fast_speedup"] = round(row["fast"] / row["reference"], 2)
        out[key] = entry
    return out


def write_bench(path: Path = BENCH_PATH, cycles=CYCLES) -> dict:
    payload = {
        "benchmark": "engine-throughput",
        "workload": f"dynamic lambda=1 random traffic, {cycles} cycles",
        "metric": "node_cycles_per_s (best of 3)",
        "python": platform.python_version(),
        "results": collect(cycles=cycles),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.perf
def test_engine_benchmark():
    """Regenerate BENCH_engine.json; the compiled engine must stay >=3x
    the reference on the generic-topology workloads (ISSUE 3 target)."""
    payload = write_bench()
    print()
    print(json.dumps(payload, indent=2))
    for key in ("mesh-8x8", "shuffle-n6"):
        speedup = payload["results"][key]["compiled_speedup"]
        assert speedup >= 3.0, f"{key}: compiled speedup {speedup} < 3x"


if __name__ == "__main__":
    print(json.dumps(write_bench(), indent=2))
    print(f"wrote {BENCH_PATH}")
