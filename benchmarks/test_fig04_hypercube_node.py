"""Figure 4: the functional design of node 0101 of the 4-hypercube.

Derives the node's buffer layout from the routing function itself and
validates it against the paper's description: two central queues;
down-links (toward 1111) carry only static-A traffic, up-links carry
static-B plus dynamic-A traffic.
"""

from repro.analysis import figure4_hypercube_node


def test_fig04_hypercube_node(benchmark):
    fig = benchmark.pedantic(figure4_hypercube_node, rounds=1, iterations=1)
    print()
    print(fig.text)

    assert fig.stats["central_queues"] == 2
    assert fig.stats["out_links"] == 4 and fig.stats["in_links"] == 4
    # 0101: dims 1, 3 are down-links (1 buffer), dims 0, 2 up (2 each):
    # (1+2+1+2) output + same input = 12 buffers.
    assert fig.stats["buffers"] == 12
    assert "out link#1 -> 0111: A" in fig.text
    assert "out link#0 -> 0100: B, dyn" in fig.text
