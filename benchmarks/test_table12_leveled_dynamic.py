"""Table 12: Leveled permutation, dynamic injection at lambda=1.

Regenerates the paper's Table 12 (hypercube, fully-adaptive
algorithm) at the configured scale and checks its shape against the
published reference values.
"""

from conftest import bench_paper_table


def test_table12_leveled_dynamic(benchmark):
    bench_paper_table(benchmark, 12)
