"""Structural benchmark: extended escape-CDG construction.

Not a paper figure (the paper defers worm-hole routing to [GPS91]),
but the worm-hole analogue of Figures 1-3: builds the extended escape
channel-dependency graphs for the shipped schemes, checks their
acyclicity, and exhibits the counterexample cycle of the naive
hung-escape transcription.
"""

import networkx as nx

from repro.topology import Hypercube, Torus
from repro.wormhole import (
    HungEscapeHypercubeWormhole,
    HypercubeAdaptiveWormhole,
    TorusAdaptiveWormhole,
    extended_escape_cdg,
)


def build_all():
    return {
        "hypercube-adaptive": extended_escape_cdg(
            HypercubeAdaptiveWormhole(Hypercube(4))
        ),
        "torus-adaptive": extended_escape_cdg(
            TorusAdaptiveWormhole(Torus((4, 4)))
        ),
        "hung-escape (counterexample)": extended_escape_cdg(
            HungEscapeHypercubeWormhole(Hypercube(3))
        ),
    }


def test_wormhole_escape_cdgs(benchmark):
    graphs = benchmark.pedantic(build_all, rounds=1, iterations=1)
    print()
    for name, g in graphs.items():
        acyclic = nx.is_directed_acyclic_graph(g)
        print(
            f"  {name}: {g.number_of_nodes()} escape channels, "
            f"{g.number_of_edges()} extended deps, "
            f"{'ACYCLIC' if acyclic else 'CYCLIC'}"
        )
    assert nx.is_directed_acyclic_graph(graphs["hypercube-adaptive"])
    assert nx.is_directed_acyclic_graph(graphs["torus-adaptive"])
    assert not nx.is_directed_acyclic_graph(
        graphs["hung-escape (counterexample)"]
    )
    cycle = nx.find_cycle(graphs["hung-escape (counterexample)"])
    print("  counterexample cycle:",
          " -> ".join(str(e[0]) for e in cycle))
