"""Sharded-engine benchmark: multi-process scaling at 64K nodes.

Measures :class:`~repro.sim.sharded.ShardedSimulator` against the
single-process vector engine on a 65,536-node hypercube (n=16) and a
256x256 mesh at 1/2/4/8 shards, and writes wall time, speedup,
parallel efficiency, and the protocol accounting (boundary messages
per shard) to ``BENCH_sharded.json`` at the repo root.  The engines
are byte-identical (``tests/test_sim_sharded.py``), so throughput is
the only thing that can differ.

The report is deliberately honest about parallelism
(`docs/SHARDING.md`): it records ``host_cpus``, and on a single-core
host the sharded engine is strictly *slower* than the vector engine —
the one-barrier-per-cycle protocol and the boundary mirrors are pure
overhead unless shards land on real cores.  Speedup approaches
``min(shards, cores)`` only when boundary traffic is a small fraction
of per-cycle work.

Run standalone (writes the JSON; takes several minutes at 64K nodes)::

    PYTHONPATH=src python benchmarks/bench_sharded.py

CI-sized completeness + identity check (no JSON written)::

    PYTHONPATH=src python benchmarks/bench_sharded.py --smoke

or through pytest (the ``perf`` marker keeps it out of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharded.py -m perf -s
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.core.message import reset_message_ids
from repro.routing import HypercubeAdaptiveRouting, MeshAdaptiveRouting
from repro.sim import (
    DynamicInjection,
    RandomTraffic,
    RoutingTables,
    ShardedSimulator,
    StaticInjection,
    VectorSimulator,
    make_rng,
)
from repro.topology import Hypercube, Mesh

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_sharded.json"

SHARD_COUNTS = (1, 2, 4, 8)

#: (key, topology factory, algorithm, injection factory).
#: The hypercube cell is the ISSUE 9 acceptance workload (one static
#: packet per node, uniform random); the mesh cell uses light dynamic
#: injection so the drain phase stays bounded at 65K nodes.
WORKLOADS = [
    (
        "hypercube-n16-static1-random",
        lambda: Hypercube(16),
        HypercubeAdaptiveRouting,
        lambda t: StaticInjection(
            1, RandomTraffic(t), make_rng(7, "bench-sharded")
        ),
    ),
    (
        "mesh-256x256-random-lam0.002",
        lambda: Mesh((256, 256)),
        MeshAdaptiveRouting,
        lambda t: DynamicInjection(
            0.002, RandomTraffic(t), make_rng(7, "bench-sharded"),
            duration=100, warmup=25,
        ),
    ),
]


def _run_cell(key, make_topology, algorithm_cls, make_model,
              shard_counts=SHARD_COUNTS) -> dict:
    """Serial vector baseline + one sharded run per shard count."""
    topo = make_topology()
    alg = algorithm_cls(topo)
    t0 = time.perf_counter()
    tables = RoutingTables(alg)
    table_build_s = time.perf_counter() - t0

    # Warmup run: the shared tables materialize rows lazily, and the
    # first run pays that once.  Without it the baseline absorbs the
    # whole warm-up and every sharded row would ride warm tables
    # against a cold baseline, inflating "speedups" by 4-9x.
    reset_message_ids()
    VectorSimulator(alg, make_model(topo), tables=tables).run(
        max_cycles=2_000_000
    )
    reset_message_ids()
    t1 = time.perf_counter()
    base = VectorSimulator(alg, make_model(topo), tables=tables).run(
        max_cycles=2_000_000
    )
    base_s = time.perf_counter() - t1

    shards_out = {}
    for n_shards in shard_counts:
        reset_message_ids()
        sim = ShardedSimulator(
            alg, make_model(topo), shards=n_shards, tables=tables
        )
        t2 = time.perf_counter()
        res = sim.run(max_cycles=2_000_000)
        elapsed = time.perf_counter() - t2
        # Identical engines on an identical workload => identical
        # results; a scaling number for a different simulation would
        # be meaningless.
        assert (res.delivered, res.cycles) == (base.delivered, base.cycles)
        speedup = base_s / elapsed
        shards_out[str(n_shards)] = {
            "seconds": round(elapsed, 2),
            "speedup_vs_vector": round(speedup, 2),
            "efficiency": round(speedup / n_shards, 3),
            "boundary_messages": (
                sim.hub_stats["boundary_messages"] if sim.hub_stats else None
            ),
        }
    return {
        "nodes": topo.num_nodes,
        "cycles": base.cycles,
        "delivered": base.delivered,
        "table_build_seconds": round(table_build_s, 2),
        "vector_seconds": round(base_s, 2),
        "shards": shards_out,
    }


def write_bench(path: Path = BENCH_PATH,
                shard_counts=SHARD_COUNTS) -> dict:
    payload = {
        "benchmark": "sharded-engine-scaling",
        "workload": "64K-node networks, warm shared tables",
        "metric": (
            "wall seconds per full run, warm tables "
            "(speedup vs 1-process vector)"
        ),
        "python": platform.python_version(),
        "host_cpus": os.cpu_count(),
        "note": (
            "speedup can only approach min(shards, host_cpus); on a "
            "single-core host the barrier protocol is pure overhead "
            "and the sharded engine is slower than vector "
            "(docs/SHARDING.md)"
        ),
        "results": {
            key: _run_cell(key, *rest, shard_counts=shard_counts)
            for key, *rest in WORKLOADS
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# ----------------------------------------------------------------------
# CI smoke: completion + identity at toy sizes, no JSON
# ----------------------------------------------------------------------
SMOKE_WORKLOADS = [
    (
        "hypercube-n6-static2-random",
        lambda: Hypercube(6),
        HypercubeAdaptiveRouting,
        lambda t: StaticInjection(
            2, RandomTraffic(t), make_rng(7, "bench-sharded")
        ),
    ),
    (
        "mesh-16x16-random-lam0.05",
        lambda: Mesh((16, 16)),
        MeshAdaptiveRouting,
        lambda t: DynamicInjection(
            0.05, RandomTraffic(t), make_rng(7, "bench-sharded"),
            duration=60, warmup=15,
        ),
    ),
]


def perf_smoke() -> dict:
    """CI-sized check: every shard count completes and the merged
    result is identical to the serial vector run — the full
    multi-process barrier protocol, at sizes that finish in seconds."""
    out = {}
    for key, make_topology, algorithm_cls, make_model in SMOKE_WORKLOADS:
        topo = make_topology()
        alg = algorithm_cls(topo)
        tables = RoutingTables(alg)
        reset_message_ids()
        base = VectorSimulator(alg, make_model(topo), tables=tables).run(
            max_cycles=500_000
        )
        for n_shards in (1, 2, 4):
            reset_message_ids()
            res = ShardedSimulator(
                alg, make_model(topo), shards=n_shards, tables=tables
            ).run(max_cycles=500_000)
            assert (res.delivered, res.cycles, sorted(res.latency.values)) \
                == (base.delivered, base.cycles,
                    sorted(base.latency.values)), (
                f"{key} @ {n_shards} shards diverged from serial"
            )
        out[key] = {"delivered": base.delivered, "cycles": base.cycles}
    return out


@pytest.mark.perf
def test_sharded_benchmark():
    """Regenerate BENCH_sharded.json (full 64K-node grid)."""
    payload = write_bench()
    print()
    print(json.dumps(payload, indent=2))
    for key, cell in payload["results"].items():
        assert cell["delivered"] > 0, f"{key} delivered nothing"


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        print(json.dumps(perf_smoke(), indent=2))
        print("sharded smoke passed: all shard counts byte-identical")
    else:
        print(json.dumps(write_bench(), indent=2))
        print(f"wrote {BENCH_PATH}")
