"""Figure 5: the functional design of a mesh routing node.

An interior node of the 4x4 mesh under the fully-adaptive two-phase
algorithm: two central queues, four links, A/B/dyn traffic classes.
"""

from repro.analysis import figure5_mesh_node


def test_fig05_mesh_node(benchmark):
    fig = benchmark.pedantic(figure5_mesh_node, rounds=1, iterations=1)
    print()
    print(fig.text)

    assert fig.stats["central_queues"] == 2
    assert fig.stats["out_links"] == 4  # interior node
    assert "A(cap=5)" in fig.text and "B(cap=5)" in fig.text
    assert "dyn" in fig.text
