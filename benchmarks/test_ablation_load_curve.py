"""Ablation: offered-load curves (beyond the paper's lambda=1 point).

The paper reports only the saturating operating point; this benchmark
traces the full latency-vs-load curve for the adaptive algorithm and
the oblivious restriction under random traffic, confirming that

* at low load both sit on the uncontended 2h+1 law,
* the adaptive router saturates at a strictly higher accepted load.
"""

from repro.analysis import format_rows, load_sweep, saturation_throughput
from repro.routing import HypercubeAdaptiveRouting, HypercubeObliviousRouting
from repro.sim import hypercube_pattern, make_rng
from repro.topology import Hypercube

N_DIM = 5
RATES = (0.1, 0.3, 0.6, 1.0)


def run_curves():
    cube = Hypercube(N_DIM)
    out = {}
    for factory in (HypercubeAdaptiveRouting, HypercubeObliviousRouting):
        out[factory(cube).name] = load_sweep(
            lambda f=factory: f(cube),
            lambda: hypercube_pattern("transpose", cube, make_rng(0)),
            rates=RATES,
            duration=300,
            warmup=100,
            seed=11,
        )
    return out


def test_ablation_load_curve(benchmark):
    curves = benchmark.pedantic(run_curves, rounds=1, iterations=1)
    print()
    for name, points in curves.items():
        print(name)
        print(format_rows([p.row() for p in points]))
    adaptive = curves["hypercube-adaptive"]
    oblivious = curves["hypercube-oblivious"]
    # Low load: both near the uncontended latency.
    assert adaptive[0].l_avg < 2 * (N_DIM / 2) + 4
    # Adaptive sustains at least the oblivious accepted throughput.
    assert saturation_throughput(adaptive) >= saturation_throughput(
        oblivious
    ) - 1e-9
    # And is no slower at the saturating point.
    assert adaptive[-1].l_avg <= oblivious[-1].l_avg + 0.5
