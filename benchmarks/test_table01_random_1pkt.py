"""Table 1: Random Routing, 1 packet per node (static injection).

Regenerates the paper's Table 1 (hypercube, fully-adaptive
algorithm) at the configured scale and checks its shape against the
published reference values.
"""

from conftest import bench_paper_table


def test_table01_random_1pkt(benchmark):
    bench_paper_table(benchmark, 1)
