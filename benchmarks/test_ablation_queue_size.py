"""Ablation: sensitivity to the central-queue capacity.

The paper fixes the central queues to 5 slots "arbitrarily"
(Section 7.1) — the point being that the size need not grow with the
network.  This benchmark sweeps the capacity and checks that (a) the
algorithm stays deadlock free even at capacity 1, and (b) returns
diminish: capacity 5 performs within a small factor of capacity 8.
"""

from repro.analysis import format_rows
from repro.routing import HypercubeAdaptiveRouting
from repro.sim import DynamicInjection, PacketSimulator, RandomTraffic, make_rng
from repro.topology import Hypercube

N_DIM = 5
CAPACITIES = (1, 2, 3, 5, 8)


def run_sweep():
    cube = Hypercube(N_DIM)
    results = {}
    for cap in CAPACITIES:
        alg = HypercubeAdaptiveRouting(cube)
        inj = DynamicInjection(
            1.0, RandomTraffic(cube), make_rng(3), duration=300, warmup=100
        )
        sim = PacketSimulator(alg, inj, central_capacity=cap)
        results[cap] = sim.run()
    return results


def test_ablation_queue_size(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        {"capacity": c, **r.row(), "I_r(%)": round(100 * r.injection_rate, 1)}
        for c, r in results.items()
    ]
    print()
    print(format_rows(rows))
    # Deadlock-free and productive at every capacity.
    for cap, res in results.items():
        assert res.delivered > 0, f"capacity {cap} delivered nothing"
    # Bigger queues never hurt injection throughput much...
    assert results[5].injection_rate >= results[1].injection_rate - 0.05
    # ...and the paper's choice of 5 is within 10% of capacity 8.
    assert results[5].injection_rate >= results[8].injection_rate - 0.10
