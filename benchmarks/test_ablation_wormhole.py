"""Ablation: worm-hole vs packet switching, and adaptive worm-hole VCs.

The paper keeps worm-hole routing out of scope (deferring to [GPS91])
but motivates the switching-mode trade-off in Section 1.  This
benchmark quantifies it with our flit-level engine:

* store-and-forward packet latency grows ~2 cycles per hop per packet,
  while a worm's tail latency is ``h + L - 2`` — distance-insensitive
  for long messages;
* on the torus, the adaptive scheme (dateline escape + adaptive VC)
  clearly beats pure dimension-order under shifted traffic.
"""

from repro.analysis import format_rows
from repro.topology import Hypercube, Torus
from repro.wormhole import (
    HypercubeAdaptiveWormhole,
    TorusAdaptiveWormhole,
    TorusDimensionOrderWormhole,
    Worm,
    WormholeSimulator,
)

LENGTHS = (2, 8, 32)


def run_length_sweep():
    cube = Hypercube(5)
    out = {}
    for length in LENGTHS:
        sim = WormholeSimulator(HypercubeAdaptiveWormhole(cube))
        sim.offer_all(
            Worm(src=u, dst=u ^ cube._mask, length=length)
            for u in cube.nodes()
        )
        sim.run()
        out[length] = sim
    return out


def run_torus_pair():
    t = Torus((6, 6))
    worms = lambda: [
        Worm(src=u, dst=((u[0] + 3) % 6, (u[1] + 2) % 6), length=6)
        for u in t.nodes()
    ]
    sims = {}
    for cls in (TorusAdaptiveWormhole, TorusDimensionOrderWormhole):
        sim = WormholeSimulator(cls(t))
        sim.offer_all(worms())
        sim.run()
        sims[sim.scheme.name] = sim
    return sims


def test_ablation_wormhole_length_scaling(benchmark):
    sims = benchmark.pedantic(run_length_sweep, rounds=1, iterations=1)
    rows = [
        {
            "flits": length,
            "head_avg": round(sim.head_latency.mean, 1),
            "tail_avg": round(sim.latency.mean, 1),
            "tail_max": sim.latency.maximum,
        }
        for length, sim in sims.items()
    ]
    print()
    print(format_rows(rows))
    # Pipeline scaling: tail latency grows ~1 cycle per extra flit,
    # while head latency stays bounded by contention, not length.
    t2, t32 = sims[2].latency.mean, sims[32].latency.mean
    assert t32 - t2 >= 0.8 * (32 - 2)
    assert sims[32].head_latency.mean < sims[32].latency.mean


def test_ablation_wormhole_torus_adaptivity(benchmark):
    sims = benchmark.pedantic(run_torus_pair, rounds=1, iterations=1)
    rows = [
        {
            "scheme": name,
            "L_avg": round(sim.latency.mean, 1),
            "L_max": sim.latency.maximum,
            "cycles": sim.cycle,
        }
        for name, sim in sims.items()
    ]
    print()
    print(format_rows(rows))
    assert (
        sims["wh-torus-adaptive"].latency.mean
        < sims["wh-torus-dimension-order"].latency.mean
    )
