"""Table 6: Complement permutation, n packets per node (static injection).

Regenerates the paper's Table 6 (hypercube, fully-adaptive
algorithm) at the configured scale and checks its shape against the
published reference values.
"""

from conftest import bench_paper_table


def test_table06_complement_npkt(benchmark):
    bench_paper_table(benchmark, 6)
