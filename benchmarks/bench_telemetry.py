"""Telemetry overhead benchmark: what does observability cost?

Measures compiled-engine throughput on a saturated hypercube workload
in four configurations —

* ``baseline``    — no probe attached at all;
* ``disabled``    — a ``TelemetryProbe(enabled=False)`` attached (the
  configuration sweeps inherit when ``--telemetry`` is off: one no-op
  observer call per cycle plus the engine's ``_events is not None``
  checks);
* ``metrics``     — streaming metrics-only probe (``events=False``),
  the mode ``--telemetry`` sweeps use;
* ``events``      — full probe (event log + occupancy series), the
  ``repro telemetry`` artifact mode;

and writes everything, plus the relative overheads versus baseline, to
``BENCH_telemetry.json`` at the repo root.  The contract enforced here
is the disabled path: attaching-but-disabling telemetry must cost the
compiled engine **< 5%** throughput, so instrumented builds can leave
the hooks in place everywhere.

Run standalone (writes the JSON)::

    PYTHONPATH=src python benchmarks/bench_telemetry.py

or through pytest (the ``perf`` marker keeps it out of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/bench_telemetry.py -m perf -s
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.core.message import reset_message_ids
from repro.experiments import build_simulator
from repro.routing import HypercubeAdaptiveRouting
from repro.sim import DynamicInjection, RandomTraffic, make_rng
from repro.telemetry import TelemetryProbe
from repro.topology import Hypercube

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_telemetry.json"

CYCLES = 300
REPEATS = 5
N = 6

#: Probe factory per configuration (None = no probe attached).
CONFIGS = {
    "baseline": lambda: None,
    "disabled": lambda: TelemetryProbe(enabled=False),
    "metrics": lambda: TelemetryProbe(events=False),
    "events": lambda: TelemetryProbe(),
}

#: The hard bound on the disabled-path overhead (fraction of baseline).
DISABLED_BUDGET = 0.05


def run_config(make_probe, cycles=CYCLES):
    """Time one compiled-engine run; returns (node-cycles/s, result)."""
    reset_message_ids()
    topo = Hypercube(N)
    model = DynamicInjection(
        1.0, RandomTraffic(topo), make_rng(0, "bench"), duration=cycles
    )
    sim = build_simulator(
        HypercubeAdaptiveRouting(topo),
        model,
        engine="compiled",
        telemetry=make_probe(),
    )
    t0 = time.perf_counter()
    result = sim.run(max_cycles=2_000_000)
    elapsed = time.perf_counter() - t0
    return topo.num_nodes * result.cycles / elapsed, result


def collect(cycles=CYCLES, repeats=REPEATS) -> dict:
    """Best-of-``repeats`` node-cycles/s per configuration, interleaved
    round-robin so machine noise hits every configuration equally."""
    best = {key: 0.0 for key in CONFIGS}
    delivered = {}
    for _ in range(repeats):
        for key, make_probe in CONFIGS.items():
            ncs, result = run_config(make_probe, cycles)
            best[key] = max(best[key], ncs)
            delivered[key] = result.delivered
    # Telemetry must never change behavior, only measure it.
    assert len(set(delivered.values())) == 1, delivered
    out = {
        "node_cycles_per_s": {k: round(v, 1) for k, v in best.items()},
        "delivered": delivered["baseline"],
    }
    base = best["baseline"]
    out["overhead_vs_baseline"] = {
        k: round(1.0 - best[k] / base, 4) for k in CONFIGS if k != "baseline"
    }
    return out


def write_bench(path: Path = BENCH_PATH, cycles=CYCLES) -> dict:
    payload = {
        "benchmark": "telemetry-overhead",
        "workload": (
            f"compiled engine, hypercube n={N}, dynamic lambda=1 "
            f"random traffic, {cycles} cycles"
        ),
        "metric": f"node_cycles_per_s (best of {REPEATS}, interleaved)",
        "disabled_budget": DISABLED_BUDGET,
        "python": platform.python_version(),
        "results": collect(cycles=cycles),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.perf
def test_telemetry_overhead():
    """Regenerate BENCH_telemetry.json; a disabled probe must cost the
    compiled engine < 5% throughput (ISSUE 5 acceptance bound)."""
    payload = write_bench()
    print()
    print(json.dumps(payload, indent=2))
    overhead = payload["results"]["overhead_vs_baseline"]["disabled"]
    assert overhead < DISABLED_BUDGET, (
        f"disabled-telemetry overhead {overhead:.1%} exceeds "
        f"{DISABLED_BUDGET:.0%} budget"
    )


if __name__ == "__main__":
    print(json.dumps(write_bench(), indent=2))
    print(f"wrote {BENCH_PATH}")
