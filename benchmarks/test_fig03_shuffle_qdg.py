"""Figure 3: QDG of the 8-node shuffle-exchange with dynamic links.

Checks the two-phase cycle-broken structure: 4 central queues per
node, static acyclicity, and that phase-1 static exchanges raise the
cycle level while dynamic exchanges lower it.
"""

import networkx as nx

from repro.analysis import figure3_shuffle_qdg


def test_fig03_shuffle_qdg(benchmark):
    fig = benchmark.pedantic(figure3_shuffle_qdg, rounds=1, iterations=1)
    print()
    print(fig.text)

    assert fig.stats["queues"] == 48  # 8 nodes x {inj, 4 centrals, del}
    static = nx.DiGraph(
        (u, v) for u, v, d in fig.graph.edges(data="dynamic") if not d
    )
    assert nx.is_directed_acyclic_graph(static)
    weight = lambda q: bin(q.node).count("1")
    for u, v, dyn in fig.graph.edges(data="dynamic"):
        if not u.is_central or not v.is_central:
            continue
        if u.node == v.node:
            continue
        exchange = v.node == (u.node ^ 1)
        if dyn:
            # Dynamic links: early 1->0 corrections in phase 1.
            assert exchange
            assert u.kind.startswith("P1") and v.kind.startswith("P1")
            assert weight(v) == weight(u) - 1
        elif exchange and u.kind.startswith("P1") and v.kind.startswith("P1"):
            assert weight(v) == weight(u) + 1  # mandatory 0->1
        elif exchange and u.kind.startswith("P2"):
            assert weight(v) == weight(u) - 1  # phase-2 1->0
