"""Figure 2: QDG of the 3x3 mesh hung from (0,0) with dynamic links.

Checks the two-phase hung structure: static phase-A edges ascend the
level x+y, static phase-B edges descend it, dynamic links are A->A
minimal descents.
"""

import networkx as nx

from repro.analysis import figure2_mesh_qdg


def test_fig02_mesh_qdg(benchmark):
    fig = benchmark.pedantic(figure2_mesh_qdg, rounds=1, iterations=1)
    print()
    print(fig.text)

    assert fig.stats["queues"] == 36  # 9 nodes x 4 queues
    assert fig.stats["dynamic_edges"] > 0
    static = nx.DiGraph(
        (u, v) for u, v, d in fig.graph.edges(data="dynamic") if not d
    )
    assert nx.is_directed_acyclic_graph(static)
    for u, v, dyn in fig.graph.edges(data="dynamic"):
        if u.is_injection or v.is_delivery or u.node == v.node:
            continue
        lu, lv = sum(u.node), sum(v.node)
        if dyn:
            assert u.kind == "A" and v.kind == "A" and lv == lu - 1
        elif u.kind == "A" and v.kind == "A":
            assert lv == lu + 1
        elif u.kind == "B" and v.kind == "B":
            assert lv == lu - 1
