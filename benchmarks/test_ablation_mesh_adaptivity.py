"""Ablation: Section 4's two mesh routing functions compared.

The restricted scheme leaves "north-west" messages a single path; the
fully-adaptive extension opens all minimal paths at the same queue
cost.  Mesh-transpose traffic (every (x,y) -> (y,x)) exercises exactly
those mixed-direction routes.
"""

from repro.analysis import format_rows
from repro.routing import (
    Mesh2DAdaptiveRouting,
    Mesh2DRestrictedRouting,
    MeshObliviousRouting,
)
from repro.sim import (
    MeshTransposeTraffic,
    PacketSimulator,
    RandomTraffic,
    StaticInjection,
    make_rng,
)
from repro.topology import Mesh2D

SIDE = 6
PACKETS = 4


def run_grid():
    mesh = Mesh2D(SIDE)
    results = {}
    for pattern_factory, pname in (
        (MeshTransposeTraffic, "mesh-transpose"),
        (RandomTraffic, "random"),
    ):
        for factory in (
            Mesh2DAdaptiveRouting,
            Mesh2DRestrictedRouting,
            MeshObliviousRouting,
        ):
            alg = factory(mesh)
            inj = StaticInjection(PACKETS, pattern_factory(mesh), make_rng(1))
            results[(pname, alg.name)] = PacketSimulator(alg, inj).run(
                max_cycles=200_000
            )
    return results


def test_ablation_mesh_adaptivity(benchmark):
    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = [
        {"pattern": p, **r.row()}
        for (p, _a), r in sorted(results.items(), key=lambda kv: kv[0])
    ]
    print()
    print(format_rows(rows))
    for pname in ("mesh-transpose", "random"):
        adaptive = results[(pname, "mesh2d-adaptive")]
        restricted = results[(pname, "mesh2d-restricted")]
        oblivious = results[(pname, "mesh-oblivious")]
        assert adaptive.l_avg <= restricted.l_avg + 0.5, pname
        assert adaptive.l_avg <= oblivious.l_avg + 0.5, pname
    # On the adversarial transpose the gap must be strict.
    assert (
        results[("mesh-transpose", "mesh2d-adaptive")].l_avg
        < results[("mesh-transpose", "mesh-oblivious")].l_avg
    )
