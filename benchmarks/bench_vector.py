"""Vector-engine benchmark: node-cycles/s, compiled vs vector at scale.

Measures the table-driven :class:`~repro.sim.vector.VectorSimulator`
against the compiled engine on 512-4096-node networks and writes the
measurements — plus the vector/compiled speedups — to
``BENCH_vector.json`` at the repo root.  The engines are
packet-for-packet identical (``tests/test_sim_vector.py``), so
throughput is the only thing that can differ.

The workload grid deliberately spans both regimes (see
``docs/ARCHITECTURE.md`` and ``docs/PERFORMANCE.md``):

* **sparse traffic at scale** (light hotspot / light complement on
  1024-4096 nodes) — the compiled engine pays its O(nodes + links)
  per-cycle fixed cost regardless of activity, while the vector engine
  touches only active nodes plus one vectorized link pass; this is
  where the >=10x speedups live;
* **saturated traffic** (``lambda = 1`` random) — both engines are
  bound by per-hop routing-plan construction, which they share, so the
  gap narrows to ~1.5-3x.  Those rows are included honestly; they are
  the reason ``auto`` does not pick ``vector``.

Both engines share their warm plan state across repeats (compiled via
``plan_cache=``, vector via ``tables=``, the
``test_shared_plan_cache_across_runs`` idiom) and the best of
``REPEATS`` runs is reported, so table/plan construction is excluded
from the steady-state figure for *both* sides equally.

Run standalone (writes the JSON)::

    PYTHONPATH=src python benchmarks/bench_vector.py

or through pytest (the ``perf`` marker keeps it out of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/bench_vector.py -m perf -s
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.routing import HypercubeAdaptiveRouting, MeshAdaptiveRouting
from repro.sim import (
    ComplementTraffic,
    CompiledPacketSimulator,
    DynamicInjection,
    HotspotTraffic,
    MeshTransposeTraffic,
    RandomTraffic,
    RoutingTables,
    TransposeTraffic,
    VectorSimulator,
    make_rng,
)
from repro.sim.plans import RoutingPlanCache
from repro.topology import Hypercube, Mesh

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_vector.json"
KERNEL_BENCH_PATH = REPO_ROOT / "BENCH_kernels.json"

#: (key, topology factory, algorithm, traffic factory, lambda, cycles).
#: ``hotspot`` concentrates every packet on one destination, so most of
#: the network idles — the regime the vector engine is built for.
WORKLOADS = [
    (
        "hypercube-n9-hotspot-lam0.02",
        lambda: Hypercube(9),
        HypercubeAdaptiveRouting,
        lambda t: HotspotTraffic(t, fraction=1.0),
        0.02,
        400,
    ),
    (
        "hypercube-n10-hotspot-lam0.01",
        lambda: Hypercube(10),
        HypercubeAdaptiveRouting,
        lambda t: HotspotTraffic(t, fraction=1.0),
        0.01,
        400,
    ),
    (
        "hypercube-n12-hotspot-lam0.005",
        lambda: Hypercube(12),
        HypercubeAdaptiveRouting,
        lambda t: HotspotTraffic(t, fraction=1.0),
        0.005,
        300,
    ),
    (
        "hypercube-n12-hotspot-lam0.01",
        lambda: Hypercube(12),
        HypercubeAdaptiveRouting,
        lambda t: HotspotTraffic(t, fraction=1.0),
        0.01,
        300,
    ),
    (
        "mesh-32x32-hotspot-lam0.01",
        lambda: Mesh((32, 32)),
        MeshAdaptiveRouting,
        lambda t: HotspotTraffic(t, fraction=1.0),
        0.01,
        400,
    ),
    (
        "hypercube-n10-random-lam1",
        lambda: Hypercube(10),
        HypercubeAdaptiveRouting,
        lambda t: RandomTraffic(t),
        1.0,
        200,
    ),
]

REPEATS = 2


def _bench_workload(key, make_topology, algorithm_cls, make_traffic,
                    lam, cycles, repeats=REPEATS) -> dict:
    """Best-of-``repeats`` node-cycles/s for both engines on one cell."""
    topo = make_topology()
    alg = algorithm_cls(topo)
    cache = RoutingPlanCache(alg)
    tables = RoutingTables(alg)

    def model():
        return DynamicInjection(
            lam, make_traffic(topo), make_rng(7, "bench-vector"),
            duration=cycles, warmup=cycles // 4,
        )

    def best(make_sim):
        top, res = 0.0, None
        for _ in range(repeats):
            sim = make_sim()
            t0 = time.perf_counter()
            res = sim.run(max_cycles=2_000_000)
            elapsed = time.perf_counter() - t0
            top = max(top, topo.num_nodes * res.cycles / elapsed)
        return top, res

    ncs_c, res_c = best(
        lambda: CompiledPacketSimulator(alg, model(), plan_cache=cache)
    )
    ncs_v, res_v = best(lambda: VectorSimulator(alg, model(), tables=tables))
    # Identical engines on an identical workload => identical results.
    assert (res_c.delivered, res_c.cycles) == (res_v.delivered, res_v.cycles)
    return {
        "nodes": topo.num_nodes,
        "node_cycles_per_s": {
            "compiled": round(ncs_c, 1),
            "vector": round(ncs_v, 1),
        },
        "delivered": res_v.delivered,
        "vector_speedup": round(ncs_v / ncs_c, 2),
    }


def collect(repeats=REPEATS) -> dict:
    return {
        key: _bench_workload(key, *rest, repeats=repeats)
        for key, *rest in WORKLOADS
    }


def write_bench(path: Path = BENCH_PATH, repeats=REPEATS) -> dict:
    payload = {
        "benchmark": "vector-engine-throughput",
        "workload": "dynamic injection, warm shared tables/plan cache",
        "metric": f"node_cycles_per_s (best of {repeats})",
        "python": platform.python_version(),
        "results": collect(repeats=repeats),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# ----------------------------------------------------------------------
# Saturated suite: the integer-kernel + batched-node-cycle regime
# ----------------------------------------------------------------------
#: lambda = 1 everywhere — the regime the hop kernels and the batched
#: fill/read cycle were built for (ISSUE 8).  Sparse traffic stays in
#: the suite above; this one tracks the saturated gap.
KERNEL_WORKLOADS = [
    (
        "hypercube-n10-random-lam1",
        lambda: Hypercube(10),
        HypercubeAdaptiveRouting,
        lambda t: RandomTraffic(t),
        200,
    ),
    (
        "hypercube-n10-transpose-lam1",
        lambda: Hypercube(10),
        HypercubeAdaptiveRouting,
        lambda t: TransposeTraffic(t),
        200,
    ),
    (
        "hypercube-n10-complement-lam1",
        lambda: Hypercube(10),
        HypercubeAdaptiveRouting,
        lambda t: ComplementTraffic(t),
        200,
    ),
    (
        "mesh-32x32-random-lam1",
        lambda: Mesh((32, 32)),
        MeshAdaptiveRouting,
        lambda t: RandomTraffic(t),
        200,
    ),
    (
        "mesh-32x32-transpose-lam1",
        lambda: Mesh((32, 32)),
        MeshAdaptiveRouting,
        lambda t: MeshTransposeTraffic(t),
        200,
    ),
]


def _bench_kernel_workload(
    key, make_topology, algorithm_cls, make_traffic, cycles, repeats=REPEATS
) -> dict:
    """Saturated cell: warm best-of-``repeats`` + cold table build."""
    topo = make_topology()
    alg = algorithm_cls(topo)
    cache = RoutingPlanCache(alg)
    t0 = time.perf_counter()
    tables = RoutingTables(alg)
    table_build_s = time.perf_counter() - t0

    def model():
        return DynamicInjection(
            1.0, make_traffic(topo), make_rng(7, "bench-kernels"),
            duration=cycles, warmup=cycles // 4,
        )

    def best(make_sim):
        top, res, first = 0.0, None, None
        for _ in range(repeats):
            sim = make_sim()
            t1 = time.perf_counter()
            res = sim.run(max_cycles=2_000_000)
            elapsed = time.perf_counter() - t1
            if first is None:
                first = elapsed
            top = max(top, topo.num_nodes * res.cycles / elapsed)
        return top, res, first

    ncs_c, res_c, _ = best(
        lambda: CompiledPacketSimulator(alg, model(), plan_cache=cache)
    )
    ncs_v, res_v, cold_v = best(
        lambda: VectorSimulator(alg, model(), tables=tables)
    )
    # Identical engines on an identical workload => identical results.
    assert (res_c.delivered, res_c.cycles) == (res_v.delivered, res_v.cycles)
    return {
        "nodes": topo.num_nodes,
        "node_cycles_per_s": {
            "compiled": round(ncs_c, 1),
            "vector": round(ncs_v, 1),
        },
        "delivered": res_v.delivered,
        "vector_speedup": round(ncs_v / ncs_c, 2),
        "tables": {
            "kernel": tables.kernel is not None,
            "build_seconds": round(table_build_s, 4),
            "first_run_seconds": round(cold_v, 3),
            "rows": tables.rows_packed,
            "bytes": tables.memory_bytes(),
        },
    }


def write_kernel_bench(path: Path = KERNEL_BENCH_PATH, repeats=REPEATS) -> dict:
    payload = {
        "benchmark": "kernel-saturated-throughput",
        "workload": "dynamic injection lambda=1, warm shared tables/plan cache",
        "metric": f"node_cycles_per_s (best of {repeats})",
        "python": platform.python_version(),
        "results": {
            key: _bench_kernel_workload(key, *rest, repeats=repeats)
            for key, *rest in KERNEL_WORKLOADS
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def perf_smoke() -> float:
    """CI-sized saturated check: the kernel path must still win.

    A single small cell (hypercube-n8, ``lambda = 1`` random, 120
    cycles) with a deliberately generous floor — the full-size n10
    suite shows ~7x and this cell ~3x locally, so 1.5x only trips if
    the batched kernel path stops engaging at all.  Runs in well under
    a minute on a CI VM.
    """
    row = _bench_kernel_workload(
        "smoke",
        lambda: Hypercube(8),
        HypercubeAdaptiveRouting,
        lambda t: RandomTraffic(t),
        120,
    )
    speedup = row["vector_speedup"]
    assert row["tables"]["kernel"], "hop kernel missing on hypercube"
    assert speedup >= 1.5, (
        f"perf smoke: saturated hypercube-n8 speedup {speedup} < 1.5x floor"
    )
    return speedup


@pytest.mark.perf
def test_kernel_benchmark():
    """Regenerate BENCH_kernels.json; the batched vector engine must
    reach >=4x the compiled engine at lambda=1 on hypercube-n10-random
    (ISSUE 8 acceptance target, up from 1.76x pre-kernels)."""
    payload = write_kernel_bench()
    print()
    print(json.dumps(payload, indent=2))
    speedup = payload["results"]["hypercube-n10-random-lam1"][
        "vector_speedup"
    ]
    assert speedup >= 4.0, (
        f"saturated hypercube-n10-random speedup {speedup} < 4x"
    )


@pytest.mark.perf
def test_vector_benchmark():
    """Regenerate BENCH_vector.json; the vector engine must reach >=10x
    the compiled engine on at least one 1024+-node workload (ISSUE 6
    acceptance target)."""
    payload = write_bench()
    print()
    print(json.dumps(payload, indent=2))
    big = [
        row["vector_speedup"]
        for row in payload["results"].values()
        if row["nodes"] >= 1024
    ]
    assert big and max(big) >= 10.0, (
        f"no 1024+-node workload reached 10x (best: {max(big, default=0)})"
    )


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        print(f"perf smoke passed: {perf_smoke()}x")
    else:
        print(json.dumps(write_bench(), indent=2))
        print(f"wrote {BENCH_PATH}")
        print(json.dumps(write_kernel_bench(), indent=2))
        print(f"wrote {KERNEL_BENCH_PATH}")
