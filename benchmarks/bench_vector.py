"""Vector-engine benchmark: node-cycles/s, compiled vs vector at scale.

Measures the table-driven :class:`~repro.sim.vector.VectorSimulator`
against the compiled engine on 512-4096-node networks and writes the
measurements — plus the vector/compiled speedups — to
``BENCH_vector.json`` at the repo root.  The engines are
packet-for-packet identical (``tests/test_sim_vector.py``), so
throughput is the only thing that can differ.

The workload grid deliberately spans both regimes (see
``docs/ARCHITECTURE.md`` and ``docs/PERFORMANCE.md``):

* **sparse traffic at scale** (light hotspot / light complement on
  1024-4096 nodes) — the compiled engine pays its O(nodes + links)
  per-cycle fixed cost regardless of activity, while the vector engine
  touches only active nodes plus one vectorized link pass; this is
  where the >=10x speedups live;
* **saturated traffic** (``lambda = 1`` random) — both engines are
  bound by per-hop routing-plan construction, which they share, so the
  gap narrows to ~1.5-3x.  Those rows are included honestly; they are
  the reason ``auto`` does not pick ``vector``.

Both engines share their warm plan state across repeats (compiled via
``plan_cache=``, vector via ``tables=``, the
``test_shared_plan_cache_across_runs`` idiom) and the best of
``REPEATS`` runs is reported, so table/plan construction is excluded
from the steady-state figure for *both* sides equally.

Run standalone (writes the JSON)::

    PYTHONPATH=src python benchmarks/bench_vector.py

or through pytest (the ``perf`` marker keeps it out of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/bench_vector.py -m perf -s
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.routing import HypercubeAdaptiveRouting, MeshAdaptiveRouting
from repro.sim import (
    CompiledPacketSimulator,
    DynamicInjection,
    HotspotTraffic,
    RandomTraffic,
    RoutingTables,
    VectorSimulator,
    make_rng,
)
from repro.sim.plans import RoutingPlanCache
from repro.topology import Hypercube, Mesh

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_vector.json"

#: (key, topology factory, algorithm, traffic factory, lambda, cycles).
#: ``hotspot`` concentrates every packet on one destination, so most of
#: the network idles — the regime the vector engine is built for.
WORKLOADS = [
    (
        "hypercube-n9-hotspot-lam0.02",
        lambda: Hypercube(9),
        HypercubeAdaptiveRouting,
        lambda t: HotspotTraffic(t, fraction=1.0),
        0.02,
        400,
    ),
    (
        "hypercube-n10-hotspot-lam0.01",
        lambda: Hypercube(10),
        HypercubeAdaptiveRouting,
        lambda t: HotspotTraffic(t, fraction=1.0),
        0.01,
        400,
    ),
    (
        "hypercube-n12-hotspot-lam0.005",
        lambda: Hypercube(12),
        HypercubeAdaptiveRouting,
        lambda t: HotspotTraffic(t, fraction=1.0),
        0.005,
        300,
    ),
    (
        "hypercube-n12-hotspot-lam0.01",
        lambda: Hypercube(12),
        HypercubeAdaptiveRouting,
        lambda t: HotspotTraffic(t, fraction=1.0),
        0.01,
        300,
    ),
    (
        "mesh-32x32-hotspot-lam0.01",
        lambda: Mesh((32, 32)),
        MeshAdaptiveRouting,
        lambda t: HotspotTraffic(t, fraction=1.0),
        0.01,
        400,
    ),
    (
        "hypercube-n10-random-lam1",
        lambda: Hypercube(10),
        HypercubeAdaptiveRouting,
        lambda t: RandomTraffic(t),
        1.0,
        200,
    ),
]

REPEATS = 2


def _bench_workload(key, make_topology, algorithm_cls, make_traffic,
                    lam, cycles, repeats=REPEATS) -> dict:
    """Best-of-``repeats`` node-cycles/s for both engines on one cell."""
    topo = make_topology()
    alg = algorithm_cls(topo)
    cache = RoutingPlanCache(alg)
    tables = RoutingTables(alg)

    def model():
        return DynamicInjection(
            lam, make_traffic(topo), make_rng(7, "bench-vector"),
            duration=cycles, warmup=cycles // 4,
        )

    def best(make_sim):
        top, res = 0.0, None
        for _ in range(repeats):
            sim = make_sim()
            t0 = time.perf_counter()
            res = sim.run(max_cycles=2_000_000)
            elapsed = time.perf_counter() - t0
            top = max(top, topo.num_nodes * res.cycles / elapsed)
        return top, res

    ncs_c, res_c = best(
        lambda: CompiledPacketSimulator(alg, model(), plan_cache=cache)
    )
    ncs_v, res_v = best(lambda: VectorSimulator(alg, model(), tables=tables))
    # Identical engines on an identical workload => identical results.
    assert (res_c.delivered, res_c.cycles) == (res_v.delivered, res_v.cycles)
    return {
        "nodes": topo.num_nodes,
        "node_cycles_per_s": {
            "compiled": round(ncs_c, 1),
            "vector": round(ncs_v, 1),
        },
        "delivered": res_v.delivered,
        "vector_speedup": round(ncs_v / ncs_c, 2),
    }


def collect(repeats=REPEATS) -> dict:
    return {
        key: _bench_workload(key, *rest, repeats=repeats)
        for key, *rest in WORKLOADS
    }


def write_bench(path: Path = BENCH_PATH, repeats=REPEATS) -> dict:
    payload = {
        "benchmark": "vector-engine-throughput",
        "workload": "dynamic injection, warm shared tables/plan cache",
        "metric": f"node_cycles_per_s (best of {repeats})",
        "python": platform.python_version(),
        "results": collect(repeats=repeats),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.perf
def test_vector_benchmark():
    """Regenerate BENCH_vector.json; the vector engine must reach >=10x
    the compiled engine on at least one 1024+-node workload (ISSUE 6
    acceptance target)."""
    payload = write_bench()
    print()
    print(json.dumps(payload, indent=2))
    big = [
        row["vector_speedup"]
        for row in payload["results"].values()
        if row["nodes"] >= 1024
    ]
    assert big and max(big) >= 10.0, (
        f"no 1024+-node workload reached 10x (best: {max(big, default=0)})"
    )


if __name__ == "__main__":
    print(json.dumps(write_bench(), indent=2))
    print(f"wrote {BENCH_PATH}")
