"""Table 4: Leveled permutation, 1 packet per node (static injection).

Regenerates the paper's Table 4 (hypercube, fully-adaptive
algorithm) at the configured scale and checks its shape against the
published reference values.
"""

from conftest import bench_paper_table


def test_table04_leveled_1pkt(benchmark):
    bench_paper_table(benchmark, 4)
