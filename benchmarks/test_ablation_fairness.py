"""Ablation: livelock-freedom depends on fairness (paper, abstract).

"The routing methods are also ensured to be free of livelock if
messages competing for resources are handled with fairness."  We test
the contrapositive: replacing the FIFO queue service with LIFO
(youngest-first) keeps the network deadlock free but lets old packets
starve under saturation — the tail latency explodes while the mean
barely moves.
"""

from repro.analysis import format_rows
from repro.routing import HypercubeAdaptiveRouting
from repro.sim import (
    ComplementTraffic,
    DynamicInjection,
    PacketSimulator,
    make_rng,
)
from repro.topology import Hypercube

N_DIM = 6  # saturating: complement at lambda=1 drives deep contention
DURATION = 600


def run_pair():
    cube = Hypercube(N_DIM)
    out = {}
    for service in ("fifo", "lifo"):
        alg = HypercubeAdaptiveRouting(cube)
        inj = DynamicInjection(
            1.0,
            ComplementTraffic(cube),
            make_rng(17),
            duration=DURATION,
            warmup=DURATION // 3,
        )
        sim = PacketSimulator(alg, inj, service=service)
        out[service] = sim.run()
    return out


def test_ablation_fairness(benchmark):
    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    rows = [
        {
            "service": s,
            "L_avg": round(r.l_avg, 2),
            "L_p99": round(r.latency.percentile(99), 1),
            "L_max": r.l_max,
            "stuck": r.undelivered,
        }
        for s, r in results.items()
    ]
    print()
    print(format_rows(rows))
    fifo, lifo = results["fifo"], results["lifo"]
    # Both stay deadlock free (packets keep being delivered)...
    assert fifo.delivered > 0 and lifo.delivered > 0
    # ...but unfair service starves old packets: the extreme tail is
    # much worse than under FIFO while the mean barely moves.
    assert lifo.l_max > 2 * fifo.l_max
    assert lifo.latency.percentile(99) > 1.3 * fifo.latency.percentile(99)
