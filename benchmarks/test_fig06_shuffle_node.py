"""Figure 6: the functional design of a shuffle-exchange routing node.

Node 001 of the 8-node shuffle-exchange: four central queues (two
phases x two cycle-breaking classes), one exchange link and one
shuffle link out.
"""

from repro.analysis import figure6_shuffle_node


def test_fig06_shuffle_node(benchmark):
    fig = benchmark.pedantic(figure6_shuffle_node, rounds=1, iterations=1)
    print()
    print(fig.text)

    assert fig.stats["central_queues"] == 4
    assert fig.stats["out_links"] == 2  # exchange + shuffle
    for kind in ("P1C0", "P1C1", "P2C0", "P2C1"):
        assert kind in fig.text
