"""Figure 1: QDG of the 3-hypercube hung from 000 with dynamic links.

Regenerates the figure structurally (queues, static/dynamic edges,
DOT rendering) and validates its defining properties: the static
sub-QDG is a DAG, the dynamic links close cycles, and every dynamic
link corrects a 1 into a 0 inside phase A.
"""

import networkx as nx

from repro.analysis import figure1_hypercube_qdg


def test_fig01_hypercube_qdg(benchmark):
    fig = benchmark.pedantic(figure1_hypercube_qdg, rounds=1, iterations=1)
    print()
    print(fig.text)

    assert fig.stats["queues"] == 32  # 8 nodes x {inj, A, B, del}
    assert fig.stats["dynamic_edges"] > 0
    static = nx.DiGraph(
        (u, v) for u, v, d in fig.graph.edges(data="dynamic") if not d
    )
    assert nx.is_directed_acyclic_graph(static)
    assert not nx.is_directed_acyclic_graph(fig.graph)
    for u, v, dyn in fig.graph.edges(data="dynamic"):
        if dyn:
            assert u.kind == "A" and v.kind == "A"
            assert bin(u.node).count("1") == bin(v.node).count("1") + 1
    assert "digraph" in fig.dot and "style=dashed" in fig.dot
