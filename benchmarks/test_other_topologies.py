"""Extended evaluation: the paper's promised "other topologies" tables.

Section 7 ends with "Simulations on higher-dimensional hypercubes and
other topologies will be reported soon."  These benchmarks produce
those tables for the mesh, torus, shuffle-exchange, and CCC
algorithms, and assert the cross-topology shape properties:

* every packet is delivered (deadlock freedom under load);
* static 1-packet latencies track the topology diameter (2h+1 law);
* adversarial permutations cost more than uniform random traffic.
"""

import pytest

from repro.analysis import format_rows
from repro.experiments.other_topologies import FAMILIES, family_table, run_cell


@pytest.mark.parametrize("key", list(FAMILIES))
def test_static_random_table(key, benchmark):
    rows = benchmark.pedantic(
        lambda: family_table(key, "random", "static", packets=2),
        rounds=1,
        iterations=1,
    )
    print(f"\n{key}: static random, 2 packets/node")
    print(format_rows(rows))
    family = FAMILIES[key]
    for row in rows:
        topo = family.build(row["size"])
        # 2h+1 law bounds the max latency by the saturated diameter
        # path plus queueing slack.
        assert row["L_avg"] >= 3.0
        assert row["L_max"] <= 6 * (2 * topo.diameter + 1)
    # Latency grows with size within the family.
    assert rows[-1]["L_avg"] >= rows[0]["L_avg"] - 0.5


@pytest.mark.parametrize("key", list(FAMILIES))
def test_dynamic_adversary_table(key, benchmark):
    rows = benchmark.pedantic(
        lambda: family_table(key, "adversary", "dynamic"),
        rounds=1,
        iterations=1,
    )
    print(f"\n{key}: dynamic lambda=1, adversarial permutation")
    print(format_rows(rows))
    for row in rows:
        assert 0 < row["I_r(%)"] <= 100.0


def test_adversary_costs_more_than_random(benchmark):
    """On the largest default size of each family, the adversarial
    permutation saturates no later than uniform random traffic."""

    def run_all():
        out = {}
        for key, family in FAMILIES.items():
            size = family.sizes[-1]
            out[key] = (
                run_cell(family, size, "random", "dynamic"),
                run_cell(family, size, "adversary", "dynamic"),
            )
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for key, (rnd, adv) in results.items():
        assert (
            adv.injection_rate <= rnd.injection_rate + 0.05
        ), f"{key}: adversary easier than random?"
