"""Ablation: what do the dynamic links buy? (paper, Section 3)

Compares the fully-adaptive algorithm against its static underlying
scheme ([BGSS89]/[Kon90]-style) under complement traffic, and checks
the paper's qualitative motivation: without dynamic links, phase-A
congestion concentrates near node 1...1; with them it disappears and
latencies drop.
"""

from repro.analysis import format_rows, occupancy_by_level
from repro.routing import HypercubeAdaptiveRouting, HypercubeHungRouting
from repro.sim import (
    ComplementTraffic,
    DynamicInjection,
    PacketSimulator,
    StaticInjection,
    make_rng,
)
from repro.topology import Hypercube

N_DIM = 5


def run_pair():
    cube = Hypercube(N_DIM)
    out = {}
    for factory in (HypercubeAdaptiveRouting, HypercubeHungRouting):
        alg = factory(cube)
        inj = StaticInjection(N_DIM, ComplementTraffic(cube), make_rng(0))
        out[alg.name] = PacketSimulator(alg, inj).run(max_cycles=100_000)
    return cube, out


def test_ablation_dynamic_links_latency(benchmark):
    cube, results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    rows = [r.row() for r in results.values()]
    print()
    print(format_rows(rows))
    adaptive = results["hypercube-adaptive"]
    hung = results["hypercube-hung"]
    # Dynamic links must strictly help under complement pressure.
    assert adaptive.l_avg < hung.l_avg
    assert adaptive.l_max <= hung.l_max


def run_occupancy():
    cube = Hypercube(N_DIM)
    out = {}
    for factory in (HypercubeAdaptiveRouting, HypercubeHungRouting):
        alg = factory(cube)
        inj = DynamicInjection(
            1.0, ComplementTraffic(cube), make_rng(1), duration=300, warmup=100
        )
        sim = PacketSimulator(alg, inj, collect_occupancy=True)
        out[alg.name] = sim.run()
    return cube, out


def test_ablation_dynamic_links_congestion(benchmark):
    """The hung scheme piles phase-A packets up near 1...1; the
    adaptive scheme flattens the profile."""
    cube, results = benchmark.pedantic(run_occupancy, rounds=1, iterations=1)
    print()
    for name, res in results.items():
        prof = occupancy_by_level(res, cube, kind="A")
        print(f"{name}: qA occupancy by level "
              + " ".join(f"{l}:{v:.2f}" for l, v in prof.items()))
    hung = occupancy_by_level(results["hypercube-hung"], cube, kind="A")
    adaptive = occupancy_by_level(results["hypercube-adaptive"], cube, kind="A")
    top = max(hung)
    # Congestion at the deepest levels is worse without dynamic links.
    assert hung[top - 1] + hung[top] > adaptive[top - 1] + adaptive[top]
