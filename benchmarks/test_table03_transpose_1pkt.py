"""Table 3: Transpose permutation, 1 packet per node (static injection).

Regenerates the paper's Table 3 (hypercube, fully-adaptive
algorithm) at the configured scale and checks its shape against the
published reference values.
"""

from conftest import bench_paper_table


def test_table03_transpose_1pkt(benchmark):
    bench_paper_table(benchmark, 3)
