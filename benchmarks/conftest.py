"""Shared helpers for the benchmark harness.

Every paper table gets one benchmark module.  Scale is controlled by
``REPRO_SCALE`` / ``REPRO_NS`` (see ``repro.experiments.runner``); the
CI default keeps each table in the seconds range.  Each benchmark

1. re-runs the table's experiment sweep inside ``pytest-benchmark``,
2. prints the regenerated table next to the paper's reference values,
3. asserts the paper-shape properties (``check_table_shape``).

Run with::

    pytest benchmarks/ --benchmark-only
    REPRO_SCALE=large pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.experiments import check_table_shape, run_table, scale_dimensions


def bench_paper_table(benchmark, number: int, algorithm_factory=None):
    """Benchmark + validate one paper table at the configured scale."""
    ns = scale_dimensions()

    def regenerate():
        return run_table(number, ns=ns, algorithm_factory=algorithm_factory)

    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(table.render())
    problems = check_table_shape(number, table)
    assert not problems, problems
    return table


@pytest.fixture
def paper_table():
    return bench_paper_table
