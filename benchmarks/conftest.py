"""Shared helpers for the benchmark harness.

Every paper table gets one benchmark module.  Scale is controlled by
``REPRO_SCALE`` / ``REPRO_NS`` (see ``repro.experiments.runner``); the
CI default keeps each table in the seconds range.  Each benchmark

1. re-runs the table's experiment sweep inside ``pytest-benchmark``,
2. prints the regenerated table next to the paper's reference values,
3. asserts the paper-shape properties (``check_table_shape``).

Run with::

    pytest benchmarks/ --benchmark-only
    REPRO_SCALE=large pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import check_table_shape, run_table, scale_dimensions


@pytest.fixture(scope="session", autouse=True)
def engine_override_smoke():
    """``REPRO_ENGINE=compiled`` must actually select the compiled engine.

    Benchmarks compare engines through the ``REPRO_ENGINE`` override; a
    silent fallback to the reference path would invalidate every number
    without failing anything, so the whole benchmark session aborts if
    the override does not reach :func:`repro.experiments.build_simulator`.
    """
    from repro.experiments import HypercubeExperiment
    from repro.sim import CompiledPacketSimulator

    saved = os.environ.get("REPRO_ENGINE")
    os.environ["REPRO_ENGINE"] = "compiled"
    try:
        sim = HypercubeExperiment(
            pattern="random", injection="static"
        ).build(3)
        assert type(sim) is CompiledPacketSimulator, (
            f"REPRO_ENGINE=compiled selected {type(sim).__name__}; "
            "the engine override is broken"
        )
    finally:
        if saved is None:
            del os.environ["REPRO_ENGINE"]
        else:
            os.environ["REPRO_ENGINE"] = saved
    yield


def bench_paper_table(benchmark, number: int, algorithm_factory=None):
    """Benchmark + validate one paper table at the configured scale."""
    ns = scale_dimensions()

    def regenerate():
        return run_table(number, ns=ns, algorithm_factory=algorithm_factory)

    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(table.render())
    problems = check_table_shape(number, table)
    assert not problems, problems
    return table


@pytest.fixture
def paper_table():
    return bench_paper_table
