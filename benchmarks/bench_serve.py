"""Service smoke harness + serve-mode throughput benchmark.

The **smoke** mode is what CI runs (the service job in
``.github/workflows/ci.yml``): it boots ``repro serve`` as a real
subprocess on ``examples/scenarios/smoke.yaml`` with an ephemeral
telemetry port, scrapes ``/metrics`` and ``/healthz`` once, sends
``SIGTERM``, and asserts the graceful drain exits with code 0 — the
whole signal path (handler -> drain flag -> backlog cancellation ->
last-packet delivery) exercised exactly the way an operator would.
It then replays a small record-mode scenario twice in-process and
asserts the two event logs are byte-identical (the docs/SERVING.md
determinism contract)::

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke

The full mode measures serving throughput (simulated cycles and
delivered packets per wall second) per engine and writes
``BENCH_serve.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_serve.py

or through pytest (the ``perf`` marker keeps it out of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -m perf -s
"""

from __future__ import annotations

import json
import os
import platform
import re
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_serve.json"
SMOKE_SCENARIO = REPO_ROOT / "examples" / "scenarios" / "smoke.yaml"

#: The record-mode determinism scenario (in-process, seconds-fast).
RECORD_SCENARIO = {
    "name": "record-check",
    "seed": 99,
    "topology": {"family": "hypercube", "size": 4},
    "populations": [
        {
            "name": "a",
            "qos": "gold",
            "users": {"mean": 30},
            "rate_per_user": 0.02,
        },
        {
            "name": "b",
            "qos": "bronze",
            "users": {"mean": 60, "distribution": "log_normal",
                      "variance": 400},
            "rate_per_user": 0.03,
            "load_shape": {"kind": "bursty", "period": 100,
                           "multiplier": 3, "burst_cycles": 20},
        },
    ],
    "service": {"duration_cycles": 400, "record": True},
}


def _spawn_serve(*extra_args: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve",
         str(SMOKE_SCENARIO), "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


def _endpoint_url(proc: subprocess.Popen, timeout: float = 30.0) -> str:
    """Read stdout until the service prints its bound endpoint."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                "serve exited before announcing its endpoint "
                f"(rc={proc.poll()})"
            )
        m = re.search(r"telemetry endpoint: (http://\S+)", line)
        if m:
            return m.group(1)
    raise AssertionError("no endpoint line within timeout")


def _scrape(url: str) -> str:
    return urllib.request.urlopen(url, timeout=10).read().decode()


def serve_smoke() -> dict:
    """Boot, scrape, SIGTERM, assert clean drain; then record twice."""
    # --duration far beyond the scenario budget so SIGTERM, not the
    # budget, is what ends the run.
    proc = _spawn_serve("--duration", "10000000")
    try:
        url = _endpoint_url(proc)
        metrics = _scrape(url + "/metrics")
        health = json.loads(_scrape(url + "/healthz"))
        assert health["status"] == "ok", health
        assert health["phase"] in ("serving", "draining"), health
        assert "repro_service_cycle" in metrics, metrics[:400]
        assert "repro_admission_offers_total" in metrics or health[
            "cycle"
        ] < 50, "no admission counters after the first tick"
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, (
        f"serve exited {proc.returncode} after SIGTERM; tail:\n{out[-2000:]}"
    )
    assert "SIGTERM" in out and "drained at cycle" in out, out[-2000:]
    m = re.search(r"injected=(\d+) delivered=(\d+)", out)
    assert m and m.group(1) == m.group(2), (
        f"drain lost packets: {m.group(0) if m else out[-500:]}"
    )

    # Record-mode determinism: identical scenario + seed + budget =>
    # byte-identical event logs (in-process; the CLI path writes the
    # same bytes via write_artifacts).
    from repro.serve import TrafficService, load_scenario

    logs = []
    for _ in range(2):
        svc = TrafficService(load_scenario(dict(RECORD_SCENARIO)))
        assert svc.serve() == 0
        logs.append(svc.probe.log.to_jsonl())
    assert logs[0] == logs[1], "record mode is not byte-identical"

    return {
        "scraped_health": {k: health[k] for k in ("phase", "cycle")},
        "drain": m.group(0),
        "record_bytes": len(logs[0]),
    }


# ----------------------------------------------------------------------
# Full benchmark: serving throughput per engine
# ----------------------------------------------------------------------
def _throughput_cell(engine: str) -> dict:
    from repro.serve import TrafficService, load_scenario

    raw = {
        "name": f"bench-{engine}",
        "seed": 7,
        "topology": {"family": "hypercube", "size": 6},
        "populations": [
            {
                "name": "load",
                "qos": "default",
                "users": {"mean": 300},
                "rate_per_user": 0.05,
            }
        ],
        "service": {"duration_cycles": 3000, "tick_cycles": 100},
    }
    svc = TrafficService(load_scenario(raw), engine=engine)
    t0 = time.perf_counter()
    code = svc.serve()
    elapsed = time.perf_counter() - t0
    assert code == 0
    r = svc.result
    return {
        "seconds": round(elapsed, 2),
        "cycles": r.cycles,
        "delivered": r.delivered,
        "cycles_per_second": round(r.cycles / elapsed, 1),
        "delivered_per_second": round(r.delivered / elapsed, 1),
    }


def write_bench(path: Path = BENCH_PATH) -> dict:
    payload = {
        "benchmark": "serve-mode-throughput",
        "workload": "n=6 hypercube, open-loop ~15 offers/cycle, 3000 cycles",
        "metric": "simulated cycles and delivered packets per wall second",
        "python": platform.python_version(),
        "host_cpus": os.cpu_count(),
        "results": {
            engine: _throughput_cell(engine)
            for engine in ("reference", "compiled", "vector")
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.perf
def test_serve_benchmark():
    """Regenerate BENCH_serve.json (throughput per serve engine)."""
    payload = write_bench()
    print()
    print(json.dumps(payload, indent=2))
    for engine, cell in payload["results"].items():
        assert cell["delivered"] > 0, f"{engine} delivered nothing"


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        sys.path.insert(0, str(REPO_ROOT / "src"))
        print(json.dumps(serve_smoke(), indent=2))
        print("serve smoke passed: scrape + SIGTERM drain + record identity")
    else:
        sys.path.insert(0, str(REPO_ROOT / "src"))
        print(json.dumps(write_bench(), indent=2))
        print(f"wrote {BENCH_PATH}")
