"""Unit tests for virtual-channel state machines."""

import pytest

from repro.wormhole import ChannelId
from repro.wormhole.channels import ChannelState
from repro.wormhole.flit import Worm, reset_worm_ids


def make_channel(depth=2):
    return ChannelState(ChannelId(0, 1, "e"), depth=depth)


def test_channel_id_fields():
    c = ChannelId(3, 5, "adp")
    assert c.link == (3, 5)
    assert "3->5" in repr(c)


def test_reserve_release_cycle():
    ch = make_channel()
    w = Worm(src=0, dst=1, length=2)
    assert ch.free
    ch.reserve(w)
    assert not ch.free and ch.owner is w
    ch.accept_flit()
    ch.emit_flit()
    ch.release()
    assert ch.free and ch.entered == 0


def test_double_reserve_rejected():
    ch = make_channel()
    ch.reserve(Worm(src=0, dst=1, length=1))
    with pytest.raises(RuntimeError):
        ch.reserve(Worm(src=0, dst=1, length=1))


def test_release_nonempty_rejected():
    ch = make_channel()
    ch.reserve(Worm(src=0, dst=1, length=1))
    ch.accept_flit()
    with pytest.raises(RuntimeError):
        ch.release()


def test_buffer_depth_enforced():
    ch = make_channel(depth=2)
    ch.reserve(Worm(src=0, dst=1, length=5))
    ch.accept_flit()
    ch.accept_flit()
    assert not ch.has_space
    with pytest.raises(RuntimeError):
        ch.accept_flit()


def test_emit_empty_rejected():
    ch = make_channel()
    ch.reserve(Worm(src=0, dst=1, length=1))
    with pytest.raises(RuntimeError):
        ch.emit_flit()


def test_entered_exited_counters():
    ch = make_channel(depth=1)
    ch.reserve(Worm(src=0, dst=1, length=3))
    for _ in range(3):
        ch.accept_flit()
        ch.emit_flit()
    assert ch.entered == 3 and ch.exited == 3 and ch.flits == 0


def test_worm_id_reset():
    reset_worm_ids()
    assert Worm(src=0, dst=1, length=1).uid == 0
    assert Worm(src=0, dst=1, length=1).uid == 1
