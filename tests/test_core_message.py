"""Unit tests for the message model."""

import pytest

from repro.core import Message, QueueId, reset_message_ids


def test_unique_ids():
    a, b = Message(0, 1), Message(0, 2)
    assert a.uid != b.uid


def test_reset_message_ids():
    reset_message_ids()
    assert Message(0, 1).uid == 0
    assert Message(0, 2).uid == 1


def test_latency_requires_delivery():
    m = Message(0, 1)
    assert not m.delivered
    with pytest.raises(ValueError):
        _ = m.latency
    m.injected_cycle = 3
    m.delivered_cycle = 10
    assert m.delivered
    assert m.latency == 7


def test_latency_requires_injection_stamp():
    m = Message(0, 1)
    m.delivered_cycle = 5
    with pytest.raises(ValueError):
        _ = m.latency


def test_hop_recording_optional():
    m = Message(0, 1)
    m.record_hop(QueueId(0, "A"))  # no-op when tracing is off
    assert m.hops is None
    m.hops = []
    m.record_hop(QueueId(0, "A"))
    assert m.hops == [QueueId(0, "A")]


def test_identity_equality():
    a = Message(0, 1)
    b = Message(0, 1)
    assert a != b  # eq=False: identity semantics for queue membership
    assert a == a
