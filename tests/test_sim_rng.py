"""Tests for seeded RNG streams."""

from repro.sim import make_rng


def test_same_seed_same_stream_reproducible():
    a = make_rng(42, "traffic")
    b = make_rng(42, "traffic")
    assert list(a.integers(0, 100, 10)) == list(b.integers(0, 100, 10))


def test_different_streams_differ():
    a = make_rng(42, "traffic")
    b = make_rng(42, "injection")
    assert list(a.integers(0, 1000, 20)) != list(b.integers(0, 1000, 20))


def test_different_seeds_differ():
    a = make_rng(1, "x")
    b = make_rng(2, "x")
    assert list(a.integers(0, 1000, 20)) != list(b.integers(0, 1000, 20))


def test_none_seed_gives_entropy():
    a = make_rng(None)
    b = make_rng(None)
    # Overwhelmingly unlikely to collide.
    assert list(a.integers(0, 2**30, 4)) != list(b.integers(0, 2**30, 4))
