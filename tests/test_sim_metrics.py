"""Unit tests for metrics and result reporting."""

import math

from repro.sim import LatencyStats, SimulationResult


def make_result(values, attempts=0, successes=0, cycles=100):
    lat = LatencyStats()
    for v in values:
        lat.record(v)
    return SimulationResult(
        algorithm="alg",
        topology="topo",
        pattern="pat",
        injection="inj",
        cycles=cycles,
        injected=len(values),
        delivered=len(values),
        latency=lat,
        attempts=attempts,
        successes=successes,
    )


def test_latency_stats_basic():
    s = LatencyStats()
    for v in (3, 5, 7, 9):
        s.record(v)
    assert s.count == 4
    assert s.mean == 6.0
    assert s.maximum == 9
    assert s.minimum == 3
    assert s.percentile(50) == 6.0


def test_latency_stats_empty():
    s = LatencyStats()
    assert s.count == 0
    assert math.isnan(s.mean)
    assert s.maximum == 0
    assert s.minimum == 0
    assert math.isnan(s.percentile(99))
    assert math.isnan(s.percentile(0))


def test_latency_histogram_empty():
    s = LatencyStats()
    counts, edges = s.histogram(bins=10)
    assert counts.sum() == 0
    assert len(counts) == 10
    assert len(edges) == 11
    assert list(edges) == sorted(edges)


def test_latency_histogram():
    s = LatencyStats()
    for v in range(100):
        s.record(v)
    counts, edges = s.histogram(bins=10)
    assert counts.sum() == 100
    assert len(edges) == 11


def test_result_l_avg_l_max():
    r = make_result([3, 5, 7])
    assert r.l_avg == 5.0
    assert r.l_max == 7


def test_result_injection_rate():
    r = make_result([3], attempts=200, successes=150)
    assert r.injection_rate == 0.75
    r2 = make_result([3])
    assert math.isnan(r2.injection_rate)


def test_result_throughput():
    r = make_result([3, 3], cycles=100)
    assert r.throughput == 0.02


def test_result_row_static_and_dynamic():
    r = make_result([3, 5], attempts=0)
    row = r.row()
    assert "I_r(%)" not in row
    assert row["L_avg"] == 4.0
    r2 = make_result([3, 5], attempts=100, successes=90)
    assert r2.row()["I_r(%)"] == 90.0


def test_result_row_telemetry_columns():
    r = make_result([3, 5])
    assert r.telemetry is None
    assert "link_util" not in r.row()
    r.telemetry = {
        "link_utilization": 0.12345,
        "hops": {"dynamic_fraction": 0.25},
        "occupancy": {"mean": 1.5, "peak": 4},
    }
    row = r.row()
    assert row["link_util"] == 0.1235
    assert row["dyn_hops(%)"] == 25.0
    assert row["occ_mean"] == 1.5 and row["occ_peak"] == 4
