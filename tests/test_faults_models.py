"""Fault models: validation, epochs, reproducibility, reachability."""

import pytest

from repro.faults import (
    EMPTY_FAULTS,
    Fault,
    FaultSchedule,
    FaultSet,
    LINK_DOWN,
    LINK_STALL,
    link_down,
    link_stall,
    node_down,
)
from repro.topology import Hypercube, Mesh2D


def test_fault_validation():
    with pytest.raises(ValueError):
        Fault("meteor-strike", (0, 1))
    with pytest.raises(ValueError):
        Fault(LINK_STALL, (0, 1))  # stalls must be bounded
    with pytest.raises(ValueError):
        Fault(LINK_DOWN, (0, 1), start=0, end=10)  # downs are permanent
    with pytest.raises(ValueError):
        Fault(LINK_STALL, (0, 1), start=10, end=10)  # empty window


def test_schedule_rejects_unknown_targets():
    cube = Hypercube(3)
    with pytest.raises(ValueError):
        FaultSchedule.fixed(cube, [link_down(0, 3)])  # not adjacent
    with pytest.raises(ValueError):
        FaultSchedule.fixed(cube, [node_down(99)])


def test_epoch_resolution():
    cube = Hypercube(3)
    sched = FaultSchedule.fixed(
        cube, [link_down(0, 1, at=10), link_stall(2, 3, at=5, until=20)]
    )
    assert sched.at(0) is EMPTY_FAULTS
    assert sched.at(4) is EMPTY_FAULTS
    assert sched.at(5).stalled_links == {(2, 3), (3, 2)}
    assert not sched.at(5).any  # stalls alone do not degrade routing
    epoch = sched.at(12)
    assert epoch.dead_links == {(0, 1), (1, 0)}
    assert epoch.stalled_links == {(2, 3), (3, 2)}
    assert epoch.blocked_links == {(0, 1), (1, 0), (2, 3), (3, 2)}
    final = sched.final
    assert final.dead_links == {(0, 1), (1, 0)}
    assert not final.stalled_links  # the stall recovered
    assert sched.next_change_after(0) == 5
    assert sched.next_change_after(10) == 20
    assert sched.next_change_after(20) is None


def test_node_down_kills_incident_links():
    cube = Hypercube(3)
    fs = FaultSchedule.fixed(cube, [node_down(0)]).final
    assert fs.dead_nodes == {0}
    assert fs.dead_links == {(0, 1), (1, 0), (0, 2), (2, 0), (0, 4), (4, 0)}
    assert not fs.link_alive(0, 1) and not fs.link_alive(1, 0)
    assert fs.link_alive(1, 3)
    # a down destination is reachable from nowhere
    assert fs.reachable(cube, 0) == frozenset()
    assert fs.distances(cube, 0) == {}


def test_reachability_and_distances_respect_dead_links():
    cube = Hypercube(3)
    # cut node 0 off from its three neighbors
    fs = FaultSchedule.fixed(
        cube, [link_down(0, 1), link_down(0, 2), link_down(0, 4)]
    ).final
    assert 1 not in fs.reachable(cube, 0)
    assert fs.reachable(cube, 0) == frozenset({0})
    # everyone except 0 still reaches node 7, at healthy distance
    dist = fs.distances(cube, 7)
    assert 0 not in dist
    assert dist[7] == 0 and dist[6] == 1 and dist[1] == 2
    # partial cuts reroute: kill 3->7 only, 3 still reaches 7 in 3 hops
    fs2 = FaultSchedule.fixed(cube, [link_down(3, 7)]).final
    assert fs2.distances(cube, 7)[3] == 3


def test_bernoulli_schedule_is_reproducible():
    mesh = Mesh2D(5)
    a = FaultSchedule.bernoulli_links(mesh, 0.2, seed=42, onset_max=30)
    b = FaultSchedule.bernoulli_links(mesh, 0.2, seed=42, onset_max=30)
    assert a.faults == b.faults
    c = FaultSchedule.bernoulli_links(mesh, 0.2, seed=43, onset_max=30)
    assert a.faults != c.faults  # different seed, different draw
    # every target really is a link, both directions present
    targets = {f.target for f in a.faults}
    assert all(mesh.is_adjacent(u, v) for u, v in targets)
    assert all((v, u) in targets for u, v in targets)


def test_random_links_draws_exact_count():
    cube = Hypercube(4)
    sched = FaultSchedule.random_links(cube, 5, seed=7)
    undirected = {tuple(sorted(f.target)) for f in sched.faults}
    assert len(undirected) == 5
    assert len(sched.faults) == 10  # both directions
    with pytest.raises(ValueError):
        FaultSchedule.random_links(cube, 10_000, seed=7)


def test_empty_faultset_is_cheap_and_shared():
    cube = Hypercube(3)
    assert FaultSchedule.healthy(cube).final is EMPTY_FAULTS
    assert not EMPTY_FAULTS.any
    assert EMPTY_FAULTS.blocked_links == frozenset()
    assert FaultSet().describe() == "healthy"
