"""Docs consistency: links resolve, engine names stay real.

Documentation drifts when code moves; these tier-1 checks pin the
parts that are cheap to verify mechanically:

* every internal (non-http) markdown link and every ``docs/X.md`` /
  ``UPPERCASE.md`` file reference in the docs points at a file that
  exists;
* every engine name a doc offers through ``REPRO_ENGINE=...`` is one
  ``build_simulator`` actually accepts, and every accepted engine is
  documented in the canonical matrix (docs/ARCHITECTURE.md);
* the benchmark artifacts the docs cite exist at the repo root.
"""

import re
from pathlib import Path

import pytest

from repro.experiments.runner import ENGINES

REPO = Path(__file__).resolve().parent.parent

#: The documentation set under consistency control.
DOC_FILES = sorted(
    list((REPO / "docs").glob("*.md"))
    + [REPO / "README.md", REPO / "EXPERIMENTS.md", REPO / "DESIGN.md"]
)

_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FILE_REF = re.compile(r"\b((?:docs/)?[A-Z][A-Z_]*\.md)\b")


def _doc_ids():
    return [p.relative_to(REPO).as_posix() for p in DOC_FILES]


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_markdown_links_resolve(doc):
    text = doc.read_text()
    for target in _MD_LINK.findall(text):
        if target.startswith(("http://", "https://", "#", "mailto:")):
            continue
        target = target.split("#")[0]
        if not target:
            continue
        resolved = (doc.parent / target).resolve()
        if not resolved.is_relative_to(REPO):
            # GitHub-relative URLs (e.g. the CI badge) escape the repo
            # checkout on purpose; only in-repo targets are checkable.
            continue
        assert resolved.exists(), (
            f"{doc.relative_to(REPO)} links to {target!r}, which does "
            f"not exist (resolved: {resolved})"
        )


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_named_doc_files_exist(doc):
    """Prose references like ``docs/ARCHITECTURE.md`` or
    ``EXPERIMENTS.md`` must name files that exist (checked against the
    repo root and the docs/ directory)."""
    text = doc.read_text()
    for ref in set(_FILE_REF.findall(text)):
        candidates = (REPO / ref, REPO / "docs" / ref)
        assert any(c.exists() for c in candidates), (
            f"{doc.relative_to(REPO)} mentions {ref!r}, which exists "
            f"neither at the repo root nor under docs/"
        )


_ENGINE_VALUES = re.compile(r"REPRO_ENGINE=([a-zA-Z_|]+)")


def test_documented_engine_values_are_real():
    """Every ``REPRO_ENGINE=...`` value offered anywhere in the docs
    must be accepted by ``build_simulator``."""
    offered = set()
    for doc in DOC_FILES:
        for values in _ENGINE_VALUES.findall(doc.read_text()):
            offered.update(v.lower() for v in values.split("|") if v)
    assert offered, "no REPRO_ENGINE mention found in any doc"
    bogus = offered - set(ENGINES)
    assert not bogus, (
        f"docs offer REPRO_ENGINE value(s) {sorted(bogus)} that "
        f"build_simulator rejects (accepts: {ENGINES})"
    )


def test_every_engine_documented_in_architecture():
    """The canonical matrix in docs/ARCHITECTURE.md must cover every
    engine build_simulator accepts."""
    text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
    for engine in ENGINES:
        assert f"`{engine}`" in text, (
            f"engine {engine!r} missing from docs/ARCHITECTURE.md"
        )


def test_cited_benchmark_artifacts_exist():
    cited = set()
    for doc in DOC_FILES:
        cited.update(re.findall(r"\bBENCH_[a-z_]+\.json\b", doc.read_text()))
    assert cited, "no benchmark artifact cited in any doc"
    for name in sorted(cited):
        assert (REPO / name).exists(), (
            f"docs cite {name}, which does not exist at the repo root"
        )
