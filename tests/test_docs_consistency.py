"""Docs consistency: links resolve, engine names stay real.

Documentation drifts when code moves; these tier-1 checks pin the
parts that are cheap to verify mechanically:

* every internal (non-http) markdown link and every ``docs/X.md`` /
  ``UPPERCASE.md`` file reference in the docs points at a file that
  exists;
* every engine name a doc offers through ``REPRO_ENGINE=...`` is one
  ``build_simulator`` actually accepts, and every accepted engine is
  documented in the canonical matrix (docs/ARCHITECTURE.md);
* the benchmark artifacts the docs cite exist at the repo root.
"""

import re
from pathlib import Path

import pytest

from repro.experiments.runner import ENGINES

REPO = Path(__file__).resolve().parent.parent

#: The documentation set under consistency control.
DOC_FILES = sorted(
    list((REPO / "docs").glob("*.md"))
    + [REPO / "README.md", REPO / "EXPERIMENTS.md", REPO / "DESIGN.md"]
)

_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FILE_REF = re.compile(r"\b((?:docs/)?[A-Z][A-Z_]*\.md)\b")


def _doc_ids():
    return [p.relative_to(REPO).as_posix() for p in DOC_FILES]


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_markdown_links_resolve(doc):
    text = doc.read_text()
    for target in _MD_LINK.findall(text):
        if target.startswith(("http://", "https://", "#", "mailto:")):
            continue
        target = target.split("#")[0]
        if not target:
            continue
        resolved = (doc.parent / target).resolve()
        if not resolved.is_relative_to(REPO):
            # GitHub-relative URLs (e.g. the CI badge) escape the repo
            # checkout on purpose; only in-repo targets are checkable.
            continue
        assert resolved.exists(), (
            f"{doc.relative_to(REPO)} links to {target!r}, which does "
            f"not exist (resolved: {resolved})"
        )


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_named_doc_files_exist(doc):
    """Prose references like ``docs/ARCHITECTURE.md`` or
    ``EXPERIMENTS.md`` must name files that exist (checked against the
    repo root and the docs/ directory)."""
    text = doc.read_text()
    for ref in set(_FILE_REF.findall(text)):
        candidates = (REPO / ref, REPO / "docs" / ref)
        assert any(c.exists() for c in candidates), (
            f"{doc.relative_to(REPO)} mentions {ref!r}, which exists "
            f"neither at the repo root nor under docs/"
        )


_ENGINE_VALUES = re.compile(r"REPRO_ENGINE=([a-zA-Z_|]+)")


def test_documented_engine_values_are_real():
    """Every ``REPRO_ENGINE=...`` value offered anywhere in the docs
    must be accepted by ``build_simulator``."""
    offered = set()
    for doc in DOC_FILES:
        for values in _ENGINE_VALUES.findall(doc.read_text()):
            offered.update(v.lower() for v in values.split("|") if v)
    assert offered, "no REPRO_ENGINE mention found in any doc"
    bogus = offered - set(ENGINES)
    assert not bogus, (
        f"docs offer REPRO_ENGINE value(s) {sorted(bogus)} that "
        f"build_simulator rejects (accepts: {ENGINES})"
    )


def test_every_engine_documented_in_architecture():
    """The canonical matrix in docs/ARCHITECTURE.md must cover every
    engine build_simulator accepts."""
    text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
    for engine in ENGINES:
        assert f"`{engine}`" in text, (
            f"engine {engine!r} missing from docs/ARCHITECTURE.md"
        )


def _architecture_matrix_rows():
    """Rows of the canonical engine matrix in docs/ARCHITECTURE.md,
    keyed by engine name: [engine, class, topologies, fault observers,
    telemetry probes, tracing, service/policy, speed]."""
    text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
    rows = {}
    for line in text.splitlines():
        m = re.match(r"\|\s*`([a-z]+)`\s*\|", line)
        if m:
            cells = [
                c.strip().strip("*`")
                for c in line.strip().strip("|").split("|")
            ]
            rows.setdefault(m.group(1), cells)
    return rows


def _yn(cell):
    return "no" if cell.strip().lower().startswith("no") else "yes"


def test_engine_error_matrix_matches_architecture():
    """The abbreviated capability matrix embedded in
    ``EngineCapabilityError`` messages (``runner.ENGINE_MATRIX``) must
    agree with the canonical table in docs/ARCHITECTURE.md: same set of
    concrete engines, same fault/observer/tracing capabilities."""
    from repro.experiments.runner import ENGINE_MATRIX

    doc_rows = _architecture_matrix_rows()
    matrix_rows = {}
    for line in ENGINE_MATRIX.splitlines()[1:]:
        if line.startswith("("):  # the 'auto' footnote
            continue
        toks = line.split()
        matrix_rows[toks[0]] = toks
    concrete = set(ENGINES) - {"auto"}
    assert set(matrix_rows) == concrete, (
        f"ENGINE_MATRIX rows {sorted(matrix_rows)} != concrete engines "
        f"{sorted(concrete)}"
    )
    assert concrete <= set(doc_rows), (
        f"docs/ARCHITECTURE.md matrix missing engines "
        f"{sorted(concrete - set(doc_rows))}"
    )
    for engine, toks in sorted(matrix_rows.items()):
        cells = doc_rows[engine]
        # ENGINE_MATRIX columns (from the right, since 'topologies' may
        # contain spaces): faults, observers, trace, speed.
        faults, observers, trace = toks[-4], toks[-3], toks[-2]
        assert _yn(faults) == _yn(cells[3]), (
            f"{engine}: faults={faults!r} in ENGINE_MATRIX vs fault "
            f"observers={cells[3]!r} in docs/ARCHITECTURE.md"
        )
        assert _yn(observers) == _yn(cells[4]), (
            f"{engine}: observers={observers!r} in ENGINE_MATRIX vs "
            f"telemetry probes={cells[4]!r} in docs/ARCHITECTURE.md"
        )
        assert _yn(trace) == _yn(cells[5]), (
            f"{engine}: trace={trace!r} in ENGINE_MATRIX vs "
            f"tracing={cells[5]!r} in docs/ARCHITECTURE.md"
        )


def test_cited_benchmark_artifacts_exist():
    cited = set()
    for doc in DOC_FILES:
        cited.update(re.findall(r"\bBENCH_[a-z_]+\.json\b", doc.read_text()))
    assert cited, "no benchmark artifact cited in any doc"
    for name in sorted(cited):
        assert (REPO / name).exists(), (
            f"docs cite {name}, which does not exist at the repo root"
        )
