"""Unit tests for buffers, arbitration, and node designs (Section 6)."""

import pytest

from repro.core import Message
from repro.node import (
    Buffer,
    BufferPair,
    NodeDesign,
    RoundRobinArbiter,
    build_node_design,
    fifo_ranks,
    rotated,
)
from repro.routing import (
    HypercubeAdaptiveRouting,
    Mesh2DAdaptiveRouting,
    ShuffleExchangeRouting,
)
from repro.topology import Hypercube, Mesh2D, ShuffleExchange


# ----------------------------------------------------------------------
# Buffers
# ----------------------------------------------------------------------
def test_buffer_put_take():
    b = Buffer((0, 1), "A")
    assert b.empty
    m = Message(0, 1)
    b.put(m)
    assert not b.empty
    assert b.take() is m
    assert b.empty


def test_buffer_overrun_underrun():
    b = Buffer((0, 1), "A")
    with pytest.raises(RuntimeError):
        b.take()
    b.put(Message(0, 1))
    with pytest.raises(RuntimeError):
        b.put(Message(0, 2))


def test_buffer_pair_factory():
    p = BufferPair.for_link(3, 5, "dyn")
    assert p.out.link == (3, 5) and p.inp.link == (3, 5)
    assert p.out.cls == "dyn"


# ----------------------------------------------------------------------
# Arbitration
# ----------------------------------------------------------------------
def test_round_robin_rotates_after_grant():
    arb = RoundRobinArbiter(3)
    assert arb.order() == [0, 1, 2]
    arb.grant(0)
    assert arb.order() == [1, 2, 0]
    arb.grant(2)
    assert arb.order() == [0, 1, 2]


def test_round_robin_empty():
    assert RoundRobinArbiter(0).order() == []


def test_rotated():
    assert rotated([1, 2, 3], 0) == [1, 2, 3]
    assert rotated([1, 2, 3], 1) == [2, 3, 1]
    assert rotated([1, 2, 3], 5) == [3, 1, 2]
    assert rotated([], 7) == []


def test_fifo_ranks_heads_first():
    q1 = ["a1", "a2"]
    q2 = ["b1"]
    ranks = fifo_ranks([q1, q2])
    assert [item for *_r, item in ranks] == ["a1", "b1", "a2"]


# ----------------------------------------------------------------------
# Node designs (Figures 4-6)
# ----------------------------------------------------------------------
def test_figure4_node_0101():
    """Figure 4: node 0101 of the 4-hypercube — 2 central queues; each
    down-link has one (A) buffer, each up-link two (B + dyn)."""
    alg = HypercubeAdaptiveRouting(Hypercube(4))
    d = build_node_design(alg, 0b0101)
    assert d.num_central_queues == 2
    by_target = {l.link[1]: l.classes for l in d.output_links}
    assert by_target[0b0111] == ("A",)  # up the cube (set bit 1)
    assert by_target[0b1101] == ("A",)
    assert by_target[0b0100] == ("B", "dyn")
    assert by_target[0b0001] == ("B", "dyn")
    # 4 out-links with 1+1+2+2 = 6 buffers, mirrored on input side.
    assert d.num_buffers == 12


def test_mesh_node_design():
    alg = Mesh2DAdaptiveRouting(Mesh2D(4))
    d = build_node_design(alg, (1, 2))
    assert d.num_central_queues == 2
    assert len(d.output_links) == 4  # interior node


def test_shuffle_node_design():
    alg = ShuffleExchangeRouting(ShuffleExchange(3))
    d = build_node_design(alg, 0b001)
    assert d.num_central_queues == 4
    # Out-links: exchange (000) and shuffle (010).
    assert {l.link[1] for l in d.output_links} == {0b000, 0b010}


def test_describe_renders():
    alg = HypercubeAdaptiveRouting(Hypercube(3))
    d = build_node_design(alg, 0b101)
    text = d.describe(alg.topology.format_node)
    assert "node 101" in text
    assert "A(cap=5)" in text and "B(cap=5)" in text
    assert "inj(cap=1)" in text


def test_internal_connections_derived():
    alg = HypercubeAdaptiveRouting(Hypercube(3))
    d = build_node_design(alg, 0b011, derive_internal=True)
    assert ("A", "B") in d.internal_connections


def test_queue_specs_in_design():
    alg = HypercubeAdaptiveRouting(Hypercube(3))
    d = build_node_design(alg, 0, central_capacity=7)
    assert d.queue_specs["A"].capacity == 7
    assert d.queue_specs["del"].capacity is None
