"""Unit tests for the torus topology."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology import Torus, bfs_distance


def test_num_nodes_and_degree():
    t = Torus((4, 5))
    assert t.num_nodes == 20
    for u in t.nodes():
        assert len(t.neighbors(u)) == 4


def test_rejects_short_rings():
    with pytest.raises(ValueError):
        Torus((2, 4))


def test_wraparound_adjacency():
    t = Torus((4, 4))
    assert t.is_adjacent((0, 0), (3, 0))
    assert t.is_adjacent((0, 0), (0, 3))
    assert not t.is_adjacent((0, 0), (2, 0))


def test_ring_distance():
    t = Torus((5, 5))
    assert t.ring_distance(0, 4, 0) == 1
    assert t.ring_distance(0, 2, 0) == 2
    assert t.ring_distance(1, 1, 0) == 0


def test_distance_wraps():
    t = Torus((5, 5))
    assert t.distance((0, 0), (4, 4)) == 2
    assert t.distance((0, 0), (2, 2)) == 4


def test_diameter():
    assert Torus((4, 4)).diameter == 4
    assert Torus((5, 3)).diameter == 3


def test_minimal_directions():
    t = Torus((5, 5))
    assert t.minimal_directions(0, 1, 0) == (+1,)
    assert t.minimal_directions(0, 4, 0) == (-1,)
    assert t.minimal_directions(2, 2, 0) == ()
    # Diametric tie on an even ring: both directions minimal.
    t4 = Torus((4, 4))
    assert set(t4.minimal_directions(0, 2, 0)) == {+1, -1}


def test_step_wraps():
    t = Torus((4, 4))
    assert t.step((3, 0), 0, +1) == (0, 0)
    assert t.step((0, 2), 0, -1) == (3, 2)


def test_crosses_dateline():
    t = Torus((4, 4))
    assert t.crosses_dateline((3, 1), 0, +1)
    assert t.crosses_dateline((0, 1), 0, -1)
    assert not t.crosses_dateline((1, 1), 0, +1)
    with pytest.raises(ValueError):
        t.crosses_dateline((0, 0), 0, 0)


def test_validate_passes():
    Torus((3, 4)).validate()


@given(st.integers(3, 6), st.integers(3, 6), st.data())
def test_distance_matches_bfs(a, b, data):
    t = Torus((a, b))
    nodes = list(t.nodes())
    u = data.draw(st.sampled_from(nodes))
    v = data.draw(st.sampled_from(nodes))
    assert t.distance(u, v) == bfs_distance(t, u, v)


@given(st.integers(3, 7), st.data())
def test_minimal_direction_reduces_distance(s, data):
    t = Torus((s, s))
    a = data.draw(st.integers(0, s - 1))
    b = data.draw(st.integers(0, s - 1))
    for d in t.minimal_directions(a, b, 0):
        a2 = (a + d) % s
        assert t.ring_distance(a2, b, 0) == t.ring_distance(a, b, 0) - 1
