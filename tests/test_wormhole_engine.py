"""Flit-level engine tests: pipeline timing, delivery, deadlock."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.queues import QueueId  # noqa: F401  (import sanity)
from repro.topology import Hypercube, Torus
from repro.wormhole import (
    ChannelId,
    HypercubeAdaptiveWormhole,
    HypercubeEcubeWormhole,
    TorusAdaptiveWormhole,
    Worm,
    WormholeDeadlockError,
    WormholeScheme,
    WormholeSimulator,
)


def single_worm(dst, length, scheme=None, src=0):
    scheme = scheme or HypercubeAdaptiveWormhole(Hypercube(4))
    sim = WormholeSimulator(scheme)
    sim.offer(Worm(src=src, dst=dst, length=length))
    sim.run()
    return sim.delivered[0], sim


def test_worm_validation():
    with pytest.raises(ValueError):
        Worm(src=0, dst=1, length=0)


def test_head_latency_is_hops_minus_one():
    """The header crosses one link per cycle: injection puts it one
    hop in at cycle 0, so it reaches a distance-h node at cycle h-1."""
    for dst, h in ((0b0001, 1), (0b0011, 2), (0b1111, 4)):
        worm, _ = single_worm(dst, length=1)
        assert worm.head_latency == h - 1


def test_tail_latency_pipeline_formula():
    """Uncontended: tail delivered at h + L - 2 cycles."""
    for dst, h in ((0b0001, 1), (0b1111, 4)):
        for L in (1, 4, 8):
            worm, _ = single_worm(dst, length=L)
            assert worm.latency == h + L - 2, (h, L)


def test_distance_insensitivity():
    """Worm-hole's motivation: for long worms, latency is dominated by
    L, not by the distance."""
    w_near, _ = single_worm(0b0001, length=16)
    w_far, _ = single_worm(0b1111, length=16)
    assert w_far.latency - w_near.latency == 3  # h delta only


def test_latency_requires_delivery():
    w = Worm(src=0, dst=1, length=2)
    with pytest.raises(ValueError):
        _ = w.latency
    with pytest.raises(ValueError):
        _ = w.head_latency


def test_all_channels_released_after_run():
    _, sim = single_worm(0b1111, length=5)
    for ch in sim.channels.values():
        assert ch.free and ch.flits == 0


def test_complement_all_to_all_delivers():
    cube = Hypercube(4)
    sim = WormholeSimulator(HypercubeAdaptiveWormhole(cube))
    sim.offer_all(
        Worm(src=u, dst=u ^ 0b1111, length=4) for u in cube.nodes()
    )
    sim.run()
    assert len(sim.delivered) == 16
    assert sim.latency.count == 16


def test_self_destined_worms_dropped():
    sim = WormholeSimulator(HypercubeAdaptiveWormhole(Hypercube(3)))
    sim.offer(Worm(src=3, dst=3, length=2))
    sim.offer(Worm(src=0, dst=7, length=2))
    sim.run()
    assert len(sim.delivered) == 1


def test_one_injection_per_source_per_cycle():
    cube = Hypercube(3)
    sim = WormholeSimulator(HypercubeAdaptiveWormhole(cube))
    sim.offer_all(Worm(src=0, dst=7, length=1) for _ in range(3))
    sim.step()
    assert len(sim.active) == 1
    assert len(sim.pending) == 2


def test_adaptive_beats_dimension_order_on_torus_shift():
    t = Torus((4, 4))
    mk = lambda: [
        Worm(src=u, dst=((u[0] + 2) % 4, (u[1] + 2) % 4), length=3)
        for u in t.nodes()
    ]
    adaptive = WormholeSimulator(TorusAdaptiveWormhole(t))
    adaptive.offer_all(mk())
    adaptive.run()
    dimorder = WormholeSimulator(
        __import__("repro.wormhole", fromlist=["x"]).TorusDimensionOrderWormhole(t)
    )
    dimorder.offer_all(mk())
    dimorder.run()
    assert adaptive.latency.mean < dimorder.latency.mean


class _RingDeadlock(WormholeScheme):
    """Single-VC clockwise ring routing: a textbook worm-hole deadlock."""

    name = "ring-deadlock"

    def channel_classes(self, u, v):
        return ("e",)

    def escape_channels(self, u, dst, state):
        topo: Torus = self.topology
        if u == dst:
            return []
        return [ChannelId(u, topo.step(u, 0, +1), "e")]


def test_engine_watchdog_catches_ring_deadlock():
    """Four worms around a 4-ring, each two hops from its target and
    longer than one channel buffer: all four hold their first channel
    and wait on the next forever."""
    t = Torus((4, 3))
    sim = WormholeSimulator(_RingDeadlock(t), channel_depth=1, stall_limit=50)
    sim.offer_all(
        Worm(src=(i, 0), dst=((i + 2) % 4, 0), length=8) for i in range(4)
    )
    with pytest.raises(WormholeDeadlockError):
        sim.run(max_cycles=10_000)


def test_run_raises_on_cycle_budget():
    sim = WormholeSimulator(HypercubeAdaptiveWormhole(Hypercube(3)))
    sim.offer(Worm(src=0, dst=7, length=50))
    with pytest.raises(RuntimeError):
        sim.run(max_cycles=3)


@settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(2, 4),
    length=st.integers(1, 6),
    depth=st.integers(1, 3),
    seed=st.integers(0, 1000),
)
def test_random_worm_population_drains(n, length, depth, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    cube = Hypercube(n)
    sim = WormholeSimulator(
        HypercubeAdaptiveWormhole(cube), channel_depth=depth, stall_limit=2000
    )
    worms = []
    for u in cube.nodes():
        dst = int(rng.integers(cube.num_nodes))
        if dst != u:
            worms.append(Worm(src=u, dst=dst, length=length))
    sim.offer_all(worms)
    sim.run(max_cycles=100_000)
    assert len(sim.delivered) == len(worms)
    for w in sim.delivered:
        h = cube.distance(w.src, w.dst)
        assert w.latency >= h + length - 2  # pipeline lower bound
