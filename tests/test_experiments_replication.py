"""Tests for multi-seed replication and statistics."""

import math

import pytest

from repro.experiments import (
    HypercubeExperiment,
    ReplicateStats,
    mean_difference_ci95,
    replicate,
)


def test_replicate_stats_basic():
    s = ReplicateStats()
    for v in (10.0, 12.0, 11.0):
        s.add(v)
    assert s.n == 3
    assert s.mean == 11.0
    assert s.std == pytest.approx(1.0)
    lo, hi = s.ci95()
    assert lo < 11.0 < hi


def test_ci_degenerate_cases():
    s = ReplicateStats()
    assert math.isnan(s.mean)
    s.add(5.0)
    assert s.ci95() == (5.0, 5.0)


def test_replicate_random_traffic():
    agg = replicate(
        lambda seed: HypercubeExperiment(
            pattern="random", injection="static", packets_per_node=1,
            seed=seed,
        ),
        n=4,
        seeds=(1, 2, 3, 4),
    )
    assert len(agg.results) == 4
    assert agg.l_avg.n == 4
    assert 3.0 < agg.l_avg.mean < 9.5  # around n+1
    row = agg.row()
    assert row["runs"] == 4 and "L_avg 95% CI" in row


def test_replicate_dynamic_collects_injection_rate():
    agg = replicate(
        lambda seed: HypercubeExperiment(
            pattern="random", injection="dynamic", seed=seed,
            duration=100, warmup=20,
        ),
        n=3,
        seeds=(1, 2),
    )
    assert agg.i_r.n == 2
    assert 0 < agg.i_r.mean <= 100


def test_deterministic_pattern_has_zero_variance():
    agg = replicate(
        lambda seed: HypercubeExperiment(
            pattern="complement", injection="static", packets_per_node=1,
            seed=seed,
        ),
        n=4,
        seeds=(1, 2, 3),
    )
    assert agg.l_avg.std == 0.0
    assert agg.l_avg.mean == 9.0  # 2n+1


def test_mean_difference_ci():
    a, b = ReplicateStats(), ReplicateStats()
    for v in (10.0, 10.5, 9.5, 10.2):
        a.add(v)
    for v in (20.0, 20.5, 19.5, 20.2):
        b.add(v)
    lo, hi = mean_difference_ci95(b, a)
    assert lo > 0  # b significantly larger than a
    with pytest.raises(ValueError):
        mean_difference_ci95(ReplicateStats(), a)


def test_mean_difference_identical_samples():
    a, b = ReplicateStats(), ReplicateStats()
    for v in (5.0, 5.0, 5.0):
        a.add(v)
        b.add(v)
    lo, hi = mean_difference_ci95(a, b)
    assert lo == hi == 0.0
