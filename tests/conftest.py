"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.routing import (
    HypercubeAdaptiveRouting,
    HypercubeHungRouting,
    HypercubeObliviousRouting,
    Mesh2DAdaptiveRouting,
    Mesh2DRestrictedRouting,
    ShuffleExchangeRouting,
    StructuredBufferPoolRouting,
    TorusRouting,
)
from repro.topology import Hypercube, Mesh2D, ShuffleExchange, Torus


@pytest.fixture
def cube3() -> Hypercube:
    return Hypercube(3)


@pytest.fixture
def cube4() -> Hypercube:
    return Hypercube(4)


@pytest.fixture
def mesh3() -> Mesh2D:
    return Mesh2D(3)


@pytest.fixture
def mesh4() -> Mesh2D:
    return Mesh2D(4)


@pytest.fixture
def torus3() -> Torus:
    return Torus((3, 3))


@pytest.fixture
def se3() -> ShuffleExchange:
    return ShuffleExchange(3)


@pytest.fixture
def cube_adaptive(cube3) -> HypercubeAdaptiveRouting:
    return HypercubeAdaptiveRouting(cube3)


@pytest.fixture
def mesh_adaptive(mesh3) -> Mesh2DAdaptiveRouting:
    return Mesh2DAdaptiveRouting(mesh3)


def small_algorithm_zoo():
    """Every algorithm on a small instance (module-level for parametrize)."""
    return [
        HypercubeAdaptiveRouting(Hypercube(3)),
        HypercubeHungRouting(Hypercube(3)),
        HypercubeObliviousRouting(Hypercube(3)),
        Mesh2DAdaptiveRouting(Mesh2D(3)),
        Mesh2DRestrictedRouting(Mesh2D(3)),
        TorusRouting(Torus((3, 3))),
        ShuffleExchangeRouting(ShuffleExchange(3)),
        StructuredBufferPoolRouting(Hypercube(3)),
    ]


def zoo_ids():
    return [a.name for a in small_algorithm_zoo()]
