"""Cross-validation of the sharded multi-process engine.

:class:`ShardedSimulator` must be *byte-identical* to the reference
:class:`PacketSimulator` on every topology at every shard count — same
canonical event log, same latency multiset, same cycle counts, same
injection statistics (`docs/SHARDING.md`).  The identity grid runs the
full barrier protocol inline (deterministic lockstep in one process);
a smaller set of cases exercises the real worker processes, and the
edge cases cover single-node shards, odd shard counts, boundary
hotspots, partition validation, and the capability errors the engine
raises instead of silently degrading.
"""

import warnings

import pytest

from repro.core.message import (
    message_id_watermark,
    reset_message_ids,
)
from repro.routing import (
    CCCAdaptiveRouting,
    HypercubeAdaptiveRouting,
    MeshAdaptiveRouting,
    ShuffleExchangeRouting,
    TorusRouting,
)
from repro.sim import (
    DynamicInjection,
    EngineCapabilityError,
    HotspotTraffic,
    PacketSimulator,
    RandomTraffic,
    ShardedSimulator,
    StaticInjection,
    TopologyPartition,
    make_rng,
    partition_topology,
    shard_count,
)
from repro.telemetry import TelemetryProbe
from repro.topology import (
    CubeConnectedCycles,
    Hypercube,
    Mesh,
    ShuffleExchange,
    Torus,
)

TOPOLOGIES = {
    "mesh": (lambda: Mesh((5, 5)), MeshAdaptiveRouting),
    "torus": (lambda: Torus((4, 4)), TorusRouting),
    "shuffle": (lambda: ShuffleExchange(4), ShuffleExchangeRouting),
    "hypercube": (lambda: Hypercube(4), HypercubeAdaptiveRouting),
    "ccc": (lambda: CubeConnectedCycles(3), CCCAdaptiveRouting),
}


def _run_logged(key, make_inj, engine_factory, seed=3):
    """One instrumented run; returns (event-log bytes, result)."""
    reset_message_ids()
    build, alg_cls = TOPOLOGIES[key]
    topo = build()
    probe = TelemetryProbe()
    sim = engine_factory(alg_cls(topo), make_inj(topo))
    probe.attach(sim)
    result = sim.run(max_cycles=500_000)
    return probe.log.to_jsonl(), result


def assert_identical(ref, shd):
    assert sorted(ref.latency.values) == sorted(shd.latency.values)
    assert ref.cycles == shd.cycles
    assert ref.injected == shd.injected
    assert ref.delivered == shd.delivered
    assert ref.attempts == shd.attempts
    assert ref.successes == shd.successes


def _compare(key, make_inj, shards, inline=True, seed=3):
    ref_log, ref = _run_logged(key, make_inj, PacketSimulator, seed=seed)
    shd_log, shd = _run_logged(
        key,
        make_inj,
        lambda a, m: ShardedSimulator(a, m, shards=shards, inline=inline),
        seed=seed,
    )
    assert ref_log == shd_log
    assert_identical(ref, shd)
    return shd


# ----------------------------------------------------------------------
# Byte-identity on every topology at 1/2/4 shards
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("key", sorted(TOPOLOGIES))
def test_static_byte_identical(key, shards):
    _compare(
        key,
        lambda t: StaticInjection(2, RandomTraffic(t), make_rng(3)),
        shards,
    )


@pytest.mark.parametrize("key", ["hypercube", "mesh"])
def test_dynamic_byte_identical(key):
    _compare(
        key,
        lambda t: DynamicInjection(
            0.7, RandomTraffic(t), make_rng(1), duration=120, warmup=30
        ),
        shards=2,
    )


@pytest.mark.parametrize("key", ["hypercube", "torus"])
def test_real_processes_byte_identical(key):
    """Same identity through actual worker processes and pipes."""
    _compare(
        key,
        lambda t: StaticInjection(2, RandomTraffic(t), make_rng(5)),
        shards=2,
        inline=False,
    )


# ----------------------------------------------------------------------
# Edge cases: shard geometry
# ----------------------------------------------------------------------
def test_single_node_shards():
    """Hypercube(2) at 4 shards: every shard owns exactly one node, so
    every link is a boundary link."""
    shd = _compare(
        "hypercube",
        lambda t: StaticInjection(2, RandomTraffic(t), make_rng(7)),
        shards=4,
    )
    # (rebuild the partition to inspect it; Hypercube(2) has 4 nodes)
    part = partition_topology(Hypercube(2), 4)
    assert part.counts().tolist() == [1, 1, 1, 1]
    assert shd.delivered > 0


def test_hypercube2_four_single_node_shards():
    reset_message_ids()
    topo = Hypercube(2)
    ref = PacketSimulator(
        HypercubeAdaptiveRouting(topo),
        StaticInjection(2, RandomTraffic(topo), make_rng(9)),
    ).run(max_cycles=100_000)
    reset_message_ids()
    topo2 = Hypercube(2)
    shd = ShardedSimulator(
        HypercubeAdaptiveRouting(topo2),
        StaticInjection(2, RandomTraffic(topo2), make_rng(9)),
        shards=4,
        inline=True,
    ).run(max_cycles=100_000)
    assert_identical(ref, shd)


def test_odd_shard_count():
    _compare(
        "mesh",
        lambda t: StaticInjection(2, RandomTraffic(t), make_rng(11)),
        shards=3,
    )


def test_boundary_hotspot():
    """All traffic aimed at one node concentrates load on that shard's
    boundary; mirrors and barrier accounting must hold up."""
    _compare(
        "mesh",
        lambda t: StaticInjection(
            2, HotspotTraffic(t, fraction=0.6), make_rng(13)
        ),
        shards=2,
    )


def test_occupancy_collection_identical():
    ref_log, ref = _run_logged(
        "mesh",
        lambda t: StaticInjection(3, RandomTraffic(t), make_rng(5)),
        lambda a, m: PacketSimulator(
            a, m, collect_occupancy=True, occupancy_sample_every=2
        ),
    )
    shd_log, shd = _run_logged(
        "mesh",
        lambda t: StaticInjection(3, RandomTraffic(t), make_rng(5)),
        lambda a, m: ShardedSimulator(
            a, m, shards=2, collect_occupancy=True,
            occupancy_sample_every=2,
        ),
    )
    assert ref_log == shd_log
    assert_identical(ref, shd)
    assert ref.occupancy["peak"] == shd.occupancy["peak"]
    for k, v in ref.occupancy["mean"].items():
        assert shd.occupancy["mean"][k] == pytest.approx(v)


def test_uid_stream_continues_like_serial():
    """After a sharded run the global uid counter sits exactly where a
    serial run would have left it."""
    marks = {}
    for engine in ("reference", "sharded"):
        reset_message_ids()
        topo = Hypercube(3)
        alg = HypercubeAdaptiveRouting(topo)
        model = StaticInjection(2, RandomTraffic(topo), make_rng(3))
        if engine == "reference":
            PacketSimulator(alg, model).run(max_cycles=100_000)
        else:
            ShardedSimulator(alg, model, shards=2, inline=True).run(
                max_cycles=100_000
            )
        marks[engine] = message_id_watermark()
    assert marks["reference"] == marks["sharded"]


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
def test_partition_kinds():
    assert partition_topology(Hypercube(4), 2).kind == "dimension-prefix"
    assert (
        partition_topology(CubeConnectedCycles(3), 2).kind
        == "dimension-prefix"
    )
    assert partition_topology(Mesh((5, 5)), 2).kind == "block"
    assert partition_topology(Torus((4, 4)), 2).kind == "block"
    assert partition_topology(ShuffleExchange(4), 2).kind == "hash"


def test_partition_covers_all_nodes():
    for build, _ in TOPOLOGIES.values():
        topo = build()
        part = partition_topology(topo, 3)
        assert isinstance(part, TopologyPartition)
        assert int(part.counts().sum()) == topo.num_nodes
        assert all(0 <= o < 3 for o in part.owner)
        assert part.describe()


def test_partition_rejects_bad_counts():
    with pytest.raises(ValueError):
        partition_topology(Hypercube(3), 0)
    with pytest.raises(ValueError):
        partition_topology(Hypercube(3), -1)
    with pytest.raises(ValueError):
        partition_topology(Hypercube(3), 2.5)
    with pytest.raises(ValueError):
        partition_topology(Hypercube(3), True)


def test_partition_clamps_excess_shards():
    """More shards than nodes: warn and clamp rather than spawn idle
    workers."""
    with pytest.warns(UserWarning, match="clamp"):
        part = partition_topology(Hypercube(2), 9)
    assert part.n_shards == 4
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert partition_topology(Hypercube(2), 4).n_shards == 4


def test_shard_count_env(monkeypatch):
    monkeypatch.setenv("REPRO_SHARDS", "3")
    assert shard_count() == 3
    assert shard_count(8) == 3  # env wins over the default
    monkeypatch.setenv("REPRO_SHARDS", "0")
    with pytest.raises(ValueError):
        shard_count()
    monkeypatch.setenv("REPRO_SHARDS", "two")
    with pytest.raises(ValueError):
        shard_count()
    monkeypatch.delenv("REPRO_SHARDS")
    assert shard_count(8) == 8


# ----------------------------------------------------------------------
# Capability errors and engine selection
# ----------------------------------------------------------------------
def _small_setup():
    topo = Hypercube(3)
    return (
        HypercubeAdaptiveRouting(topo),
        StaticInjection(1, RandomTraffic(topo), make_rng(0)),
    )


def test_trace_rejected():
    alg, model = _small_setup()
    with pytest.raises(EngineCapabilityError, match="trace"):
        ShardedSimulator(alg, model, shards=2, trace=True)


def test_fault_observer_rejected():
    from repro.faults import DeadlockWatchdog

    alg, model = _small_setup()
    sim = ShardedSimulator(alg, model, shards=2)
    with pytest.raises(EngineCapabilityError):
        sim.add_observer(DeadlockWatchdog())


def test_fault_harness_refuses_sharded():
    """make_fault_simulator must raise, not silently drop the schedule."""
    from repro.faults import FaultSchedule
    from repro.faults.experiments import make_fault_simulator

    alg, model = _small_setup()
    schedule = FaultSchedule.healthy(alg.topology)
    with pytest.raises(EngineCapabilityError, match="fault"):
        make_fault_simulator(alg, model, schedule, engine="sharded")


def test_fault_harness_refuses_sharded_env(monkeypatch):
    from repro.faults import FaultSchedule
    from repro.faults.experiments import make_fault_simulator

    monkeypatch.setenv("REPRO_ENGINE", "sharded")
    alg, model = _small_setup()
    with pytest.raises(EngineCapabilityError):
        make_fault_simulator(
            alg, model, FaultSchedule.healthy(alg.topology)
        )


def test_build_simulator_sharded_engine():
    from repro.experiments import build_simulator

    alg, model = _small_setup()
    sim = build_simulator(alg, model, engine="sharded", shards=2)
    assert type(sim) is ShardedSimulator
    assert sim.n_shards == 2


def test_engine_env_override_sharded(monkeypatch):
    from repro.experiments import build_simulator

    monkeypatch.setenv("REPRO_ENGINE", "sharded")
    monkeypatch.setenv("REPRO_SHARDS", "2")
    alg, model = _small_setup()
    sim = build_simulator(alg, model)
    assert type(sim) is ShardedSimulator
    assert sim.n_shards == 2


def test_zero_cycle_limit_raises():
    from repro.sim import CycleLimitExceeded

    alg, model = _small_setup()
    sim = ShardedSimulator(alg, model, shards=2, inline=True)
    with pytest.raises(CycleLimitExceeded):
        sim.run(max_cycles=0)
