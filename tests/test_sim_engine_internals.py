"""White-box tests of the Section-7.1 engine mechanics.

These pin down the subtle parts of the node/link cycle: buffer-major
FIFO assignment, entry-time phase folding, one-packet-per-link
arbitration with class rotation, and the rotating input fairness.
"""

import pytest

from repro.core import Message, QueueId
from repro.routing import HypercubeAdaptiveRouting, Mesh2DAdaptiveRouting
from repro.sim import (
    ComplementTraffic,
    PacketSimulator,
    RandomTraffic,
    StaticInjection,
    make_rng,
)
from repro.sim.injection import InjectionModel
from repro.topology import Hypercube, Mesh2D


class NoInjection(InjectionModel):
    """Engine microscope: the test places messages by hand."""

    name = "none"

    def attempt(self, sim, cycle):
        pass

    def finished(self, sim, cycle):
        return sim.active == 0


def make_sim(n=3, **kw):
    alg = HypercubeAdaptiveRouting(Hypercube(n))
    return PacketSimulator(alg, NoInjection(), **kw)


def place(sim, node, kind, src, dst):
    msg = Message(src=src, dst=dst)
    msg.injected_cycle = sim.cycle
    sim.central[node][kind].append(msg)
    sim.active += 1
    sim.injected_count += 1
    return msg


def test_invalid_policy_and_service_rejected():
    with pytest.raises(ValueError):
        make_sim(policy="bogus")
    with pytest.raises(ValueError):
        make_sim(service="bogus")


def test_buffer_major_low_dimension_first():
    """A phase-A message with several eligible dims takes the lowest."""
    sim = make_sim()
    msg = place(sim, 0b000, "A", 0b000, 0b110)  # dims 1 and 2 eligible
    sim._node_fill_output_buffers(0b000)
    # The message should sit in the dim-1 output buffer (lowest).
    assert sim.out_buf[(0b000, 0b010, "A")] is msg
    assert sim.out_buf[(0b000, 0b100, "A")] is None


def test_fifo_head_wins_buffer_contention():
    """Two messages wanting the same buffer: queue head gets it, the
    second takes its other eligible dimension."""
    sim = make_sim()
    first = place(sim, 0b000, "A", 0b000, 0b010)  # only dim 1
    second = place(sim, 0b000, "A", 0b000, 0b110)  # dims 1 and 2
    sim._node_fill_output_buffers(0b000)
    assert sim.out_buf[(0b000, 0b010, "A")] is first
    assert sim.out_buf[(0b000, 0b100, "A")] is second


def test_adaptivity_routes_around_full_buffer():
    """If the preferred buffer is occupied, the message adapts."""
    sim = make_sim()
    blocker = place(sim, 0b000, "A", 0b000, 0b010)
    sim._node_fill_output_buffers(0b000)  # blocker takes dim-1 buffer
    assert sim.out_buf[(0b000, 0b010, "A")] is blocker
    mover = place(sim, 0b000, "A", 0b000, 0b110)
    sim._node_fill_output_buffers(0b000)
    assert sim.out_buf[(0b000, 0b100, "A")] is mover  # took dim 2 instead


def test_entry_folding_direct_to_phase_b():
    """A packet whose last 0->1 correction lands at an intermediate
    node enters qB directly (no extra cycle for the phase switch)."""
    alg = HypercubeAdaptiveRouting(Hypercube(3))
    sim = PacketSimulator(alg, NoInjection())
    # Arrives at 011 with dst 001: no zeros to set, one 1 to clear.
    msg = Message(src=0b010, dst=0b001)
    msg.injected_cycle = 0
    msg.target = QueueId(0b011, "A")
    sim.in_buf[(0b010, 0b011, "A")] = msg
    sim.active += 1
    sim.injected_count += 1
    sim.step()
    assert msg in sim.central[0b011]["B"]
    assert msg not in sim.central[0b011]["A"]


def test_no_folding_at_destination():
    """Arriving at the destination stays in the sender-chosen queue
    (delivery happens next cycle: the 2h+1 accounting)."""
    alg = HypercubeAdaptiveRouting(Hypercube(3))
    sim = PacketSimulator(alg, NoInjection())
    msg = Message(src=0b000, dst=0b001)
    msg.injected_cycle = 0
    msg.target = QueueId(0b001, "A")
    sim.in_buf[(0b000, 0b001, "A")] = msg
    sim.active += 1
    sim.injected_count += 1
    sim.step()
    assert msg in sim.central[0b001]["A"]
    sim.step()
    assert msg.delivered


def test_one_packet_per_link_direction_per_cycle():
    """B and dyn buffers on the same up-link alternate via rotation."""
    sim = make_sim()
    mb = Message(src=0, dst=0)
    md = Message(src=0, dst=0)
    key_b = (0b111, 0b110, "B")
    key_d = (0b111, 0b110, "dyn")
    sim.out_buf[key_b] = mb
    sim.out_buf[key_d] = md
    sim._link_cycle()
    transferred = [
        k for k in (key_b, key_d) if sim.in_buf[k] is not None
    ]
    assert len(transferred) == 1  # only one crossed
    sim.cycle += 1
    sim._link_cycle()
    assert sim.in_buf[key_b] is not None and sim.in_buf[key_d] is not None


def test_link_requires_empty_input_buffer():
    sim = make_sim()
    m1 = Message(src=0, dst=0)
    sim.out_buf[(0b000, 0b001, "A")] = m1
    sim.in_buf[(0b000, 0b001, "A")] = Message(src=1, dst=1)
    sim._link_cycle()
    assert sim.out_buf[(0b000, 0b001, "A")] is m1  # still waiting


def test_capacity_blocks_queue_entry():
    alg = HypercubeAdaptiveRouting(Hypercube(3))
    sim = PacketSimulator(alg, NoInjection(), central_capacity=1)
    occupant = place(sim, 0b001, "A", 0b001, 0b111)
    waiting = Message(src=0b000, dst=0b111)
    waiting.injected_cycle = 0
    waiting.target = QueueId(0b001, "A")
    sim.in_buf[(0b000, 0b001, "A")] = waiting
    sim.active += 1
    sim.injected_count += 1
    # Run one node-read phase only: the queue is full, so the packet
    # must stay in the input buffer.
    sim._node_read_inputs(0b001)
    assert sim.in_buf[(0b000, 0b001, "A")] is waiting
    # After the occupant leaves, the packet gets in.
    sim.step()
    assert waiting in sim.central[0b001]["A"]


def test_rotating_policy_still_delivers_everything():
    cube = Hypercube(4)
    alg = HypercubeAdaptiveRouting(cube)
    inj = StaticInjection(3, RandomTraffic(cube), make_rng(0))
    res = PacketSimulator(alg, inj, policy="rotating").run(max_cycles=50_000)
    assert res.delivered == res.injected


def test_mesh_engine_integration_small():
    mesh = Mesh2D(3)
    alg = Mesh2DAdaptiveRouting(mesh)
    inj = StaticInjection(1, ComplementTrafficLike(mesh), make_rng(1))
    res = PacketSimulator(alg, inj).run(max_cycles=10_000)
    assert res.delivered == res.injected


class ComplementTrafficLike:
    """Mesh analogue of the complement: mirror both coordinates."""

    name = "mesh-mirror"
    is_permutation = True

    def __init__(self, mesh):
        self.rows = mesh.shape[0]
        self.cols = mesh.shape[1]

    def draw(self, src, rng):
        return (self.rows - 1 - src[0], self.cols - 1 - src[1])
