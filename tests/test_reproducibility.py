"""End-to-end reproducibility guarantees.

Every published number in EXPERIMENTS.md must be regenerable bit-for-
bit from a seed; these tests pin that property across the harness
layers (tables, figures, sweeps, replication).
"""

from repro.analysis import figure1_hypercube_qdg
from repro.experiments import run_table
from repro.experiments.other_topologies import family_table


def table_fingerprint(number, ns, seed):
    t = run_table(number, ns=ns, seed=seed)
    return [(r.n, r.l_avg, r.l_max, r.i_r) for r in t.rows]


def test_static_table_deterministic_across_calls():
    a = table_fingerprint(1, (4, 5), seed=7)
    b = table_fingerprint(1, (4, 5), seed=7)
    assert a == b


def test_dynamic_table_deterministic_across_calls():
    a = table_fingerprint(9, (4,), seed=7)
    b = table_fingerprint(9, (4,), seed=7)
    assert a == b


def test_different_seeds_differ_for_stochastic_tables():
    a = table_fingerprint(1, (5,), seed=1)
    b = table_fingerprint(1, (5,), seed=2)
    assert a != b


def test_deterministic_pattern_seed_insensitive():
    """Complement static is deterministic: seeds must not matter."""
    a = table_fingerprint(2, (4, 5), seed=1)
    b = table_fingerprint(2, (4, 5), seed=999)
    assert a == b


def test_figures_deterministic():
    a = figure1_hypercube_qdg()
    b = figure1_hypercube_qdg()
    assert a.dot == b.dot
    assert a.stats == b.stats


def test_family_tables_deterministic():
    a = family_table("mesh", "random", "static", sizes=(3,), seed=5)
    b = family_table("mesh", "random", "static", sizes=(3,), seed=5)
    assert a == b
