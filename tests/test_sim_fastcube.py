"""Cross-validation of the fast hypercube engine against the reference.

The fast engine must be *packet-for-packet identical* to
:class:`PacketSimulator` — same latency multiset, same cycle counts,
same injection statistics — for every supported configuration.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.routing import (
    HypercubeAdaptiveRouting,
    HypercubeHungRouting,
    HypercubeObliviousRouting,
)
from repro.sim import (
    ComplementTraffic,
    DynamicInjection,
    FastHypercubeSimulator,
    PacketSimulator,
    RandomTraffic,
    StaticInjection,
    TransposeTraffic,
    make_rng,
)
from repro.topology import Hypercube


def run_both(n, make_inj, alg_cls=HypercubeAdaptiveRouting, **kw):
    cube = Hypercube(n)
    ref = PacketSimulator(alg_cls(cube), make_inj(cube), **kw).run(
        max_cycles=500_000
    )
    fast = FastHypercubeSimulator(alg_cls(cube), make_inj(cube), **kw).run(
        max_cycles=500_000
    )
    return ref, fast


def assert_identical(ref, fast):
    assert sorted(ref.latency.values) == sorted(fast.latency.values)
    assert ref.cycles == fast.cycles
    assert ref.injected == fast.injected
    assert ref.delivered == fast.delivered
    assert ref.attempts == fast.attempts
    assert ref.successes == fast.successes


def test_rejects_unsupported_algorithms():
    cube = Hypercube(3)
    inj = StaticInjection(1, RandomTraffic(cube), make_rng(0))
    with pytest.raises(TypeError):
        FastHypercubeSimulator(HypercubeObliviousRouting(cube), inj)
    from repro.routing import Mesh2DAdaptiveRouting
    from repro.topology import Mesh2D

    with pytest.raises(TypeError):
        FastHypercubeSimulator(Mesh2DAdaptiveRouting(Mesh2D(3)), inj)


def test_static_complement_identical():
    ref, fast = run_both(
        5, lambda c: StaticInjection(1, ComplementTraffic(c), make_rng(0))
    )
    assert_identical(ref, fast)
    assert fast.l_avg == 11.0  # the 2n+1 law survives


def test_static_transpose_multi_packet_identical():
    ref, fast = run_both(
        6, lambda c: StaticInjection(3, TransposeTraffic(c), make_rng(1))
    )
    assert_identical(ref, fast)


def test_static_random_identical():
    ref, fast = run_both(
        6, lambda c: StaticInjection(2, RandomTraffic(c), make_rng(2))
    )
    assert_identical(ref, fast)


def test_dynamic_saturated_identical():
    ref, fast = run_both(
        5,
        lambda c: DynamicInjection(
            1.0, ComplementTraffic(c), make_rng(3), duration=200, warmup=50
        ),
    )
    assert_identical(ref, fast)


def test_dynamic_random_identical():
    ref, fast = run_both(
        6,
        lambda c: DynamicInjection(
            0.8, RandomTraffic(c), make_rng(4), duration=150, warmup=30
        ),
    )
    assert_identical(ref, fast)


def test_hung_variant_identical():
    ref, fast = run_both(
        5,
        lambda c: DynamicInjection(
            1.0, ComplementTraffic(c), make_rng(5), duration=150, warmup=30
        ),
        alg_cls=HypercubeHungRouting,
    )
    assert_identical(ref, fast)


def test_small_capacity_identical():
    ref, fast = run_both(
        4,
        lambda c: StaticInjection(5, RandomTraffic(c), make_rng(6)),
        central_capacity=1,
    )
    assert_identical(ref, fast)


def test_runner_uses_fast_engine_for_hypercube():
    from repro.experiments import HypercubeExperiment

    exp = HypercubeExperiment(pattern="random", injection="static", seed=1)
    sim = exp.build(4)
    assert isinstance(sim, FastHypercubeSimulator)
    sim_occ = HypercubeExperiment(
        pattern="random", injection="static", seed=1, collect_occupancy=True
    ).build(4)
    assert isinstance(sim_occ, PacketSimulator)


@settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(2, 5),
    packets=st.integers(1, 3),
    seed=st.integers(0, 10_000),
    capacity=st.integers(1, 5),
    hung=st.booleans(),
)
def test_property_identical_static(n, packets, seed, capacity, hung):
    alg_cls = HypercubeHungRouting if hung else HypercubeAdaptiveRouting
    ref, fast = run_both(
        n,
        lambda c: StaticInjection(packets, RandomTraffic(c), make_rng(seed)),
        alg_cls=alg_cls,
        central_capacity=capacity,
    )
    assert_identical(ref, fast)


@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(2, 4),
    seed=st.integers(0, 10_000),
    rate=st.sampled_from([0.3, 0.7, 1.0]),
)
def test_property_identical_dynamic(n, seed, rate):
    ref, fast = run_both(
        n,
        lambda c: DynamicInjection(
            rate, RandomTraffic(c), make_rng(seed), duration=120, warmup=30
        ),
    )
    assert_identical(ref, fast)
