"""Unit tests for the cube-connected cycles topology."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology import CubeConnectedCycles, bfs_distance


def test_num_nodes():
    assert CubeConnectedCycles(3).num_nodes == 24
    assert CubeConnectedCycles(4).num_nodes == 64


def test_rejects_small_n():
    with pytest.raises(ValueError):
        CubeConnectedCycles(2)


def test_degree_three_everywhere():
    ccc = CubeConnectedCycles(3)
    for u in ccc.nodes():
        nbrs = ccc.neighbors(u)
        assert len(nbrs) == 3
        assert len(set(nbrs)) == 3


def test_link_kinds():
    ccc = CubeConnectedCycles(3)
    u = (0b001, 0)
    assert ccc.cube_partner(u) == (0b000, 0)
    assert ccc.cycle_next(u) == (0b001, 1)
    assert ccc.cycle_prev(u) == (0b001, 2)
    assert ccc.is_cube_link(u, (0b000, 0))
    assert ccc.is_cycle_link(u, (0b001, 1))
    assert not ccc.is_cube_link(u, (0b001, 1))


def test_cube_link_uses_position_dimension():
    ccc = CubeConnectedCycles(4)
    assert ccc.cube_partner((0b0000, 2)) == (0b0100, 2)
    assert ccc.cube_partner((0b1111, 0)) == (0b1110, 0)


def test_adjacency_symmetric():
    ccc = CubeConnectedCycles(3)
    for u in ccc.nodes():
        for v in ccc.neighbors(u):
            assert u in ccc.neighbors(v)


def test_level_is_cube_weight():
    ccc = CubeConnectedCycles(3)
    assert ccc.level((0b101, 2)) == 2
    assert ccc.level((0b000, 1)) == 0


def test_distance_matches_bfs_sample():
    ccc = CubeConnectedCycles(3)
    nodes = list(ccc.nodes())
    for u in nodes[::5]:
        for v in nodes[::7]:
            assert ccc.distance(u, v) == bfs_distance(ccc, u, v)


def test_validate_passes():
    CubeConnectedCycles(3).validate()
    CubeConnectedCycles(4).validate()


def test_format_node():
    assert CubeConnectedCycles(3).format_node((0b101, 2)) == "(101,2)"


@given(st.integers(3, 5), st.data())
def test_cycle_next_prev_inverse(n, data):
    ccc = CubeConnectedCycles(n)
    nodes = list(ccc.nodes())
    u = data.draw(st.sampled_from(nodes))
    assert ccc.cycle_prev(ccc.cycle_next(u)) == u
    assert ccc.cube_partner(ccc.cube_partner(u)) == u
