"""Unit tests for the traffic patterns (paper, Section 7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import (
    BitReversalTraffic,
    ComplementTraffic,
    LeveledPermutationTraffic,
    MeshTransposeTraffic,
    RandomTraffic,
    ShufflePermutationTraffic,
    TornadoTraffic,
    TransposeTraffic,
    hypercube_pattern,
    make_rng,
    transpose_address,
)
from repro.sim.traffic import PermutationTraffic
from repro.topology import Hypercube, Mesh2D, Torus
from repro.topology.hypercube import hamming_weight


def test_random_never_self():
    cube = Hypercube(4)
    t = RandomTraffic(cube)
    rng = make_rng(0)
    for u in cube.nodes():
        for _ in range(20):
            assert t.draw(u, rng) != u


def test_random_covers_all_destinations():
    cube = Hypercube(3)
    t = RandomTraffic(cube)
    rng = make_rng(1)
    seen = {t.draw(0, rng) for _ in range(500)}
    assert seen == set(range(1, 8))


def test_complement():
    cube = Hypercube(4)
    t = ComplementTraffic(cube)
    rng = make_rng(0)
    assert t.draw(0b0000, rng) == 0b1111
    assert t.draw(0b1010, rng) == 0b0101
    assert t.is_permutation


def test_transpose_even_n():
    assert transpose_address(0b1100, 4) == 0b0011
    assert transpose_address(0b1000, 4) == 0b0010
    assert transpose_address(0b0110, 4) == 0b1001


def test_transpose_odd_n_keeps_middle_bit():
    # n=5: halves are 2 bits; the middle bit (position 2) stays.
    assert transpose_address(0b11000, 5) == 0b00011
    assert transpose_address(0b00100, 5) == 0b00100


def test_transpose_is_involution():
    for n in (4, 5, 6, 7):
        for u in range(1 << n):
            assert transpose_address(transpose_address(u, n), n) == u


def test_leveled_permutation_preserves_level():
    cube = Hypercube(5)
    t = LeveledPermutationTraffic(cube, make_rng(7))
    rng = make_rng(0)
    for u in cube.nodes():
        assert hamming_weight(t.draw(u, rng)) == hamming_weight(u)


def test_leveled_permutation_is_bijective():
    cube = Hypercube(4)
    t = LeveledPermutationTraffic(cube, make_rng(3))
    targets = sorted(t.mapping.values())
    assert targets == list(cube.nodes())


def test_bit_reversal():
    cube = Hypercube(4)
    t = BitReversalTraffic(cube)
    rng = make_rng(0)
    assert t.draw(0b0001, rng) == 0b1000
    assert t.draw(0b1010, rng) == 0b0101


def test_shuffle_permutation():
    cube = Hypercube(3)
    t = ShufflePermutationTraffic(cube)
    rng = make_rng(0)
    assert t.draw(0b001, rng) == 0b010
    assert t.draw(0b100, rng) == 0b001


def test_mesh_transpose():
    m = Mesh2D(4)
    t = MeshTransposeTraffic(m)
    rng = make_rng(0)
    assert t.draw((1, 3), rng) == (3, 1)
    with pytest.raises(ValueError):
        MeshTransposeTraffic(Mesh2D(2, 3))


def test_tornado():
    t5 = Torus((5, 5))
    t = TornadoTraffic(t5)
    rng = make_rng(0)
    assert t.draw((0, 0), rng) == (2, 0)
    assert t.draw((4, 1), rng) == (1, 1)


def test_permutation_rejects_non_injective():
    with pytest.raises(ValueError):
        PermutationTraffic({0: 1, 2: 1}, "broken")


def test_factory():
    cube = Hypercube(4)
    rng = make_rng(0)
    for name in ("random", "complement", "transpose", "leveled",
                 "bit-reversal", "shuffle-perm"):
        p = hypercube_pattern(name, cube, rng)
        assert p.name in (name, "leveled")
    with pytest.raises(ValueError):
        hypercube_pattern("nope", cube, rng)


@given(st.integers(2, 6), st.integers(0, 1000))
def test_random_traffic_uniform_support(n, seed):
    cube = Hypercube(n)
    t = RandomTraffic(cube)
    rng = make_rng(seed)
    d = t.draw(0, rng)
    assert 0 < d < cube.num_nodes
