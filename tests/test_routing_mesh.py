"""Unit tests for the mesh routing functions (paper, Section 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QueueId, deliver, node_path
from repro.routing import (
    Mesh2DAdaptiveRouting,
    Mesh2DRestrictedRouting,
    MeshAdaptiveRouting,
    MeshObliviousRouting,
)
from repro.topology import Mesh, Mesh2D


def adaptive3():
    return Mesh2DAdaptiveRouting(Mesh2D(3))


def test_requires_mesh_topology():
    from repro.topology import Hypercube

    with pytest.raises(TypeError):
        Mesh2DAdaptiveRouting(Hypercube(3))
    with pytest.raises(TypeError):
        MeshAdaptiveRouting(Hypercube(3))


def test_injection_phase():
    alg = adaptive3()
    # Needs +x: phase A.
    assert alg.injection_targets((0, 0), (2, 1)) == {QueueId((0, 0), "A")}
    # Only decreasing corrections: phase B.
    assert alg.injection_targets((2, 2), (1, 0)) == {QueueId((2, 2), "B")}
    # Mixed (z < x but w > y): still phase A.
    assert alg.injection_targets((2, 0), (0, 2)) == {QueueId((2, 0), "A")}


def test_phase_a_static_hops_ascend():
    alg = adaptive3()
    hops = alg.static_hops(QueueId((0, 0), "A"), (2, 2))
    assert hops == {QueueId((1, 0), "A"), QueueId((0, 1), "A")}


def test_phase_a_dynamic_hops_descend_while_ascent_remains():
    """Paper: -x allowed in phase A only while w > y (or symmetric)."""
    alg = adaptive3()
    # (2,0) -> (0,2): +y ascending remains, so -x dynamic hop allowed.
    hops = alg.dynamic_hops(QueueId((2, 0), "A"), (0, 2))
    assert hops == {QueueId((1, 0), "A")}
    # (2,2) -> (0,2): only -x remains, no ascent -> no dynamic hop.
    assert alg.dynamic_hops(QueueId((2, 2), "A"), (0, 2)) == frozenset()


def test_phase_change_internal():
    alg = adaptive3()
    assert alg.static_hops(QueueId((2, 2), "A"), (0, 1)) == {
        QueueId((2, 2), "B")
    }


def test_phase_b_descends_both_dims():
    alg = adaptive3()
    hops = alg.static_hops(QueueId((2, 2), "B"), (0, 0))
    assert hops == {QueueId((1, 2), "B"), QueueId((2, 1), "B")}


def test_delivery():
    alg = adaptive3()
    assert alg.static_hops(QueueId((1, 1), "A"), (1, 1)) == {deliver((1, 1))}
    assert alg.static_hops(QueueId((1, 1), "B"), (1, 1)) == {deliver((1, 1))}


def test_restricted_never_dynamic():
    alg = Mesh2DRestrictedRouting(Mesh2D(3))
    for u in alg.topology.nodes():
        for d in alg.topology.nodes():
            for kind in ("A", "B"):
                assert alg.dynamic_hops(QueueId(u, kind), d) == frozenset()


def test_oblivious_single_choice():
    alg = MeshObliviousRouting(Mesh2D(4))
    hops = alg.static_hops(QueueId((0, 0), "A"), (3, 3))
    assert len(hops) == 1


def test_kdim_mesh_routing():
    """The paper's 'easily generalized' claim: 3-dimensional mesh."""
    mesh = Mesh((3, 3, 3))
    alg = MeshAdaptiveRouting(mesh)
    src, dst = (0, 2, 1), (2, 0, 2)
    nodes = node_path(alg.walk(src, dst))
    assert nodes[0] == src and nodes[-1] == dst
    assert len(nodes) - 1 == mesh.distance(src, dst)


def test_kdim_mesh_verifies():
    from repro.core import verify_algorithm

    alg = MeshAdaptiveRouting(Mesh((2, 2, 2)))
    report = verify_algorithm(alg)
    assert report.ok, report.errors


@settings(max_examples=50)
@given(st.integers(2, 5), st.integers(2, 5), st.data())
def test_walk_minimal_random_pairs(rows, cols, data):
    mesh = Mesh2D(rows, cols)
    alg = Mesh2DAdaptiveRouting(mesh)
    nodes_all = list(mesh.nodes())
    src = data.draw(st.sampled_from(nodes_all))
    dst = data.draw(st.sampled_from(nodes_all))
    if src == dst:
        return
    nodes = node_path(alg.walk(src, dst))
    assert len(nodes) - 1 == mesh.distance(src, dst)


@settings(max_examples=50)
@given(st.integers(2, 5), st.data())
def test_every_hop_profitable(rows, data):
    mesh = Mesh2D(rows)
    alg = Mesh2DAdaptiveRouting(mesh)
    nodes_all = list(mesh.nodes())
    u = data.draw(st.sampled_from(nodes_all))
    dst = data.draw(st.sampled_from(nodes_all))
    if u == dst:
        return
    for kind in ("A", "B"):
        for q2 in alg.hops(QueueId(u, kind), dst):
            if q2.is_central and q2.node != u:
                assert mesh.distance(q2.node, dst) == mesh.distance(u, dst) - 1
