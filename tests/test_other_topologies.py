"""Tests for the extended other-topologies evaluation and report."""

import pytest

from repro.experiments.other_topologies import (
    CCCComplementTraffic,
    FAMILIES,
    SEBitReversalTraffic,
    family_table,
    run_cell,
)
from repro.sim import HotspotTraffic, make_rng
from repro.topology import CubeConnectedCycles, Hypercube, ShuffleExchange


def test_families_cover_all_other_topologies():
    assert set(FAMILIES) == {"mesh", "torus", "shuffle-exchange", "ccc"}


def test_ccc_complement_is_permutation():
    t = CCCComplementTraffic(CubeConnectedCycles(3))
    rng = make_rng(0)
    assert t.draw((0b000, 1), rng) == (0b111, 1)
    assert len(set(t.mapping.values())) == len(t.mapping)


def test_se_bit_reversal():
    t = SEBitReversalTraffic(ShuffleExchange(4))
    rng = make_rng(0)
    assert t.draw(0b0001, rng) == 0b1000


def test_run_cell_static():
    res = run_cell(FAMILIES["mesh"], 4, "random", "static", packets=1, seed=3)
    assert res.delivered == res.injected
    assert res.undelivered == 0


def test_run_cell_dynamic():
    res = run_cell(FAMILIES["torus"], 4, "adversary", "dynamic", seed=3)
    assert res.attempts > 0
    assert 0 < res.injection_rate <= 1


def test_run_cell_rejects_bad_inputs():
    fam = FAMILIES["mesh"]
    with pytest.raises(ValueError):
        run_cell(fam, 4, "bogus", "static")
    with pytest.raises(ValueError):
        run_cell(fam, 4, "random", "bogus")


def test_family_table_rows():
    rows = family_table("shuffle-exchange", "random", "static",
                        sizes=(3, 4), seed=1)
    assert [r["size"] for r in rows] == [3, 4]
    assert all(r["L_avg"] > 0 for r in rows)


# ----------------------------------------------------------------------
# Hotspot traffic
# ----------------------------------------------------------------------
def test_hotspot_validation():
    cube = Hypercube(3)
    with pytest.raises(ValueError):
        HotspotTraffic(cube, fraction=0.0)
    with pytest.raises(ValueError):
        HotspotTraffic(cube, hotspot=99)


def test_hotspot_bias():
    cube = Hypercube(4)
    t = HotspotTraffic(cube, hotspot=0, fraction=0.5)
    rng = make_rng(0)
    draws = [t.draw(5, rng) for _ in range(800)]
    frac = draws.count(0) / len(draws)
    assert 0.4 < frac < 0.6
    assert all(d != 5 for d in draws)


def test_hotspot_node_never_self_targets():
    cube = Hypercube(3)
    t = HotspotTraffic(cube, hotspot=0, fraction=0.9)
    rng = make_rng(1)
    assert all(t.draw(0, rng) != 0 for _ in range(100))


# ----------------------------------------------------------------------
# Report generation
# ----------------------------------------------------------------------
def test_report_sections(monkeypatch):
    monkeypatch.setenv("REPRO_NS", "3,4")
    from repro.analysis.report import (
        figures_section,
        full_report,
        paper_tables_section,
    )

    section = paper_tables_section(numbers=[2], seed=1)
    assert "Table 2" in section and "shape OK" in section
    figs = figures_section()
    assert "Figure 1" in figs and "Figure 6" in figs
    report = full_report(seed=1, include_figures=False)
    assert "Table 12" in report and "Other topologies" in report
    assert "Figure" not in report
