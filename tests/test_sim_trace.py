"""Tests for the structured event tracer."""

import pytest

from repro.core.message import reset_message_ids
from repro.routing import HypercubeAdaptiveRouting
from repro.sim import ComplementTraffic, StaticInjection, make_rng
from repro.sim.trace import CompiledTracingSimulator, TracingSimulator
from repro.topology import Hypercube


def traced_run(n=3, cls=TracingSimulator):
    reset_message_ids()
    cube = Hypercube(n)
    alg = HypercubeAdaptiveRouting(cube)
    inj = StaticInjection(1, ComplementTraffic(cube), make_rng(0))
    sim = cls(alg, inj)
    sim.run(max_cycles=5_000)
    return sim


def test_every_packet_has_full_timeline():
    sim = traced_run()
    uids = list(sim.packets())
    assert len(uids) == 8
    for uid in uids:
        tl = sim.timeline(uid)
        assert tl[0].kind == "inject"
        assert tl[-1].kind == "deliver"
        # complement route: n+1 distinct nodes visited (a phase fold
        # adds a same-node queue event but no extra node).
        enters = [e for e in tl if e.kind == "enter"]
        assert len({e.queue.node for e in enters}) == 3 + 1
        assert 3 + 1 <= len(enters) <= 3 + 2


def test_timeline_cycles_monotone():
    sim = traced_run()
    for uid in sim.packets():
        cycles = [e.cycle for e in sim.timeline(uid)]
        assert cycles == sorted(cycles)


def test_timeline_matches_latency():
    sim = traced_run()
    for uid in sim.packets():
        tl = sim.timeline(uid)
        assert tl[-1].cycle - tl[0].cycle == 2 * 3 + 1  # the 2n+1 law


def test_enter_events_follow_adjacent_nodes():
    sim = traced_run(4)
    topo = Hypercube(4)
    for uid in sim.packets():
        nodes = [
            e.queue.node
            for e in sim.timeline(uid)
            if e.kind in ("inject", "enter")
        ]
        for a, b in zip(nodes, nodes[1:]):
            assert a == b or topo.is_adjacent(a, b)


def test_format_timeline_readable():
    sim = traced_run()
    uid = next(sim.packets())
    text = sim.format_timeline(uid)
    assert "inject" in text and "deliver" in text


#: Golden ``format_timeline`` output, captured from the original
#: bespoke tracer before the telemetry-event-log port.  uid 0 is a
#: plain all-A route; uid 4 includes the B-phase fold at its pivot
#: node (same node, new queue class) — the subtlest reconstruction
#: case.  Byte-for-byte stability is the backward-compat contract.
GOLDEN_TIMELINES = {
    0: (
        "  cycle    0: inject   q[inj@0]\n"
        "  cycle    0: enter    q[A@0]\n"
        "  cycle    1: enter    q[A@1]\n"
        "  cycle    3: enter    q[A@3]\n"
        "  cycle    5: enter    q[A@7]\n"
        "  cycle    7: deliver  q[del@7]"
    ),
    4: (
        "  cycle    0: inject   q[inj@4]\n"
        "  cycle    0: enter    q[A@4]\n"
        "  cycle    1: enter    q[A@5]\n"
        "  cycle    3: enter    q[A@7]\n"
        "  cycle    4: enter    q[B@7]\n"
        "  cycle    5: enter    q[B@3]\n"
        "  cycle    7: deliver  q[del@3]"
    ),
}


@pytest.mark.parametrize("cls", [TracingSimulator, CompiledTracingSimulator])
def test_format_timeline_golden(cls):
    sim = traced_run(cls=cls)
    for uid, expected in GOLDEN_TIMELINES.items():
        assert sim.format_timeline(uid) == expected


def test_compiled_tracer_matches_reference():
    ref = traced_run()
    com = traced_run(cls=CompiledTracingSimulator)
    assert list(ref.packets()) == list(com.packets())
    for uid in ref.packets():
        assert ref.timeline(uid) == com.timeline(uid)


def test_tracer_exposes_raw_event_log():
    sim = traced_run()
    counts = sim.log.counts()
    assert counts["inject"] == 8 and counts["deliver"] == 8
    assert sim.log.to_jsonl().count("\n") == len(sim.log)
