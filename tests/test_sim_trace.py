"""Tests for the structured event tracer."""

from repro.routing import HypercubeAdaptiveRouting
from repro.sim import ComplementTraffic, StaticInjection, make_rng
from repro.sim.trace import TracingSimulator
from repro.topology import Hypercube


def traced_run(n=3):
    cube = Hypercube(n)
    alg = HypercubeAdaptiveRouting(cube)
    inj = StaticInjection(1, ComplementTraffic(cube), make_rng(0))
    sim = TracingSimulator(alg, inj)
    sim.run(max_cycles=5_000)
    return sim


def test_every_packet_has_full_timeline():
    sim = traced_run()
    uids = list(sim.packets())
    assert len(uids) == 8
    for uid in uids:
        tl = sim.timeline(uid)
        assert tl[0].kind == "inject"
        assert tl[-1].kind == "deliver"
        # complement route: n+1 distinct nodes visited (a phase fold
        # adds a same-node queue event but no extra node).
        enters = [e for e in tl if e.kind == "enter"]
        assert len({e.queue.node for e in enters}) == 3 + 1
        assert 3 + 1 <= len(enters) <= 3 + 2


def test_timeline_cycles_monotone():
    sim = traced_run()
    for uid in sim.packets():
        cycles = [e.cycle for e in sim.timeline(uid)]
        assert cycles == sorted(cycles)


def test_timeline_matches_latency():
    sim = traced_run()
    for uid in sim.packets():
        tl = sim.timeline(uid)
        assert tl[-1].cycle - tl[0].cycle == 2 * 3 + 1  # the 2n+1 law


def test_enter_events_follow_adjacent_nodes():
    sim = traced_run(4)
    topo = Hypercube(4)
    for uid in sim.packets():
        nodes = [
            e.queue.node
            for e in sim.timeline(uid)
            if e.kind in ("inject", "enter")
        ]
        for a, b in zip(nodes, nodes[1:]):
            assert a == b or topo.is_adjacent(a, b)


def test_format_timeline_readable():
    sim = traced_run()
    uid = next(sim.packets())
    text = sim.format_timeline(uid)
    assert "inject" in text and "deliver" in text
