"""Parallel experiment sweeps must be byte-identical to serial ones.

Every experiment cell derives its RNG streams from
``make_rng(seed, tag)`` with a per-cell tag, so no mutable random
state is shared between cells and a process-pool fan-out cannot change
a single sampled value.  These tests pin that contract: the parallel
results (and their order) equal the serial ones exactly.
"""

import pytest

from repro.experiments import (
    HypercubeExperiment,
    default_workers,
    parallel_map,
    run_table,
)
from repro.experiments.other_topologies import family_table


def _square(x):
    return x * x


def test_parallel_map_preserves_order():
    items = list(range(7))
    assert parallel_map(_square, items, workers=1) == [x * x for x in items]
    assert parallel_map(_square, items, workers=3) == [x * x for x in items]


def test_parallel_map_empty():
    assert parallel_map(_square, [], workers=4) == []


def test_default_workers_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert default_workers() == 3
    monkeypatch.delenv("REPRO_WORKERS")
    assert default_workers() >= 1


def test_sweep_parallel_identical_static():
    exp = HypercubeExperiment(pattern="random", injection="static", seed=9)
    serial = exp.sweep((3, 4))
    parallel = exp.sweep((3, 4), workers=2)
    assert list(serial) == list(parallel)
    for n in serial:
        assert sorted(serial[n].latency.values) == sorted(
            parallel[n].latency.values
        )
        assert serial[n].cycles == parallel[n].cycles
        assert serial[n].injected == parallel[n].injected


def test_sweep_parallel_identical_dynamic():
    exp = HypercubeExperiment(
        pattern="complement", injection="dynamic", rate=0.8, seed=5
    )
    serial = exp.sweep((3, 4))
    parallel = exp.sweep((3, 4), workers=2)
    for n in serial:
        assert sorted(serial[n].latency.values) == sorted(
            parallel[n].latency.values
        )
        assert serial[n].attempts == parallel[n].attempts
        assert serial[n].successes == parallel[n].successes


def test_run_table_parallel_identical():
    serial = run_table(2, ns=(3, 4))
    parallel = run_table(2, ns=(3, 4), workers=2)
    assert serial.render() == parallel.render()


def test_family_table_parallel_identical():
    serial = family_table("mesh", "random", "static", sizes=(3, 4))
    parallel = family_table(
        "mesh", "random", "static", sizes=(3, 4), workers=2
    )
    assert serial == parallel


def test_cli_table_workers_flag(capsys):
    from repro.cli import main

    assert main(["table", "2", "--ns", "3", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
