"""Unit tests for queue identities and specs."""

import pytest

from repro.core import DELIVER, INJECT, QueueId, default_queue_specs, deliver, inject
from repro.core.queues import QueueSpec, validate_queue_id


def test_queue_id_roles():
    q = QueueId(5, "A")
    assert q.is_central and not q.is_injection and not q.is_delivery
    assert inject(5).is_injection
    assert deliver(5).is_delivery
    assert not inject(5).is_central


def test_queue_id_hashable_and_ordered():
    a = QueueId(1, "A")
    b = QueueId(1, "B")
    assert a != b
    assert len({a, b, QueueId(1, "A")}) == 2
    assert sorted([b, a]) == [a, b]


def test_queue_spec_capacity():
    s = QueueSpec("A", 5)
    assert s.fits(0) and s.fits(4)
    assert not s.fits(5)
    assert not s.unbounded


def test_queue_spec_unbounded():
    s = QueueSpec(DELIVER, None)
    assert s.unbounded
    assert s.fits(10**9)


def test_default_queue_specs():
    specs = default_queue_specs(("A", "B"))
    assert specs[INJECT].capacity == 1
    assert specs[DELIVER].capacity is None
    assert specs["A"].capacity == 5
    assert specs["B"].capacity == 5
    assert set(specs) == {INJECT, DELIVER, "A", "B"}


def test_default_queue_specs_custom_capacity():
    specs = default_queue_specs(("X",), central_capacity=2, injection_capacity=3)
    assert specs["X"].capacity == 2
    assert specs[INJECT].capacity == 3


def test_default_queue_specs_rejects_reserved_kind():
    with pytest.raises(ValueError):
        default_queue_specs((INJECT,))


def test_validate_queue_id():
    assert validate_queue_id(QueueId(1, "A")) == QueueId(1, "A")
    assert validate_queue_id((2, "B")) == QueueId(2, "B")
    with pytest.raises(TypeError):
        validate_queue_id("nope")


def test_repr_compact():
    assert "A" in repr(QueueId(7, "A"))
