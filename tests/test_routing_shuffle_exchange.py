"""Unit tests for the shuffle-exchange routing (paper, Section 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QueueId, deliver, node_path, verify_algorithm
from repro.routing import ShuffleExchangeRouting, required_classes_per_phase
from repro.topology import ShuffleExchange


def se_alg(n=3, **kw):
    return ShuffleExchangeRouting(ShuffleExchange(n), **kw)


def test_requires_shuffle_exchange():
    from repro.topology import Hypercube

    with pytest.raises(TypeError):
        ShuffleExchangeRouting(Hypercube(3))


def test_four_queues_for_n3():
    """Theorem 3's queue count holds when no cycle can be wrapped twice."""
    alg = se_alg(3)
    assert len(alg.central_queue_kinds(0)) == 4
    assert required_classes_per_phase(3) == 2


def test_required_classes_grow_for_composite_n():
    """n = 4 has the 2-cycle {0101, 1010}: a message can wrap it twice
    within one phase, so two classes per phase are not enough."""
    assert required_classes_per_phase(4) > 2
    alg = se_alg(4)
    assert len(alg.central_queue_kinds(0)) == 2 * required_classes_per_phase(4)


def test_prime_n_needs_two_classes():
    assert required_classes_per_phase(5) == 2
    assert required_classes_per_phase(7) == 2


def test_target_bit_schedule_round_trips():
    """Following the schedule for 2n shuffles lands exactly on dst."""
    for n in (3, 4, 5):
        alg = se_alg(n)
        for src in range(1 << n):
            for dst in range(1 << n):
                x = src
                for k in range(2 * n):
                    want = alg.target_bit(dst, k)
                    if (x & 1) != want:
                        x ^= 1
                    x = ((x << 1) | (x >> (n - 1))) & ((1 << n) - 1)
                # After the last shuffle one final correction slot k=2n-1
                # has been applied before the rotation; the address must
                # now equal dst.
                assert x == dst, (n, src, dst)


def test_mandatory_01_correction_in_phase1():
    alg = se_alg(3)
    # src 000 -> dst with bit d_0 = 1: at k=0 target bit is dst_0.
    hops = alg.static_hops(QueueId(0b000, "P1C0"), 0b101, state=0)
    assert hops == {QueueId(0b001, "P1C0")}  # exchange forced


def test_deferrable_10_correction_is_dynamic():
    alg = se_alg(3)
    # At node 001 heading to 110: k=0 targets d_0 = 0, LSB = 1.
    st_hops = alg.static_hops(QueueId(0b001, "P1C0"), 0b110, state=0)
    dy_hops = alg.dynamic_hops(QueueId(0b001, "P1C0"), 0b110, state=0)
    assert st_hops == {QueueId(0b010, "P1C0")}  # shuffle on (defer)
    assert dy_hops == {QueueId(0b000, "P1C0")}  # early exchange


def test_phase2_corrections_mandatory():
    alg = se_alg(3)
    # Phase 2 (k >= 3), LSB 1 but target 0 -> exchange, no shuffle.
    hops = alg.static_hops(QueueId(0b011, "P2C0"), 0b010, state=3)
    assert hops == {QueueId(0b010, "P2C0")}
    assert alg.dynamic_hops(QueueId(0b011, "P2C0"), 0b010, state=3) == frozenset()


def test_eager_delivery():
    alg = se_alg(3)
    assert alg.static_hops(QueueId(0b110, "P1C1"), 0b110, state=2) == {
        deliver(0b110)
    }


def test_class_bump_at_break_node():
    alg = se_alg(3)
    # 100 -> shuffle -> 001 which is the break node of its cycle.
    q2 = alg._shuffle_hop(QueueId(0b100, "P1C0"), k=0)
    assert q2 == QueueId(0b001, "P1C1")


def test_phase_switch_on_nth_shuffle():
    alg = se_alg(3)
    q2 = alg._shuffle_hop(QueueId(0b010, "P1C1"), k=2)  # k+1 == n
    assert q2 == QueueId(0b100, "P2C0")


def test_self_shuffle_is_state_only():
    alg = se_alg(3)
    hops = alg.static_hops(QueueId(0b000, "P1C0"), 0b100, state=0)
    # k=0 targets d_0=0 == LSB, so shuffle; rol(000)=000 -> self hop.
    assert hops == {QueueId(0b000, "P1C0")}
    assert alg.update_state(0, QueueId(0b000, "P1C0"), QueueId(0b000, "P1C0")) == 1


def test_update_state_rules():
    alg = se_alg(3)
    shuffle = (QueueId(0b001, "P1C0"), QueueId(0b010, "P1C0"))
    exchange = (QueueId(0b001, "P1C0"), QueueId(0b000, "P1C0"))
    assert alg.update_state(4, *shuffle) == 5
    assert alg.update_state(4, *exchange) == 4


def test_exhausted_schedule_raises():
    alg = se_alg(3)
    with pytest.raises(RuntimeError):
        alg.static_hops(QueueId(0b001, "P2C0"), 0b110, state=6)


def test_route_length_bound_3n():
    """Theorem 3: every route takes at most 3n steps (2n shuffles +
    n exchanges); internal self-shuffles do not add physical hops."""
    for n in (3, 4):
        se = ShuffleExchange(n)
        alg = ShuffleExchangeRouting(se)
        for src in se.nodes():
            for dst in se.nodes():
                if src == dst:
                    continue
                path = alg.walk(src, dst)
                physical = [
                    (a, b)
                    for a, b in zip(path, path[1:])
                    if a.node != b.node
                ]
                assert len(physical) <= 3 * n, (src, dst, len(physical))
                nodes = node_path(path)
                assert nodes[-1] == dst


def test_static_variant_has_no_dynamic_hops():
    alg = se_alg(3, adaptive=False)
    for u in range(8):
        for dst in range(8):
            for k in range(5):
                assert (
                    alg.dynamic_hops(QueueId(u, "P1C0"), dst, state=k)
                    == frozenset()
                )


def test_n4_with_extra_classes_verifies():
    alg = se_alg(4)
    report = verify_algorithm(alg)
    assert report.deadlock_free, report.errors


def test_n4_with_only_two_classes_fails_verification():
    """Force the paper's literal 4-queue layout at n=4: the saturated
    class wraps the short cycle and the static QDG goes cyclic."""
    alg = se_alg(4, classes_per_phase=2)
    report = verify_algorithm(alg)
    assert not report.static_acyclic


@settings(max_examples=40, deadline=None)
@given(st.integers(3, 5), st.data())
def test_walk_terminates_and_arrives(n, data):
    se = ShuffleExchange(n)
    alg = ShuffleExchangeRouting(se)
    src = data.draw(st.integers(0, se.num_nodes - 1))
    dst = data.draw(st.integers(0, se.num_nodes - 1))
    if src == dst:
        return
    path = alg.walk(src, dst)
    assert path[-1] == deliver(dst)
