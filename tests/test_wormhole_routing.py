"""Unit tests for worm-hole routing schemes."""

import pytest

from repro.topology import Hypercube, Torus
from repro.wormhole import (
    ADAPTIVE,
    ChannelId,
    HungEscapeHypercubeWormhole,
    HypercubeAdaptiveWormhole,
    HypercubeEcubeWormhole,
    TorusAdaptiveWormhole,
    TorusDimensionOrderWormhole,
)


def test_requires_matching_topology():
    with pytest.raises(TypeError):
        HypercubeAdaptiveWormhole(Torus((3, 3)))
    with pytest.raises(TypeError):
        TorusAdaptiveWormhole(Hypercube(3))


def test_ecube_single_channel_per_link():
    s = HypercubeEcubeWormhole(Hypercube(3))
    assert s.channel_classes(0, 1) == ("e",)
    # Escape corrects the lowest differing dimension.
    assert s.escape_channels(0b000, 0b110, None) == [ChannelId(0b000, 0b010, "e")]
    assert s.candidates(0b000, 0b110, None) == [ChannelId(0b000, 0b010, "e")]
    assert s.escape_channels(0b110, 0b110, None) == []


def test_adaptive_hypercube_channels():
    s = HypercubeAdaptiveWormhole(Hypercube(3))
    assert s.channel_classes(0, 1) == ("e", ADAPTIVE)
    cands = s.candidates(0b001, 0b110, None)
    # Adaptive channels on every differing dim, then the e-cube escape.
    adp = [c for c in cands if c.vc == ADAPTIVE]
    esc = [c for c in cands if c.vc == "e"]
    assert {c.v for c in adp} == {0b000, 0b011, 0b101}
    assert esc == [ChannelId(0b001, 0b000, "e")]
    assert cands[-1].vc == "e"  # escape candidates come last


def test_adaptive_channels_all_minimal():
    cube = Hypercube(4)
    s = HypercubeAdaptiveWormhole(cube)
    for u in cube.nodes():
        for dst in cube.nodes():
            if u == dst:
                continue
            for c in s.candidates(u, dst, None):
                assert cube.distance(c.v, dst) == cube.distance(u, dst) - 1


def test_hung_escape_classes_follow_link_direction():
    s = HungEscapeHypercubeWormhole(Hypercube(4))
    assert s.channel_classes(0b0101, 0b0111) == ("eA", ADAPTIVE)
    assert s.channel_classes(0b0101, 0b0100) == ("eB", ADAPTIVE)


def test_torus_dimension_order_state_tracks_datelines():
    t = Torus((4, 4))
    s = TorusDimensionOrderWormhole(t)
    st = s.initial_state((3, 0), (1, 0))
    assert st == (False, False)
    # Pre-dateline travel rides the high class...
    pre = s.escape_channels((2, 0), (1, 0), st)
    assert pre == []  or pre  # (2,0)->(1,0) goes -x, no dateline here
    ch0 = s.escape_channels((3, 0), (1, 0), st)[0]
    # ...and the wrap link itself already uses the low class.
    assert ch0 == ChannelId((3, 0), (0, 0), "e0")
    st2 = s.update_state(st, ch0)
    assert st2 == (True, False)
    ch2 = s.escape_channels((0, 0), (1, 0), st2)[0]
    assert ch2.vc == "e0"  # stays low after the dateline


def test_torus_high_class_before_dateline():
    t = Torus((5, 5))
    s = TorusDimensionOrderWormhole(t)
    st = s.initial_state((1, 0), (3, 0))
    ch = s.escape_channels((1, 0), (3, 0), st)[0]
    assert ch == ChannelId((1, 0), (2, 0), "e1")


def test_torus_dimension_order_single_candidate():
    t = Torus((5, 5))
    s = TorusDimensionOrderWormhole(t)
    st = s.initial_state((0, 0), (2, 3))
    cands = s.candidates((0, 0), (2, 3), st)
    assert len(cands) == 1  # oblivious: dim 0 first
    assert cands[0].v == (1, 0)


def test_torus_adaptive_candidates_cover_all_minimal_moves():
    t = Torus((5, 5))
    s = TorusAdaptiveWormhole(t)
    st = s.initial_state((0, 0), (2, 3))
    cands = s.candidates((0, 0), (2, 3), st)
    adp = {c.v for c in cands if c.vc == ADAPTIVE}
    assert adp == {(1, 0), (0, 4)}  # +x and -y (minimal directions)
    assert cands[-1].vc in ("e0", "e1")


def test_adaptive_crossing_updates_state_too():
    t = Torus((4, 4))
    s = TorusAdaptiveWormhole(t)
    st = s.initial_state((3, 0), (1, 1))
    cross = ChannelId((3, 0), (0, 0), ADAPTIVE)
    assert s.update_state(st, cross) == (True, False)


def test_all_channels_enumeration():
    s = HypercubeAdaptiveWormhole(Hypercube(3))
    chans = list(s.all_channels())
    # 8 nodes x 3 out-links x 2 classes.
    assert len(chans) == 8 * 3 * 2
    assert len(set(chans)) == len(chans)
