"""Replaying forced-wait witnesses into real engine deadlocks."""

import pytest

from repro.statics import analyze_algorithm
from repro.statics.examples import broken_torus
from repro.statics.replay import ReplayResult, replay_witness
from repro.statics.witness import CycleWitness, STATIC_ORDER


def test_replay_rejects_non_forced_wait_witness():
    wit = CycleWitness(kind=STATIC_ORDER, rows=())
    with pytest.raises(ValueError):
        replay_witness(broken_torus(5), wit)


@pytest.mark.slow
def test_broken_torus_witness_replays_into_engine_deadlock():
    """Acceptance criterion: the analyzer's minimal forced-wait witness
    is not just a certificate refutation — fed back into the reference
    engine it wedges the network for real."""
    alg = broken_torus(5)
    analysis = analyze_algorithm(alg)
    wit = analysis.witnesses[0]
    assert wit.replayable
    result = replay_witness(alg, wit)
    assert isinstance(result, ReplayResult)
    assert result.deadlocked, result.detail
    assert bool(result)
    # deadlock means packets stayed undelivered
    assert result.delivered < result.total


@pytest.mark.slow
def test_replay_needs_backlog_to_wedge():
    """With too few packets per row the pipeline drains: the witness
    cycle only closes once the queue + both line buffers are full."""
    alg = broken_torus(5)
    wit = analyze_algorithm(alg).witnesses[0]
    result = replay_witness(alg, wit, packets_per_row=2)
    assert not result.deadlocked
    assert result.delivered == result.total
