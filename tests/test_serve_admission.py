"""Admission-control policies (`repro.serve.admission`).

Exercised against a stub "simulator" exposing only what the controller
reads — ``injection_queue_free(node)`` — so each policy's decision
table is tested in isolation from any engine.
"""

from __future__ import annotations

from repro.serve.admission import AdmissionController, Offer
from repro.serve.scenario import AdmissionConfig


class StubSim:
    """Injection queues as a plain set of free nodes.

    Like the real engines' size-1 injection queues, a placement
    occupies the node's queue for the rest of the cycle.
    """

    def __init__(self, free=()):
        self.free = set(free)

    def injection_queue_free(self, u):
        return u in self.free

    def occupy(self, u):
        self.free.discard(u)


def controller(**kwargs) -> AdmissionController:
    return AdmissionController(AdmissionConfig(**kwargs))


def collect_placements(ctrl, sim, cycle, offers):
    placed = []

    def place(o, c):
        sim.occupy(o.src)
        placed.append((o, c))

    ctrl.admit(sim, cycle, offers, place)
    return placed


def offer(src, qos="default", cycle=0):
    return Offer(src, src + 100, qos, cycle)


# ----------------------------------------------------------------------
def test_free_queue_accepts_immediately():
    ctrl = controller(policy="drop")
    placed = collect_placements(ctrl, StubSim(free={1}), 0, [offer(1)])
    assert len(placed) == 1
    assert ctrl.accepted == {"default": 1}
    assert ctrl.dropped == {}


def test_drop_policy_counts_and_discards():
    ctrl = controller(policy="drop")
    placed = collect_placements(ctrl, StubSim(free=set()), 0, [offer(1)])
    assert placed == []
    assert ctrl.dropped == {"default": 1}
    assert ctrl.deferred_total == 0


def test_defer_policy_retries_ahead_of_new_offers():
    ctrl = controller(policy="defer")
    # Cycle 0: node 1 is backpressured; the offer parks.
    assert collect_placements(ctrl, StubSim(), 0, [offer(1, "gold")]) == []
    assert ctrl.deferred_total == 1
    # Cycle 3: queue frees; the deferred offer goes first, the fresh
    # offer at the same node must wait behind it.
    placed = collect_placements(
        ctrl, StubSim(free={1}), 3, [offer(1, "bronze", cycle=3)]
    )
    assert [(o.qos, c) for o, c in placed] == [("gold", 3)]
    assert ctrl.deferred_total == 1  # the bronze one parked behind
    assert ctrl.defer_wait_cycles == 3
    assert ctrl.deferred_count == {"gold": 1, "bronze": 1}


def test_defer_fifo_is_bounded_dropping_newest():
    ctrl = controller(policy="defer", max_deferred_per_node=2)
    offers = [offer(1, f"c{i}") for i in range(4)]
    collect_placements(ctrl, StubSim(), 0, offers)
    assert ctrl.deferred_total == 2
    assert ctrl.dropped == {"c2": 1, "c3": 1}
    assert [o.qos for o in ctrl.deferred[1]] == ["c0", "c1"]


def test_shed_by_class_protects_high_priority():
    ctrl = controller(
        policy="shed-by-class",
        shed_threshold=2,
        max_deferred_per_node=10,
        class_order=("gold", "bronze"),
    )
    sim = StubSim()
    # Fill the backlog past the threshold with gold offers.
    collect_placements(ctrl, sim, 0, [offer(1, "gold"), offer(2, "gold")])
    assert ctrl.deferred_total == 2
    # Above threshold: bronze (lower than the best deferred class)
    # sheds, gold still defers.
    collect_placements(
        ctrl, sim, 1, [offer(3, "bronze", 1), offer(4, "gold", 1)]
    )
    assert ctrl.shed == {"bronze": 1}
    assert ctrl.deferred_total == 3
    assert ctrl.deferred_count == {"gold": 3}


def test_shed_never_sheds_the_best_backlogged_class():
    """With one class in play, shed-by-class degrades to plain defer."""
    ctrl = controller(
        policy="shed-by-class", shed_threshold=1, class_order=("gold",)
    )
    sim = StubSim()
    collect_placements(ctrl, sim, 0, [offer(1, "gold")])
    collect_placements(ctrl, sim, 1, [offer(2, "gold", 1)])
    assert ctrl.shed == {}
    assert ctrl.deferred_total == 2


def test_unlisted_classes_rank_below_listed():
    ctrl = controller(
        policy="shed-by-class", shed_threshold=1, class_order=("gold",)
    )
    sim = StubSim()
    collect_placements(ctrl, sim, 0, [offer(1, "gold")])
    collect_placements(ctrl, sim, 1, [offer(2, "mystery", 1)])
    assert ctrl.shed == {"mystery": 1}


def test_cancel_backlog_counts_everything():
    ctrl = controller(policy="defer")
    collect_placements(
        ctrl, StubSim(), 0, [offer(1, "a"), offer(2, "b"), offer(3, "b")]
    )
    assert ctrl.cancel_backlog() == 3
    assert ctrl.cancelled == {"a": 1, "b": 2}
    assert ctrl.deferred_total == 0 and not ctrl.deferred
    # Counters survive in the snapshot.
    snap = ctrl.snapshot()
    assert snap["cancelled"] == {"a": 1, "b": 2}
    assert snap["deferred_backlog"] == 0


def test_new_offer_waits_behind_deferred_at_same_node():
    """Even with a free queue, FIFO order at a node is preserved."""
    ctrl = controller(policy="defer")
    collect_placements(ctrl, StubSim(), 0, [offer(1, "old")])
    # Queue frees, but this cycle's retry pass already used the slot:
    # the deferred offer is placed, the new one parks behind it.
    placed = collect_placements(
        ctrl, StubSim(free={1}), 1, [offer(1, "new", 1)]
    )
    assert [o.qos for o, _ in placed] == ["old"]
    assert [o.qos for o in ctrl.deferred[1]] == ["new"]


def test_classes_lists_every_seen_class_sorted():
    ctrl = controller(policy="drop")
    collect_placements(
        ctrl, StubSim(free={1}), 0, [offer(1, "z"), offer(2, "a")]
    )
    assert ctrl.classes() == ["a", "z"]
