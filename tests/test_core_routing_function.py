"""Tests for the RoutingAlgorithm base machinery (walk, queues, classes)."""

import pytest

from repro.core import DELIVER, INJECT, QueueId, node_path
from repro.core.routing_function import DYNAMIC_CLASS
from repro.routing import HypercubeAdaptiveRouting
from repro.topology import Hypercube


def make_alg(n=3):
    return HypercubeAdaptiveRouting(Hypercube(n))


def test_queues_at_node_order():
    alg = make_alg()
    qs = alg.queues_at(5)
    assert qs[0].kind == INJECT
    assert qs[-1].kind == DELIVER
    assert [q.kind for q in qs[1:-1]] == ["A", "B"]


def test_all_queues_count():
    alg = make_alg(3)
    assert sum(1 for _ in alg.all_queues()) == 8 * 4


def test_queue_specs_defaults():
    alg = make_alg()
    specs = alg.queue_specs(0)
    assert specs["A"].capacity == 5
    assert specs[INJECT].capacity == 1
    specs2 = alg.queue_specs(0, central_capacity=9)
    assert specs2["B"].capacity == 9


def test_buffer_class_dispatch():
    alg = make_alg()
    q1, q2 = QueueId(0, "A"), QueueId(1, "A")
    assert alg.buffer_class(q1, q2, dynamic=False) == "A"
    assert alg.buffer_class(q1, q2, dynamic=True) == DYNAMIC_CLASS


def test_is_internal():
    alg = make_alg()
    assert alg.is_internal(QueueId(3, "A"), QueueId(3, "B"))
    assert not alg.is_internal(QueueId(3, "A"), QueueId(2, "A"))


def test_walk_default_choice_deterministic():
    alg = make_alg(4)
    assert alg.walk(3, 12) == alg.walk(3, 12)


def test_walk_max_steps_guard():
    alg = make_alg(3)
    with pytest.raises(RuntimeError):
        alg.walk(0, 7, max_steps=1)


def test_walk_self_pair():
    """Routing to self: injected into B, delivered immediately."""
    alg = make_alg(3)
    path = alg.walk(2, 2)
    assert node_path(path) == [2]


def test_node_path_projection():
    path = [
        QueueId(0, INJECT),
        QueueId(0, "A"),
        QueueId(1, "A"),
        QueueId(1, "B"),
        QueueId(3, "B"),
        QueueId(3, DELIVER),
    ]
    assert node_path(path) == [0, 1, 3]


def test_default_buffer_classes_overprovision():
    """The generic fallback offers all central kinds + dyn."""
    from repro.routing import Mesh2DAdaptiveRouting
    from repro.topology import Mesh2D

    alg = Mesh2DAdaptiveRouting(Mesh2D(3))
    assert alg.buffer_classes((0, 0), (0, 1)) == ("A", "B", DYNAMIC_CLASS)
