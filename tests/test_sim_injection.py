"""Unit tests for the injection models."""

import pytest

from repro.routing import HypercubeAdaptiveRouting
from repro.sim import (
    ComplementTraffic,
    DynamicInjection,
    PacketSimulator,
    RandomTraffic,
    StaticInjection,
    make_rng,
)
from repro.topology import Hypercube


def make_sim(n=3, injection=None):
    cube = Hypercube(n)
    alg = HypercubeAdaptiveRouting(cube)
    return PacketSimulator(alg, injection), cube


def test_static_injection_validates_count():
    cube = Hypercube(3)
    with pytest.raises(ValueError):
        StaticInjection(0, RandomTraffic(cube), make_rng(0))


def test_static_backlog_size():
    cube = Hypercube(3)
    inj = StaticInjection(3, RandomTraffic(cube), make_rng(0))
    sim, _ = make_sim(3, inj)
    inj.setup(sim)
    assert inj.total == 3 * 8
    assert all(len(v) == 3 for v in inj.backlog.values())


def test_static_skips_permutation_fixed_points():
    """Nodes mapped to themselves stay silent (leveled-permutation
    fixed points like 0...0)."""
    cube = Hypercube(3)
    from repro.sim import LeveledPermutationTraffic

    pattern = LeveledPermutationTraffic(cube, make_rng(0))
    inj = StaticInjection(1, pattern, make_rng(1))
    sim, _ = make_sim(3, inj)
    inj.setup(sim)
    fixed = sum(1 for u, d in pattern.mapping.items() if u == d)
    assert inj.total == 8 - fixed
    assert fixed >= 2  # 000 and 111 are always fixed points


def test_static_finished_only_when_all_delivered():
    cube = Hypercube(3)
    inj = StaticInjection(1, ComplementTraffic(cube), make_rng(0))
    sim, _ = make_sim(3, inj)
    inj.setup(sim)
    assert not inj.finished(sim, 0)
    res = sim.run(max_cycles=1000)
    assert res.delivered == inj.total


def test_dynamic_validates_parameters():
    cube = Hypercube(3)
    t = RandomTraffic(cube)
    with pytest.raises(ValueError):
        DynamicInjection(0.0, t, make_rng(0), duration=10)
    with pytest.raises(ValueError):
        DynamicInjection(1.5, t, make_rng(0), duration=10)
    with pytest.raises(ValueError):
        DynamicInjection(0.5, t, make_rng(0), duration=10, warmup=10)


def test_dynamic_attempt_accounting_lambda_one():
    """With lambda=1 and an empty network, every node injects every
    cycle, so successes == attempts initially."""
    cube = Hypercube(3)
    inj = DynamicInjection(
        1.0, RandomTraffic(cube), make_rng(0), duration=5, warmup=0
    )
    sim, _ = make_sim(3, inj)
    inj.attempt(sim, 0)
    assert inj.attempts == 8
    assert inj.successes == 8
    # Second attempt in the same cycle state: queues still occupied.
    inj.attempt(sim, 0)
    assert inj.attempts == 16
    assert inj.successes == 8


def test_dynamic_warmup_not_measured():
    cube = Hypercube(3)
    inj = DynamicInjection(
        1.0, RandomTraffic(cube), make_rng(0), duration=10, warmup=5
    )
    sim, _ = make_sim(3, inj)
    inj.attempt(sim, 2)  # during warm-up
    assert inj.attempts == 0


def test_dynamic_finished_at_duration():
    cube = Hypercube(3)
    inj = DynamicInjection(
        0.5, RandomTraffic(cube), make_rng(0), duration=7, warmup=1
    )
    sim, _ = make_sim(3, inj)
    assert not inj.finished(sim, 5)
    assert inj.finished(sim, 6)


def test_latency_measured_only_after_warmup():
    cube = Hypercube(3)
    inj = DynamicInjection(
        1.0, RandomTraffic(cube), make_rng(1), duration=100, warmup=60
    )
    sim, _ = make_sim(3, inj)
    res = sim.run()
    # Messages injected before cycle 60 are excluded from stats.
    assert res.latency.count < res.delivered
