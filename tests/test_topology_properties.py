"""Tests for topology property analysis."""

import pytest

from repro.topology import Hypercube, Mesh2D, ShuffleExchange, Torus
from repro.topology.properties import (
    average_distance,
    cut_load,
    degree_histogram,
    dimension_cut_load_hypercube,
    directed_cut,
    is_node_symmetric_sample,
)


def test_average_distance_hypercube_exact():
    # Mean Hamming distance over ordered pairs: n * 2^(n-1) / (2^n - 1).
    n = 4
    expected = n * (1 << (n - 1)) / ((1 << n) - 1)
    assert average_distance(Hypercube(n)) == pytest.approx(expected)


def test_average_distance_sampled_close():
    cube = Hypercube(5)
    exact = average_distance(cube)
    approx = average_distance(cube, sample=3000, seed=1)
    assert abs(approx - exact) < 0.2


def test_directed_cut_hypercube_dimension():
    cube = Hypercube(4)
    side_a = [u for u in cube.nodes() if not (u >> 2) & 1]
    ab, ba = directed_cut(cube, side_a)
    assert ab == ba == 8  # 2^(n-1) links per direction


def test_cut_load_complement_saturates_every_cut():
    """Every node's complement lies across every dimension cut: each
    A->B link must carry one message per round — zero slack."""
    n = 4
    mask = (1 << n) - 1
    load = dimension_cut_load_hypercube(n, lambda u: u ^ mask)
    assert load == pytest.approx(1.0)


def test_cut_load_random_identity():
    cube = Hypercube(3)
    side_a = [u for u in cube.nodes() if not (u >> 0) & 1]
    # Identity permutation never crosses: load 0.
    assert cut_load(cube, side_a, lambda u: u) == 0.0


def test_cut_load_requires_outgoing_links():
    cube = Hypercube(3)
    with pytest.raises(ValueError):
        cut_load(cube, [], lambda u: u)


def test_degree_histograms():
    assert degree_histogram(Hypercube(4)) == {4: 16}
    assert degree_histogram(Torus((4, 4))) == {4: 16}
    hist = degree_histogram(Mesh2D(3))
    assert hist == {2: 4, 3: 4, 4: 1}


def test_symmetry_samples():
    assert is_node_symmetric_sample(Hypercube(4))
    assert is_node_symmetric_sample(Torus((4, 4)))
    assert not is_node_symmetric_sample(Mesh2D(4))  # corners differ
    # Shuffle-exchange is famously asymmetric.
    assert not is_node_symmetric_sample(ShuffleExchange(4), probes=12)


def test_complement_has_no_cut_slack_but_random_does():
    """Complement loads every dimension cut at capacity while uniform
    random traffic leaves half of it free — the structural reason
    Table 10 saturates hard and Table 9 does not."""
    comp = dimension_cut_load_hypercube(5, lambda u: u ^ 31)
    assert comp == pytest.approx(1.0)

    # Expected random load: each message crosses cut i with prob ~1/2.
    from repro.topology import Hypercube
    from repro.topology.properties import cut_load

    cube = Hypercube(5)
    side_a = [u for u in cube.nodes() if not u & 1]
    # Deterministic proxy for random traffic: map u -> u ^ (u rotated),
    # which crosses the bit-0 cut for only part of the nodes.
    crossing = cut_load(cube, side_a, lambda u: u ^ 3)
    assert crossing <= 1.0
