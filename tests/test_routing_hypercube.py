"""Unit tests for the hypercube routing functions (paper, Section 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QueueId, deliver, inject, node_path
from repro.core.routing_function import DYNAMIC_CLASS
from repro.routing import (
    HypercubeAdaptiveRouting,
    HypercubeHungRouting,
    HypercubeObliviousRouting,
    all_hypercube_algorithms,
)
from repro.topology import Hypercube


def alg3():
    return HypercubeAdaptiveRouting(Hypercube(3))


def test_requires_hypercube_topology():
    from repro.topology import Mesh2D

    with pytest.raises(TypeError):
        HypercubeAdaptiveRouting(Mesh2D(3))


def test_two_central_queues():
    assert alg3().central_queue_kinds(0) == ("A", "B")


def test_injection_phase_selection():
    alg = alg3()
    # 001 -> 110 has a 0 to correct -> qA.
    assert alg.injection_targets(0b001, 0b110) == {QueueId(0b001, "A")}
    # 111 -> 010 has only 1s to correct -> qB.
    assert alg.injection_targets(0b111, 0b010) == {QueueId(0b111, "B")}
    # 010 -> 011: one incorrect 0 -> qA.
    assert alg.injection_targets(0b010, 0b011) == {QueueId(0b010, "A")}


def test_phase_a_static_hops_set_zeros():
    alg = alg3()
    hops = alg.static_hops(QueueId(0b001, "A"), 0b110)
    assert hops == {QueueId(0b011, "A"), QueueId(0b101, "A")}


def test_phase_a_dynamic_hops_clear_ones():
    alg = alg3()
    hops = alg.dynamic_hops(QueueId(0b001, "A"), 0b110)
    assert hops == {QueueId(0b000, "A")}


def test_extended_hops_cover_all_differing_dims():
    """R~ from qA offers every differing dimension (paper's formula)."""
    alg = alg3()
    hops = alg.hops(QueueId(0b001, "A"), 0b110)
    assert hops == {QueueId(0b011, "A"), QueueId(0b101, "A"), QueueId(0b000, "A")}


def test_no_dynamic_hops_without_zeros_pending():
    alg = alg3()
    assert alg.dynamic_hops(QueueId(0b111, "A"), 0b010) == frozenset()
    assert alg.dynamic_hops(QueueId(0b011, "B"), 0b010) == frozenset()


def test_phase_change_is_internal():
    alg = alg3()
    # At 111 heading to 010: no zeros left, switch to qB in place.
    assert alg.static_hops(QueueId(0b111, "A"), 0b010) == {QueueId(0b111, "B")}


def test_phase_b_clears_ones():
    alg = alg3()
    hops = alg.static_hops(QueueId(0b111, "B"), 0b010)
    assert hops == {QueueId(0b011, "B"), QueueId(0b110, "B")}


def test_delivery_from_both_phases():
    alg = alg3()
    assert alg.static_hops(QueueId(0b110, "A"), 0b110) == {deliver(0b110)}
    assert alg.static_hops(QueueId(0b110, "B"), 0b110) == {deliver(0b110)}


def test_buffer_classes_match_figure4():
    """Down-links carry only static-A; up-links carry B + dynamic."""
    alg = HypercubeAdaptiveRouting(Hypercube(4))
    assert alg.buffer_classes(0b0101, 0b0111) == ("A",)  # sets bit 1
    assert alg.buffer_classes(0b0101, 0b0100) == ("B", DYNAMIC_CLASS)
    assert alg.buffer_classes(0b0101, 0b0001) == ("B", DYNAMIC_CLASS)
    assert alg.buffer_classes(0b0101, 0b1101) == ("A",)


def test_walk_reaches_destination_minimally():
    alg = HypercubeAdaptiveRouting(Hypercube(4))
    cube = alg.topology
    for src, dst in [(0, 15), (5, 10), (12, 3), (1, 2)]:
        path = alg.walk(src, dst)
        assert path[0] == inject(src)
        assert path[-1] == deliver(dst)
        nodes = node_path(path)
        assert nodes[0] == src and nodes[-1] == dst
        assert len(nodes) - 1 == cube.distance(src, dst)


def test_oblivious_is_deterministic():
    alg = HypercubeObliviousRouting(Hypercube(4))
    p1 = alg.walk(0b0011, 0b1100)
    p2 = alg.walk(0b0011, 0b1100)
    assert p1 == p2
    # Phase A corrects lowest zero first: 0011 -> 0111.
    assert p1[2] == QueueId(0b0111, "A")


def test_all_hypercube_algorithms_factory():
    algos = all_hypercube_algorithms(3)
    assert set(algos) == {
        "hypercube-adaptive",
        "hypercube-hung",
        "hypercube-oblivious",
    }
    for alg in algos.values():
        assert alg.topology.n == 3


def test_hung_never_offers_dynamic():
    alg = HypercubeHungRouting(Hypercube(3))
    for u in range(8):
        for dst in range(8):
            for kind in ("A", "B"):
                assert alg.dynamic_hops(QueueId(u, kind), dst) == frozenset()


@settings(max_examples=60)
@given(st.integers(2, 6), st.data())
def test_walk_is_minimal_for_random_pairs(n, data):
    cube = Hypercube(n)
    alg = HypercubeAdaptiveRouting(cube)
    src = data.draw(st.integers(0, cube.num_nodes - 1))
    dst = data.draw(st.integers(0, cube.num_nodes - 1))
    if src == dst:
        return
    nodes = node_path(alg.walk(src, dst))
    assert len(nodes) - 1 == cube.distance(src, dst)
    for a, b in zip(nodes, nodes[1:]):
        assert cube.is_adjacent(a, b)


@settings(max_examples=40)
@given(st.integers(2, 5), st.data())
def test_every_hop_is_profitable(n, data):
    """Minimality at the hop level: each move reduces the distance."""
    cube = Hypercube(n)
    alg = HypercubeAdaptiveRouting(cube)
    u = data.draw(st.integers(0, cube.num_nodes - 1))
    dst = data.draw(st.integers(0, cube.num_nodes - 1))
    if u == dst:
        return
    for kind in ("A", "B"):
        for q2 in alg.hops(QueueId(u, kind), dst):
            if q2.is_central and q2.node != u:
                assert cube.distance(q2.node, dst) == cube.distance(u, dst) - 1
