"""Unit tests for path enumeration and adaptivity analysis."""

from math import comb, factorial

from repro.core import (
    adaptivity_ratio,
    is_fully_adaptive_for_pair,
    is_minimal_for_pair,
    minimal_node_paths,
    realizable_node_paths,
)
from repro.routing import (
    HypercubeAdaptiveRouting,
    HypercubeHungRouting,
    HypercubeObliviousRouting,
    Mesh2DAdaptiveRouting,
    Mesh2DRestrictedRouting,
)
from repro.topology import Hypercube, Mesh2D


def test_minimal_path_count_hypercube(cube4):
    """Between nodes at distance d there are d! minimal paths."""
    for src, dst in [(0b0000, 0b0011), (0b0000, 0b0111), (0b0101, 0b1010)]:
        d = cube4.distance(src, dst)
        assert len(minimal_node_paths(cube4, src, dst)) == factorial(d)


def test_minimal_path_count_mesh(mesh4):
    """(dx+dy choose dx) monotone staircase paths."""
    src, dst = (0, 0), (2, 3)
    assert len(minimal_node_paths(mesh4, src, dst)) == comb(5, 2)


def test_trivial_pair():
    cube = Hypercube(3)
    assert minimal_node_paths(cube, 5, 5) == {(5,)}


def test_adaptive_hypercube_realizes_all_minimal_paths(cube3):
    alg = HypercubeAdaptiveRouting(cube3)
    for src in cube3.nodes():
        for dst in cube3.nodes():
            if src != dst:
                assert is_fully_adaptive_for_pair(alg, src, dst)
                assert is_minimal_for_pair(alg, src, dst)


def test_hung_hypercube_is_partially_adaptive(cube3):
    """The static scheme realizes fewer paths on mixed corrections."""
    alg = HypercubeHungRouting(cube3)
    # 001 -> 110: one 0->1 pair and corrections 1->0; order is forced
    # across the phase boundary, so not all 3! = 6 orders realizable.
    src, dst = 0b001, 0b110
    realizable = realizable_node_paths(alg, src, dst)
    minimal = minimal_node_paths(cube3, src, dst)
    assert realizable < minimal
    assert is_minimal_for_pair(alg, src, dst)


def test_oblivious_hypercube_single_path(cube3):
    alg = HypercubeObliviousRouting(cube3)
    for src in cube3.nodes():
        for dst in cube3.nodes():
            if src != dst:
                assert len(realizable_node_paths(alg, src, dst)) == 1


def test_adaptivity_ratio_ordering(cube3):
    """adaptive = 1.0 >= hung >= oblivious for a mixed pair."""
    src, dst = 0b001, 0b110
    r_adapt = adaptivity_ratio(HypercubeAdaptiveRouting(cube3), src, dst)
    r_hung = adaptivity_ratio(HypercubeHungRouting(cube3), src, dst)
    r_obl = adaptivity_ratio(HypercubeObliviousRouting(cube3), src, dst)
    assert r_adapt == 1.0
    assert r_adapt > r_hung >= r_obl
    assert r_obl == 1 / len(minimal_node_paths(cube3, src, dst))


def test_mesh_restricted_has_single_path_on_northwest(mesh3):
    """The paper's motivating example: (x,y)->(v,w) with v<x, w>y has
    exactly one route under the restricted scheme."""
    alg = Mesh2DRestrictedRouting(mesh3)
    src, dst = (2, 0), (0, 2)
    assert len(realizable_node_paths(alg, src, dst)) == 1


def test_mesh_adaptive_has_all_paths_on_northwest(mesh3):
    alg = Mesh2DAdaptiveRouting(mesh3)
    src, dst = (2, 0), (0, 2)
    realizable = realizable_node_paths(alg, src, dst)
    assert realizable == minimal_node_paths(mesh3, src, dst)
    assert len(realizable) == comb(4, 2)


def test_realizable_paths_all_minimal_for_adaptive_mesh(mesh3):
    alg = Mesh2DAdaptiveRouting(mesh3)
    for src in mesh3.nodes():
        for dst in mesh3.nodes():
            if src != dst:
                d = mesh3.distance(src, dst)
                for p in realizable_node_paths(alg, src, dst):
                    assert len(p) - 1 == d
