"""Tests for worm workloads (batch + open loop)."""

import pytest

from repro.sim import ComplementTraffic, RandomTraffic, make_rng
from repro.topology import Hypercube, Torus
from repro.wormhole import (
    BernoulliWormSource,
    HypercubeAdaptiveWormhole,
    TorusAdaptiveWormhole,
    WormholeSimulator,
    backlog,
    permutation_worms,
    run_open_loop,
)


def test_permutation_worms_skip_fixed_points():
    cube = Hypercube(3)
    worms = permutation_worms(
        cube, ComplementTraffic(cube), length=3, rng=make_rng(0)
    )
    assert len(worms) == 8
    assert all(w.dst == (w.src ^ 7) for w in worms)
    assert all(w.length == 3 for w in worms)


def test_permutation_worms_per_node():
    cube = Hypercube(3)
    worms = permutation_worms(
        cube, RandomTraffic(cube), length=2, rng=make_rng(1), per_node=3
    )
    assert len(worms) == 24


def test_source_validates_rate():
    t = Torus((3, 3))
    with pytest.raises(ValueError):
        BernoulliWormSource(t, RandomTraffic(t), 4, 0.0, make_rng(0))


def test_open_loop_low_rate_drains():
    t = Torus((4, 4))
    sim = WormholeSimulator(TorusAdaptiveWormhole(t))
    src = BernoulliWormSource(t, RandomTraffic(t), 4, 0.05, make_rng(2))
    run_open_loop(sim, src, duration=200, drain=True)
    assert len(sim.delivered) == src.offered
    assert backlog(sim) == 0
    assert sim.latency.count == src.offered


def test_open_loop_saturation_builds_backlog():
    t = Torus((4, 4))
    sim = WormholeSimulator(TorusAdaptiveWormhole(t))
    src = BernoulliWormSource(t, RandomTraffic(t), 6, 1.0, make_rng(3))
    run_open_loop(sim, src, duration=200)
    assert backlog(sim) > 0  # offered load exceeds capacity
    assert len(sim.delivered) > 0  # but progress continues (no deadlock)


def test_open_loop_reproducible():
    def go():
        cube = Hypercube(3)
        sim = WormholeSimulator(HypercubeAdaptiveWormhole(cube))
        src = BernoulliWormSource(
            cube, RandomTraffic(cube), 3, 0.4, make_rng(7)
        )
        run_open_loop(sim, src, duration=150, drain=True)
        return sorted(sim.latency.values)

    assert go() == go()
