"""Cross-algorithm integration properties.

One place where the big comparative claims are asserted across the
whole algorithm zoo: queue budgets, adaptivity ordering, latency laws,
and simulator interoperability.
"""

import pytest

from repro.core import adaptivity_ratio, minimal_node_paths, verify_algorithm
from repro.routing import (
    BenesAdaptiveRouting,
    CCCAdaptiveRouting,
    HypercubeAdaptiveRouting,
    HypercubeHungRouting,
    HypercubeObliviousRouting,
    Mesh2DAdaptiveRouting,
    ShuffleExchangeRouting,
    StructuredBufferPoolRouting,
    TorusRouting,
)
from repro.sim import PacketSimulator, RandomTraffic, StaticInjection, make_rng
from repro.topology import (
    BenesNetwork,
    CubeConnectedCycles,
    Hypercube,
    Mesh2D,
    ShuffleExchange,
    Torus,
)


def test_queue_budgets_match_the_paper_claims():
    """Theorem 1/2: 2 central queues; Theorem 3 + CCC: 4; our torus
    reconstruction: 6; buffer pool: diameter+1 (the criticised blow-up);
    Benes: 1."""
    budgets = {
        HypercubeAdaptiveRouting(Hypercube(5)): 2,
        Mesh2DAdaptiveRouting(Mesh2D(5)): 2,
        ShuffleExchangeRouting(ShuffleExchange(5)): 4,
        CCCAdaptiveRouting(CubeConnectedCycles(4)): 4,
        TorusRouting(Torus((5, 5))): 6,
        StructuredBufferPoolRouting(Hypercube(5)): 6,
        BenesAdaptiveRouting(BenesNetwork(3)): 1,
    }
    for alg, expect in budgets.items():
        node = next(iter(alg.topology.nodes()))
        assert len(alg.central_queue_kinds(node)) == expect, alg.name


def test_queue_budget_independent_of_network_size():
    """The paper's headline: constant queues as N grows (except the
    buffer-pool baseline, which grows with the diameter)."""
    for n in (3, 5, 7):
        assert len(HypercubeAdaptiveRouting(Hypercube(n)).central_queue_kinds(0)) == 2
    assert len(StructuredBufferPoolRouting(Hypercube(7)).central_queue_kinds(0)) == 8


def test_adaptivity_ordering_over_the_zoo():
    """adaptive (1.0) > hung > oblivious on a mixed hypercube pair."""
    cube = Hypercube(4)
    src, dst = 0b0011, 0b1100  # 2 rising + 2 falling corrections
    r_full = adaptivity_ratio(HypercubeAdaptiveRouting(cube), src, dst)
    r_hung = adaptivity_ratio(HypercubeHungRouting(cube), src, dst)
    r_obl = adaptivity_ratio(HypercubeObliviousRouting(cube), src, dst)
    n_paths = len(minimal_node_paths(cube, src, dst))
    assert n_paths == 24  # 4!
    assert r_full == 1.0
    assert r_hung == pytest.approx(4 / 24)  # 2! x 2! phase-ordered
    assert r_obl == pytest.approx(1 / 24)


@pytest.mark.parametrize(
    "make",
    [
        lambda: HypercubeAdaptiveRouting(Hypercube(4)),
        lambda: Mesh2DAdaptiveRouting(Mesh2D(4)),
        lambda: TorusRouting(Torus((4, 4))),
        lambda: ShuffleExchangeRouting(ShuffleExchange(4)),
        lambda: CCCAdaptiveRouting(CubeConnectedCycles(3)),
        lambda: StructuredBufferPoolRouting(Mesh2D(3)),
    ],
    ids=lambda mk: mk().name,
)
def test_same_engine_drives_every_algorithm(make):
    alg = make()
    inj = StaticInjection(2, RandomTraffic(alg.topology), make_rng(11))
    res = PacketSimulator(alg, inj).run(max_cycles=200_000)
    assert res.delivered == res.injected
    assert res.latency.minimum >= 3


def test_all_shipped_algorithms_deadlock_free_summary():
    """The one-stop Theorem certification across the zoo."""
    zoo = [
        HypercubeAdaptiveRouting(Hypercube(3)),
        Mesh2DAdaptiveRouting(Mesh2D(3)),
        TorusRouting(Torus((3, 3))),
        ShuffleExchangeRouting(ShuffleExchange(3)),
        CCCAdaptiveRouting(CubeConnectedCycles(3)),
        StructuredBufferPoolRouting(Hypercube(3)),
    ]
    for alg in zoo:
        report = verify_algorithm(
            alg, check_minimal=False, check_fully_adaptive=False
        )
        assert report.deadlock_free, (alg.name, report.errors)
