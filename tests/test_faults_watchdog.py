"""The deadlock/livelock watchdog and the engine's safety rails.

A degraded run must never hang and never die with an opaque error:
real wait-for cycles raise :class:`DeadlockDetected` with the cycle
attached, provably-undeliverable leftovers end the run gracefully with
an honest tally, transient stalls are waited out, and the hard
``max_cycles`` cap turns a runaway run into a clear exception.
"""

import pytest

from repro.core import QueueId, deliver
from repro.core.routing_function import RoutingAlgorithm
from repro.faults import (
    DeadlockDetected,
    DeadlockWatchdog,
    FaultSchedule,
    link_down,
    link_stall,
    node_down,
)
from repro.faults.experiments import make_fault_simulator
from repro.routing import HypercubeAdaptiveRouting
from repro.sim import (
    CompiledPacketSimulator,
    DynamicInjection,
    PacketSimulator,
    PermutationTraffic,
    RandomTraffic,
    ComplementTraffic,
    StaticInjection,
    make_rng,
)
from repro.sim.engine import CycleLimitExceeded
from repro.topology import Hypercube


class _GreedySwap(RoutingAlgorithm):
    """Single-queue greedy minimal routing: deadlocks under pressure."""

    name = "greedy-swap"

    def central_queue_kinds(self, node):
        return ("Q",)

    def injection_targets(self, src, dst, state=None):
        return frozenset({QueueId(src, "Q")})

    def static_hops(self, q, dst, state=None):
        u = q.node
        if u == dst:
            return frozenset({deliver(dst)})
        topo = self.topology
        du = topo.distance(u, dst)
        return frozenset(
            QueueId(v, "Q")
            for v in topo.neighbors(u)
            if topo.distance(v, dst) == du - 1
        )


class _RingForever(RoutingAlgorithm):
    """Packets circulate the 2-cube's Gray-code ring and never deliver:
    perpetual motion, zero progress — a pure livelock."""

    name = "ring-forever"
    _next = {0: 1, 1: 3, 3: 2, 2: 0}

    def central_queue_kinds(self, node):
        return ("Q",)

    def injection_targets(self, src, dst, state=None):
        return frozenset({QueueId(src, "Q")})

    def static_hops(self, q, dst, state=None):
        return frozenset({QueueId(self._next[q.node], "Q")})


def test_watchdog_reports_wait_for_cycle():
    """A real store-and-forward deadlock yields a structured report
    with the witness cycle over full queues."""
    cube = Hypercube(2)
    inj = DynamicInjection(
        1.0, ComplementTraffic(cube), make_rng(5), duration=100_000, warmup=10
    )
    sim = PacketSimulator(
        _GreedySwap(cube), inj, central_capacity=1, stall_limit=150
    )
    sim.add_observer(DeadlockWatchdog())
    with pytest.raises(DeadlockDetected) as exc:
        sim.run()
    report = exc.value.report
    assert report.kind == "deadlock"
    assert report.stuck_deliverable > 0
    assert report.wait_cycle, "deadlock witness missing"
    # the cycle is a closed walk over central queues
    assert all(q.is_central for q in report.wait_cycle)
    assert "wait-for cycle" in str(exc.value)


@pytest.mark.parametrize("engine", ["reference", "compiled"])
def test_disconnecting_fault_set_halts_instead_of_hanging(engine):
    """Cut one node off entirely: the run terminates by itself with an
    honest undeliverable tally instead of hanging or raising."""
    topo = Hypercube(3)
    alg = HypercubeAdaptiveRouting(topo)
    faults = [link_down(0, v, at=0) for v in topo.neighbors(0)]
    schedule = FaultSchedule.fixed(topo, faults)
    model = StaticInjection(2, RandomTraffic(topo), make_rng(8))
    sim = make_fault_simulator(alg, model, schedule, engine=engine)
    result = sim.run(max_cycles=200_000)
    assert result.halt is not None and "undeliverable" in result.halt
    assert result.undeliverable > 0
    # everything that could be delivered was
    assert result.delivered + result.undeliverable >= model.total
    assert result.delivered_fraction < 1.0


def test_node_down_counts_frozen_and_unreachable():
    topo = Hypercube(3)
    alg = HypercubeAdaptiveRouting(topo)
    schedule = FaultSchedule.fixed(topo, [node_down(7, at=0)])
    model = StaticInjection(1, RandomTraffic(topo), make_rng(3))
    sim = make_fault_simulator(alg, model, schedule)
    result = sim.run(max_cycles=200_000)
    assert result.halt is not None
    # node 7's own packet never injects; packets headed to 7 park
    assert result.undeliverable > 0
    assert result.delivered == result.injected - result.undelivered


def test_transient_stall_is_waited_out_not_deadlock():
    """A link stall longer than the stall limit must not raise: the
    injector knows recovery is scheduled and suppresses the alarm."""
    topo = Hypercube(2)
    alg = HypercubeAdaptiveRouting(topo)
    schedule = FaultSchedule.fixed(topo, [link_stall(0, 1, at=0, until=300)])
    traffic = PermutationTraffic({0: 1, 1: 0, 2: 2, 3: 3}, name="swap01")
    model = StaticInjection(1, traffic, make_rng(0))
    sim = make_fault_simulator(
        alg, model, schedule, engine="reference", stall_limit=50
    )
    result = sim.run(max_cycles=10_000)
    assert result.delivered == 2
    assert result.cycles > 300, "must actually have waited out the stall"
    assert result.halt is None


def test_livelock_detected():
    cube = Hypercube(2)
    model = StaticInjection(1, ComplementTraffic(cube), make_rng(1))
    sim = PacketSimulator(_RingForever(cube), model)
    sim.add_observer(DeadlockWatchdog(livelock_limit=500))
    with pytest.raises(DeadlockDetected) as exc:
        sim.run(max_cycles=100_000)
    assert exc.value.report.kind == "livelock"


@pytest.mark.parametrize("engine_cls", [PacketSimulator, CompiledPacketSimulator])
def test_max_cycles_cap_raises_clear_error(engine_cls):
    """Satellite: the run cap turns an endless run into a clear error
    naming the in-flight packet count."""
    cube = Hypercube(2)
    model = StaticInjection(1, ComplementTraffic(cube), make_rng(1))
    sim = engine_cls(_RingForever(cube), model)
    with pytest.raises(CycleLimitExceeded) as exc:
        sim.run(max_cycles=2_000)
    msg = str(exc.value)
    assert "2000" in msg and "in flight" in msg


def test_healthy_run_unbothered_by_watchdog():
    """Attaching the watchdog to a healthy run changes nothing."""
    cube = Hypercube(3)
    alg = HypercubeAdaptiveRouting(cube)
    model = StaticInjection(2, RandomTraffic(cube), make_rng(2))
    plain = PacketSimulator(
        HypercubeAdaptiveRouting(Hypercube(3)),
        StaticInjection(2, RandomTraffic(Hypercube(3)), make_rng(2)),
    ).run()
    watched = PacketSimulator(alg, model)
    watched.add_observer(DeadlockWatchdog())
    res = watched.run()
    assert sorted(res.latency.values) == sorted(plain.latency.values)
    assert res.cycles == plain.cycles
