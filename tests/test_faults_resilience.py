"""Degradation experiments: the acceptance-level resilience behavior.

CI scale stays small (n<=5 cubes, <=8x8 meshes); the bigger sweeps are
marked ``slow`` and excluded from tier-1 by ``pytest.ini``.
"""

import math

import pytest

from repro.faults import (
    FaultSchedule,
    degradation_sweep,
    link_down,
    run_with_faults,
)
from repro.routing import HypercubeAdaptiveRouting, Mesh2DAdaptiveRouting
from repro.sim import RandomTraffic, StaticInjection, make_rng
from repro.topology import Hypercube, Mesh2D


def test_scripted_link_down_n5_hypercube_delivers_99_percent():
    """Acceptance: a scripted link-down schedule on the n=5 cube keeps
    delivering at least 99% of the packets that remain deliverable."""
    cube = Hypercube(5)
    alg = HypercubeAdaptiveRouting(cube)
    links = sorted(cube.links(), key=repr)
    # stagger eight link failures across the early run
    faults = [
        link_down(*links[i * 7], at=5 * k)
        for k, i in enumerate([0, 3, 6, 9, 12, 15, 18, 21])
    ]
    schedule = FaultSchedule.fixed(cube, faults)
    model = StaticInjection(2, RandomTraffic(cube), make_rng(42))
    rr = run_with_faults(
        alg, model, schedule, measure_overhead=True, max_cycles=2_000_000
    )
    assert rr.generated == 2 * cube.num_nodes
    assert rr.delivered_of_deliverable >= 0.99
    # the traced overhead is well-defined and non-negative
    assert rr.reroute_overhead >= 0.0


@pytest.mark.parametrize(
    "family, size",
    [("hypercube", 4), ("mesh", 5)],
)
def test_degradation_sweep_ci_scale(family, size):
    rows = degradation_sweep(family, size, [0, 2], seed=7)
    assert [r["failed_links"] for r in rows] == [0, 2]
    healthy, degraded = rows
    # healthy baseline: full delivery, minimal routes, no halt
    assert healthy["delivered_frac"] == 1.0
    assert healthy["delivered_of_deliverable"] == 1.0
    assert healthy["reroute_overhead"] == 0.0
    assert healthy["faults"] == "healthy"
    assert healthy["latency_x"] == 1.0
    # degraded: still delivers everything deliverable, honestly labeled
    assert degraded["delivered_of_deliverable"] == 1.0
    assert degraded["faults"] != "healthy"
    assert degraded["reroute_overhead"] >= 0.0
    assert degraded["latency_x"] >= 1.0


def test_sweep_prepends_healthy_baseline():
    rows = degradation_sweep("hypercube", 3, [1], seed=3)
    assert [r["failed_links"] for r in rows] == [0, 1]


def test_sweep_rejects_unknown_family():
    with pytest.raises(ValueError):
        degradation_sweep("torus", 4, [0, 1])


def test_sweep_parallel_matches_serial():
    serial = degradation_sweep("hypercube", 3, [0, 1, 2], seed=9, workers=1)
    parallel = degradation_sweep("hypercube", 3, [0, 1, 2], seed=9, workers=2)
    assert serial == parallel


def test_detour_disabled_parks_and_watchdog_flags_it():
    """Without detours a packet whose minimal hops all died just parks.
    Its destination is still reachable, so the watchdog refuses to call
    it undeliverable and raises a deadlock report naming the stuck-but-
    deliverable packets — while the detour-enabled run delivers them."""
    from repro.faults import DeadlockDetected

    cube = Hypercube(3)
    alg = HypercubeAdaptiveRouting(cube)
    # packets heading to 5 lose both incoming phase-B links
    schedule = FaultSchedule.fixed(cube, [link_down(7, 5), link_down(4, 5)])
    model = StaticInjection(2, RandomTraffic(cube), make_rng(6))
    with_detour = run_with_faults(
        alg, model, schedule, detour=True, max_cycles=500_000
    )
    assert with_detour.delivered_of_deliverable == 1.0

    model2 = StaticInjection(2, RandomTraffic(Hypercube(3)), make_rng(6))
    with pytest.raises(DeadlockDetected) as exc:
        run_with_faults(
            HypercubeAdaptiveRouting(Hypercube(3)),
            model2,
            schedule,
            detour=False,
            max_cycles=500_000,
        )
    assert exc.value.report.stuck_deliverable > 0


@pytest.mark.slow
@pytest.mark.parametrize(
    "family, size, counts",
    [("hypercube", 5, [0, 2, 4, 8, 12]), ("mesh", 8, [0, 2, 4, 8])],
)
def test_degradation_sweep_large(family, size, counts):
    """Larger sweeps (run explicitly with ``pytest -m slow``)."""
    rows = degradation_sweep(
        family, size, counts, seed=12345, packets_per_node=2
    )
    assert len(rows) == len(counts)
    for row in rows:
        assert row["delivered_of_deliverable"] >= 0.99
        assert not math.isnan(row["reroute_overhead"])
    # overhead grows (weakly) with damage on average: last >= first
    assert rows[-1]["reroute_overhead"] >= rows[0]["reroute_overhead"]
